//! Structured lint diagnostics.

use hgl_core::graph::VertexId;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a property worth surfacing, not a defect.
    Info,
    /// Suspicious but not provably unsound.
    Warning,
    /// A defect: the property the rule checks is provably violated.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint rule a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// A callee-saved register does not hold its initial value at a
    /// return instruction.
    CalleeSavedClobber,
    /// A memory write is not provably separate from the return-address
    /// slot `[rsp0, 8]`.
    RetSlotOverwrite,
    /// The function's stack depth is unbounded or exceeds the
    /// configured limit.
    StackDepth,
    /// A Hoare-Graph vertex is unreachable from the function entry.
    DeadNode,
    /// An indirect jump the lifter left unresolved that the value-set
    /// analysis could not bound either: the function's control flow is
    /// not statically covered.
    VsaUnboundedIndirect,
}

impl Rule {
    /// Every rule, for coverage-floor accounting.
    pub const ALL: [Rule; 5] = [
        Rule::CalleeSavedClobber,
        Rule::RetSlotOverwrite,
        Rule::StackDepth,
        Rule::DeadNode,
        Rule::VsaUnboundedIndirect,
    ];

    /// The stable kebab-case rule name used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::CalleeSavedClobber => "callee-saved-clobber",
            Rule::RetSlotOverwrite => "ret-slot-overwrite",
            Rule::StackDepth => "stack-depth",
            Rule::DeadNode => "dead-node",
            Rule::VsaUnboundedIndirect => "vsa-unbounded-indirect",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured diagnostic: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diag {
    /// Entry address of the function the finding is in.
    pub function: u64,
    /// Severity of the finding.
    pub severity: Severity,
    /// The rule that fired.
    pub rule: Rule,
    /// The Hoare-Graph vertex the finding anchors to, if any.
    pub node: Option<VertexId>,
    /// The edge (source, destination) the finding anchors to, if any.
    pub edge: Option<(VertexId, VertexId)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] fn {:#x}", self.severity, self.rule, self.function)?;
        if let Some(n) = &self.node {
            write!(f, " at {n}")?;
        }
        if let Some((a, b)) = &self.edge {
            write!(f, " edge {a} -> {b}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diag {
            function: 0x401000,
            severity: Severity::Error,
            rule: Rule::CalleeSavedClobber,
            node: Some(VertexId::At(0x401005, 0)),
            edge: None,
            detail: "rbx holds 0x1, expected rbx0".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[callee-saved-clobber] fn 0x401000 at 0x401005: rbx holds 0x1, expected rbx0"
        );
    }

    #[test]
    fn rule_names_are_kebab_case() {
        for r in Rule::ALL {
            assert!(r.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
