//! A generic worklist fixpoint engine over Hoare-Graph vertices and
//! edges.
//!
//! A dataflow pass is a [`Lattice`] of facts plus a [`Transfer`]
//! describing how one edge transforms a fact; the engine computes the
//! least solution of
//!
//! ```text
//! fact(v) = boundary(v) ⊔ ⨆ { transfer(e, fact(src(e))) | e enters v }
//! ```
//!
//! for forward passes (symmetrically over outgoing edges for backward
//! passes) by chaotic iteration with a worklist. All containers are
//! ordered, so the solution — and the iteration order — is
//! deterministic.

use hgl_core::graph::{Edge, HoareGraph, VertexId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone + PartialEq {
    /// The least element (the fact before any information arrives).
    fn bottom() -> Self;
    /// The least upper bound of two facts.
    fn join(&self, other: &Self) -> Self;
}

/// Direction of a dataflow pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges, entry to exit.
    Forward,
    /// Facts flow against edges, exit to entry.
    Backward,
}

/// A dataflow pass: a lattice, a direction, boundary facts and an
/// edge transfer function.
pub trait Transfer {
    /// The fact lattice of this pass.
    type Fact: Lattice;

    /// The direction facts flow in.
    fn direction(&self) -> Direction;

    /// The fact injected at `id` from outside the graph (the entry
    /// vertex of a forward pass, the exit vertex of a backward one).
    /// `None` means bottom.
    fn boundary(&self, id: VertexId) -> Option<Self::Fact>;

    /// The fact after traversing `edge`, given the fact at its source
    /// side (`from` for forward passes, `to` for backward ones).
    fn transfer(&self, edge: &Edge, fact: &Self::Fact) -> Self::Fact;
}

/// The computed fixpoint of one pass.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// The fact at every vertex.
    pub facts: BTreeMap<VertexId, F>,
    /// Vertex recomputations performed.
    pub iterations: usize,
    /// False if the iteration cap tripped before stabilising (the
    /// facts are then a sound under-iteration, not the fixpoint).
    pub converged: bool,
}

impl<F> Solution<F> {
    /// The fact at `id`, if the vertex exists.
    pub fn fact(&self, id: VertexId) -> Option<&F> {
        self.facts.get(&id)
    }
}

/// Run `pass` to fixpoint over `graph`.
///
/// `max_iterations` caps vertex recomputations (a safety net for a
/// lattice with unexpected infinite ascending chains); a healthy pass
/// over a lifted graph converges in a small multiple of the vertex
/// count.
pub fn fixpoint<T: Transfer>(graph: &HoareGraph, pass: &T, max_iterations: usize) -> Solution<T::Fact> {
    let dir = pass.direction();
    // Edge adjacency keyed by the *destination* side of the flow:
    // for each vertex, the edges whose transfer feeds its fact.
    let mut feeding: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
    // And the reverse: the vertices whose facts an edge depends on,
    // used to know what to re-enqueue when a fact changes.
    let mut dependents: BTreeMap<VertexId, BTreeSet<VertexId>> = BTreeMap::new();
    for (i, e) in graph.edges.iter().enumerate() {
        let (src, dst) = match dir {
            Direction::Forward => (e.from, e.to),
            Direction::Backward => (e.to, e.from),
        };
        feeding.entry(dst).or_default().push(i);
        dependents.entry(src).or_default().insert(dst);
    }

    let mut facts: BTreeMap<VertexId, T::Fact> = BTreeMap::new();
    for &id in graph.vertices.keys() {
        facts.insert(id, T::Fact::bottom());
    }

    let mut worklist: VecDeque<VertexId> = graph.vertices.keys().copied().collect();
    let mut queued: BTreeSet<VertexId> = worklist.iter().copied().collect();
    let mut iterations = 0usize;
    let mut converged = true;

    while let Some(v) = worklist.pop_front() {
        queued.remove(&v);
        if iterations >= max_iterations {
            converged = false;
            break;
        }
        iterations += 1;

        let mut new_fact = pass.boundary(v).unwrap_or_else(T::Fact::bottom);
        if let Some(edges) = feeding.get(&v) {
            for &i in edges {
                let e = &graph.edges[i];
                let src = match dir {
                    Direction::Forward => e.from,
                    Direction::Backward => e.to,
                };
                let Some(src_fact) = facts.get(&src) else { continue };
                new_fact = new_fact.join(&pass.transfer(e, src_fact));
            }
        }
        let changed = facts.get(&v) != Some(&new_fact);
        if changed {
            facts.insert(v, new_fact);
            if let Some(deps) = dependents.get(&v) {
                for &d in deps {
                    if queued.insert(d) {
                        worklist.push_back(d);
                    }
                }
            }
        }
    }

    Solution { facts, iterations, converged }
}

impl Lattice for bool {
    fn bottom() -> bool {
        false
    }
    fn join(&self, other: &bool) -> bool {
        *self || *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::pred::SymState;
    use hgl_x86::{Instr, Mnemonic, Width};

    fn nop_at(addr: u64) -> Instr {
        let mut i = Instr::new(Mnemonic::Nop, vec![], Width::B8);
        i.addr = addr;
        i.len = 1;
        i
    }

    /// A diamond with an unreachable orphan:
    ///
    /// ```text
    /// 0x10 -> 0x11 -> 0x13 -> Exit      0x99 (orphan)
    ///      \-> 0x12 ---^
    /// ```
    fn diamond_with_orphan() -> HoareGraph {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x11, 0x12, 0x13, 0x99] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        g.add_vertex(VertexId::Exit, s.clone(), true);
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x11, 0), nop_at(0x10));
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x12, 0), nop_at(0x10));
        g.add_edge(VertexId::At(0x11, 0), VertexId::At(0x13, 0), nop_at(0x11));
        g.add_edge(VertexId::At(0x12, 0), VertexId::At(0x13, 0), nop_at(0x12));
        g.add_edge(VertexId::At(0x13, 0), VertexId::Exit, nop_at(0x13));
        g
    }

    struct Reach(u64);
    impl Transfer for Reach {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, id: VertexId) -> Option<bool> {
            matches!(id, VertexId::At(a, _) if a == self.0).then_some(true)
        }
        fn transfer(&self, _edge: &Edge, fact: &bool) -> bool {
            *fact
        }
    }

    struct ReachExit;
    impl Transfer for ReachExit {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self, id: VertexId) -> Option<bool> {
            (id == VertexId::Exit).then_some(true)
        }
        fn transfer(&self, _edge: &Edge, fact: &bool) -> bool {
            *fact
        }
    }

    #[test]
    fn forward_reachability_finds_orphan() {
        let g = diamond_with_orphan();
        let sol = fixpoint(&g, &Reach(0x10), 10_000);
        assert!(sol.converged);
        assert_eq!(sol.fact(VertexId::At(0x10, 0)), Some(&true));
        assert_eq!(sol.fact(VertexId::At(0x13, 0)), Some(&true));
        assert_eq!(sol.fact(VertexId::Exit), Some(&true));
        assert_eq!(sol.fact(VertexId::At(0x99, 0)), Some(&false));
    }

    #[test]
    fn backward_exit_reachability() {
        let g = diamond_with_orphan();
        let sol = fixpoint(&g, &ReachExit, 10_000);
        assert!(sol.converged);
        assert_eq!(sol.fact(VertexId::At(0x10, 0)), Some(&true));
        assert_eq!(sol.fact(VertexId::At(0x99, 0)), Some(&false));
    }

    #[test]
    fn iteration_cap_reports_non_convergence() {
        let g = diamond_with_orphan();
        let sol = fixpoint(&g, &Reach(0x10), 2);
        assert!(!sol.converged);
    }
}
