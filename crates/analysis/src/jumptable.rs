//! Jump-table recovery: bound unresolved indirect jumps with the
//! value-set analysis and read their concrete targets out of the ELF
//! image.
//!
//! For every [`Annotation::UnresolvedJump`] in a cleanly lifted
//! function whose instruction is a `jmp [base + idx*scale + disp]`,
//! the recovery runs the [`VsaPass`] fixpoint, takes the abstract
//! value of the index register at the jump, and — when it is a
//! bounded [`StridedInterval`] — enumerates the candidate table slots,
//! reads each 8-byte entry from *read-only* image memory, and checks
//! the target lands in executable code. Only a fully successful
//! enumeration produces a claim; any failure (unbounded index,
//! writable or unmapped table memory, non-code target) leaves the
//! jump unresolved and is reported as a
//! [`vsa-unbounded-indirect`](crate::diag::Rule::VsaUnboundedIndirect)
//! lint instead.
//!
//! [`VsaResolver`] packages this as an [`IndirectResolver`] for the
//! analyze→re-lift refinement loop in `hgl-core`. Besides resolving
//! fresh unresolved jumps it *re-validates* every already-hinted jump
//! on each round's grown graph: a bound that grew re-proposes the
//! larger set, and a claim that can no longer be proven is demoted so
//! the loop withdraws the hint (the jump goes back to unresolved).

use crate::diag::{Diag, Rule, Severity};
use crate::engine::fixpoint;
use crate::vsa::{StridedInterval, VsaEnv, VsaPass};
use hgl_core::diag::Annotation;
use hgl_core::graph::HoareGraph;
use hgl_core::lift::LiftResult;
use crate::engine::Lattice;
use hgl_core::refine::{IndirectResolver, Resolution};
use hgl_elf::Binary;
use hgl_x86::{decode, Mnemonic, Operand, Width};
use std::collections::{BTreeMap, BTreeSet};

/// An indirect jump the recovery could not bound, and why.
#[derive(Debug, Clone)]
pub struct UnboundedIndirect {
    /// Address of the indirect jump.
    pub addr: u64,
    /// Human-readable reason the recovery gave up.
    pub reason: String,
}

/// The outcome of jump-table recovery over one function.
#[derive(Debug, Clone, Default)]
pub struct JumpTableRecovery {
    /// Proven target sets, keyed by jump address. Each set is complete
    /// for the paths the Hoare Graph covers.
    pub resolved: BTreeMap<u64, BTreeSet<u64>>,
    /// Jumps left unbounded, with reasons.
    pub unbounded: Vec<UnboundedIndirect>,
}

impl JumpTableRecovery {
    /// Render the unbounded jumps as `vsa-unbounded-indirect` lints.
    pub fn diags(&self, function: u64) -> Vec<Diag> {
        self.unbounded
            .iter()
            .map(|u| Diag {
                function,
                severity: Severity::Warning,
                rule: Rule::VsaUnboundedIndirect,
                node: None,
                edge: None,
                detail: format!("indirect jump at {:#x}: {}", u.addr, u.reason),
            })
            .collect()
    }
}

/// Run VSA over `graph` and try to resolve every `UnresolvedJump`
/// annotation into a concrete target set read from the binary image.
///
/// `max_iterations` caps the dataflow fixpoint; `max_entries` caps the
/// number of table slots enumerated per jump. If the fixpoint does not
/// converge its facts are an under-iteration and may miss index
/// values, so no claim is made at all.
pub fn recover_jump_tables(
    binary: &Binary,
    entry: u64,
    graph: &HoareGraph,
    annotations: &[Annotation],
    max_iterations: usize,
    max_entries: u64,
) -> JumpTableRecovery {
    let jumps: Vec<u64> = annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::UnresolvedJump { addr, .. } => Some(*addr),
            _ => None,
        })
        .collect();
    recover_jumps(binary, entry, graph, &jumps, max_iterations, max_entries)
}

/// [`recover_jump_tables`] over an explicit list of jump addresses —
/// the refinement loop uses this to *re-validate* already-hinted jumps
/// (which no longer carry an `UnresolvedJump` annotation) on the grown
/// graph each round, alongside the still-unresolved ones.
pub fn recover_jumps(
    binary: &Binary,
    entry: u64,
    graph: &HoareGraph,
    jumps: &[u64],
    max_iterations: usize,
    max_entries: u64,
) -> JumpTableRecovery {
    let mut out = JumpTableRecovery::default();
    if jumps.is_empty() {
        return out;
    }
    let sol = fixpoint(graph, &VsaPass { graph, entry }, max_iterations);
    for &addr in jumps {
        match resolve_one(binary, graph, &sol.facts, sol.converged, addr, max_entries) {
            Ok(targets) => {
                out.resolved.insert(addr, targets);
            }
            Err(reason) => out.unbounded.push(UnboundedIndirect { addr, reason }),
        }
    }
    out
}

fn resolve_one(
    binary: &Binary,
    graph: &HoareGraph,
    facts: &BTreeMap<hgl_core::graph::VertexId, VsaEnv>,
    converged: bool,
    addr: u64,
    max_entries: u64,
) -> Result<BTreeSet<u64>, String> {
    if !converged {
        return Err("value-set fixpoint did not converge".into());
    }
    let window = binary.fetch_window(addr).ok_or("jump address outside text")?;
    let instr = decode(window, addr).map_err(|e| format!("undecodable: {e}"))?;
    if instr.mnemonic != Mnemonic::Jmp {
        return Err(format!("not an indirect jmp: {instr}"));
    }
    let Some(Operand::Mem(m)) = instr.operands.first() else {
        return Err("jump target is not a memory operand".into());
    };
    if m.rip_relative {
        return Err("rip-relative table operand".into());
    }
    if m.size != Width::B8 {
        return Err(format!("{}-byte table entries (only 8 supported)", m.size.bytes()));
    }
    let Some(idx) = m.index else {
        return Err("no index register in table operand".into());
    };
    // The abstract state at the jump: join across all vertex variants
    // at this address (a concrete execution may be in any of them).
    let mut env = VsaEnv::bottom();
    for id in graph.vertices_at(addr) {
        if let Some(f) = facts.get(&id) {
            env = env.join(f);
        }
    }
    if !env.reachable {
        return Err("no dataflow fact at the jump".into());
    }
    let idx_iv = env.reg(idx);
    let base_iv = match m.base {
        None => StridedInterval::point(0),
        Some(b) => env.reg(b),
    };
    let slots = base_iv.add(&idx_iv.mul_const(m.scale as u64)).add_signed(m.disp);
    let Some(addrs) = slots.enumerate(max_entries) else {
        return Err(format!(
            "index {idx} unbounded at the jump (idx {idx_iv}, slots {slots})",
            idx_iv = idx_iv,
            slots = slots
        ));
    };
    if addrs.is_empty() {
        return Err("empty slot enumeration".into());
    }
    let mut targets = BTreeSet::new();
    for a in addrs {
        let t = binary
            .read_int_ro(a, 8)
            .ok_or_else(|| format!("table slot {a:#x} is not in read-only image memory"))?;
        if !binary.is_code(t) {
            return Err(format!("table entry {t:#x} (slot {a:#x}) is not code"));
        }
        targets.insert(t);
    }
    Ok(targets)
}

/// The [`IndirectResolver`] the refinement loop uses: jump-table
/// recovery over every cleanly lifted function that still carries
/// `UnresolvedJump` annotations.
#[derive(Debug, Clone)]
pub struct VsaResolver {
    /// Dataflow fixpoint iteration cap.
    pub max_iterations: usize,
    /// Table slots enumerated per jump at most.
    pub max_entries: u64,
}

impl Default for VsaResolver {
    fn default() -> VsaResolver {
        VsaResolver { max_iterations: 100_000, max_entries: 1024 }
    }
}

impl IndirectResolver for VsaResolver {
    fn resolve(
        &self,
        binary: &Binary,
        lift: &LiftResult,
        hints: &BTreeMap<u64, BTreeSet<u64>>,
    ) -> Resolution {
        let mut out = Resolution::default();
        for (&entry, f) in &lift.functions {
            if !f.is_lifted() {
                continue;
            }
            // The jumps to (re-)analyse on this function's graph: the
            // still-unresolved ones, plus every hinted jump whose
            // instruction the graph contains — a hinted jump carries
            // no annotation anymore, yet paths its own targets opened
            // may feed index values past the originally proven bound,
            // so its claim must be re-proven on the *current* graph.
            let mut jumps: BTreeSet<u64> = f
                .annotations
                .iter()
                .filter_map(|a| match a {
                    Annotation::UnresolvedJump { addr, .. } => Some(*addr),
                    _ => None,
                })
                .collect();
            let hinted_here: BTreeSet<u64> = hints
                .keys()
                .copied()
                .filter(|&a| !f.graph.vertices_at(a).is_empty())
                .collect();
            jumps.extend(&hinted_here);
            if jumps.is_empty() {
                continue;
            }
            let jumps: Vec<u64> = jumps.into_iter().collect();
            let rec =
                recover_jumps(binary, entry, &f.graph, &jumps, self.max_iterations, self.max_entries);
            for (addr, targets) in rec.resolved {
                out.resolved.entry(addr).or_insert_with(BTreeSet::new).extend(targets);
            }
            for u in rec.unbounded {
                if hinted_here.contains(&u.addr) {
                    out.demoted.insert(u.addr);
                }
            }
        }
        // A claim that failed re-validation in *any* context is
        // withdrawn everywhere: a success elsewhere cannot vouch for
        // the paths of the function that refuted it.
        for addr in out.demoted.clone() {
            out.resolved.remove(&addr);
        }
        out
    }
}
