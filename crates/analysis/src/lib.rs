//! Static analysis over extracted Hoare Graphs.
//!
//! The lifter in `hgl-core` produces, per function, a Hoare Graph: an
//! invariant (predicate × memory model) at every reached program
//! point. This crate consumes those graphs *after* extraction:
//!
//! - [`engine`] — a generic worklist fixpoint engine: a pass is a
//!   [`Lattice`] of facts plus a [`Transfer`] over edges, forward or
//!   backward.
//! - [`passes`] — concrete passes: forward reachability, backward
//!   exit-reachability, and an interval stack-depth analysis.
//! - [`writes`] — write classification: every memory write classified
//!   as stack-local, global, heap-symbol or unresolved (the paper's
//!   Table-2 precision metric), with a per-binary aggregate and a
//!   claim index the trace oracle cross-validates dynamically.
//! - [`lints`] / [`diag`] — soundness lints (callee-saved-register
//!   clobber, return-address-slot overwrite, stack-depth bounds,
//!   dead nodes) emitting structured [`Diag`]s.
//! - [`report`] — the per-binary driver [`analyze`] and its
//!   [`AnalysisReport`].
//!
//! ```
//! use hgl_analysis::{analyze, AnalysisConfig, Severity};
//! use hgl_core::Lifter;
//!
//! let binary = hgl_corpus::failures::ret2win();
//! let lifted = Lifter::new(&binary).lift_entry(binary.entry);
//! let report = analyze(&binary, &lifted, &AnalysisConfig::default());
//! assert!(report.totals.total() > 0);
//! assert_eq!(report.count(Severity::Error), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lints;
pub mod passes;
pub mod jumptable;
pub mod report;
pub mod vsa;
pub mod writes;

pub use diag::{Diag, Rule, Severity};
pub use engine::{fixpoint, Direction, Lattice, Solution, Transfer};
pub use passes::{CanReachExit, Depth, Reachability, StackDepth};
pub use report::{analyze, AnalysisConfig, AnalysisReport, FnAnalysis, ANALYSES};
pub use jumptable::{
    recover_jump_tables, recover_jumps, JumpTableRecovery, UnboundedIndirect, VsaResolver,
};
pub use vsa::{StridedInterval, VsaEnv, VsaPass, MAX_CARDINALITY};
pub use writes::{
    classify_region, classify_writes, ClassifiedWrite, WriteClass, WriteClassMap, WriteTotals,
};
