//! Static soundness lints over a single function's Hoare Graph.
//!
//! Each lint inspects vertex invariants (and, for the stack-depth
//! rule, a dataflow fixpoint) and emits structured [`Diag`]s. The
//! lints run on *partial* graphs too: the lifter adds a vertex before
//! stepping the instruction at it, so a rejected function's graph
//! still carries an invariant at the defect site for the lints to
//! inspect.

use crate::diag::{Diag, Rule, Severity};
use crate::engine::fixpoint;
use crate::passes::{CanReachExit, Reachability, StackDepth};
use crate::writes::write_region;
use hgl_core::graph::{HoareGraph, VertexId};
use hgl_elf::Binary;
use hgl_expr::{Expr, Sym};
use hgl_solver::{Ctx, Layout, Region, RegionRel};
use hgl_x86::{decode, Instr, Mnemonic, Reg};

/// Decoded instructions at every vertex address of `graph`, in vertex
/// order. Addresses that do not decode are skipped.
fn decoded<'a>(
    binary: &'a Binary,
    graph: &'a HoareGraph,
) -> impl Iterator<Item = (VertexId, &'a hgl_core::graph::Vertex, Instr)> + 'a {
    graph.vertices.iter().filter_map(move |(&id, v)| {
        let VertexId::At(addr, _) = id else { return None };
        let window = binary.fetch_window(addr)?;
        let instr = decode(window, addr).ok()?;
        Some((id, v, instr))
    })
}

/// Callee-saved-register clobber: at every `ret` vertex, each of the
/// System-V callee-saved registers must still hold its initial value.
pub fn lint_callee_saved(binary: &Binary, entry: u64, graph: &HoareGraph) -> Vec<Diag> {
    let mut out = Vec::new();
    for (id, v, instr) in decoded(binary, graph) {
        if instr.mnemonic != Mnemonic::Ret {
            continue;
        }
        for r in Reg::CALLEE_SAVED {
            let held = v.state.pred.reg(r);
            if held != Expr::sym(Sym::Init(r)) {
                out.push(Diag {
                    function: entry,
                    severity: Severity::Error,
                    rule: Rule::CalleeSavedClobber,
                    node: Some(id),
                    edge: None,
                    detail: format!("{r} holds {held} at ret, expected {r}0"),
                });
            }
        }
    }
    out
}

/// Return-address-slot overwrite: every memory write must be provably
/// separate from `[rsp0, 8]`. A proven hit is an error; an unprovable
/// relation is a warning (the lifter destroys or rejects there, but
/// the site is worth surfacing).
pub fn lint_ret_slot(
    binary: &Binary,
    entry: u64,
    graph: &HoareGraph,
    layout: &std::sync::Arc<Layout>,
) -> Vec<Diag> {
    let ra = Region::return_address_slot();
    let mut out = Vec::new();
    for (id, v, instr) in decoded(binary, graph) {
        let Some(region) = write_region(&v.state.pred, &instr) else { continue };
        let ctx = Ctx::from_clauses(v.state.pred.clauses.iter(), std::sync::Arc::clone(layout));
        let ans = v.state.model.relation(&ctx, &region, &ra);
        let (severity, what) = match ans.rel {
            // A separation that rests on a provenance *assumption* and
            // targets a pointer laundered through mutable memory (a
            // fresh symbol) is not a proof: the pointed-to cell could
            // hold the return slot's own address at runtime. Surface
            // it so instrumentation passes can harden exactly here.
            RegionRel::Separate
                if !ans.assumptions.is_empty()
                    && matches!(
                        ctx.provenance(&region.addr),
                        hgl_solver::Provenance::Heap(Sym::Fresh(_))
                    ) =>
            {
                (Severity::Warning, "is only assumed separate from")
            }
            RegionRel::Separate => continue,
            RegionRel::Alias | RegionRel::Enclosed | RegionRel::Encloses | RegionRel::Overlap => {
                (Severity::Error, "overwrites")
            }
            RegionRel::Unknown => (Severity::Warning, "may overwrite"),
        };
        out.push(Diag {
            function: entry,
            severity,
            rule: Rule::RetSlotOverwrite,
            node: Some(id),
            edge: None,
            detail: format!("write to {region} {what} the return-address slot [rsp0, 8]"),
        });
    }
    out
}

/// Result of the stack-depth lint: the diagnostics plus the function's
/// maximum proven depth (`None` when unbounded at some vertex).
pub struct StackDepthOutcome {
    /// Diagnostics (unbounded depth, or depth above the limit).
    pub diags: Vec<Diag>,
    /// Maximum depth below `rsp0` in bytes, when bounded everywhere.
    pub max_depth: Option<u64>,
}

/// Stack-depth bounds via the forward [`StackDepth`] fixpoint pass.
pub fn lint_stack_depth(
    entry: u64,
    graph: &HoareGraph,
    limit: u64,
    max_iterations: usize,
) -> StackDepthOutcome {
    let sol = fixpoint(graph, &StackDepth { graph, entry }, max_iterations);
    let mut max_depth = Some(0u64);
    let mut unbounded_at: Option<VertexId> = None;
    let mut unbounded_count = 0usize;
    for (&id, fact) in &sol.facts {
        match fact.max_depth() {
            Some(d) => {
                if let Some(m) = max_depth {
                    max_depth = Some(m.max(d));
                }
            }
            None => {
                unbounded_count += 1;
                if unbounded_at.is_none() {
                    unbounded_at = Some(id);
                }
                max_depth = None;
            }
        }
    }
    let mut diags = Vec::new();
    if let Some(first) = unbounded_at {
        diags.push(Diag {
            function: entry,
            severity: Severity::Warning,
            rule: Rule::StackDepth,
            node: Some(first),
            edge: None,
            detail: format!(
                "rsp displacement from rsp0 is unbounded at {unbounded_count} state(s)"
            ),
        });
    } else if let Some(d) = max_depth {
        if d > limit {
            diags.push(Diag {
                function: entry,
                severity: Severity::Warning,
                rule: Rule::StackDepth,
                node: None,
                edge: None,
                detail: format!("maximum stack depth {d:#x} exceeds the limit {limit:#x}"),
            });
        }
    }
    if !sol.converged {
        diags.push(Diag {
            function: entry,
            severity: Severity::Warning,
            rule: Rule::StackDepth,
            node: None,
            edge: None,
            detail: format!("fixpoint did not converge within {max_iterations} iterations"),
        });
    }
    StackDepthOutcome { diags, max_depth }
}

/// Result of the reachability lints: diagnostics plus the two
/// per-function state counts surfaced in the report.
pub struct ReachOutcome {
    /// Dead-node diagnostics.
    pub diags: Vec<Diag>,
    /// States reachable from the entry (forward pass).
    pub reachable_states: usize,
    /// States from which `Exit` is reachable (backward pass).
    pub exit_reaching_states: usize,
}

/// Dead-node detection (forward [`Reachability`]) plus the backward
/// [`CanReachExit`] census.
pub fn lint_reachability(entry: u64, graph: &HoareGraph, max_iterations: usize) -> ReachOutcome {
    let fwd = fixpoint(graph, &Reachability { entry }, max_iterations);
    let bwd = fixpoint(graph, &CanReachExit, max_iterations);
    let mut diags = Vec::new();
    let mut reachable_states = 0usize;
    for (&id, &reached) in &fwd.facts {
        if reached {
            reachable_states += 1;
        } else {
            diags.push(Diag {
                function: entry,
                severity: Severity::Warning,
                rule: Rule::DeadNode,
                node: Some(id),
                edge: None,
                detail: "state is unreachable from the function entry".to_string(),
            });
        }
    }
    let exit_reaching_states = bwd.facts.values().filter(|&&b| b).count();
    ReachOutcome { diags, reachable_states, exit_reaching_states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::pred::SymState;
    use hgl_x86::Width;

    #[test]
    fn dead_node_fires_on_orphan() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        g.add_vertex(VertexId::At(0x10, 0), s.clone(), true);
        g.add_vertex(VertexId::At(0x99, 0), s.clone(), true);
        let mut i = Instr::new(Mnemonic::Nop, vec![], Width::B8);
        i.addr = 0x10;
        i.len = 1;
        g.add_vertex(VertexId::Exit, s, true);
        g.add_edge(VertexId::At(0x10, 0), VertexId::Exit, i);
        let out = lint_reachability(0x10, &g, 10_000);
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].rule, Rule::DeadNode);
        assert_eq!(out.diags[0].node, Some(VertexId::At(0x99, 0)));
        assert_eq!(out.reachable_states, 2);
        assert_eq!(out.exit_reaching_states, 2);
    }

    #[test]
    fn stack_depth_bounded_function_is_quiet() {
        // Entry state alone: rsp == rsp0 everywhere, depth 0.
        let mut g = HoareGraph::new();
        g.add_vertex(VertexId::At(0x10, 0), SymState::function_entry(0x10), true);
        let out = lint_stack_depth(0x10, &g, 1 << 20, 10_000);
        assert!(out.diags.is_empty());
        assert_eq!(out.max_depth, Some(0));
    }
}
