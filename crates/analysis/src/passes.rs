//! Concrete dataflow passes over Hoare Graphs: forward reachability,
//! backward exit-reachability, and a forward stack-depth analysis.

use crate::engine::{Direction, Lattice, Transfer};
use hgl_core::graph::{Edge, HoareGraph, VertexId};
use hgl_expr::Linear;
use hgl_solver::rsp0_displacement;
use hgl_x86::{Instr, Mnemonic, Operand, Reg};

/// Forward reachability from the function entry.
pub struct Reachability {
    /// The function entry address.
    pub entry: u64,
}

impl Transfer for Reachability {
    type Fact = bool;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self, id: VertexId) -> Option<bool> {
        matches!(id, VertexId::At(a, _) if a == self.entry).then_some(true)
    }
    fn transfer(&self, _edge: &Edge, fact: &bool) -> bool {
        *fact
    }
}

/// Backward reachability of the `Exit` vertex: "can this state still
/// return?".
pub struct CanReachExit;

impl Transfer for CanReachExit {
    type Fact = bool;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self, id: VertexId) -> Option<bool> {
        (id == VertexId::Exit).then_some(true)
    }
    fn transfer(&self, _edge: &Edge, fact: &bool) -> bool {
        *fact
    }
}

/// The stack-depth fact: the displacement of `rsp` from `rsp0`, as an
/// interval (negative = the stack has grown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth {
    /// No path reaches here yet.
    Bottom,
    /// `rsp - rsp0` lies in `[lo, hi]`.
    Range(i64, i64),
    /// The displacement is unbounded or unknown.
    Top,
}

impl Depth {
    /// Shift the interval by a known per-instruction `rsp` delta.
    fn shift(self, delta: i64) -> Depth {
        match self {
            Depth::Range(lo, hi) => match (lo.checked_add(delta), hi.checked_add(delta)) {
                (Some(l), Some(h)) => Depth::Range(l, h),
                _ => Depth::Top,
            },
            d => d,
        }
    }

    /// The maximum depth below `rsp0` this fact admits: `Some(bytes)`
    /// if bounded, `None` if unbounded.
    pub fn max_depth(&self) -> Option<u64> {
        match self {
            Depth::Bottom => Some(0),
            Depth::Range(lo, _) => Some(if *lo < 0 { lo.unsigned_abs() } else { 0 }),
            Depth::Top => None,
        }
    }
}

impl Lattice for Depth {
    fn bottom() -> Depth {
        Depth::Bottom
    }
    fn join(&self, other: &Depth) -> Depth {
        match (self, other) {
            (Depth::Bottom, d) | (d, Depth::Bottom) => *d,
            (Depth::Top, _) | (_, Depth::Top) => Depth::Top,
            (Depth::Range(a, b), Depth::Range(c, d)) => Depth::Range((*a).min(*c), (*b).max(*d)),
        }
    }
}

/// The `rsp` delta of `instr` when statically evident: `Some(0)` for
/// instructions that leave `rsp` alone, `Some(±k)` for the standard
/// push/pop/sub/add shapes, `None` when `rsp` is rewritten in a way
/// this syntactic check cannot bound.
fn rsp_delta(instr: &Instr) -> Option<i64> {
    match instr.mnemonic {
        Mnemonic::Push | Mnemonic::Call => Some(-8),
        Mnemonic::Pop | Mnemonic::Ret => Some(8),
        Mnemonic::Leave => None,
        Mnemonic::Sub | Mnemonic::Add => match (instr.operands.first(), instr.operands.get(1)) {
            (Some(Operand::Reg(rr)), Some(Operand::Imm(k))) if rr.reg == Reg::Rsp => {
                Some(if instr.mnemonic == Mnemonic::Sub { k.wrapping_neg() } else { *k })
            }
            (Some(Operand::Reg(rr)), _) if rr.reg == Reg::Rsp => None,
            _ => Some(0),
        },
        _ => match instr.operands.first() {
            // Any other instruction whose destination is rsp.
            Some(Operand::Reg(rr)) if rr.reg == Reg::Rsp => None,
            _ => Some(0),
        },
    }
}

/// Forward stack-depth analysis.
///
/// The transfer prefers the *destination invariant*: when the vertex's
/// own predicate pins `rsp` to `rsp0 + k`, that exact displacement is
/// the fact (this is what makes `leave`-style frame teardown precise —
/// the invariant knows `rsp` even when the instruction delta doesn't).
/// Only when the invariant leaves `rsp` symbolic does the pass fall
/// back to the syntactic per-instruction delta, going to `Top` when
/// `rsp` is rewritten unpredictably.
pub struct StackDepth<'g> {
    /// The graph being analysed (for destination invariants).
    pub graph: &'g HoareGraph,
    /// The function entry address.
    pub entry: u64,
}

impl Transfer for StackDepth<'_> {
    type Fact = Depth;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self, id: VertexId) -> Option<Depth> {
        matches!(id, VertexId::At(a, _) if a == self.entry).then_some(Depth::Range(0, 0))
    }
    fn transfer(&self, edge: &Edge, fact: &Depth) -> Depth {
        if let Some(v) = self.graph.vertices.get(&edge.to) {
            let rsp = v.state.pred.reg(Reg::Rsp);
            if let Some(d) = rsp0_displacement(&Linear::of_expr(&rsp)) {
                return Depth::Range(d, d);
            }
        }
        match rsp_delta(&edge.instr) {
            Some(delta) => fact.shift(delta),
            None => Depth::Top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::fixpoint;
    use hgl_core::pred::SymState;
    use hgl_x86::{RegRef, Width};

    fn instr(m: Mnemonic, ops: Vec<Operand>, addr: u64) -> Instr {
        let mut i = Instr::new(m, ops, Width::B8);
        i.addr = addr;
        i.len = 1;
        i
    }

    #[test]
    fn rsp_delta_shapes() {
        let sub = instr(
            Mnemonic::Sub,
            vec![Operand::Reg(RegRef::full(Reg::Rsp)), Operand::Imm(0x20)],
            0,
        );
        assert_eq!(rsp_delta(&sub), Some(-0x20));
        let add = instr(
            Mnemonic::Add,
            vec![Operand::Reg(RegRef::full(Reg::Rsp)), Operand::Imm(0x20)],
            0,
        );
        assert_eq!(rsp_delta(&add), Some(0x20));
        let probe = instr(
            Mnemonic::Sub,
            vec![Operand::Reg(RegRef::full(Reg::Rsp)), Operand::Reg(RegRef::full(Reg::Rax))],
            0,
        );
        assert_eq!(rsp_delta(&probe), None);
        assert_eq!(rsp_delta(&instr(Mnemonic::Push, vec![], 0)), Some(-8));
        assert_eq!(rsp_delta(&instr(Mnemonic::Nop, vec![], 0)), Some(0));
        let movrsp = instr(
            Mnemonic::Mov,
            vec![Operand::Reg(RegRef::full(Reg::Rsp)), Operand::Reg(RegRef::full(Reg::Rax))],
            0,
        );
        assert_eq!(rsp_delta(&movrsp), None);
    }

    #[test]
    fn depth_lattice() {
        let a = Depth::Range(-8, 0);
        let b = Depth::Range(-16, -8);
        assert_eq!(a.join(&b), Depth::Range(-16, 0));
        assert_eq!(a.join(&Depth::Bottom), a);
        assert_eq!(a.join(&Depth::Top), Depth::Top);
        assert_eq!(Depth::Range(-0x20, 0).max_depth(), Some(0x20));
        assert_eq!(Depth::Range(8, 8).max_depth(), Some(0));
        assert_eq!(Depth::Top.max_depth(), None);
    }

    #[test]
    fn stack_depth_over_push_chain() {
        // entry --push--> v1 --push--> v2, invariants left symbolic so
        // the syntactic delta path is exercised.
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        // function_entry pins rsp to rsp0, so the destination-invariant
        // path would return Range(0,0); strip the binding to test the
        // delta path.
        let mut sym = s.clone();
        sym.pred.set_reg(Reg::Rsp, hgl_expr::Expr::bottom());
        g.add_vertex(VertexId::At(0x10, 0), s, true);
        g.add_vertex(VertexId::At(0x11, 0), sym.clone(), true);
        g.add_vertex(VertexId::At(0x12, 0), sym, true);
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x11, 0), instr(Mnemonic::Push, vec![], 0x10));
        g.add_edge(VertexId::At(0x11, 0), VertexId::At(0x12, 0), instr(Mnemonic::Push, vec![], 0x11));
        let sol = fixpoint(&g, &StackDepth { graph: &g, entry: 0x10 }, 10_000);
        assert_eq!(sol.fact(VertexId::At(0x12, 0)), Some(&Depth::Range(-16, -16)));
    }
}
