//! The per-binary analysis driver and its report.

use crate::diag::{Diag, Rule, Severity};
use crate::lints::{lint_callee_saved, lint_reachability, lint_ret_slot, lint_stack_depth};
use crate::writes::{classify_writes, ClassifiedWrite, WriteTotals};
use hgl_core::lift::LiftResult;
use hgl_elf::Binary;
use hgl_solver::Layout;
use std::collections::BTreeMap;
use std::fmt;

/// Names of the analyses [`analyze`] runs, in order.
pub const ANALYSES: [&str; 7] = [
    "write-classification",
    "callee-saved-clobber",
    "ret-slot-overwrite",
    "stack-depth",
    "dead-node",
    "exit-reachability",
    "vsa-unbounded-indirect",
];

/// Knobs for [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Cap on fixpoint vertex recomputations per pass.
    pub max_iterations: usize,
    /// Stack-depth warning threshold in bytes.
    pub stack_depth_limit: u64,
    /// Jump-table slots the value-set recovery enumerates per jump at
    /// most.
    pub max_table_entries: u64,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            max_iterations: 100_000,
            stack_depth_limit: 1 << 20,
            max_table_entries: 1024,
        }
    }
}

/// Per-function analysis results.
#[derive(Debug, Clone)]
pub struct FnAnalysis {
    /// Function entry address.
    pub entry: u64,
    /// Symbolic states in the graph.
    pub states: usize,
    /// States reachable from the entry (forward pass).
    pub reachable_states: usize,
    /// States from which `Exit` is reachable (backward pass).
    pub exit_reaching_states: usize,
    /// Maximum proven stack depth in bytes; `None` when unbounded.
    pub max_stack_depth: Option<u64>,
    /// This function's classified write sites.
    pub writes: Vec<ClassifiedWrite>,
}

/// The full static-analysis report for one binary.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Per-function results, keyed by entry address.
    pub functions: BTreeMap<u64, FnAnalysis>,
    /// All diagnostics, sorted.
    pub diags: Vec<Diag>,
    /// Binary-wide write-classification totals (the Table-2 row).
    pub totals: WriteTotals,
}

impl AnalysisReport {
    /// Diagnostics of a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Diagnostics belonging to one rule.
    pub fn for_rule(&self, rule: Rule) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(move |d| d.rule == rule)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analysis: {} function(s), {} diagnostic(s) ({} error(s), {} warning(s))",
            self.functions.len(),
            self.diags.len(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
        )?;
        let t = &self.totals;
        writeln!(
            f,
            "writes: {} total — {} stack-local, {} global, {} heap-symbol, {} unresolved \
             ({:.1}% resolved)",
            t.total(),
            t.stack_local,
            t.global,
            t.heap_symbol,
            t.unresolved,
            t.resolved_fraction() * 100.0,
        )?;
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Run every analysis over every function of a lifted binary.
///
/// Works on partial results too: rejected functions keep their partial
/// graphs, and the lints inspect whatever invariants were established
/// before the reject.
pub fn analyze(binary: &Binary, lift: &LiftResult, cfg: &AnalysisConfig) -> AnalysisReport {
    let layout =
        std::sync::Arc::new(Layout { text: binary.text_ranges(), data: binary.data_ranges() });
    let mut report = AnalysisReport::default();

    let mut writes_by_fn: BTreeMap<u64, Vec<ClassifiedWrite>> = BTreeMap::new();
    for w in classify_writes(binary, lift) {
        report.totals.add(&w);
        writes_by_fn.entry(w.function).or_default().push(w);
    }

    for (&entry, f) in &lift.functions {
        let g = &f.graph;
        report.diags.extend(lint_callee_saved(binary, entry, g));
        report.diags.extend(lint_ret_slot(binary, entry, g, &layout));
        let depth = lint_stack_depth(entry, g, cfg.stack_depth_limit, cfg.max_iterations);
        report.diags.extend(depth.diags);
        let reach = lint_reachability(entry, g, cfg.max_iterations);
        report.diags.extend(reach.diags);
        // Value-set recovery over still-unresolved indirect jumps:
        // whatever it cannot bound is statically uncovered control
        // flow, surfaced as `vsa-unbounded-indirect`.
        let rec = crate::jumptable::recover_jump_tables(
            binary,
            entry,
            g,
            &f.annotations,
            cfg.max_iterations,
            cfg.max_table_entries,
        );
        report.diags.extend(rec.diags(entry));
        report.functions.insert(
            entry,
            FnAnalysis {
                entry,
                states: g.state_count(),
                reachable_states: reach.reachable_states,
                exit_reaching_states: reach.exit_reaching_states,
                max_stack_depth: depth.max_depth,
                writes: writes_by_fn.remove(&entry).unwrap_or_default(),
            },
        );
    }
    report.diags.sort();
    report
}
