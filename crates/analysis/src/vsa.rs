//! Strided-interval value-set analysis (VSA) over Hoare-Graph edges.
//!
//! The fact at a vertex is an abstract environment mapping registers
//! and `rsp0`-relative stack slots to [`StridedInterval`]s — the
//! classic `stride[lo, hi]` domain of Balakrishnan & Reps, restricted
//! to unsigned 64-bit values. The pass runs forward on the existing
//! worklist [`fixpoint`](crate::engine::fixpoint) engine and exists
//! for one purpose: to bound the index register of an indirect
//! `jmp [table + idx*scale]` so the jump-table recovery in
//! [`jumptable`](crate::jumptable) can read the concrete targets out
//! of the ELF image.
//!
//! # Termination
//!
//! Widening is built into the join: every constructed `Range` holds at
//! most [`MAX_CARDINALITY`] concrete values, and a join whose minimal
//! strided superset would exceed that collapses to `Top`. A strict
//! lattice increase therefore strictly increases the (finite) number
//! of concrete values an interval denotes, so any ascending chain has
//! at most `MAX_CARDINALITY + 2` strict steps: the pass terminates
//! without a separate widening operator, and the join laws
//! (commutativity, associativity, idempotence) hold *exactly* — the
//! proptest suite asserts them with `==`, not approximately.
//!
//! # Soundness notes
//!
//! Register views narrower than 64 bits are the subtle part. A value
//! tracked for `rax` only describes the `eax` view when it fits in 32
//! bits; conversely a 32-bit write zero-extends, so its result is kept
//! only when it provably fits. `cmp`/`jcc` refinement uses only the
//! *unsigned* conditions, and only when the compared view determines
//! the full register (64-bit compares always; 32-bit compares only if
//! the tracked value already fits in 32 bits). Everything the
//! transfer does not understand goes to `Top`, never to a guess.

use crate::engine::{Direction, Lattice, Transfer};
use hgl_core::graph::{Edge, HoareGraph, VertexId};
use hgl_core::tau::writes_first_operand;
use hgl_expr::Linear;
use hgl_solver::rsp0_displacement;
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, Width};
use std::collections::BTreeMap;
use std::fmt;

/// The widening cap: the maximum number of concrete values a `Range`
/// may denote. Joins that would exceed it collapse to `Top`, which
/// bounds every ascending chain (see the module docs).
pub const MAX_CARDINALITY: u64 = 4096;

/// A strided interval `stride[lo, hi]` of unsigned 64-bit values:
/// `{ lo, lo + stride, …, hi }`.
///
/// Canonical form: `lo ≤ hi`; `lo == hi` implies `stride == 0`;
/// `lo < hi` implies `stride > 0` and `stride | (hi - lo)`; the
/// element count never exceeds [`MAX_CARDINALITY`]. All constructors
/// enforce this, collapsing to `Top` past the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StridedInterval {
    /// The empty set (unreached).
    Bottom,
    /// `{ lo + k·stride | 0 ≤ k ≤ (hi-lo)/stride }`.
    Range {
        /// Distance between consecutive elements (0 for a singleton).
        stride: u64,
        /// Smallest element.
        lo: u64,
        /// Largest element.
        hi: u64,
    },
    /// Any value.
    Top,
}

use StridedInterval::{Bottom, Range, Top};

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl StridedInterval {
    /// The canonical strided interval over `[lo, hi]` with the given
    /// stride hint; collapses to `Top` past [`MAX_CARDINALITY`].
    fn mk(stride: u64, lo: u64, hi: u64) -> StridedInterval {
        if lo > hi {
            return Bottom;
        }
        if lo == hi {
            return Range { stride: 0, lo, hi };
        }
        let s = if stride == 0 { hi - lo } else { stride };
        let hi = lo + ((hi - lo) / s) * s;
        if lo == hi {
            return Range { stride: 0, lo, hi };
        }
        if (hi - lo) / s + 1 > MAX_CARDINALITY {
            return Top;
        }
        Range { stride: s, lo, hi }
    }

    /// The singleton `{v}`.
    pub fn point(v: u64) -> StridedInterval {
        Range { stride: 0, lo: v, hi: v }
    }

    /// The dense interval `[lo, hi]` (stride 1), `Top` past the cap.
    pub fn range(lo: u64, hi: u64) -> StridedInterval {
        StridedInterval::mk(1, lo, hi)
    }

    /// The canonicalised strided interval `stride[lo, hi]` (`Bottom`
    /// when empty, `Top` past the cardinality cap).
    pub fn strided(stride: u64, lo: u64, hi: u64) -> StridedInterval {
        StridedInterval::mk(stride, lo, hi)
    }

    /// Number of concrete values (`None` for `Top`).
    pub fn count(&self) -> Option<u64> {
        match *self {
            Bottom => Some(0),
            Range { stride: 0, .. } => Some(1),
            Range { stride, lo, hi } => Some((hi - lo) / stride + 1),
            Top => None,
        }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: u64) -> bool {
        match *self {
            Bottom => false,
            Top => true,
            Range { stride: 0, lo, .. } => v == lo,
            Range { stride, lo, hi } => lo <= v && v <= hi && (v - lo).is_multiple_of(stride),
        }
    }

    /// Lattice order: `self ⊑ other` iff `self ⊔ other == other`.
    pub fn leq(&self, other: &StridedInterval) -> bool {
        self.join(other) == *other
    }

    /// All concrete values, when there are at most `cap` of them.
    pub fn enumerate(&self, cap: u64) -> Option<Vec<u64>> {
        match *self {
            Bottom => Some(Vec::new()),
            Top => None,
            Range { stride, lo, hi } => {
                let n = self.count().expect("range count");
                if n > cap {
                    return None;
                }
                let mut out = Vec::with_capacity(n as usize);
                let mut v = lo;
                loop {
                    out.push(v);
                    if v == hi {
                        break;
                    }
                    v += stride.max(1);
                }
                Some(out)
            }
        }
    }

    /// Abstract addition (`Top` on 64-bit overflow — the concrete op
    /// would wrap, which an interval cannot express).
    pub fn add(&self, other: &StridedInterval) -> StridedInterval {
        match (*self, *other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Top, _) | (_, Top) => Top,
            (Range { stride: s1, lo: l1, hi: h1 }, Range { stride: s2, lo: l2, hi: h2 }) => {
                match (l1.checked_add(l2), h1.checked_add(h2)) {
                    (Some(lo), Some(hi)) => StridedInterval::mk(gcd(s1, s2), lo, hi),
                    _ => Top,
                }
            }
        }
    }

    /// Abstract `self + k` for signed `k` (`Top` on u64 overflow or
    /// underflow).
    pub fn add_signed(&self, k: i64) -> StridedInterval {
        if k >= 0 {
            return self.add(&StridedInterval::point(k as u64));
        }
        let d = k.unsigned_abs();
        match *self {
            Range { stride, lo, hi } => match (lo.checked_sub(d), hi.checked_sub(d)) {
                (Some(lo), Some(hi)) => Range { stride, lo, hi },
                _ => Top,
            },
            x => x,
        }
    }

    /// Abstract multiplication by a constant (`Top` on overflow).
    pub fn mul_const(&self, k: u64) -> StridedInterval {
        if k == 0 {
            return match self {
                Bottom => Bottom,
                _ => StridedInterval::point(0),
            };
        }
        match *self {
            Range { stride, lo, hi } => {
                match (stride.checked_mul(k), lo.checked_mul(k), hi.checked_mul(k)) {
                    (Some(s), Some(lo), Some(hi)) => StridedInterval::mk(s, lo, hi),
                    _ => Top,
                }
            }
            x => x,
        }
    }

    /// Abstract `self << k` (`Top` when any value could shift out).
    pub fn shl_const(&self, k: u64) -> StridedInterval {
        if k >= 64 {
            return match self {
                Bottom => Bottom,
                _ => Top,
            };
        }
        self.mul_const(1u64 << k)
    }

    /// Abstract `self & mask`. Exact when the interval already fits
    /// under an all-ones mask; otherwise the sound `[0, mask]`
    /// envelope — which bounds even `Top` (this is what recovers
    /// `and eax, n-1`-masked jump-table indices).
    pub fn and_mask(&self, mask: u64) -> StridedInterval {
        if let Range { hi, .. } = *self {
            if hi <= mask && (mask == u64::MAX || (mask + 1).is_power_of_two()) {
                return *self;
            }
        }
        match self {
            Bottom => Bottom,
            _ => StridedInterval::range(0, mask),
        }
    }

    /// Refine to `[min, max]` (either bound optional): the abstract
    /// meet with a dense interval, used for `cmp`/`jcc` refinement.
    /// Bounds are aligned onto the stride grid; an empty result is
    /// `Bottom`.
    pub fn clamp(&self, min: Option<u64>, max: Option<u64>) -> StridedInterval {
        match *self {
            Bottom => Bottom,
            // The domain is unsigned, so a missing lower bound is 0;
            // a missing upper bound leaves Top unbounded.
            Top => match max {
                Some(hi) => StridedInterval::range(min.unwrap_or(0), hi),
                None => Top,
            },
            Range { stride, lo, hi } => {
                let mut nlo = lo;
                let mut nhi = hi;
                if let Some(mn) = min {
                    if mn > nlo {
                        if stride == 0 {
                            return Bottom;
                        }
                        let steps = (mn - lo).div_ceil(stride);
                        match steps.checked_mul(stride).and_then(|d| lo.checked_add(d)) {
                            Some(v) => nlo = v,
                            None => return Bottom,
                        }
                    }
                }
                if let Some(mx) = max {
                    if mx < nhi {
                        if mx < lo {
                            return Bottom;
                        }
                        if stride == 0 {
                            return Bottom;
                        }
                        nhi = lo + ((mx - lo) / stride) * stride;
                    }
                }
                if nlo > nhi {
                    Bottom
                } else {
                    StridedInterval::mk(stride, nlo, nhi)
                }
            }
        }
    }
}

impl Lattice for StridedInterval {
    fn bottom() -> StridedInterval {
        Bottom
    }

    fn join(&self, other: &StridedInterval) -> StridedInterval {
        match (*self, *other) {
            (Bottom, x) | (x, Bottom) => x,
            (Top, _) | (_, Top) => Top,
            (Range { stride: s1, lo: l1, hi: h1 }, Range { stride: s2, lo: l2, hi: h2 }) => {
                let g = gcd(gcd(s1, s2), l1.abs_diff(l2));
                StridedInterval::mk(g, l1.min(l2), h1.max(h2))
            }
        }
    }
}

impl fmt::Display for StridedInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bottom => write!(f, "⊥"),
            Top => write!(f, "⊤"),
            Range { stride: 0, lo, .. } => write!(f, "{{{lo:#x}}}"),
            Range { stride, lo, hi } => write!(f, "{stride}[{lo:#x}, {hi:#x}]"),
        }
    }
}

/// The System-V caller-saved registers a call may clobber.
const CALL_CLOBBERED: &[Reg] = &[
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

/// The abstract environment at a program point: register and stack
/// slot values plus the pending `cmp reg, imm` (for `jcc` refinement).
///
/// A register or slot absent from the map is `Top`; `reachable: false`
/// is the bottom environment (no path reaches here yet).
#[derive(Debug, Clone, PartialEq)]
pub struct VsaEnv {
    /// False for the bottom environment.
    pub reachable: bool,
    /// Register values (absent = `Top`; never stores `Top`/`Bottom`).
    pub regs: BTreeMap<Reg, StridedInterval>,
    /// 8-byte stack slots keyed by their `rsp0` displacement.
    pub slots: BTreeMap<i64, StridedInterval>,
    /// The live `cmp reg, imm` fact: register, width-masked immediate,
    /// and compare width. Cleared by any flag-writing instruction and
    /// by any write to the compared register (the fact describes the
    /// value at the `cmp`, not the current one).
    pub last_cmp: Option<(Reg, u64, Width)>,
}

impl VsaEnv {
    /// The environment at a function entry: reachable, everything
    /// unknown.
    pub fn entry() -> VsaEnv {
        VsaEnv { reachable: true, ..VsaEnv::bottom() }
    }

    /// The abstract value of a full 64-bit register.
    pub fn reg(&self, r: Reg) -> StridedInterval {
        if !self.reachable {
            return Bottom;
        }
        self.regs.get(&r).copied().unwrap_or(Top)
    }

    /// The value of a register *view*: the tracked 64-bit value when
    /// it provably fits the view, else `Top`.
    fn read_view(&self, rr: RegRef) -> StridedInterval {
        if rr.high8 {
            return Top;
        }
        let iv = self.reg(rr.reg);
        if rr.width == Width::B8 {
            return iv;
        }
        match iv {
            Range { hi, .. } if hi <= rr.width.mask() => iv,
            Bottom => Bottom,
            _ => Top,
        }
    }

    /// Forget the pending compare fact when register `r` is written:
    /// the fact describes the value `r` held at the `cmp`, and a
    /// refinement derived from it after an overwrite would clamp the
    /// *new* value with the *old* comparison — unsoundly (e.g.
    /// `cmp rax, 5; mov rax, 100; jbe L` concretely reaches `L` with
    /// `rax == 100`).
    fn invalidate_cmp(&mut self, r: Reg) {
        if matches!(self.last_cmp, Some((c, _, _)) if c == r) {
            self.last_cmp = None;
        }
    }

    /// Write a register view. 64-bit writes set; 32-bit writes
    /// zero-extend (kept only when the value provably fits); narrower
    /// views preserve unknown upper bits, so the register is dropped.
    /// Any write invalidates a compare fact about the same register.
    fn write_view(&mut self, rr: RegRef, val: StridedInterval) {
        self.invalidate_cmp(rr.reg);
        let keep = match (rr.high8, rr.width) {
            (false, Width::B8) => matches!(val, Range { .. }),
            (false, Width::B4) => matches!(val, Range { hi, .. } if hi <= Width::B4.mask()),
            _ => false,
        };
        if keep {
            self.regs.insert(rr.reg, val);
        } else {
            self.regs.remove(&rr.reg);
        }
    }

    fn set_slot(&mut self, key: i64, val: StridedInterval) {
        if matches!(val, Range { .. }) {
            self.slots.insert(key, val);
        } else {
            self.slots.remove(&key);
        }
    }

    /// Drop every tracked slot whose 8-byte region overlaps a write of
    /// `size` bytes at displacement `key`.
    fn clobber_slots_overlapping(&mut self, key: i64, size: u64) {
        let lo = key.saturating_sub(7);
        let hi = key.saturating_add(size as i64 - 1);
        let stale: Vec<i64> =
            self.slots.range(lo..=hi).map(|(&k, _)| k).collect();
        for k in stale {
            self.slots.remove(&k);
        }
    }
}

impl Lattice for VsaEnv {
    fn bottom() -> VsaEnv {
        VsaEnv {
            reachable: false,
            regs: BTreeMap::new(),
            slots: BTreeMap::new(),
            last_cmp: None,
        }
    }

    fn join(&self, other: &VsaEnv) -> VsaEnv {
        if !self.reachable {
            return other.clone();
        }
        if !other.reachable {
            return self.clone();
        }
        let mut regs = BTreeMap::new();
        for (&r, a) in &self.regs {
            if let Some(b) = other.regs.get(&r) {
                let j = a.join(b);
                if matches!(j, Range { .. }) {
                    regs.insert(r, j);
                }
            }
        }
        let mut slots = BTreeMap::new();
        for (&k, a) in &self.slots {
            if let Some(b) = other.slots.get(&k) {
                let j = a.join(b);
                if matches!(j, Range { .. }) {
                    slots.insert(k, j);
                }
            }
        }
        let last_cmp = if self.last_cmp == other.last_cmp { self.last_cmp } else { None };
        VsaEnv { reachable: true, regs, slots, last_cmp }
    }
}

/// Forward value-set analysis over one function's Hoare Graph.
///
/// The fact at a vertex describes the machine state *before* the
/// instruction at that vertex executes. Stack slots are resolved via
/// the source vertex's own invariant (`rsp = rsp0 + k`), the same
/// mechanism [`StackDepth`](crate::passes::StackDepth) uses.
pub struct VsaPass<'g> {
    /// The graph being analysed (for `rsp` invariants).
    pub graph: &'g HoareGraph,
    /// The function entry address.
    pub entry: u64,
}

impl VsaPass<'_> {
    /// The `rsp0` displacement of `rsp` at a vertex, when its
    /// invariant pins it.
    fn rsp_disp(&self, id: VertexId) -> Option<i64> {
        let v = self.graph.vertices.get(&id)?;
        rsp0_displacement(&Linear::of_expr(&v.state.pred.reg(Reg::Rsp)))
    }

    /// The `rsp0` displacement a memory operand addresses, when it is
    /// a statically resolved `[rsp + disp]` slot.
    fn slot_key(m: &MemOperand, rsp_disp: Option<i64>) -> Option<i64> {
        if m.base == Some(Reg::Rsp) && m.index.is_none() && !m.rip_relative {
            return rsp_disp?.checked_add(m.disp);
        }
        None
    }

    /// The abstract value of a source operand read at `width`.
    fn value_of(env: &VsaEnv, op: &Operand, width: Width, rsp_disp: Option<i64>) -> StridedInterval {
        match op {
            Operand::Imm(k) => StridedInterval::point((*k as u64) & width.mask()),
            Operand::Reg(rr) => env.read_view(*rr),
            Operand::Mem(m) => {
                if m.size == Width::B8 {
                    if let Some(key) = VsaPass::slot_key(m, rsp_disp) {
                        return env.slots.get(&key).copied().unwrap_or(Top);
                    }
                }
                Top
            }
        }
    }

    /// The abstract effective address of a memory operand.
    fn eff_addr(env: &VsaEnv, m: &MemOperand, instr: &Instr) -> StridedInterval {
        if m.rip_relative {
            return StridedInterval::point(instr.next_addr().wrapping_add(m.disp as u64));
        }
        let mut v = match m.base {
            None => StridedInterval::point(0),
            Some(b) => env.reg(b),
        };
        if let Some(ix) = m.index {
            v = v.add(&env.reg(ix).mul_const(m.scale as u64));
        }
        v.add_signed(m.disp)
    }

    /// Abstract store through a memory operand. Every resolved write
    /// first clobbers the tracked slots its byte range overlaps (a
    /// qword store at `+0` kills a stale value tracked at `+4`); only
    /// an aligned 8-byte store then records the new value.
    fn write_mem(env: &mut VsaEnv, m: &MemOperand, rsp_disp: Option<i64>, val: StridedInterval) {
        match VsaPass::slot_key(m, rsp_disp) {
            Some(key) if m.size == Width::B8 => {
                env.clobber_slots_overlapping(key, 8);
                env.set_slot(key, val);
            }
            Some(key) => {
                env.clobber_slots_overlapping(key, m.size.bytes() as u64);
            }
            // A write through an unresolved address may hit any slot.
            None => env.slots.clear(),
        }
    }

    /// Refine the compared register across a `jcc` edge using the live
    /// `cmp reg, imm` fact. Unsigned conditions only; a 32-bit compare
    /// refines the full register only when the tracked value already
    /// fits in 32 bits (otherwise the 32-bit view does not determine
    /// the 64-bit value). An infeasible outcome yields the bottom
    /// environment.
    fn refine_jcc(env: &mut VsaEnv, cond: Cond, edge: &Edge) -> bool {
        let Some((r, k, w)) = env.last_cmp else { return true };
        // A `jcc` whose taken target *is* its fallthrough (`jcc +0`)
        // has a single successor reached under both outcomes: there is
        // no branch direction to refine on, and classifying the edge
        // as not-taken would wrongly exclude condition-holds states.
        if let Some(Operand::Imm(t)) = edge.instr.operands.first() {
            if *t as u64 == edge.instr.next_addr() {
                return true;
            }
        }
        let taken = match edge.to {
            VertexId::At(a, _) => a != edge.instr.next_addr(),
            VertexId::Exit => return true,
        };
        let c = if taken { cond } else { cond.negate() };
        let cur = env.reg(r);
        let view_determines = match w {
            Width::B8 => true,
            Width::B4 => matches!(cur, Range { hi, .. } if hi <= Width::B4.mask()),
            _ => false,
        };
        if !view_determines {
            return true;
        }
        let refined = match c {
            Cond::B => match k.checked_sub(1) {
                Some(m) => cur.clamp(None, Some(m)),
                None => Bottom,
            },
            Cond::Be => cur.clamp(None, Some(k)),
            Cond::Ae => cur.clamp(Some(k), None),
            Cond::A => {
                if k >= w.mask() {
                    Bottom
                } else {
                    cur.clamp(Some(k + 1), None)
                }
            }
            Cond::E => {
                if cur.contains(k) {
                    StridedInterval::point(k)
                } else {
                    Bottom
                }
            }
            _ => return true,
        };
        if refined == Bottom {
            return false;
        }
        if matches!(refined, Range { .. }) {
            env.regs.insert(r, refined);
        }
        true
    }

    /// One instruction's abstract step.
    fn step(&self, edge: &Edge, fact: &VsaEnv) -> VsaEnv {
        let mut env = fact.clone();
        let instr = &edge.instr;
        let rsp_disp = self.rsp_disp(edge.from);
        let dst = instr.operands.first().copied();
        let src = instr.operands.get(1).copied();

        match instr.mnemonic {
            Mnemonic::Mov | Mnemonic::Movabs => match (dst, src) {
                (Some(Operand::Reg(rr)), Some(s)) => {
                    let v = VsaPass::value_of(&env, &s, rr.width, rsp_disp);
                    env.write_view(rr, v);
                }
                (Some(Operand::Mem(m)), Some(s)) => {
                    let v = VsaPass::value_of(&env, &s, m.size, rsp_disp);
                    VsaPass::write_mem(&mut env, &m, rsp_disp, v);
                }
                _ => {}
            },
            Mnemonic::Movzx => {
                if let (Some(Operand::Reg(rr)), Some(s)) = (dst, src) {
                    let srcw = s.width().unwrap_or(Width::B1);
                    let v = match VsaPass::value_of(&env, &s, srcw, rsp_disp) {
                        Top => StridedInterval::range(0, srcw.mask()),
                        x => x,
                    };
                    env.write_view(rr, v);
                }
            }
            Mnemonic::Movsx | Mnemonic::Movsxd => {
                if let (Some(Operand::Reg(rr)), Some(s)) = (dst, src) {
                    let srcw = s.width().unwrap_or(Width::B1);
                    // Sign extension is the identity only when the
                    // sign bit is provably clear.
                    let v = match VsaPass::value_of(&env, &s, srcw, rsp_disp) {
                        Range { stride, lo, hi } if hi <= srcw.mask() >> 1 => {
                            Range { stride, lo, hi }
                        }
                        Bottom => Bottom,
                        _ => Top,
                    };
                    env.write_view(rr, v);
                }
            }
            Mnemonic::Lea => {
                if let (Some(Operand::Reg(rr)), Some(Operand::Mem(m))) = (dst, src) {
                    let v = VsaPass::eff_addr(&env, &m, instr);
                    env.write_view(rr, v);
                }
            }
            Mnemonic::Add | Mnemonic::Sub => {
                if let (Some(Operand::Reg(rr)), Some(s)) = (dst, src) {
                    let a = env.read_view(rr);
                    let b = VsaPass::value_of(&env, &s, rr.width, rsp_disp);
                    let v = if instr.mnemonic == Mnemonic::Add {
                        a.add(&b)
                    } else {
                        match b {
                            Range { stride: 0, lo, .. } if lo <= i64::MAX as u64 => {
                                a.add_signed(-(lo as i64))
                            }
                            Bottom => Bottom,
                            _ => Top,
                        }
                    };
                    env.write_view(rr, v);
                } else if let Some(Operand::Mem(m)) = dst {
                    VsaPass::write_mem(&mut env, &m, rsp_disp, Top);
                }
                env.last_cmp = None;
            }
            Mnemonic::And => {
                if let (Some(Operand::Reg(rr)), Some(Operand::Imm(k))) = (dst, src) {
                    if k >= 0 {
                        let v = env.read_view(rr).and_mask(k as u64);
                        env.write_view(rr, v);
                    } else {
                        env.write_view(rr, Top);
                    }
                } else if let Some(Operand::Reg(rr)) = dst {
                    env.write_view(rr, Top);
                } else if let Some(Operand::Mem(m)) = dst {
                    VsaPass::write_mem(&mut env, &m, rsp_disp, Top);
                }
                env.last_cmp = None;
            }
            Mnemonic::Xor => {
                match (dst, src) {
                    (Some(Operand::Reg(a)), Some(Operand::Reg(b)))
                        if a.reg == b.reg && a.width == b.width && !a.high8 && !b.high8 =>
                    {
                        env.write_view(
                            RegRef::new(a.reg, Width::B8),
                            StridedInterval::point(0),
                        );
                    }
                    (Some(Operand::Reg(rr)), _) => env.write_view(rr, Top),
                    (Some(Operand::Mem(m)), _) => VsaPass::write_mem(&mut env, &m, rsp_disp, Top),
                    _ => {}
                }
                env.last_cmp = None;
            }
            Mnemonic::Shl => {
                if let (Some(Operand::Reg(rr)), Some(Operand::Imm(k))) = (dst, src) {
                    let v = env.read_view(rr).shl_const((k as u64) & 0x3f);
                    env.write_view(rr, v);
                } else if let Some(Operand::Reg(rr)) = dst {
                    env.write_view(rr, Top);
                }
                env.last_cmp = None;
            }
            Mnemonic::Cmp => {
                env.last_cmp = match (dst, src) {
                    (Some(Operand::Reg(rr)), Some(Operand::Imm(k))) if !rr.high8 => {
                        Some((rr.reg, (k as u64) & rr.width.mask(), rr.width))
                    }
                    _ => None,
                };
            }
            Mnemonic::Jcc(c) => {
                if !VsaPass::refine_jcc(&mut env, c, edge) {
                    return VsaEnv::bottom();
                }
            }
            Mnemonic::Jmp | Mnemonic::Nop | Mnemonic::Endbr64 | Mnemonic::Ret => {}
            Mnemonic::Push => {
                // Push moves rsp, so a pending `cmp rsp, imm` is stale.
                env.invalidate_cmp(Reg::Rsp);
                let mut stored = false;
                if let (Some(s), Some(d)) = (dst, rsp_disp) {
                    let v = VsaPass::value_of(&env, &s, Width::B8, rsp_disp);
                    if let Some(key) = d.checked_sub(8) {
                        env.clobber_slots_overlapping(key, 8);
                        env.set_slot(key, v);
                        stored = true;
                    }
                }
                if !stored {
                    env.slots.clear();
                }
            }
            Mnemonic::Pop => {
                env.invalidate_cmp(Reg::Rsp);
                match dst {
                    Some(Operand::Reg(rr)) => {
                        let v = match rsp_disp {
                            Some(d) => env.slots.get(&d).copied().unwrap_or(Top),
                            None => Top,
                        };
                        env.write_view(rr, v);
                    }
                    Some(Operand::Mem(m)) => VsaPass::write_mem(&mut env, &m, rsp_disp, Top),
                    _ => {}
                }
            }
            Mnemonic::Call => {
                for &r in CALL_CLOBBERED {
                    env.regs.remove(&r);
                }
                env.slots.clear();
                env.last_cmp = None;
            }
            Mnemonic::Leave => {
                env.invalidate_cmp(Reg::Rbp);
                env.invalidate_cmp(Reg::Rsp);
                env.regs.remove(&Reg::Rbp);
                env.slots.clear();
            }
            m => {
                // Conservative default: kill whatever the instruction
                // writes and forget the compare fact.
                match dst {
                    Some(Operand::Reg(rr)) if writes_first_operand(m) => env.write_view(rr, Top),
                    Some(Operand::Mem(mo)) if writes_first_operand(m) => {
                        VsaPass::write_mem(&mut env, &mo, rsp_disp, Top);
                    }
                    _ => {}
                }
                if m.is_control_flow() {
                    // jrcxz/loop read registers but write none.
                } else {
                    env.slots.clear();
                    env.regs.clear();
                }
                env.last_cmp = None;
            }
        }
        env
    }
}

impl Transfer for VsaPass<'_> {
    type Fact = VsaEnv;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, id: VertexId) -> Option<VsaEnv> {
        matches!(id, VertexId::At(a, _) if a == self.entry).then(VsaEnv::entry)
    }

    fn transfer(&self, edge: &Edge, fact: &VsaEnv) -> VsaEnv {
        if !fact.reachable {
            return VsaEnv::bottom();
        }
        self.step(edge, fact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::fixpoint;
    use hgl_core::pred::SymState;

    fn si(stride: u64, lo: u64, hi: u64) -> StridedInterval {
        StridedInterval::mk(stride, lo, hi)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(si(4, 3, 17), Range { stride: 4, lo: 3, hi: 15 });
        assert_eq!(si(0, 5, 9), Range { stride: 4, lo: 5, hi: 9 });
        assert_eq!(si(1, 9, 5), Bottom);
        assert_eq!(si(1, 0, MAX_CARDINALITY), Top);
        assert_eq!(si(1, 0, MAX_CARDINALITY - 1).count(), Some(MAX_CARDINALITY));
    }

    #[test]
    fn join_is_minimal_strided_superset() {
        let a = StridedInterval::point(3);
        let b = StridedInterval::point(11);
        assert_eq!(a.join(&b), Range { stride: 8, lo: 3, hi: 11 });
        let c = si(4, 0, 16);
        let d = si(6, 2, 14);
        let j = c.join(&d);
        assert_eq!(j, Range { stride: 2, lo: 0, hi: 16 });
        for v in [0, 4, 8, 12, 16, 2, 14] {
            assert!(j.contains(v));
        }
        assert!(c.leq(&j) && d.leq(&j));
    }

    #[test]
    fn join_caps_to_top() {
        let a = StridedInterval::point(0);
        let b = StridedInterval::point(u64::MAX);
        // Minimal superset is {0, u64::MAX} — two points, fine.
        assert_eq!(a.join(&b).count(), Some(2));
        let c = si(1, 0, 100);
        let d = si(1, 1 << 20, (1 << 20) + 100);
        assert_eq!(c.join(&d), Top);
    }

    #[test]
    fn arithmetic() {
        let a = si(4, 0, 12);
        assert_eq!(a.add(&StridedInterval::point(5)), si(4, 5, 17));
        // Underflow below zero is Top (the concrete op would wrap).
        assert_eq!(a.add_signed(-4), Top);
        assert_eq!(si(4, 8, 16).add_signed(-8), si(4, 0, 8));
        assert_eq!(si(0, 4, 4).add_signed(-8), Top);
        assert_eq!(a.mul_const(8), si(32, 0, 96));
        assert_eq!(si(1, 0, 3).shl_const(3), si(8, 0, 24));
        assert_eq!(StridedInterval::point(u64::MAX).add(&StridedInterval::point(1)), Top);
    }

    #[test]
    fn and_mask_bounds_top() {
        assert_eq!(Top.and_mask(7), si(1, 0, 7));
        assert_eq!(si(1, 0, 5).and_mask(7), si(1, 0, 5));
        // Non-power-of-two mask cannot keep the interval exact.
        assert_eq!(si(1, 0, 5).and_mask(6), si(1, 0, 6));
        assert_eq!(Bottom.and_mask(7), Bottom);
    }

    #[test]
    fn clamp_refines() {
        let a = si(4, 3, 19);
        assert_eq!(a.clamp(Some(5), None), si(4, 7, 19));
        assert_eq!(a.clamp(None, Some(14)), si(4, 3, 11));
        // [8, 10] contains no grid point of 4[3, 19]: empty.
        assert_eq!(a.clamp(Some(8), Some(10)), Bottom);
        assert_eq!(Top.clamp(Some(0), Some(7)), si(1, 0, 7));
        // Unsigned domain: a missing lower bound is implicitly 0.
        assert_eq!(Top.clamp(None, Some(5)), si(1, 0, 5));
        assert_eq!(Top.clamp(Some(3), None), Top);
        assert_eq!(StridedInterval::point(5).clamp(Some(6), None), Bottom);
    }

    #[test]
    fn enumerate_bounded() {
        assert_eq!(si(4, 0, 12).enumerate(16), Some(vec![0, 4, 8, 12]));
        assert_eq!(si(4, 0, 12).enumerate(2), None);
        assert_eq!(Top.enumerate(1 << 20), None);
        assert_eq!(Bottom.enumerate(4), Some(vec![]));
    }

    fn instr_at(m: Mnemonic, ops: Vec<Operand>, w: Width, addr: u64) -> Instr {
        let mut i = Instr::new(m, ops, w);
        i.addr = addr;
        i.len = 2;
        i
    }

    fn reg32(r: Reg) -> Operand {
        Operand::Reg(RegRef::new(r, Width::B4))
    }

    /// `mov eax, edi; and eax, 7; jmp [table + rax*8]` — the masked
    /// jump-table shape: VSA must bound `rax` to `1[0, 7]` at the jump
    /// even though `rdi` is unknown.
    #[test]
    fn masked_index_is_bounded_at_jump() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x12, 0x14] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        g.add_edge(
            VertexId::At(0x10, 0),
            VertexId::At(0x12, 0),
            instr_at(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4, 0x10),
        );
        g.add_edge(
            VertexId::At(0x12, 0),
            VertexId::At(0x14, 0),
            instr_at(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(7)], Width::B4, 0x12),
        );
        let sol = fixpoint(&g, &VsaPass { graph: &g, entry: 0x10 }, 10_000);
        assert!(sol.converged);
        let env = sol.fact(VertexId::At(0x14, 0)).unwrap();
        assert_eq!(env.reg(Reg::Rax), si(1, 0, 7));
        assert_eq!(env.reg(Reg::Rdi), Top);
    }

    /// `cmp rax, 5; jbe L` refines `rax` on the taken edge and
    /// `ja`-complements it on the fallthrough.
    #[test]
    fn cmp_jcc_refinement() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x14, 0x16, 0x40] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        // 0x10: mov rax, 20 ; then clamp comes only from the branch.
        g.add_edge(
            VertexId::At(0x10, 0),
            VertexId::At(0x14, 0),
            instr_at(
                Mnemonic::Cmp,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(5)],
                Width::B8,
                0x10,
            ),
        );
        let jcc = instr_at(Mnemonic::Jcc(Cond::Be), vec![Operand::Imm(0x40)], Width::B8, 0x14);
        g.add_edge(VertexId::At(0x14, 0), VertexId::At(0x40, 0), jcc.clone());
        g.add_edge(VertexId::At(0x14, 0), VertexId::At(0x16, 0), jcc);
        let sol = fixpoint(&g, &VsaPass { graph: &g, entry: 0x10 }, 10_000);
        let taken = sol.fact(VertexId::At(0x40, 0)).unwrap();
        assert_eq!(taken.reg(Reg::Rax), si(1, 0, 5));
        // Fallthrough: rax > 5, unbounded above — Top from a Top start.
        let fall = sol.fact(VertexId::At(0x16, 0)).unwrap();
        assert_eq!(fall.reg(Reg::Rax), Top);
    }

    /// A 32-bit compare must NOT refine a register whose tracked value
    /// exceeds 32 bits: the `eax` view does not determine `rax`.
    #[test]
    fn narrow_cmp_does_not_refine_wide_value() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x14, 0x18, 0x40] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        g.add_edge(
            VertexId::At(0x10, 0),
            VertexId::At(0x14, 0),
            instr_at(
                Mnemonic::Movabs,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(0x1_0000_0005)],
                Width::B8,
                0x10,
            ),
        );
        g.add_edge(
            VertexId::At(0x14, 0),
            VertexId::At(0x18, 0),
            instr_at(Mnemonic::Cmp, vec![reg32(Reg::Rax), Operand::Imm(10)], Width::B4, 0x14),
        );
        let jcc = instr_at(Mnemonic::Jcc(Cond::Be), vec![Operand::Imm(0x40)], Width::B8, 0x18);
        g.add_edge(VertexId::At(0x18, 0), VertexId::At(0x40, 0), jcc);
        let sol = fixpoint(&g, &VsaPass { graph: &g, entry: 0x10 }, 10_000);
        let taken = sol.fact(VertexId::At(0x40, 0)).unwrap();
        // eax == 5 ≤ 10, so the branch is concretely taken with
        // rax == 0x1_0000_0005: refusing to clamp is what keeps the
        // analysis sound here.
        assert_eq!(taken.reg(Reg::Rax), StridedInterval::point(0x1_0000_0005));
    }

    /// `cmp rax, 5; mov rax, 100; jbe L`: the mov overwrites the
    /// compared register, so the branch must NOT clamp the new value
    /// with the old comparison — the taken edge is concretely reached
    /// with `rax == 100` and must stay reachable.
    #[test]
    fn overwriting_compared_register_invalidates_cmp_fact() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x12, 0x14, 0x16, 0x40] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        g.add_edge(
            VertexId::At(0x10, 0),
            VertexId::At(0x12, 0),
            instr_at(
                Mnemonic::Cmp,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(5)],
                Width::B8,
                0x10,
            ),
        );
        g.add_edge(
            VertexId::At(0x12, 0),
            VertexId::At(0x14, 0),
            instr_at(
                Mnemonic::Mov,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(100)],
                Width::B8,
                0x12,
            ),
        );
        let jcc = instr_at(Mnemonic::Jcc(Cond::Be), vec![Operand::Imm(0x40)], Width::B8, 0x14);
        g.add_edge(VertexId::At(0x14, 0), VertexId::At(0x40, 0), jcc.clone());
        g.add_edge(VertexId::At(0x14, 0), VertexId::At(0x16, 0), jcc);
        let sol = fixpoint(&g, &VsaPass { graph: &g, entry: 0x10 }, 10_000);
        assert!(sol.converged);
        // Both edges keep rax == 100; neither is marked unreachable.
        let taken = sol.fact(VertexId::At(0x40, 0)).unwrap();
        assert!(taken.reachable, "taken edge wrongly refined to bottom");
        assert_eq!(taken.reg(Reg::Rax), StridedInterval::point(100));
        let fall = sol.fact(VertexId::At(0x16, 0)).unwrap();
        assert!(fall.reachable);
        assert_eq!(fall.reg(Reg::Rax), StridedInterval::point(100));
    }

    /// An 8-byte store to a tracked slot must clobber every tracked
    /// slot whose region overlaps the written range, not just the
    /// exact key — a stale value at `+4` would otherwise survive a
    /// qword write at `+0`.
    #[test]
    fn qword_store_clobbers_overlapping_slots() {
        let mut env = VsaEnv::entry();
        env.slots.insert(0, StridedInterval::point(1));
        env.slots.insert(4, StridedInterval::point(2));
        env.slots.insert(-4, StridedInterval::point(3));
        env.slots.insert(8, StridedInterval::point(4));
        let m = MemOperand::base_disp(Reg::Rsp, 0, Width::B8);
        VsaPass::write_mem(&mut env, &m, Some(0), StridedInterval::point(9));
        // [0, 7] overlaps the regions of slots -4, 0 and 4 but not 8.
        assert_eq!(env.slots.get(&0), Some(&StridedInterval::point(9)));
        assert_eq!(env.slots.get(&4), None, "stale overlapping slot survived");
        assert_eq!(env.slots.get(&-4), None, "stale overlapping slot survived");
        assert_eq!(env.slots.get(&8), Some(&StridedInterval::point(4)));
    }

    /// `push` writes 8 bytes at `rsp0 + d - 8`: overlapping tracked
    /// slots must be clobbered exactly like an explicit qword store.
    #[test]
    fn push_clobbers_overlapping_slots() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        g.add_vertex(VertexId::At(0x10, 0), s.clone(), true);
        g.add_vertex(VertexId::At(0x12, 0), s, true);
        let push = instr_at(Mnemonic::Push, vec![Operand::Imm(7)], Width::B8, 0x10);
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x12, 0), push);
        let pass = VsaPass { graph: &g, entry: 0x10 };
        let mut env = VsaEnv::entry();
        // function_entry pins rsp = rsp0, so the push stores at -8;
        // a stale tracked value at -4 overlaps it.
        env.slots.insert(-4, StridedInterval::point(3));
        let out = pass.transfer(&g.edges[0], &env);
        assert_eq!(out.slots.get(&-8), Some(&StridedInterval::point(7)));
        assert_eq!(out.slots.get(&-4), None, "stale overlapping slot survived push");
    }

    /// A `jcc` whose taken target equals its fallthrough address has a
    /// single edge reached under both outcomes: refining it with the
    /// negated condition would wrongly drop condition-holds states.
    #[test]
    fn jcc_to_own_fallthrough_is_not_refined() {
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        for a in [0x10u64, 0x12, 0x14, 0x16] {
            g.add_vertex(VertexId::At(a, 0), s.clone(), true);
        }
        g.add_edge(
            VertexId::At(0x10, 0),
            VertexId::At(0x12, 0),
            instr_at(
                Mnemonic::Mov,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(3)],
                Width::B8,
                0x10,
            ),
        );
        g.add_edge(
            VertexId::At(0x12, 0),
            VertexId::At(0x14, 0),
            instr_at(
                Mnemonic::Cmp,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(5)],
                Width::B8,
                0x12,
            ),
        );
        // jcc at 0x14 with len 2: taken target 0x16 == next_addr.
        let jcc = instr_at(Mnemonic::Jcc(Cond::Be), vec![Operand::Imm(0x16)], Width::B8, 0x14);
        g.add_edge(VertexId::At(0x14, 0), VertexId::At(0x16, 0), jcc);
        let sol = fixpoint(&g, &VsaPass { graph: &g, entry: 0x10 }, 10_000);
        let after = sol.fact(VertexId::At(0x16, 0)).unwrap();
        // rax == 3 satisfies `be`, so treating the lone edge as
        // not-taken would have produced bottom here.
        assert!(after.reachable, "jcc+0 edge wrongly refined away");
        assert_eq!(after.reg(Reg::Rax), StridedInterval::point(3));
    }

    #[test]
    fn call_clobbers_volatile_state() {
        let mut env = VsaEnv::entry();
        env.regs.insert(Reg::Rax, StridedInterval::point(1));
        env.regs.insert(Reg::Rbx, StridedInterval::point(2));
        env.slots.insert(-8, StridedInterval::point(3));
        env.last_cmp = Some((Reg::Rax, 0, Width::B8));
        let mut g = HoareGraph::new();
        let s = SymState::function_entry(0x10);
        g.add_vertex(VertexId::At(0x10, 0), s.clone(), true);
        g.add_vertex(VertexId::At(0x15, 0), s, true);
        let call = instr_at(Mnemonic::Call, vec![Operand::Imm(0x100)], Width::B8, 0x10);
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x15, 0), call);
        let pass = VsaPass { graph: &g, entry: 0x10 };
        let out = pass.transfer(&g.edges[0], &env);
        assert_eq!(out.reg(Reg::Rax), Top);
        assert_eq!(out.reg(Reg::Rbx), StridedInterval::point(2));
        assert!(out.slots.is_empty());
        assert_eq!(out.last_cmp, None);
    }

    #[test]
    fn env_join_drops_disagreeing_keys() {
        let mut a = VsaEnv::entry();
        a.regs.insert(Reg::Rax, StridedInterval::point(1));
        a.regs.insert(Reg::Rbx, StridedInterval::point(7));
        let mut b = VsaEnv::entry();
        b.regs.insert(Reg::Rax, StridedInterval::point(3));
        let j = a.join(&b);
        assert_eq!(j.reg(Reg::Rax), si(2, 1, 3));
        // Rbx is Top in `b` (absent), so it is Top in the join.
        assert_eq!(j.reg(Reg::Rbx), Top);
        assert_eq!(VsaEnv::bottom().join(&a), a);
    }
}
