//! Write classification: every memory write in a lifted binary is
//! classified by the address space it provably lands in.
//!
//! This reproduces the paper's Table-2 precision metric: the fraction
//! of memory writes whose destination the lifter resolved to a
//! concrete region family (stack frame, global data, or a heap/pointer
//! symbol). Classification is purely static — it reads the invariant
//! at each Hoare-Graph vertex — and uses the *same* write-site
//! predicate as the step function `tau`
//! ([`hgl_core::tau::writes_first_operand`] and
//! [`hgl_core::tau::addr_expr`]), so a claim here talks about exactly
//! the writes the lifter reasoned about.

use hgl_core::graph::VertexId;
use hgl_core::lift::LiftResult;
use hgl_core::pred::Pred;
use hgl_core::tau::{addr_expr, writes_first_operand};
use hgl_elf::Binary;
use hgl_expr::{Atom, Linear, Sym};
use hgl_solver::{Ctx, Layout, Provenance, Region};
use hgl_x86::{decode, Instr, Mnemonic, Operand, Reg};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The address-space class of one memory write under one vertex
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WriteClass {
    /// The write lands in the frame of the function being analysed:
    /// its start displacement from `rsp0` lies in `[lo, hi]`
    /// (inclusive, bytes; negative = below the return address).
    StackLocal {
        /// Least displacement from `rsp0`.
        lo: i64,
        /// Greatest displacement from `rsp0`.
        hi: i64,
    },
    /// The write lands at a concrete address in `[lo, hi]` (inclusive)
    /// — global/data space.
    Global {
        /// Least concrete start address.
        lo: u64,
        /// Greatest concrete start address.
        hi: u64,
    },
    /// The write is rooted at a symbol (heap pointer or caller-supplied
    /// pointer) at an offset the invariant does not pin down to stack
    /// or global space.
    HeapSymbol {
        /// The root symbol.
        sym: Sym,
    },
    /// The invariant does not resolve the destination.
    Unresolved,
}

/// Signed hex rendering of a displacement: `+0x10` / `-0x10`.
fn disp(d: i64) -> String {
    if d < 0 {
        format!("-{:#x}", d.unsigned_abs())
    } else {
        format!("+{d:#x}")
    }
}

impl fmt::Display for WriteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteClass::StackLocal { lo, hi } if lo == hi => {
                write!(f, "stack[rsp0{}]", disp(*lo))
            }
            WriteClass::StackLocal { lo, hi } => {
                write!(f, "stack[rsp0{}..rsp0{}]", disp(*lo), disp(*hi))
            }
            WriteClass::Global { lo, hi } if lo == hi => write!(f, "global[{lo:#x}]"),
            WriteClass::Global { lo, hi } => write!(f, "global[{lo:#x}..{hi:#x}]"),
            WriteClass::HeapSymbol { sym } => write!(f, "symbol[{sym}]"),
            WriteClass::Unresolved => f.write_str("unresolved"),
        }
    }
}

impl WriteClass {
    /// The stable kebab-case family name used in reports and JSON.
    pub fn family(&self) -> &'static str {
        match self {
            WriteClass::StackLocal { .. } => "stack-local",
            WriteClass::Global { .. } => "global",
            WriteClass::HeapSymbol { .. } => "heap-symbol",
            WriteClass::Unresolved => "unresolved",
        }
    }
}

/// One write site: an instruction that writes memory, with the classes
/// claimed by every vertex invariant at its address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedWrite {
    /// Entry address of the function containing the write.
    pub function: u64,
    /// Address of the writing instruction.
    pub addr: u64,
    /// Bytes written.
    pub size: u64,
    /// One class per vertex invariant at `addr` (deduplicated). The
    /// machine state is always contained in *some* vertex at the
    /// address, so a concrete execution of this write must satisfy at
    /// least one member.
    pub classes: BTreeSet<WriteClass>,
}

impl ClassifiedWrite {
    /// True if every invariant resolved the destination.
    pub fn resolved(&self) -> bool {
        !self.classes.is_empty() && !self.classes.contains(&WriteClass::Unresolved)
    }

    /// The family this site is accounted under: `unresolved` if any
    /// invariant failed to resolve it, otherwise the family of the
    /// least class (sites almost always carry exactly one family).
    pub fn family(&self) -> &'static str {
        if !self.resolved() {
            return "unresolved";
        }
        self.classes.iter().next().map_or("unresolved", WriteClass::family)
    }

    /// Check a concrete write start address against the static claim.
    ///
    /// `Some(true)`: some class admits the address. `Some(false)`: no
    /// class does — the static claim is contradicted. `None`: the
    /// claim is not dynamically checkable (an unresolved or
    /// symbol-rooted class admits addresses we cannot enumerate).
    pub fn admits(&self, concrete: u64, entry_rsp: u64) -> Option<bool> {
        if self.classes.is_empty() {
            return None;
        }
        let mut ok = false;
        for c in &self.classes {
            match c {
                WriteClass::StackLocal { lo, hi } => {
                    let d = concrete.wrapping_sub(entry_rsp) as i64;
                    if *lo <= d && d <= *hi {
                        ok = true;
                    }
                }
                WriteClass::Global { lo, hi } => {
                    if *lo <= concrete && concrete <= *hi {
                        ok = true;
                    }
                }
                WriteClass::HeapSymbol { .. } | WriteClass::Unresolved => return None,
            }
        }
        Some(ok)
    }
}

/// Per-binary write-classification totals (the Table-2 row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteTotals {
    /// Write sites classified stack-local.
    pub stack_local: usize,
    /// Write sites classified global.
    pub global: usize,
    /// Write sites classified heap/pointer-symbol.
    pub heap_symbol: usize,
    /// Write sites left unresolved.
    pub unresolved: usize,
}

impl WriteTotals {
    /// All write sites.
    pub fn total(&self) -> usize {
        self.stack_local + self.global + self.heap_symbol + self.unresolved
    }

    /// Fraction of write sites resolved to a concrete family
    /// (1.0 when there are no writes at all).
    pub fn resolved_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 1.0;
        }
        (t - self.unresolved) as f64 / t as f64
    }

    /// Tally one classified site.
    pub fn add(&mut self, w: &ClassifiedWrite) {
        match w.family() {
            "stack-local" => self.stack_local += 1,
            "global" => self.global += 1,
            "heap-symbol" => self.heap_symbol += 1,
            _ => self.unresolved += 1,
        }
    }
}

/// The write region of `instr` under `pred`, using the same predicate
/// as the lifter's step function: an explicit first-operand memory
/// destination, or the implicit `[rsp - 8, 8]` slot of `push`/`call`.
pub fn write_region(pred: &Pred, instr: &Instr) -> Option<Region> {
    if instr.mnemonic != Mnemonic::Lea {
        if let Some(Operand::Mem(m)) = instr.operands.first() {
            if writes_first_operand(instr.mnemonic) {
                let addr = addr_expr(pred, m, instr.next_addr());
                return Some(Region::new(addr, m.size.bytes() as u64));
            }
        }
    }
    if matches!(instr.mnemonic, Mnemonic::Push | Mnemonic::Call) {
        let rsp = pred.reg(Reg::Rsp);
        return Some(Region::new(rsp.sub(hgl_expr::Expr::imm(8)), 8));
    }
    None
}

/// Signed displacement bounds of a residue (a linear form minus its
/// `rsp0` term) under the invariant's mined atom intervals.
///
/// Displacements are signed; the solver's intervals are unsigned, so
/// the old path (`interval_of` + reinterpret both ends as `i64`) broke
/// down at *both* wrap boundaries: a residue crossing zero (say
/// `[-0x10, +0x10]`) overflows the unsigned evaluation at `2^64` and
/// was dropped to `Unresolved`, and a mined bound straddling the `i64`
/// boundary reinterprets to `lo > hi` and relied on an implicit
/// comparison to stay sound. This evaluator works in signed space
/// throughout. Every step is `checked_*`: an overflowing bound means
/// the machine (mod-`2^64`) displacement set has no contiguous signed
/// image, and *saturating* the bound instead would clip real wrapped
/// displacements out of the claim — letting [`ClassifiedWrite::admits`]
/// refute a write that actually happened. Overflow therefore saturates
/// the whole claim to `None` (→ `Unresolved`), never a bound.
fn signed_residue_bounds(ctx: &Ctx, residue: &Linear) -> Option<(i64, i64)> {
    let (mut lo, mut hi) = (residue.offset, residue.offset);
    for (atom, &coeff) in &residue.terms {
        // Negative or zero coefficients never appear in mined address
        // forms; bail conservatively rather than reorder bounds.
        if coeff <= 0 {
            return None;
        }
        let b = ctx.bound_of(atom)?;
        // Reinterpret the unsigned atom bound; `b_lo <= b_hi` fails
        // exactly when it straddles the i64 boundary (two disjoint
        // signed rays — no contiguous image).
        let (b_lo, b_hi) = (b.lo as i64, b.hi as i64);
        if b_lo > b_hi {
            return None;
        }
        lo = lo.checked_add(b_lo.checked_mul(coeff)?)?;
        hi = hi.checked_add(b_hi.checked_mul(coeff)?)?;
    }
    (lo <= hi).then_some((lo, hi))
}

/// Classify one write region under one invariant.
pub fn classify_region(ctx: &Ctx, region: &Region) -> WriteClass {
    let lin = region.linear();
    if lin.has_bottom {
        return WriteClass::Unresolved;
    }
    if lin.terms.is_empty() {
        let k = lin.offset as u64;
        return WriteClass::Global { lo: k, hi: k };
    }
    // `rsp0 + k` exactly: a stack slot at a known displacement.
    if let Some(d) = region.displacement_from_rsp0() {
        return WriteClass::StackLocal { lo: d, hi: d };
    }
    // `rsp0 + residue` with a bounded residue (e.g. an indexed local
    // array store): still stack, over a displacement interval.
    if lin.terms.get(&Atom::Sym(Sym::Init(Reg::Rsp))) == Some(&1) {
        let mut residue = Linear::constant(lin.offset);
        for (a, &c) in &lin.terms {
            if *a != Atom::Sym(Sym::Init(Reg::Rsp)) {
                residue.terms.insert(*a, c);
            }
        }
        if let Some((lo, hi)) = signed_residue_bounds(ctx, &residue) {
            return WriteClass::StackLocal { lo, hi };
        }
        return WriteClass::Unresolved;
    }
    match ctx.provenance(&region.addr) {
        Provenance::Heap(sym) | Provenance::Param(sym) => WriteClass::HeapSymbol { sym },
        Provenance::Global => match ctx.interval_of(&region.addr) {
            Some(iv) => WriteClass::Global { lo: iv.lo, hi: iv.hi },
            None => WriteClass::Unresolved,
        },
        _ => WriteClass::Unresolved,
    }
}

/// Classify every write site of every function in `lift`, merging the
/// claims of all vertex invariants per instruction address. Output is
/// sorted by (function, address).
pub fn classify_writes(binary: &Binary, lift: &LiftResult) -> Vec<ClassifiedWrite> {
    let layout =
        std::sync::Arc::new(Layout { text: binary.text_ranges(), data: binary.data_ranges() });
    let mut out: BTreeMap<(u64, u64), ClassifiedWrite> = BTreeMap::new();
    for (&entry, f) in &lift.functions {
        for (&id, v) in &f.graph.vertices {
            let VertexId::At(addr, _) = id else { continue };
            let Some(window) = binary.fetch_window(addr) else { continue };
            let Ok(instr) = decode(window, addr) else { continue };
            let Some(region) = write_region(&v.state.pred, &instr) else { continue };
            let ctx = Ctx::from_clauses(v.state.pred.clauses.iter(), layout.clone());
            let class = classify_region(&ctx, &region);
            out.entry((entry, addr))
                .or_insert_with(|| ClassifiedWrite {
                    function: entry,
                    addr,
                    size: region.size,
                    classes: BTreeSet::new(),
                })
                .classes
                .insert(class);
        }
    }
    out.into_values().collect()
}

/// A per-(function, instruction) index of write claims, used by the
/// trace oracle to cross-validate classifications against concrete
/// executions.
#[derive(Debug, Clone, Default)]
pub struct WriteClassMap {
    map: BTreeMap<(u64, u64), ClassifiedWrite>,
}

impl WriteClassMap {
    /// Build the index for a lifted binary.
    pub fn build(binary: &Binary, lift: &LiftResult) -> WriteClassMap {
        let mut map = BTreeMap::new();
        for w in classify_writes(binary, lift) {
            map.insert((w.function, w.addr), w);
        }
        WriteClassMap { map }
    }

    /// The claim for the write at `addr` inside the function entered at
    /// `function`, if that instruction writes memory.
    pub fn claim(&self, function: u64, addr: u64) -> Option<&ClassifiedWrite> {
        self.map.get(&(function, addr))
    }

    /// Replace (or add) a claim. Differential tests use this to plant
    /// a deliberately wrong classification and prove the dynamic
    /// cross-check refutes it.
    pub fn insert_claim(&mut self, w: ClassifiedWrite) {
        self.map.insert((w.function, w.addr), w);
    }

    /// Number of write sites indexed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no write sites are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All claims, ordered by (function, address).
    pub fn iter(&self) -> impl Iterator<Item = &ClassifiedWrite> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::Expr;

    fn rsp0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rsp))
    }

    #[test]
    fn classify_constant_and_stack() {
        let ctx = Ctx::new();
        assert_eq!(
            classify_region(&ctx, &Region::global(0x601000, 8)),
            WriteClass::Global { lo: 0x601000, hi: 0x601000 }
        );
        assert_eq!(
            classify_region(&ctx, &Region::stack(-0x10, 8)),
            WriteClass::StackLocal { lo: -0x10, hi: -0x10 }
        );
        assert_eq!(classify_region(&ctx, &Region::new(Expr::bottom(), 8)), WriteClass::Unresolved);
    }

    #[test]
    fn classify_symbol_rooted() {
        let ctx = Ctx::new();
        let heap = Region::new(Expr::sym(Sym::Fresh(7)).add(Expr::imm(16)), 8);
        assert_eq!(classify_region(&ctx, &heap), WriteClass::HeapSymbol { sym: Sym::Fresh(7) });
        let param = Region::new(Expr::sym(Sym::Init(Reg::Rdi)), 4);
        assert_eq!(
            classify_region(&ctx, &param),
            WriteClass::HeapSymbol { sym: Sym::Init(Reg::Rdi) }
        );
    }

    #[test]
    fn classify_indexed_stack_with_bound() {
        use hgl_expr::{Clause, Rel};
        // rsp0 + rax0*8 with rax0 < 4: displacement in [0, 24].
        let c = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(4));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        let r = Region::new(rsp0().add(Expr::sym(Sym::Init(Reg::Rax)).mul(Expr::imm(8))), 8);
        assert_eq!(classify_region(&ctx, &r), WriteClass::StackLocal { lo: 0, hi: 24 });
        // Unbounded index: unresolved.
        let ctx = Ctx::new();
        assert_eq!(classify_region(&ctx, &r), WriteClass::Unresolved);
    }

    /// A residue crossing zero (negative frame offset plus an index
    /// bound reaching past it) classifies to the signed interval. The
    /// old unsigned evaluation overflowed at `2^64` on exactly this
    /// shape and dropped it to `Unresolved`.
    #[test]
    fn classify_zero_crossing_residue() {
        use hgl_expr::{Clause, Rel};
        // rsp0 - 0x20 + rax0*8 with rax0 < 7: displacement in [-0x20, 0x10].
        let c = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(7));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        let r = Region::new(
            rsp0().add(Expr::sym(Sym::Init(Reg::Rax)).mul(Expr::imm(8))).sub(Expr::imm(0x20)),
            8,
        );
        assert_eq!(classify_region(&ctx, &r), WriteClass::StackLocal { lo: -0x20, hi: 0x10 });
    }

    /// Displacement overflow at the `i64` boundary: companion to the
    /// `i64::MIN` edge case in `hgl_solver::region`. A displacement of
    /// exactly `i64::MIN` round-trips; pushing a bound past either rail
    /// must collapse the whole claim to `Unresolved` (a clipped bound
    /// would exclude real wrapped displacements and falsely refute).
    #[test]
    fn classify_displacement_i64_boundary() {
        use hgl_expr::{Clause, Rel};
        let ctx = Ctx::new();
        // `-i64::MIN` does not exist in i64; the exact point claim
        // still classifies without wrapping.
        assert_eq!(
            classify_region(&ctx, &Region::stack(i64::MIN, 8)),
            WriteClass::StackLocal { lo: i64::MIN, hi: i64::MIN }
        );

        // rsp0 + i64::MAX + rax0 with rax0 < 4: the upper bound walks
        // off the positive rail — machine displacements wrap negative,
        // so no contiguous signed claim exists.
        let c = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(4));
        let ctx = Ctx::from_clauses([&c], Layout::default());
        let r = Region::new(
            rsp0().add(Expr::sym(Sym::Init(Reg::Rax))).add(Expr::imm(i64::MAX as u64)),
            8,
        );
        assert_eq!(classify_region(&ctx, &r), WriteClass::Unresolved);

        // A mined atom bound that straddles the i64 boundary has two
        // disjoint signed rays for an image: also unresolved.
        let lo = Clause::new(
            Expr::sym(Sym::Init(Reg::Rax)),
            Rel::Ge,
            Expr::imm(i64::MAX as u64 - 1),
        );
        let hi = Clause::new(
            Expr::sym(Sym::Init(Reg::Rax)),
            Rel::Lt,
            Expr::imm(i64::MIN as u64 + 2),
        );
        let ctx = Ctx::from_clauses([&lo, &hi], Layout::default());
        let b = ctx.bound_of(&Atom::Sym(Sym::Init(Reg::Rax))).expect("bound mined");
        assert!((b.lo as i64) > (b.hi as i64), "bound straddles the boundary: {b:?}");
        let r = Region::new(rsp0().add(Expr::sym(Sym::Init(Reg::Rax))), 8);
        assert_eq!(classify_region(&ctx, &r), WriteClass::Unresolved);
    }

    #[test]
    fn admits_checks_concrete_addresses() {
        let w = ClassifiedWrite {
            function: 0x401000,
            addr: 0x401005,
            size: 8,
            classes: [WriteClass::StackLocal { lo: -0x20, hi: -0x8 }].into_iter().collect(),
        };
        let rsp = 0x7fff_0000u64;
        assert_eq!(w.admits(rsp - 0x10, rsp), Some(true));
        assert_eq!(w.admits(rsp + 0x10, rsp), Some(false));
        assert_eq!(w.admits(0x601000, rsp), Some(false));

        let sym = ClassifiedWrite {
            classes: [WriteClass::HeapSymbol { sym: Sym::Fresh(0) }].into_iter().collect(),
            ..w.clone()
        };
        assert_eq!(sym.admits(rsp, rsp), None);
    }

    #[test]
    fn totals_fraction() {
        let mut t = WriteTotals::default();
        assert_eq!(t.resolved_fraction(), 1.0);
        t.stack_local = 3;
        t.unresolved = 1;
        assert_eq!(t.total(), 4);
        assert!((t.resolved_fraction() - 0.75).abs() < 1e-12);
    }
}
