//! The `ret-slot-overwrite` lint must downgrade (not ignore) writes
//! whose separation from the return slot rests on a stack-vs-heap
//! provenance assumption about a pointer loaded from mutable memory.
//! This is the static half of the shadow-stack story: the warning is
//! what tells `hgl-rewrite` which `ret`s need a guard.

use hgl_analysis::{analyze, AnalysisConfig, Rule, Severity};
use hgl_corpus::failures;
use hgl_corpus::xen::gen_study_binary;
use hgl_core::Lifter;

#[test]
fn corrupted_return_gets_an_assumed_separation_warning() {
    let bin = failures::corrupted_return();
    let lift = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(lift.is_lifted(), "fixture must lift: {:?}", lift.reject_reason());
    let report = analyze(&bin, &lift, &AnalysisConfig::default());
    let warn = report
        .diags
        .iter()
        .find(|d| d.rule == Rule::RetSlotOverwrite && d.severity == Severity::Warning)
        .expect("expected a ret-slot warning on the laundered write");
    assert!(
        warn.detail.contains("assumed separate"),
        "warning should name the assumption: {}",
        warn.detail
    );
}

#[test]
fn generated_corpus_functions_stay_clean() {
    // The generator never writes through memory-loaded pointers, so the
    // new warning arm must not fire on ordinary corpus programs.
    let bin = gen_study_binary(0x5eed, false);
    let lift = Lifter::new(&bin).lift_all();
    let report = analyze(&bin, &lift.result, &AnalysisConfig::default());
    assert!(
        !report
            .diags
            .iter()
            .any(|d| d.rule == Rule::RetSlotOverwrite && d.detail.contains("assumed separate")),
        "assumed-separation warning fired on a clean corpus binary"
    );
}
