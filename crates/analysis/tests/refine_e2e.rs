//! End-to-end analyze→re-lift refinement: masked jump tables the
//! lifter cannot bound inline (no `cmp` guard to mine) are bounded by
//! the strided-interval value-set analysis, their targets read out of
//! the read-only image, and the re-lift resolves them — column B
//! moving to column A, with the fixpoint converging within the round
//! bound.

use hgl_analysis::VsaResolver;
use hgl_asm::Asm;
use hgl_core::Lifter;
use hgl_corpus::gen::{GenOptions, ProgramGen};
use hgl_x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn reg32(r: Reg) -> Operand {
    Operand::reg(r, Width::B4)
}

/// A hand-built function with a single masked jump table of `n`
/// (power-of-two) cases, each case label exported so the test can
/// check the recovered target set exactly.
fn masked_table_binary(n: usize) -> hgl_elf::Binary {
    assert!(n.is_power_of_two());
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
    asm.ins(ins(
        Mnemonic::And,
        vec![reg32(Reg::Rax), Operand::Imm(n as i64 - 1)],
        Width::B4,
    ));
    let jmp = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp, 0, "table");
    let cases: Vec<String> = (0..n).map(|i| format!("case_{i}")).collect();
    for (i, c) in cases.iter().enumerate() {
        asm.label(c);
        asm.export(c, c);
        asm.ins(ins(
            Mnemonic::Mov,
            vec![reg32(Reg::Rax), Operand::Imm(20 + i as i64)],
            Width::B4,
        ));
        asm.jmp("join");
    }
    asm.label("join");
    asm.ret();
    let case_refs: Vec<&str> = cases.iter().map(String::as_str).collect();
    asm.jump_table("table", &case_refs);
    asm.entry("f");
    asm.assemble().expect("assembles")
}

#[test]
fn masked_table_resolves_exactly() {
    let bin = masked_table_binary(4);
    let mut lifter = Lifter::new(&bin);

    // Inline lift: the jump is column B, nothing resolved, and the
    // function never reaches its ret.
    let before = lifter.lift_entry(bin.entry);
    assert!(before.is_lifted(), "reject: {:?}", before.reject_reason());
    let (a0, b0, _) = before.indirection_counts();
    assert_eq!(a0, 0);
    assert!(b0 >= 1, "masked jump must be unresolved inline");
    assert!(!before.functions[&bin.entry].returns);

    // Refine: one VSA round bounds rax to [0, 3], reads the 4 table
    // slots, and the re-lift consumes the claim.
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged, "fixpoint must converge");
    assert!(refined.rounds >= 1 && refined.rounds <= 4);
    let (a1, b1, _) = refined.result.indirection_counts();
    assert_eq!(b1, 0, "column B moved to column A");
    assert!(a1 >= 1);
    assert!(refined.result.functions[&bin.entry].returns, "cases now reach ret");

    // The claim is exact: one jump address, targets = the case labels.
    assert_eq!(refined.hints.len(), 1);
    let targets = refined.hints.values().next().unwrap();
    let expected: std::collections::BTreeSet<u64> = (0..4)
        .map(|i| {
            let name = format!("case_{i}");
            *bin.symbols
                .iter()
                .find(|(_, n)| **n == name)
                .map(|(a, _)| a)
                .unwrap_or_else(|| panic!("symbol {name} missing"))
        })
        .collect();
    assert_eq!(*targets, expected, "recovered targets are exactly the case labels");
}

#[test]
fn generated_masked_tables_refine_to_zero_unresolved() {
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pg = ProgramGen::new();
        // Several segments: tables behind the first one are only
        // discovered after earlier rounds resolve it, exercising the
        // multi-round fixpoint.
        let opts = GenOptions {
            segments: 3,
            p_jump_table: 0.0,
            p_masked_table: 0.6,
            p_callback: 0.0,
            p_param_write: 0.0,
            p_wild_jump: 0.0,
            ..GenOptions::default()
        };
        let spec = pg.gen_function("mt", &mut rng, &opts);
        pg.asm.entry("mt");
        let bin = pg.asm.assemble().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut lifter = Lifter::new(&bin);

        let before = lifter.lift_entry(bin.entry);
        assert!(before.is_lifted(), "seed {seed}: reject: {:?}", before.reject_reason());
        let (_, b0, _) = before.indirection_counts();

        let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 8);
        assert!(refined.converged, "seed {seed}: fixpoint must converge");
        let (a1, b1, _) = refined.result.indirection_counts();
        assert_eq!(b1, 0, "seed {seed}: every masked table resolved");
        if spec.masked_tables > 0 {
            assert!(b0 >= 1, "seed {seed}: tables must start unresolved");
            assert!(a1 >= 1, "seed {seed}: resolution must be counted");
            assert!(!refined.hints.is_empty(), "seed {seed}");
        }
        // Every claimed target is executable code.
        for (&addr, targets) in &refined.hints {
            assert!(bin.is_code(addr), "seed {seed}: claim at non-code addr");
            for &t in targets {
                assert!(bin.is_code(t), "seed {seed}: non-code target {t:#x}");
            }
        }
    }
}

#[test]
fn refinement_is_reproducible_from_final_config() {
    // After `lift_entry_refined`, the final hints stay in the lifter's
    // config: a plain re-lift reproduces the refined result (this is
    // what makes the refinement cache- and fingerprint-sound).
    let bin = masked_table_binary(8);
    let mut lifter = Lifter::new(&bin);
    let refined = lifter.lift_entry_refined(bin.entry, &VsaResolver::default(), 4);
    assert!(refined.converged);
    let replay = lifter.lift_entry(bin.entry);
    let (ra, rb, _) = replay.indirection_counts();
    let (fa, fb, _) = refined.result.indirection_counts();
    assert_eq!((ra, rb), (fa, fb));
    assert_eq!(
        replay.functions[&bin.entry].graph.vertices.len(),
        refined.result.functions[&bin.entry].graph.vertices.len()
    );
}
