//! Property tests for the [`StridedInterval`] lattice: the join laws
//! hold *exactly* (the widening cap is part of the join, not an
//! approximation of it), the order is coherent with the join, every
//! abstract operation over-approximates its concrete counterpart, and
//! ascending chains terminate within the cardinality bound.

use hgl_analysis::{Lattice, StridedInterval, MAX_CARDINALITY};
use proptest::prelude::*;

/// Arbitrary canonical strided intervals, biased toward interesting
/// shapes: bounds of the lattice, singletons, dense ranges, strided
/// ranges, and extreme magnitudes.
fn si() -> impl Strategy<Value = StridedInterval> {
    prop_oneof![
        1 => Just(StridedInterval::Bottom),
        1 => Just(StridedInterval::Top),
        3 => any::<u64>().prop_map(StridedInterval::point),
        2 => prop_oneof![Just(0u64), Just(1), Just(7), Just(u64::MAX - 9000), any::<u64>()]
            .prop_flat_map(|lo| (Just(lo), 0u64..9000))
            .prop_map(|(lo, span)| StridedInterval::range(lo, lo.saturating_add(span))),
        3 => (any::<u64>(), 1u64..600, 1u64..1000).prop_map(|(lo, stride, n)| {
            let lo = lo.min(u64::MAX - 600_000);
            StridedInterval::strided(stride, lo, lo + stride * n)
        }),
    ]
}

/// A concrete value drawn from an interval, when one exists.
fn witness(iv: &StridedInterval) -> Option<u64> {
    match *iv {
        StridedInterval::Bottom => None,
        StridedInterval::Top => Some(0x1234_5678_9abc_def0),
        StridedInterval::Range { lo, .. } => Some(lo),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn join_commutative(a in si(), b in si()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn join_associative(a in si(), b in si(), c in si()) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn join_idempotent(a in si()) {
        prop_assert_eq!(a.join(&a), a);
    }

    #[test]
    fn bottom_is_identity_top_absorbs(a in si()) {
        prop_assert_eq!(StridedInterval::Bottom.join(&a), a);
        prop_assert_eq!(StridedInterval::Top.join(&a), StridedInterval::Top);
    }

    /// Ordering coherence: `leq` is the order induced by the join.
    #[test]
    fn order_coherent_with_join(a in si(), b in si()) {
        let j = a.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        prop_assert!(StridedInterval::Bottom.leq(&a));
        prop_assert!(a.leq(&StridedInterval::Top));
        prop_assert!(a.leq(&a));
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// The join over-approximates set union element-wise.
    #[test]
    fn join_contains_both_sides(a in si(), b in si()) {
        let j = a.join(&b);
        for w in [witness(&a), witness(&b)].into_iter().flatten() {
            prop_assert!(j.contains(w));
        }
        if let Some(vals) = a.enumerate(64) {
            for v in vals {
                prop_assert!(j.contains(v));
            }
        }
    }

    /// Abstract arithmetic over-approximates the concrete operation on
    /// every pair of concrete witnesses.
    #[test]
    fn abstract_ops_sound(a in si(), b in si(), k in 0u64..65, m in 0u64..(1 << 20)) {
        if let (Some(x), Some(y)) = (witness(&a), witness(&b)) {
            if let Some(s) = x.checked_add(y) {
                prop_assert!(a.add(&b).contains(s));
            }
            if let Some(p) = x.checked_mul(k) {
                prop_assert!(a.mul_const(k).contains(p));
            }
            prop_assert!(a.and_mask(m).contains(x & m));
            if k < 64 {
                if let Some(sh) = x.checked_mul(1u64 << k) {
                    prop_assert!(a.shl_const(k).contains(sh));
                }
            }
        }
    }

    /// `clamp` is a meet: decreasing, and it never invents values
    /// outside the requested bounds.
    #[test]
    fn clamp_is_decreasing(a in si(), lo in any::<u64>(), span in 0u64..10_000) {
        let hi = lo.saturating_add(span);
        let c = a.clamp(Some(lo), Some(hi));
        prop_assert!(c.leq(&a) || matches!(a, StridedInterval::Top));
        if let Some(vals) = c.enumerate(MAX_CARDINALITY) {
            for v in vals {
                prop_assert!(lo <= v && v <= hi);
                prop_assert!(a.contains(v));
            }
        }
        // Values of `a` inside the bounds survive the clamp.
        if let Some(vals) = a.enumerate(64) {
            for v in vals.into_iter().filter(|v| lo <= *v && *v <= hi) {
                prop_assert!(c.contains(v));
            }
        }
    }

    /// Widening-chain termination: any ascending chain built by
    /// joining random (optionally meet-refined) elements takes at most
    /// `MAX_CARDINALITY + 2` strict steps. This is the termination
    /// argument of the whole analysis, exercised mechanically.
    #[test]
    fn ascending_chains_terminate(
        seeds in proptest::collection::vec((si(), any::<u64>(), 0u64..50_000, any::<bool>()), 1..40)
    ) {
        let mut acc = StridedInterval::Bottom;
        let mut strict = 0u64;
        // Replay the seed stream enough times that a chain which kept
        // growing would blow the bound.
        for _ in 0..200 {
            for (iv, lo, span, do_meet) in &seeds {
                let next = if *do_meet {
                    iv.clamp(Some(*lo), Some(lo.saturating_add(*span)))
                } else {
                    *iv
                };
                let j = acc.join(&next);
                prop_assert!(acc.leq(&j));
                if j != acc {
                    strict += 1;
                    acc = j;
                }
            }
            if acc == StridedInterval::Top {
                break;
            }
        }
        prop_assert!(
            strict <= MAX_CARDINALITY + 2,
            "chain took {} strict steps", strict
        );
    }
}
