//! The two-pass assembler.

use crate::layout::{DATA_BASE, EXT_BASE, RODATA_BASE, SIZING_DUMMY, TEXT_BASE};
use hgl_elf::{Binary, Builder, SegmentFlags};
use hgl_x86::{encode, Cond, EncodeError, Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// The underlying encoder rejected an instruction.
    Encode(EncodeError),
    /// No entry label was set.
    NoEntry,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
            AsmError::NoEntry => write!(f, "no entry label set"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone)]
enum Fixup {
    /// No label references.
    None,
    /// Operand 0 is a direct branch target: patch with the label's
    /// absolute address.
    Branch(String),
    /// Patch the immediate operand at this index with the label's
    /// absolute address plus a byte offset.
    ImmAddr(usize, String, i64),
    /// Patch the displacement of the memory operand at this index with
    /// the label's absolute address (added to any existing offset).
    MemDisp(usize, String),
}

#[derive(Debug, Clone)]
enum TextItem {
    Label(String),
    Ins(Instr, Fixup),
}

#[derive(Debug, Clone)]
enum DataItem {
    Bytes(Vec<u8>),
    /// A table of 8-byte absolute code addresses (a jump table).
    AddrTable(Vec<String>),
}

/// The program builder. See the [crate docs](crate) for an example.
#[derive(Default, Clone)]
pub struct Asm {
    text: Vec<TextItem>,
    rodata: Vec<(String, DataItem)>,
    data: Vec<(String, DataItem)>,
    externals: Vec<String>,
    exports: Vec<(String, String)>,
    entry: Option<String>,
}

impl Asm {
    /// A new, empty program.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Define a label at the current text position.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        self.text.push(TextItem::Label(name.to_string()));
        self
    }

    /// Append a fully resolved instruction.
    pub fn ins(&mut self, i: Instr) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::None));
        self
    }

    /// Append an instruction whose immediate operand `op_index` should
    /// hold the absolute address of `label` (e.g. `movabs rdi, table`).
    pub fn ins_imm_label(&mut self, i: Instr, op_index: usize, label: &str) -> &mut Asm {
        self.ins_imm_label_off(i, op_index, label, 0)
    }

    /// Like [`Asm::ins_imm_label`], with a byte offset added to the
    /// label address (e.g. to target the middle of an instruction when
    /// constructing weird-edge test cases).
    pub fn ins_imm_label_off(&mut self, i: Instr, op_index: usize, label: &str, off: i64) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::ImmAddr(op_index, label.to_string(), off)));
        self
    }

    /// Append an instruction whose memory operand `op_index` gets the
    /// absolute address of `label` added to its displacement
    /// (e.g. `mov eax, [table + rax*4]`).
    pub fn ins_mem_label(&mut self, i: Instr, op_index: usize, label: &str) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::MemDisp(op_index, label.to_string())));
        self
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Jmp, vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cond: Cond, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Jcc(cond), vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `call label` (an internal function).
    pub fn call(&mut self, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Call, vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `call <external>`: calls the stub slot allocated for `name`.
    pub fn call_ext(&mut self, name: &str) -> &mut Asm {
        let idx = match self.externals.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.externals.push(name.to_string());
                self.externals.len() - 1
            }
        };
        let stub = EXT_BASE + 8 * idx as u64;
        self.ins(Instr::new(Mnemonic::Call, vec![Operand::Imm(stub as i64)], Width::B8))
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Ret, vec![], Width::B8))
    }

    /// `push r64`.
    pub fn push(&mut self, r: Reg) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Push, vec![Operand::reg64(r)], Width::B8))
    }

    /// `pop r64`.
    pub fn pop(&mut self, r: Reg) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Pop, vec![Operand::reg64(r)], Width::B8))
    }

    /// `mov dst, src` at 64-bit width.
    pub fn mov(&mut self, dst: Operand, src: Operand) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Mov, vec![dst, src], Width::B8))
    }

    /// `movabs r64, <address of label>`.
    pub fn movabs_label(&mut self, r: Reg, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Movabs, vec![Operand::reg64(r), Operand::Imm(0)], Width::B8);
        self.ins_imm_label(i, 1, label)
    }

    /// Add raw bytes to `.rodata` under `label`.
    pub fn rodata(&mut self, label: &str, bytes: Vec<u8>) -> &mut Asm {
        self.rodata.push((label.to_string(), DataItem::Bytes(bytes)));
        self
    }

    /// Add a jump table of 8-byte code addresses to `.rodata`.
    pub fn jump_table(&mut self, label: &str, targets: &[&str]) -> &mut Asm {
        let t = targets.iter().map(|s| s.to_string()).collect();
        self.rodata.push((label.to_string(), DataItem::AddrTable(t)));
        self
    }

    /// Add raw bytes to `.data` under `label`.
    pub fn data(&mut self, label: &str, bytes: Vec<u8>) -> &mut Asm {
        self.data.push((label.to_string(), DataItem::Bytes(bytes)));
        self
    }

    /// Set the entry point to `label`.
    pub fn entry(&mut self, label: &str) -> &mut Asm {
        self.entry = Some(label.to_string());
        self
    }

    /// Export `label` as function symbol `name` (for shared-object
    /// style lifting of individual functions).
    pub fn export(&mut self, label: &str, name: &str) -> &mut Asm {
        self.exports.push((label.to_string(), name.to_string()));
        self
    }

    /// Names of the external functions referenced so far.
    pub fn external_names(&self) -> &[String] {
        &self.externals
    }

    /// Number of text items (labels and instructions) appended so far.
    ///
    /// Item indices are stable: they identify the same item across
    /// clones and [`Asm::without_text_items`] subsets of *this*
    /// program, which is what a shrinker needs to name removal
    /// candidates.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Whether text item `idx` is an instruction (as opposed to a
    /// label definition). Shrinkers must never remove labels — a
    /// dangling reference would turn a semantic failure into an
    /// assembly error.
    pub fn is_instruction(&self, idx: usize) -> bool {
        matches!(self.text.get(idx), Some(TextItem::Ins(..)))
    }

    /// A copy of this program with the text items at `removed`
    /// (indices into the original item list) deleted. Labels are
    /// retained even when listed. Data, externals, exports and the
    /// entry are preserved unchanged.
    pub fn without_text_items(&self, removed: &std::collections::BTreeSet<usize>) -> Asm {
        let mut out = self.clone();
        out.text = self
            .text
            .iter()
            .enumerate()
            .filter(|(i, item)| !removed.contains(i) || matches!(item, TextItem::Label(_)))
            .map(|(_, item)| item.clone())
            .collect();
        out
    }

    /// A human-readable listing of the text section (labels and
    /// instructions), for shrunk-reproducer reports.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for item in &self.text {
            match item {
                TextItem::Label(l) => {
                    let _ = writeln!(out, "{l}:");
                }
                TextItem::Ins(i, _) => {
                    let _ = writeln!(out, "    {i}");
                }
            }
        }
        out
    }

    fn data_addresses(
        items: &[(String, DataItem)],
        base: u64,
        labels: &mut BTreeMap<String, u64>,
    ) -> Result<u64, AsmError> {
        let mut addr = base;
        for (label, item) in items {
            if labels.insert(label.clone(), addr).is_some() {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            addr += match item {
                DataItem::Bytes(b) => b.len() as u64,
                DataItem::AddrTable(t) => 8 * t.len() as u64,
            };
        }
        Ok(addr)
    }

    /// Resolve all labels and produce the loaded [`Binary`] view.
    ///
    /// # Errors
    ///
    /// Fails on unknown or duplicate labels, missing entry, or
    /// unencodable instructions.
    pub fn assemble(&self) -> Result<Binary, AsmError> {
        Ok(self.builder()?.to_binary())
    }

    /// Resolve all labels and serialise to an ELF executable image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Asm::assemble`].
    pub fn assemble_elf(&self) -> Result<Vec<u8>, AsmError> {
        Ok(self.builder()?.build())
    }

    fn builder(&self) -> Result<Builder, AsmError> {
        let mut labels: BTreeMap<String, u64> = BTreeMap::new();
        Self::data_addresses(&self.rodata, RODATA_BASE, &mut labels)?;
        Self::data_addresses(&self.data, DATA_BASE, &mut labels)?;

        // Pass 1: sizes with dummy label values.
        let mut addr = TEXT_BASE;
        for item in &self.text {
            match item {
                TextItem::Label(l) => {
                    if labels.insert(l.clone(), addr).is_some() {
                        return Err(AsmError::DuplicateLabel(l.clone()));
                    }
                }
                TextItem::Ins(i, fixup) => {
                    let mut sized = i.clone();
                    sized.addr = addr;
                    apply_fixup(&mut sized, fixup, &|_| Some(SIZING_DUMMY as u64))
                        .expect("dummy resolver is total");
                    let bytes = encode(&sized)?;
                    addr += bytes.len() as u64;
                }
            }
        }
        let text_end = addr;

        // Pass 2: encode with real addresses.
        let resolve = |l: &str| labels.get(l).copied();
        let mut text_bytes = Vec::with_capacity((text_end - TEXT_BASE) as usize);
        let mut addr = TEXT_BASE;
        for item in &self.text {
            if let TextItem::Ins(i, fixup) = item {
                let mut real = i.clone();
                real.addr = addr;
                apply_fixup(&mut real, fixup, &resolve)?;
                let bytes = encode(&real)?;
                addr += bytes.len() as u64;
                text_bytes.extend_from_slice(&bytes);
            }
        }

        // Data payloads.
        let emit = |items: &[(String, DataItem)]| -> Result<Vec<u8>, AsmError> {
            let mut out = Vec::new();
            for (_, item) in items {
                match item {
                    DataItem::Bytes(b) => out.extend_from_slice(b),
                    DataItem::AddrTable(targets) => {
                        for t in targets {
                            let a = resolve(t).ok_or_else(|| AsmError::UnknownLabel(t.clone()))?;
                            out.extend_from_slice(&a.to_le_bytes());
                        }
                    }
                }
            }
            Ok(out)
        };
        let rodata_bytes = emit(&self.rodata)?;
        let data_bytes = emit(&self.data)?;

        let entry_label = self.entry.as_ref().ok_or(AsmError::NoEntry)?;
        let entry = resolve(entry_label).ok_or_else(|| AsmError::UnknownLabel(entry_label.clone()))?;

        let mut b = Builder::new().entry(entry).section(".text", TEXT_BASE, text_bytes, SegmentFlags::RX);
        if !self.externals.is_empty() {
            // One 8-byte hlt-padded stub per external.
            let stub_bytes: Vec<u8> = self.externals.iter().flat_map(|_| [0xf4u8; 8]).collect();
            b = b.section(".plt.ext", EXT_BASE, stub_bytes, SegmentFlags::RX);
            for (i, name) in self.externals.iter().enumerate() {
                b = b.external(EXT_BASE + 8 * i as u64, name);
            }
        }
        if !rodata_bytes.is_empty() {
            b = b.section(".rodata", RODATA_BASE, rodata_bytes, SegmentFlags::RO);
        }
        if !data_bytes.is_empty() {
            b = b.section(".data", DATA_BASE, data_bytes, SegmentFlags::RW);
        }
        for (label, name) in &self.exports {
            let a = resolve(label).ok_or_else(|| AsmError::UnknownLabel(label.clone()))?;
            b = b.symbol(a, name);
        }
        Ok(b)
    }
}

fn apply_fixup(
    i: &mut Instr,
    fixup: &Fixup,
    resolve: &dyn Fn(&str) -> Option<u64>,
) -> Result<(), AsmError> {
    match fixup {
        Fixup::None => Ok(()),
        Fixup::Branch(l) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            i.operands[0] = Operand::Imm(a as i64);
            Ok(())
        }
        Fixup::ImmAddr(idx, l, off) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            i.operands[*idx] = Operand::Imm(a as i64 + off);
            Ok(())
        }
        Fixup::MemDisp(idx, l) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            match &mut i.operands[*idx] {
                Operand::Mem(MemOperand { disp, .. }) => {
                    *disp = disp.wrapping_add(a as i64);
                    Ok(())
                }
                _ => Err(AsmError::UnknownLabel(format!("operand {idx} of `{i}` is not mem"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::decode;

    #[test]
    fn simple_function_assembles() {
        let mut asm = Asm::new();
        asm.label("main");
        asm.push(Reg::Rbp);
        asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0)],
            Width::B4,
        ));
        asm.pop(Reg::Rbp);
        asm.ret();
        let bin = asm.entry("main").assemble().expect("assembles");
        assert_eq!(bin.entry, TEXT_BASE);
        // Decode the first instruction back.
        let i = decode(bin.fetch_window(TEXT_BASE).expect("code"), TEXT_BASE).expect("decodes");
        assert_eq!(i.mnemonic, Mnemonic::Push);
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut asm = Asm::new();
        asm.label("start");
        asm.jcc(Cond::E, "end");
        asm.jmp("start");
        asm.label("end");
        asm.ret();
        let bin = asm.entry("start").assemble().expect("assembles");
        let je = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        let jmp_addr = TEXT_BASE + je.len as u64;
        let jmp = decode(bin.fetch_window(jmp_addr).expect("w"), jmp_addr).expect("d");
        assert_eq!(jmp.direct_target(), Some(TEXT_BASE));
        assert_eq!(je.direct_target(), Some(jmp_addr + jmp.len as u64));
    }

    #[test]
    fn jump_table_resolves_targets() {
        let mut asm = Asm::new();
        asm.label("a").ret();
        asm.label("b").ret();
        asm.jump_table("table", &["a", "b"]);
        let bin = asm.entry("a").assemble().expect("assembles");
        let t0 = bin.read_int(RODATA_BASE, 8).expect("entry 0");
        let t1 = bin.read_int(RODATA_BASE + 8, 8).expect("entry 1");
        assert_eq!(t0, TEXT_BASE);
        assert_eq!(t1, TEXT_BASE + 1);
    }

    #[test]
    fn externals_allocated_and_deduped() {
        let mut asm = Asm::new();
        asm.label("f");
        asm.call_ext("memset");
        asm.call_ext("exit");
        asm.call_ext("memset");
        asm.ret();
        let bin = asm.entry("f").assemble().expect("assembles");
        assert_eq!(bin.externals.len(), 2);
        assert_eq!(bin.external_at(EXT_BASE), Some("memset"));
        assert_eq!(bin.external_at(EXT_BASE + 8), Some("exit"));
        // First and third call go to the same stub.
        let c1 = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        assert_eq!(c1.direct_target(), Some(EXT_BASE));
    }

    #[test]
    fn errors() {
        let mut asm = Asm::new();
        asm.label("f").jmp("nowhere").ret();
        assert_eq!(
            asm.entry("f").assemble(),
            Err(AsmError::UnknownLabel("nowhere".to_string()))
        );
        let mut dup = Asm::new();
        dup.label("x").label("x").ret();
        assert_eq!(dup.entry("x").assemble(), Err(AsmError::DuplicateLabel("x".to_string())));
        let mut noentry = Asm::new();
        noentry.label("f").ret();
        assert_eq!(noentry.assemble(), Err(AsmError::NoEntry));
    }

    #[test]
    fn elf_roundtrip_preserves_program() {
        let mut asm = Asm::new();
        asm.label("main");
        asm.call_ext("puts");
        asm.ret();
        asm.jump_table("t", &["main"]);
        asm.data("counter", vec![0; 8]);
        asm.export("main", "main");
        asm.entry("main");
        let direct = asm.assemble().expect("assembles");
        let parsed = Binary::parse(&asm.assemble_elf().expect("elf")).expect("parses");
        assert_eq!(direct, parsed);
    }

    #[test]
    fn mem_label_fixup() {
        let mut asm = Asm::new();
        asm.label("f");
        // mov rax, [table + rdi*8]
        let i = Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rax),
                Operand::Mem(MemOperand::sib(None, Reg::Rdi, 8, 0, Width::B8)),
            ],
            Width::B8,
        );
        asm.ins_mem_label(i, 1, "table");
        asm.ret();
        asm.jump_table("table", &["f"]);
        let bin = asm.entry("f").assemble().expect("assembles");
        let decoded = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        match &decoded.operands[1] {
            Operand::Mem(m) => assert_eq!(m.disp, RODATA_BASE as i64),
            other => panic!("expected mem, got {other:?}"),
        }
    }
}
