//! The two-pass assembler.

use crate::layout::{DATA_BASE, EXT_BASE, RODATA_BASE, SIZING_DUMMY, TEXT_BASE};
use hgl_elf::{Binary, Builder, SegmentFlags};
use hgl_x86::{encode, Cond, EncodeError, Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// The underlying encoder rejected an instruction.
    Encode(EncodeError),
    /// No entry label was set.
    NoEntry,
    /// The sizing fixpoint oscillated: label-address changes kept
    /// flipping shortest-form encoding choices without settling.
    LayoutDivergence,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
            AsmError::NoEntry => write!(f, "no entry label set"),
            AsmError::LayoutDivergence => write!(f, "layout sizing did not converge"),
        }
    }
}

/// Cap on sizing-fixpoint iterations. Real programs settle in two or
/// three passes; the cap only exists to turn a pathological
/// imm8/imm32 oscillation into a structured error instead of a hang.
const MAX_SIZING_PASSES: usize = 64;

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone)]
enum Fixup {
    /// No label references.
    None,
    /// Operand 0 is a direct branch target: patch with the label's
    /// absolute address.
    Branch(String),
    /// Patch the immediate operand at this index with the label's
    /// absolute address plus a byte offset.
    ImmAddr(usize, String, i64),
    /// Patch the displacement of the memory operand at this index with
    /// the label's absolute address (added to any existing offset).
    MemDisp(usize, String),
}

#[derive(Debug, Clone)]
enum TextItem {
    Label(String),
    Ins(Instr, Fixup),
}

#[derive(Debug, Clone)]
enum DataItem {
    Bytes(Vec<u8>),
    /// A table of 8-byte absolute code addresses (a jump table).
    AddrTable(Vec<String>),
}

/// The program builder. See the [crate docs](crate) for an example.
#[derive(Default, Clone)]
pub struct Asm {
    text: Vec<TextItem>,
    rodata: Vec<(String, DataItem)>,
    data: Vec<(String, DataItem)>,
    externals: Vec<String>,
    exports: Vec<(String, String)>,
    entry: Option<String>,
    /// Overrides [`TEXT_BASE`] when set — used by the rewriter to lay
    /// out guard stubs past an existing image.
    base_text: Option<u64>,
}

impl Asm {
    /// A new, empty program.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Define a label at the current text position.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        self.text.push(TextItem::Label(name.to_string()));
        self
    }

    /// Append a fully resolved instruction.
    pub fn ins(&mut self, i: Instr) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::None));
        self
    }

    /// Append an instruction whose immediate operand `op_index` should
    /// hold the absolute address of `label` (e.g. `movabs rdi, table`).
    pub fn ins_imm_label(&mut self, i: Instr, op_index: usize, label: &str) -> &mut Asm {
        self.ins_imm_label_off(i, op_index, label, 0)
    }

    /// Like [`Asm::ins_imm_label`], with a byte offset added to the
    /// label address (e.g. to target the middle of an instruction when
    /// constructing weird-edge test cases).
    pub fn ins_imm_label_off(&mut self, i: Instr, op_index: usize, label: &str, off: i64) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::ImmAddr(op_index, label.to_string(), off)));
        self
    }

    /// Append an instruction whose memory operand `op_index` gets the
    /// absolute address of `label` added to its displacement
    /// (e.g. `mov eax, [table + rax*4]`).
    pub fn ins_mem_label(&mut self, i: Instr, op_index: usize, label: &str) -> &mut Asm {
        self.text.push(TextItem::Ins(i, Fixup::MemDisp(op_index, label.to_string())));
        self
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Jmp, vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cond: Cond, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Jcc(cond), vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `call label` (an internal function).
    pub fn call(&mut self, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Call, vec![Operand::Imm(0)], Width::B8);
        self.text.push(TextItem::Ins(i, Fixup::Branch(label.to_string())));
        self
    }

    /// `call <external>`: calls the stub slot allocated for `name`.
    pub fn call_ext(&mut self, name: &str) -> &mut Asm {
        let idx = match self.externals.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.externals.push(name.to_string());
                self.externals.len() - 1
            }
        };
        let stub = EXT_BASE + 8 * idx as u64;
        self.ins(Instr::new(Mnemonic::Call, vec![Operand::Imm(stub as i64)], Width::B8))
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Ret, vec![], Width::B8))
    }

    /// `push r64`.
    pub fn push(&mut self, r: Reg) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Push, vec![Operand::reg64(r)], Width::B8))
    }

    /// `pop r64`.
    pub fn pop(&mut self, r: Reg) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Pop, vec![Operand::reg64(r)], Width::B8))
    }

    /// `mov dst, src` at 64-bit width.
    pub fn mov(&mut self, dst: Operand, src: Operand) -> &mut Asm {
        self.ins(Instr::new(Mnemonic::Mov, vec![dst, src], Width::B8))
    }

    /// `movabs r64, <address of label>`.
    pub fn movabs_label(&mut self, r: Reg, label: &str) -> &mut Asm {
        let i = Instr::new(Mnemonic::Movabs, vec![Operand::reg64(r), Operand::Imm(0)], Width::B8);
        self.ins_imm_label(i, 1, label)
    }

    /// Add raw bytes to `.rodata` under `label`.
    pub fn rodata(&mut self, label: &str, bytes: Vec<u8>) -> &mut Asm {
        self.rodata.push((label.to_string(), DataItem::Bytes(bytes)));
        self
    }

    /// Add a jump table of 8-byte code addresses to `.rodata`.
    pub fn jump_table(&mut self, label: &str, targets: &[&str]) -> &mut Asm {
        let t = targets.iter().map(|s| s.to_string()).collect();
        self.rodata.push((label.to_string(), DataItem::AddrTable(t)));
        self
    }

    /// Add raw bytes to `.data` under `label`.
    pub fn data(&mut self, label: &str, bytes: Vec<u8>) -> &mut Asm {
        self.data.push((label.to_string(), DataItem::Bytes(bytes)));
        self
    }

    /// Set the entry point to `label`.
    pub fn entry(&mut self, label: &str) -> &mut Asm {
        self.entry = Some(label.to_string());
        self
    }

    /// Lay the text section out at `base` instead of the default
    /// [`TEXT_BASE`] — e.g. to append a stub section past an existing
    /// image without overlapping its segments.
    pub fn text_base(&mut self, base: u64) -> &mut Asm {
        self.base_text = Some(base);
        self
    }

    /// Export `label` as function symbol `name` (for shared-object
    /// style lifting of individual functions).
    pub fn export(&mut self, label: &str, name: &str) -> &mut Asm {
        self.exports.push((label.to_string(), name.to_string()));
        self
    }

    /// Names of the external functions referenced so far.
    pub fn external_names(&self) -> &[String] {
        &self.externals
    }

    /// Number of text items (labels and instructions) appended so far.
    ///
    /// Item indices are stable: they identify the same item across
    /// clones and [`Asm::without_text_items`] subsets of *this*
    /// program, which is what a shrinker needs to name removal
    /// candidates.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Whether text item `idx` is an instruction (as opposed to a
    /// label definition). Shrinkers must never remove labels — a
    /// dangling reference would turn a semantic failure into an
    /// assembly error.
    pub fn is_instruction(&self, idx: usize) -> bool {
        matches!(self.text.get(idx), Some(TextItem::Ins(..)))
    }

    /// A copy of this program with the text items at `removed`
    /// (indices into the original item list) deleted. Labels are
    /// retained even when listed. Data, externals, exports and the
    /// entry are preserved unchanged.
    pub fn without_text_items(&self, removed: &std::collections::BTreeSet<usize>) -> Asm {
        let mut out = self.clone();
        out.text = self
            .text
            .iter()
            .enumerate()
            .filter(|(i, item)| !removed.contains(i) || matches!(item, TextItem::Label(_)))
            .map(|(_, item)| item.clone())
            .collect();
        out
    }

    /// A human-readable listing of the text section (labels and
    /// instructions), for shrunk-reproducer reports.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for item in &self.text {
            match item {
                TextItem::Label(l) => {
                    let _ = writeln!(out, "{l}:");
                }
                TextItem::Ins(i, _) => {
                    let _ = writeln!(out, "    {i}");
                }
            }
        }
        out
    }

    fn data_addresses(
        items: &[(String, DataItem)],
        base: u64,
        labels: &mut BTreeMap<String, u64>,
    ) -> Result<u64, AsmError> {
        let mut addr = base;
        for (label, item) in items {
            if labels.insert(label.clone(), addr).is_some() {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            addr += match item {
                DataItem::Bytes(b) => b.len() as u64,
                DataItem::AddrTable(t) => 8 * t.len() as u64,
            };
        }
        Ok(addr)
    }

    /// Resolve all labels and produce the loaded [`Binary`] view.
    ///
    /// # Errors
    ///
    /// Fails on unknown or duplicate labels, missing entry, or
    /// unencodable instructions.
    pub fn assemble(&self) -> Result<Binary, AsmError> {
        Ok(self.build_parts()?.0.to_binary())
    }

    /// Like [`Asm::assemble`], also returning the resolved address of
    /// every label (text and data). Callers that patch other images —
    /// the rewriter's guard stubs — need the final layout, not just
    /// the bytes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Asm::assemble`].
    pub fn assemble_with_labels(&self) -> Result<(Binary, BTreeMap<String, u64>), AsmError> {
        let (b, labels) = self.build_parts()?;
        Ok((b.to_binary(), labels))
    }

    /// Resolve all labels and serialise to an ELF executable image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Asm::assemble`].
    pub fn assemble_elf(&self) -> Result<Vec<u8>, AsmError> {
        Ok(self.build_parts()?.0.build())
    }

    fn build_parts(&self) -> Result<(Builder, BTreeMap<String, u64>), AsmError> {
        let text_base = self.base_text.unwrap_or(TEXT_BASE);
        let mut labels: BTreeMap<String, u64> = BTreeMap::new();
        Self::data_addresses(&self.rodata, RODATA_BASE, &mut labels)?;
        Self::data_addresses(&self.data, DATA_BASE, &mut labels)?;

        // Duplicate text labels (against each other and the data
        // labels) are an input defect, independent of layout.
        {
            let mut seen = labels.clone();
            for item in &self.text {
                if let TextItem::Label(l) = item {
                    if seen.insert(l.clone(), 0).is_some() {
                        return Err(AsmError::DuplicateLabel(l.clone()));
                    }
                }
            }
        }

        // Sizing pass, iterated to a fixpoint. Label addresses feed
        // shortest-form encoding choices (imm8 vs imm32, disp widths),
        // and those choices feed instruction sizes, which feed label
        // addresses. A single dummy-valued pass — the old scheme —
        // goes stale the moment a real label value admits a shorter
        // form than the dummy did (deleting text items via
        // `without_text_items` is the classic trigger: labels move
        // down, a label-derived immediate shrinks into imm8 range, and
        // every later label lands mid-instruction). Iterating with the
        // current estimates until no label moves makes the layout
        // self-consistent; unseen forward references fall back to
        // [`SIZING_DUMMY`] on the first pass only.
        let mut text_labels: BTreeMap<String, u64> = BTreeMap::new();
        let mut converged = false;
        for _ in 0..MAX_SIZING_PASSES {
            let mut next: BTreeMap<String, u64> = BTreeMap::new();
            let mut addr = text_base;
            for item in &self.text {
                match item {
                    TextItem::Label(l) => {
                        next.insert(l.clone(), addr);
                    }
                    TextItem::Ins(i, fixup) => {
                        let mut sized = i.clone();
                        sized.addr = addr;
                        apply_fixup(&mut sized, fixup, &|l| {
                            labels
                                .get(l)
                                .or_else(|| text_labels.get(l))
                                .copied()
                                .or(Some(SIZING_DUMMY as u64))
                        })?;
                        let bytes = encode(&sized)?;
                        addr += bytes.len() as u64;
                    }
                }
            }
            if next == text_labels {
                converged = true;
                break;
            }
            text_labels = next;
        }
        if !converged {
            return Err(AsmError::LayoutDivergence);
        }
        labels.extend(text_labels);

        // Final pass: encode with the fixpoint addresses. Sizes cannot
        // change here — the resolver agrees with the one the last
        // sizing pass used.
        let resolve = |l: &str| labels.get(l).copied();
        let mut text_bytes = Vec::new();
        let mut addr = text_base;
        for item in &self.text {
            if let TextItem::Ins(i, fixup) = item {
                let mut real = i.clone();
                real.addr = addr;
                apply_fixup(&mut real, fixup, &resolve)?;
                let bytes = encode(&real)?;
                addr += bytes.len() as u64;
                text_bytes.extend_from_slice(&bytes);
            }
        }

        // Data payloads.
        let emit = |items: &[(String, DataItem)]| -> Result<Vec<u8>, AsmError> {
            let mut out = Vec::new();
            for (_, item) in items {
                match item {
                    DataItem::Bytes(b) => out.extend_from_slice(b),
                    DataItem::AddrTable(targets) => {
                        for t in targets {
                            let a = resolve(t).ok_or_else(|| AsmError::UnknownLabel(t.clone()))?;
                            out.extend_from_slice(&a.to_le_bytes());
                        }
                    }
                }
            }
            Ok(out)
        };
        let rodata_bytes = emit(&self.rodata)?;
        let data_bytes = emit(&self.data)?;

        let entry_label = self.entry.as_ref().ok_or(AsmError::NoEntry)?;
        let entry = resolve(entry_label).ok_or_else(|| AsmError::UnknownLabel(entry_label.clone()))?;

        let mut b = Builder::new().entry(entry).section(".text", text_base, text_bytes, SegmentFlags::RX);
        if !self.externals.is_empty() {
            // One 8-byte hlt-padded stub per external.
            let stub_bytes: Vec<u8> = self.externals.iter().flat_map(|_| [0xf4u8; 8]).collect();
            b = b.section(".plt.ext", EXT_BASE, stub_bytes, SegmentFlags::RX);
            for (i, name) in self.externals.iter().enumerate() {
                b = b.external(EXT_BASE + 8 * i as u64, name);
            }
        }
        if !rodata_bytes.is_empty() {
            b = b.section(".rodata", RODATA_BASE, rodata_bytes, SegmentFlags::RO);
        }
        if !data_bytes.is_empty() {
            b = b.section(".data", DATA_BASE, data_bytes, SegmentFlags::RW);
        }
        for (label, name) in &self.exports {
            let a = resolve(label).ok_or_else(|| AsmError::UnknownLabel(label.clone()))?;
            b = b.symbol(a, name);
        }
        Ok((b, labels))
    }
}

fn apply_fixup(
    i: &mut Instr,
    fixup: &Fixup,
    resolve: &dyn Fn(&str) -> Option<u64>,
) -> Result<(), AsmError> {
    match fixup {
        Fixup::None => Ok(()),
        Fixup::Branch(l) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            i.operands[0] = Operand::Imm(a as i64);
            Ok(())
        }
        Fixup::ImmAddr(idx, l, off) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            i.operands[*idx] = Operand::Imm(a as i64 + off);
            Ok(())
        }
        Fixup::MemDisp(idx, l) => {
            let a = resolve(l).ok_or_else(|| AsmError::UnknownLabel(l.clone()))?;
            match &mut i.operands[*idx] {
                Operand::Mem(MemOperand { disp, .. }) => {
                    *disp = disp.wrapping_add(a as i64);
                    Ok(())
                }
                _ => Err(AsmError::UnknownLabel(format!("operand {idx} of `{i}` is not mem"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::decode;

    #[test]
    fn simple_function_assembles() {
        let mut asm = Asm::new();
        asm.label("main");
        asm.push(Reg::Rbp);
        asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0)],
            Width::B4,
        ));
        asm.pop(Reg::Rbp);
        asm.ret();
        let bin = asm.entry("main").assemble().expect("assembles");
        assert_eq!(bin.entry, TEXT_BASE);
        // Decode the first instruction back.
        let i = decode(bin.fetch_window(TEXT_BASE).expect("code"), TEXT_BASE).expect("decodes");
        assert_eq!(i.mnemonic, Mnemonic::Push);
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut asm = Asm::new();
        asm.label("start");
        asm.jcc(Cond::E, "end");
        asm.jmp("start");
        asm.label("end");
        asm.ret();
        let bin = asm.entry("start").assemble().expect("assembles");
        let je = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        let jmp_addr = TEXT_BASE + je.len as u64;
        let jmp = decode(bin.fetch_window(jmp_addr).expect("w"), jmp_addr).expect("d");
        assert_eq!(jmp.direct_target(), Some(TEXT_BASE));
        assert_eq!(je.direct_target(), Some(jmp_addr + jmp.len as u64));
    }

    #[test]
    fn jump_table_resolves_targets() {
        let mut asm = Asm::new();
        asm.label("a").ret();
        asm.label("b").ret();
        asm.jump_table("table", &["a", "b"]);
        let bin = asm.entry("a").assemble().expect("assembles");
        let t0 = bin.read_int(RODATA_BASE, 8).expect("entry 0");
        let t1 = bin.read_int(RODATA_BASE + 8, 8).expect("entry 1");
        assert_eq!(t0, TEXT_BASE);
        assert_eq!(t1, TEXT_BASE + 1);
    }

    #[test]
    fn externals_allocated_and_deduped() {
        let mut asm = Asm::new();
        asm.label("f");
        asm.call_ext("memset");
        asm.call_ext("exit");
        asm.call_ext("memset");
        asm.ret();
        let bin = asm.entry("f").assemble().expect("assembles");
        assert_eq!(bin.externals.len(), 2);
        assert_eq!(bin.external_at(EXT_BASE), Some("memset"));
        assert_eq!(bin.external_at(EXT_BASE + 8), Some("exit"));
        // First and third call go to the same stub.
        let c1 = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        assert_eq!(c1.direct_target(), Some(EXT_BASE));
    }

    #[test]
    fn errors() {
        let mut asm = Asm::new();
        asm.label("f").jmp("nowhere").ret();
        assert_eq!(
            asm.entry("f").assemble(),
            Err(AsmError::UnknownLabel("nowhere".to_string()))
        );
        let mut dup = Asm::new();
        dup.label("x").label("x").ret();
        assert_eq!(dup.entry("x").assemble(), Err(AsmError::DuplicateLabel("x".to_string())));
        let mut noentry = Asm::new();
        noentry.label("f").ret();
        assert_eq!(noentry.assemble(), Err(AsmError::NoEntry));
    }

    #[test]
    fn elf_roundtrip_preserves_program() {
        let mut asm = Asm::new();
        asm.label("main");
        asm.call_ext("puts");
        asm.ret();
        asm.jump_table("t", &["main"]);
        asm.data("counter", vec![0; 8]);
        asm.export("main", "main");
        asm.entry("main");
        let direct = asm.assemble().expect("assembles");
        let parsed = Binary::parse(&asm.assemble_elf().expect("elf")).expect("parses");
        assert_eq!(direct, parsed);
    }

    /// Regression: deleting text items moves labels, and a moved label
    /// can shrink a label-derived immediate into imm8 range. The old
    /// single dummy-valued sizing pass kept the stale imm32-based
    /// label offsets, so every later branch landed mid-instruction in
    /// the re-assembled binary. The sizing fixpoint must re-settle the
    /// layout: assemble, delete, re-assemble, and re-decode cleanly.
    #[test]
    fn deletion_resizes_label_immediate_cleanly() {
        let mut asm = Asm::new();
        asm.label("f");
        // cmp rax, (tail - TEXT_BASE - 131): imm32 at the original
        // layout (tail is ~293 bytes in), imm8 once the padding goes.
        let cmp = Instr::new(
            Mnemonic::Cmp,
            vec![Operand::reg64(Reg::Rax), Operand::Imm(0)],
            Width::B8,
        );
        asm.ins_imm_label_off(cmp, 1, "tail", -(TEXT_BASE as i64) - 131);
        asm.jcc(Cond::E, "end");
        // 40 × 7-byte padding instructions, items 3..=42.
        for _ in 0..40 {
            asm.ins(Instr::new(
                Mnemonic::Mov,
                vec![Operand::reg64(Reg::Rax), Operand::Imm(0x1122_3344)],
                Width::B8,
            ));
        }
        asm.label("tail");
        asm.ins(Instr::new(Mnemonic::Nop, vec![], Width::B8));
        asm.label("end");
        asm.ret();
        asm.entry("f");

        let verify = |program: &Asm| {
            let (bin, labels) = program.assemble_with_labels().expect("assembles");
            let seg = bin.segments.iter().find(|s| s.vaddr == TEXT_BASE).expect("text segment");
            // Full linear decode; every byte belongs to an instruction.
            let mut boundaries = std::collections::BTreeSet::new();
            let mut branch_targets = Vec::new();
            let mut off = 0usize;
            while off < seg.bytes.len() {
                let addr = TEXT_BASE + off as u64;
                boundaries.insert(addr);
                let i = decode(&seg.bytes[off..seg.bytes.len().min(off + 15)], addr)
                    .unwrap_or_else(|e| panic!("undecodable at {addr:#x}: {e:?}"));
                if let Some(t) = i.direct_target() {
                    branch_targets.push((addr, t));
                }
                off += i.len as usize;
            }
            boundaries.insert(TEXT_BASE + seg.bytes.len() as u64);
            for (addr, t) in branch_targets {
                assert!(boundaries.contains(&t), "branch at {addr:#x} targets mid-instruction {t:#x}");
            }
            for (l, a) in &labels {
                if !l.starts_with('f') && *a >= TEXT_BASE {
                    assert!(boundaries.contains(a), "label `{l}` at {a:#x} off-boundary");
                }
            }
            (bin, labels)
        };

        let (_, labels) = verify(&asm);
        // The original layout really does use the imm32 form.
        assert!(labels["tail"] - TEXT_BASE > 131 + 127, "setup: imm must start out of imm8 range");

        // Delete 35 of the 40 padding instructions and re-assemble.
        let removed: std::collections::BTreeSet<usize> = (3..38).collect();
        let shrunk = asm.without_text_items(&removed);
        let (bin, labels) = verify(&shrunk);
        // The immediate is now in imm8 range, so the fixpoint must have
        // shrunk the cmp (7 → 4 bytes) and re-settled every label.
        assert!((labels["tail"] - TEXT_BASE) as i64 - 131 >= -128);
        assert!(((labels["tail"] - TEXT_BASE) as i64 - 131) < 128);
        let cmp = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        assert_eq!(cmp.len, 4, "cmp should use the imm8 form after deletion");
        let jcc_addr = TEXT_BASE + cmp.len as u64;
        let jcc = decode(bin.fetch_window(jcc_addr).expect("w"), jcc_addr).expect("d");
        assert_eq!(jcc.direct_target(), Some(labels["end"]));
    }

    /// The text-base override relocates the whole text section and
    /// every text label with it.
    #[test]
    fn text_base_override_relocates_labels() {
        let mut asm = Asm::new();
        asm.label("stub");
        asm.ret();
        asm.entry("stub");
        asm.text_base(0x71_0000);
        let (bin, labels) = asm.assemble_with_labels().expect("assembles");
        assert_eq!(labels["stub"], 0x71_0000);
        assert_eq!(bin.entry, 0x71_0000);
        assert!(bin.is_code(0x71_0000));
    }

    #[test]
    fn mem_label_fixup() {
        let mut asm = Asm::new();
        asm.label("f");
        // mov rax, [table + rdi*8]
        let i = Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rax),
                Operand::Mem(MemOperand::sib(None, Reg::Rdi, 8, 0, Width::B8)),
            ],
            Width::B8,
        );
        asm.ins_mem_label(i, 1, "table");
        asm.ret();
        asm.jump_table("table", &["f"]);
        let bin = asm.entry("f").assemble().expect("assembles");
        let decoded = decode(bin.fetch_window(TEXT_BASE).expect("w"), TEXT_BASE).expect("d");
        match &decoded.operands[1] {
            Operand::Mem(m) => assert_eq!(m.disp, RODATA_BASE as i64),
            other => panic!("expected mem, got {other:?}"),
        }
    }
}
