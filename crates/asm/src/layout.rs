//! Fixed address-space layout for synthesized binaries.

/// Base address of external-function stubs (one 8-byte slot each).
pub const EXT_BASE: u64 = 0x40_0800;

/// Base address of the `.text` section.
pub const TEXT_BASE: u64 = 0x40_1000;

/// Base address of the read-only data section (jump tables, strings).
pub const RODATA_BASE: u64 = 0x50_0000;

/// Base address of the writable data section.
pub const DATA_BASE: u64 = 0x60_1000;

/// Dummy displacement used during the sizing pass; large enough that
/// the encoder always selects the disp32/imm32 forms that real label
/// addresses will need.
pub const SIZING_DUMMY: i64 = 0x7fff_0000;
