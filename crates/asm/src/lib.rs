//! # hgl-asm: program builder for synthesizing x86-64 ELF binaries
//!
//! The paper evaluates on COTS binaries (Xen, CoreUtils). Those are not
//! available offline, so the evaluation corpus is *synthesized*: this
//! crate provides a small two-pass assembler that builds realistic
//! function bodies — stack frames, jump tables, internal and external
//! calls, callbacks — and emits them as ELF executables via `hgl-elf`.
//!
//! Label references are resolved in the second pass; since the encoder
//! always uses rel32 branch forms and label addresses exceed the disp8
//! range, instruction sizes are identical across passes and no
//! relaxation loop is needed.
//!
//! ```
//! use hgl_asm::Asm;
//! use hgl_x86::{Mnemonic, Operand, Reg, Width, Instr};
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.ins(Instr::new(Mnemonic::Mov,
//!     vec![Operand::reg64(Reg::Rax), Operand::Imm(0)], Width::B8));
//! asm.ret();
//! let binary = asm.entry("main").assemble()?;
//! assert!(binary.is_code(binary.entry));
//! # Ok::<(), hgl_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod layout;

pub use asm::{Asm, AsmError};
pub use layout::{DATA_BASE, EXT_BASE, RODATA_BASE, TEXT_BASE};
