//! Decoder/encoder throughput over the synthesized corpus text.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hgl_corpus::coreutils;
use hgl_x86::{decode, encode};

fn bench_decoder(c: &mut Criterion) {
    let (_, bin) = coreutils::build_all(1).into_iter().find(|(s, _)| s.name == "tar").expect("tar");
    let (start, end) = *bin
        .text_ranges()
        .iter()
        .find(|(s, e)| *s <= bin.entry && bin.entry < *e)
        .expect("text");

    // Pre-decode for the encode benchmark.
    let mut instrs = Vec::new();
    let mut a = start;
    while a < end {
        match decode(bin.fetch_window(a).expect("window"), a) {
            Ok(i) => {
                a += i.len as u64;
                instrs.push(i);
            }
            Err(_) => a += 1,
        }
    }
    let bytes: u64 = instrs.iter().map(|i| i.len as u64).sum();

    let mut group = c.benchmark_group("decoder");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("decode_linear", |b| {
        b.iter(|| {
            let mut a = start;
            let mut n = 0usize;
            while a < end {
                match decode(bin.fetch_window(a).expect("window"), a) {
                    Ok(i) => {
                        a += i.len as u64;
                        n += 1;
                    }
                    Err(_) => a += 1,
                }
            }
            n
        })
    });
    group.bench_function("encode_all", |b| {
        b.iter(|| instrs.iter().map(|i| encode(i).map(|v| v.len()).unwrap_or(0)).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, bench_decoder);
criterion_main!(benches);
