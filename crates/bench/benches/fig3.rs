//! Figure 3 benchmark: lifting time as a function of function size.
//! The paper's point is that the two correlate only weakly; this bench
//! produces the size series (the `fig3` binary prints the scatter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgl_corpus::gen::{GenOptions, ProgramGen};
use hgl_core::lift::LiftConfig;
use hgl_core::Lifter;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(segments: usize, fork_heavy: bool) -> hgl_elf::Binary {
    let mut rng = SmallRng::seed_from_u64(segments as u64);
    let mut pg = ProgramGen::new();
    let opts = GenOptions {
        segments,
        p_jump_table: 0.0,
        p_callback: 0.0,
        p_wild_jump: 0.0,
        p_param_write: if fork_heavy { 0.5 } else { 0.0 },
        ..GenOptions::default()
    };
    pg.gen_function("f", &mut rng, &opts);
    pg.asm.entry("f");
    pg.asm.assemble().expect("assembles")
}

fn bench_fig3(c: &mut Criterion) {
    let config = LiftConfig::default();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for segments in [4usize, 8, 16, 32] {
        let bin = build(segments, false);
        group.bench_with_input(BenchmarkId::new("simple", segments), &bin, |b, bin| {
            b.iter(|| Lifter::new(bin).with_config(config.clone()).lift_entry(bin.entry))
        });
        // Same size, fork-heavy: the paper's "little correlation" —
        // time is dominated by join/fork behaviour, not size.
        let heavy = build(segments, true);
        group.bench_with_input(BenchmarkId::new("fork_heavy", segments), &heavy, |b, bin| {
            b.iter(|| Lifter::new(bin).with_config(config.clone()).lift_entry(bin.entry))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
