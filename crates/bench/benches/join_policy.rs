//! Ablation of the §4 join refinement: keeping states with different
//! immediate code pointers apart costs states but is what resolves
//! jump-table-fed indirections (DESIGN.md experiment index).
//!
//! Besides timing both policies on the §2 weird-edge binary, the bench
//! prints the resolution counts once, so the precision effect is
//! visible next to the cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hgl_bench::weird_edge_binary;
use hgl_core::lift::LiftConfig;
use hgl_core::Lifter;

fn bench_join_policy(c: &mut Criterion) {
    let bin = weird_edge_binary();
    let mut with = LiftConfig::default();
    with.limits.code_pointer_refinement = true;
    let mut without = LiftConfig::default();
    without.limits.code_pointer_refinement = false;

    // Report the precision difference once.
    let r_with = Lifter::new(&bin).with_config(with.clone()).lift_entry(bin.entry);
    let r_without = Lifter::new(&bin).with_config(without.clone()).lift_entry(bin.entry);
    println!(
        "join_policy precision: refinement ON  -> states {}, resolved {}, annotations {}",
        r_with.state_count(),
        r_with.indirection_counts().0,
        r_with.indirection_counts().1 + r_with.indirection_counts().2,
    );
    println!(
        "join_policy precision: refinement OFF -> states {}, resolved {}, annotations {}",
        r_without.state_count(),
        r_without.indirection_counts().0,
        r_without.indirection_counts().1 + r_without.indirection_counts().2,
    );

    let mut group = c.benchmark_group("join_policy");
    group.bench_function("refinement_on", |b| b.iter(|| Lifter::new(&bin).with_config(with.clone()).lift_entry(bin.entry)));
    group.bench_function("refinement_off", |b| b.iter(|| Lifter::new(&bin).with_config(without.clone()).lift_entry(bin.entry)));
    group.finish();
}

criterion_group!(benches, bench_join_policy);
criterion_main!(benches);
