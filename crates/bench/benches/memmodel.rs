//! Memory-model ablation (DESIGN.md): `ins` and join scaling with
//! region count, and the destroy-vs-enumerate policy (branch cap 1
//! forces the paper's destroy-only rule; cap 16 enables the §2 forks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgl_core::memmodel::{MemModel, MemTree};
use hgl_expr::{Expr, Sym};
use hgl_solver::{Ctx, Region};
use hgl_x86::Reg;

fn stack_model(n: usize) -> MemModel {
    let mut m = MemModel::empty();
    for i in 0..n {
        m.trees.push(MemTree::leaf(Region::stack(-8 * (i as i64 + 1), 8)));
    }
    m
}

fn bench_memmodel(c: &mut Criterion) {
    let ctx = Ctx::new();
    let mut group = c.benchmark_group("memmodel");

    // ins() scaling on provably separate (stack) regions.
    for n in [4usize, 16, 64] {
        let m = stack_model(n);
        let fresh = Region::stack(-8 * (n as i64 + 1), 8);
        group.bench_with_input(BenchmarkId::new("ins_separate", n), &n, |b, _| {
            b.iter(|| m.insert(&ctx, fresh, 16))
        });
    }

    // Unknown-relation insertion: fork policy (cap 16) vs destroy-only
    // (cap 1) — the ablation of the paper's §1 design choice.
    let m = MemModel {
        trees: vec![
            MemTree::leaf(Region::new(Expr::sym(Sym::Init(Reg::Rdi)), 8)),
            MemTree::leaf(Region::new(Expr::sym(Sym::Init(Reg::Rsi)), 8)),
        ],
    };
    let r = Region::new(Expr::sym(Sym::Init(Reg::Rdx)), 8);
    for cap in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("ins_unknown_cap", cap), &cap, |b, &cap| {
            b.iter(|| m.insert(&ctx, r, cap))
        });
    }

    // Join scaling.
    for n in [4usize, 16, 64] {
        let a = stack_model(n);
        let b2 = stack_model(n);
        group.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| b.iter(|| a.join(&b2)));
    }
    group.finish();
}

criterion_group!(benches, bench_memmodel);
criterion_main!(benches);
