//! Solver query latency: the three Definition-3.6 relation shapes the
//! lifter issues on every memory access.

use criterion::{criterion_group, criterion_main, Criterion};
use hgl_expr::{Clause, Expr, Rel, Sym};
use hgl_solver::{decide, Ctx, Layout, Region};
use hgl_x86::Reg;

fn bench_solver(c: &mut Criterion) {
    let empty = Ctx::new();
    let mut group = c.benchmark_group("solver");

    // Same-base offset arithmetic (the hot path: frame slot vs frame slot).
    let a = Region::stack(-0x28, 8);
    let b = Region::stack(-0x10, 8);
    group.bench_function("same_base_separate", |bch| bch.iter(|| decide(&empty, &a, &b)));

    // Provenance-based separation (caller pointer vs return slot).
    let p = Region::new(Expr::sym(Sym::Init(Reg::Rdi)), 8);
    let ret = Region::return_address_slot();
    group.bench_function("provenance_param_vs_stack", |bch| bch.iter(|| decide(&empty, &p, &ret)));

    // Bounded jump-table interval reasoning.
    let clause = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(0xc3));
    let ctx = Ctx::from_clauses([&clause], Layout::default());
    let entry = Region::new(
        Expr::imm(0x500000).add(Expr::sym(Sym::Init(Reg::Rax)).mul(Expr::imm(8))),
        8,
    );
    let past = Region::global(0x500000 + 0xc3 * 8, 8);
    group.bench_function("interval_jump_table", |bch| bch.iter(|| decide(&ctx, &entry, &past)));

    // Context construction from clauses (done once per step).
    let clauses: Vec<Clause> = (0..16)
        .map(|i| Clause::new(Expr::sym(Sym::Fresh(i)), Rel::Lt, Expr::imm(100 + i)))
        .collect();
    group.bench_function("ctx_from_16_clauses", |bch| {
        bch.iter(|| Ctx::from_clauses(clauses.iter(), Layout::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
