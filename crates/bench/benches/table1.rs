//! Table 1 benchmark: end-to-end lifting of Xen-like corpus units, one
//! benchmark group per directory row. The `table1` binary prints the
//! actual table; this measures its cost and watches for lifting-speed
//! regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hgl_corpus::xen::{build_study, run_study, study_config, StudySpec, UnitKind};
use hgl_core::Lifter;

fn bench_table1(c: &mut Criterion) {
    let study = build_study(&StudySpec::mini(), 2022);
    let config = study_config();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    // Whole mini study (what the table1 binary does, scaled down).
    group.bench_function("mini_study", |b| {
        b.iter_batched(
            || (),
            |_| run_study(&study, &config),
            BatchSize::PerIteration,
        )
    });

    // One representative liftable binary and one library function.
    let bin_unit = study
        .units
        .iter()
        .find(|u| u.kind == UnitKind::Binary && u.expected == hgl_corpus::xen::ExpectedOutcome::Lifted)
        .expect("a binary unit");
    group.bench_function("lift_one_binary", |b| {
        b.iter(|| Lifter::new(&bin_unit.binary).with_config(config.clone()).lift_entry(bin_unit.binary.entry))
    });
    let lib_unit = study
        .units
        .iter()
        .find(|u| u.kind == UnitKind::LibraryFunction && u.expected == hgl_corpus::xen::ExpectedOutcome::Lifted)
        .expect("a library unit");
    group.bench_function("lift_one_library_fn", |b| {
        b.iter(|| Lifter::new(&lib_unit.binary).with_config(config.clone()).lift_entry(lib_unit.entry))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
