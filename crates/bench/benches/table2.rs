//! Table 2 benchmark: the full Step-1 + Step-2 pipeline per
//! CoreUtils-like binary — lift, Isabelle export, executable
//! validation.

use criterion::{criterion_group, criterion_main, Criterion};
use hgl_core::lift::LiftConfig;
use hgl_core::Lifter;
use hgl_corpus::coreutils;
use hgl_export::{export_theory, validate_lift, ValidateConfig};

fn bench_table2(c: &mut Criterion) {
    let built = coreutils::build_all(1);
    let config = LiftConfig::default();
    let vconfig = ValidateConfig { samples_per_edge: 4, ..ValidateConfig::default() };

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (spec, bin) in &built {
        group.bench_function(format!("lift/{}", spec.name), |b| b.iter(|| Lifter::new(bin).with_config(config.clone()).lift_entry(bin.entry)));
    }
    // Export + validation on the smallest and largest binaries.
    for name in ["wc", "tar"] {
        let (_, bin) = built.iter().find(|(s, _)| s.name == name).expect("exists");
        let lifted = Lifter::new(bin).with_config(config.clone()).lift_entry(bin.entry);
        group.bench_function(format!("export/{name}"), |b| {
            b.iter(|| export_theory(&lifted, name))
        });
        group.bench_function(format!("validate/{name}"), |b| {
            b.iter(|| validate_lift(bin, &lifted, &vconfig))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
