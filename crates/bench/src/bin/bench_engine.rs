//! Engine benchmark driver: sequential vs parallel whole-binary
//! lifting, cold vs warm solver cache, cold vs warm persistent store.
//!
//! Unlike the criterion benches (which regenerate the paper's tables),
//! this is a plain binary so CI can run it in seconds and gate on the
//! result:
//!
//! ```text
//! cargo run --release -p hgl-bench --bin bench-engine -- \
//!     [--quick] [--out BENCH_pr5.json] [--check]
//! ```
//!
//! `--quick` shrinks the corpus and repetition count for smoke runs;
//! `--check` exits non-zero if the parallel engine is more than 1.5x
//! slower than the sequential one (a regression gate, not a speedup
//! requirement: tiny corpora on loaded CI runners can legitimately
//! show no parallel win), or if a warm-store full-corpus re-lift
//! fails its speedup floor (5x on the full corpus, where artifact
//! reuse dominates; a no-regression gate in `--quick` mode), or if
//! cold-lift throughput (functions/second, sequential, no cache or
//! store) drops below 2x the pre-interning baseline pinned below —
//! the acceptance gate of the hot-path rebuild (arena-interned
//! expressions + table-driven decoder).

#![forbid(unsafe_code)]

use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_store::Store;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    Config {
        quick: args.iter().any(|a| a == "--quick"),
        out,
        check: args.iter().any(|a| a == "--check"),
    }
}

/// Cold-lift throughput (functions/second, sequential pass) measured
/// immediately before the hot-path rebuild, on the reference runner.
/// The `--check` gate requires `COLD_GATE` times these figures; the
/// rebuild's acceptance criterion is a 2x cold-lift speedup.
fn baseline_fns_per_sec(quick: bool) -> f64 {
    if quick {
        1886.1
    } else {
        1351.1
    }
}

const COLD_GATE: f64 = 2.0;

fn corpus(quick: bool) -> Vec<Binary> {
    let n = if quick { 6 } else { 24 };
    (0..n)
        .map(|i| gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2))
        .collect()
}

/// Minimum wall time of `reps` runs of `f`, after one untimed warm-up
/// run. The minimum is the noise-robust estimator: scheduling
/// interference only ever adds time.
fn measure(reps: usize, mut f: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut lifted = f();
    for _ in 0..reps {
        let t0 = Instant::now();
        lifted = f();
        best = best.min(t0.elapsed());
    }
    (best, lifted)
}

/// One full pass over the corpus: every binary through `lift_all`.
/// Returns total functions lifted (a cheap checksum that the runs did
/// equivalent work).
fn run_pass(bins: &[Binary], workers: usize) -> usize {
    bins.iter()
        .map(|b| {
            let report = Lifter::new(b).workers(workers).lift_all();
            report.result.functions.len()
        })
        .sum()
}

/// Cold-vs-warm cache: lift the same binary twice in one session; the
/// second run replays every solver query against the memoized cache.
/// Per binary we keep the fastest cold and fastest warm run out of
/// `reps` fresh sessions.
struct CacheBench {
    cold: Duration,
    warm: Duration,
    /// Solver-phase nanos of the cold run (cache empty).
    solver_cold: u64,
    /// Solver-phase nanos of the warm replay (every query a hit).
    solver_warm: u64,
    hit_rate: f64,
}

fn solver_nanos(lifter: &Lifter) -> u64 {
    lifter
        .metrics_snapshot()
        .phases
        .iter()
        .find(|p| p.phase.name() == "solver")
        .map_or(0, |p| p.nanos)
}

/// Stable phase names in pipeline order, as reported by the metrics
/// sink and emitted into the JSON document.
const PHASES: [&str; 5] = ["decode", "tau", "join", "solver", "export"];

/// One sequential cold pass per binary with the session metrics sink
/// read back: wall nanos per pipeline phase summed over the corpus.
/// This is where the hot-path rebuild shows up structurally — the
/// decode and join shares shrink, not just the total.
fn phase_pass(bins: &[Binary]) -> [u64; 5] {
    let mut totals = [0u64; 5];
    for b in bins {
        let lifter = Lifter::new(b).sequential();
        let _ = lifter.lift_all();
        for p in lifter.metrics_snapshot().phases {
            if let Some(i) = PHASES.iter().position(|n| *n == p.phase.name()) {
                totals[i] += p.nanos;
            }
        }
    }
    totals
}

fn cache_pass(bins: &[Binary], reps: usize) -> CacheBench {
    let mut out = CacheBench {
        cold: Duration::ZERO,
        warm: Duration::ZERO,
        solver_cold: 0,
        solver_warm: 0,
        hit_rate: 0.0,
    };
    let mut hits = 0u64;
    let mut misses = 0u64;
    for b in bins {
        let mut best_cold = Duration::MAX;
        let mut best_warm = Duration::MAX;
        for rep in 0..reps {
            let lifter = Lifter::new(b).sequential();
            let t0 = Instant::now();
            let _ = lifter.lift_all();
            best_cold = best_cold.min(t0.elapsed());
            let after_cold = solver_nanos(&lifter);
            let t1 = Instant::now();
            let _ = lifter.lift_all();
            best_warm = best_warm.min(t1.elapsed());
            if rep == 0 {
                // Session metrics accumulate, so the warm run's solver
                // share is the delta over the cold run's.
                out.solver_cold += after_cold;
                out.solver_warm += solver_nanos(&lifter).saturating_sub(after_cold);
                let snap = lifter.metrics_snapshot();
                hits += snap.cache.hits;
                misses += snap.cache.misses;
            }
        }
        out.cold += best_cold;
        out.warm += best_warm;
    }
    let total = hits + misses;
    out.hit_rate = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
    out
}

/// Cold-vs-warm persistent store: lift the whole corpus into a fresh
/// store directory (cold, includes the insert cost), then re-lift the
/// unchanged corpus through a fresh `Store` *and* a fresh `Lifter`
/// (warm: no session state survives, only the on-disk artifacts).
struct StoreBench {
    cold: Duration,
    warm: Duration,
    /// Store hits across one warm pass of the corpus.
    hits: u64,
    /// Objects on disk after the cold pass.
    objects: usize,
}

fn store_pass(bins: &[Binary], reps: usize) -> StoreBench {
    let root = std::env::temp_dir().join(format!("hgl-bench-store-{}", std::process::id()));
    let mut out = StoreBench { cold: Duration::ZERO, warm: Duration::ZERO, hits: 0, objects: 0 };
    for (i, b) in bins.iter().enumerate() {
        let dir = root.join(format!("bin{i}"));
        let mut best_cold = Duration::MAX;
        let mut best_warm = Duration::MAX;
        for rep in 0..reps {
            let _ = std::fs::remove_dir_all(&dir);
            let store = Store::open(&dir).expect("open bench store");
            let t0 = Instant::now();
            let cold_report = Lifter::new(b).with_store(&store).lift_all();
            best_cold = best_cold.min(t0.elapsed());

            let warm_store = Store::open(&dir).expect("reopen bench store");
            let t1 = Instant::now();
            let warm_report = Lifter::new(b).with_store(&warm_store).lift_all();
            best_warm = best_warm.min(t1.elapsed());
            assert_eq!(
                cold_report.result.functions.len(),
                warm_report.result.functions.len(),
                "warm store pass lifted a different function count"
            );
            if rep == 0 {
                out.hits += warm_report.metrics.store.map_or(0, |s| s.hits);
                out.objects += warm_store.object_count();
            }
        }
        out.cold += best_cold;
        out.warm += best_warm;
    }
    let _ = std::fs::remove_dir_all(&root);
    out
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let reps = if cfg.quick { 2 } else { 5 };
    let bins = corpus(cfg.quick);
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "bench-engine: {} binaries, {reps} rep(s), {workers} worker(s) available",
        bins.len()
    );

    let (seq, seq_fns) = measure(reps, || run_pass(&bins, 1));
    let (par, par_fns) = measure(reps, || run_pass(&bins, workers));
    assert_eq!(
        seq_fns, par_fns,
        "sequential and parallel passes lifted different function counts"
    );
    let speedup = seq.as_secs_f64() / par.as_secs_f64().max(1e-9);

    let cold_fns_per_sec = seq_fns as f64 / seq.as_secs_f64().max(1e-9);
    let baseline = baseline_fns_per_sec(cfg.quick);
    let cold_speedup = cold_fns_per_sec / baseline;
    let phases = phase_pass(&bins);
    let phase_total: u64 = phases.iter().sum();

    let cb = cache_pass(&bins, reps);
    let warm_speedup = cb.cold.as_secs_f64() / cb.warm.as_secs_f64().max(1e-9);
    let solver_speedup = cb.solver_cold as f64 / (cb.solver_warm as f64).max(1.0);

    let sb = store_pass(&bins, reps);
    let store_speedup = sb.cold.as_secs_f64() / sb.warm.as_secs_f64().max(1e-9);

    eprintln!("sequential: {seq:?}  parallel: {par:?}  speedup: {speedup:.2}x");
    eprintln!(
        "cold lift: {cold_fns_per_sec:.1} fns/s ({cold_speedup:.2}x of pre-interning \
         baseline {baseline:.1})"
    );
    for (name, ns) in PHASES.iter().zip(phases) {
        eprintln!(
            "  phase {name:>6}: {:>9}us ({:.1}%)",
            ns / 1000,
            100.0 * ns as f64 / (phase_total as f64).max(1.0)
        );
    }
    eprintln!(
        "cold cache: {:?}  warm cache: {:?}  warm speedup: {warm_speedup:.2}x",
        cb.cold, cb.warm
    );
    eprintln!(
        "solver phase: cold {}us, warm {}us ({solver_speedup:.2}x); hit rate {:.1}%",
        cb.solver_cold / 1000,
        cb.solver_warm / 1000,
        cb.hit_rate * 100.0
    );
    eprintln!(
        "store: cold {:?}  warm {:?}  speedup {store_speedup:.2}x ({} hits, {} objects)",
        sb.cold, sb.warm, sb.hits, sb.objects
    );

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"hgl-bench-pr7\",\n");
    doc.push_str("  \"version\": 1,\n");
    let _ = writeln!(doc, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(doc, "  \"binaries\": {},", bins.len());
    let _ = writeln!(doc, "  \"reps\": {reps},");
    let _ = writeln!(doc, "  \"workers\": {workers},");
    let _ = writeln!(doc, "  \"functions_lifted\": {seq_fns},");
    let _ = writeln!(doc, "  \"sequential_ns\": {},", seq.as_nanos());
    let _ = writeln!(doc, "  \"parallel_ns\": {},", par.as_nanos());
    let _ = writeln!(doc, "  \"cold_fns_per_sec\": {cold_fns_per_sec:.1},");
    let _ = writeln!(doc, "  \"baseline_cold_fns_per_sec\": {baseline:.1},");
    let _ = writeln!(doc, "  \"cold_speedup_vs_baseline\": {cold_speedup:.4},");
    doc.push_str("  \"phase_ns\": {\n");
    for (i, (name, ns)) in PHASES.iter().zip(phases).enumerate() {
        let comma = if i + 1 == PHASES.len() { "" } else { "," };
        let _ = writeln!(doc, "    \"{name}\": {ns}{comma}");
    }
    doc.push_str("  },\n");
    doc.push_str("  \"phase_share\": {\n");
    for (i, (name, ns)) in PHASES.iter().zip(phases).enumerate() {
        let comma = if i + 1 == PHASES.len() { "" } else { "," };
        let share = ns as f64 / (phase_total as f64).max(1.0);
        let _ = writeln!(doc, "    \"{name}\": {share:.4}{comma}");
    }
    doc.push_str("  },\n");
    let _ = writeln!(doc, "  \"parallel_speedup\": {speedup:.4},");
    let _ = writeln!(doc, "  \"cache_cold_ns\": {},", cb.cold.as_nanos());
    let _ = writeln!(doc, "  \"cache_warm_ns\": {},", cb.warm.as_nanos());
    let _ = writeln!(doc, "  \"cache_warm_speedup\": {warm_speedup:.4},");
    let _ = writeln!(doc, "  \"solver_cold_ns\": {},", cb.solver_cold);
    let _ = writeln!(doc, "  \"solver_warm_ns\": {},", cb.solver_warm);
    let _ = writeln!(doc, "  \"solver_warm_speedup\": {solver_speedup:.4},");
    let _ = writeln!(doc, "  \"cache_hit_rate\": {:.4},", cb.hit_rate);
    let _ = writeln!(doc, "  \"store_cold_ns\": {},", sb.cold.as_nanos());
    let _ = writeln!(doc, "  \"store_warm_ns\": {},", sb.warm.as_nanos());
    let _ = writeln!(doc, "  \"store_warm_speedup\": {store_speedup:.4},");
    let _ = writeln!(doc, "  \"store_hits\": {},", sb.hits);
    let _ = writeln!(doc, "  \"store_objects\": {}", sb.objects);
    doc.push_str("}\n");

    match &cfg.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("bench-engine: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench-engine: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if cfg.check && cold_fns_per_sec < COLD_GATE * baseline {
        eprintln!(
            "bench-engine: REGRESSION — cold lift {cold_fns_per_sec:.1} fns/s is only \
             {cold_speedup:.2}x of the pre-interning baseline {baseline:.1} \
             (gate: {COLD_GATE}x)"
        );
        return ExitCode::FAILURE;
    }
    if cfg.check && speedup < 1.0 / 1.5 {
        eprintln!(
            "bench-engine: REGRESSION — parallel engine {:.2}x slower than sequential (gate: 1.5x)",
            1.0 / speedup
        );
        return ExitCode::FAILURE;
    }
    // Full corpus: a warm store replays artifacts instead of
    // re-exploring. The floor was 5x when cold exploration was the
    // denominator's bulk; the hot-path rebuild more than halved cold
    // lifting while warm replay is already dominated by store reads
    // and artifact decoding, so the *ratio* floor drops to 2x even
    // though warm replay itself got no slower (it is gated in
    // absolute terms by the byte-identity suite re-reading the same
    // artifacts). Quick mode only gates against outright regression
    // (tiny binaries leave the fixed per-run costs dominant).
    let store_gate = if cfg.quick { 1.0 / 1.5 } else { 2.0 };
    if cfg.check && store_speedup < store_gate {
        eprintln!(
            "bench-engine: REGRESSION — warm store re-lift only {store_speedup:.2}x \
             faster than cold (gate: {store_gate}x)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
