//! Rewriting benchmark driver: identity-recompilation throughput,
//! shadow-stack instrumentation cost, and the price of per-artifact
//! verification (re-lift correspondence + differential traces).
//!
//! Like `bench-engine` and `bench-serve`, this is a plain binary so CI
//! can run it in seconds and archive the result:
//!
//! ```text
//! cargo run --release -p hgl-bench --bin bench-rewrite -- \
//!     [--quick] [--out BENCH_rewrite.json] [--check]
//! ```
//!
//! Three phases:
//!
//! 1. **identity** — lift a study corpus once, then re-encode every
//!    lifted instruction and re-emit (minimum-of-reps wall time).
//!    Every artifact must come back with `bytes_delta == 0`.
//! 2. **guarded** — the same corpus plus the corrupted-return fixture
//!    through the shadow-stack pass; counts guards actually inserted.
//! 3. **verify** — what `--verify` costs: per-artifact re-lift
//!    correspondence over the identity corpus, then a seeded
//!    differential campaign (identity and guarded modes) from the
//!    trace oracle.
//!
//! `--check` gates: identity rewriting succeeds with zero byte delta
//! on every corpus binary, every identity artifact re-lifts to an
//! equivalent graph, the guarded fixture gets at least one guard, and
//! both differential campaigns finish with zero divergences.

#![forbid(unsafe_code)]

use hgl_core::Lifter;
use hgl_corpus::failures::corrupted_return;
use hgl_corpus::xen::gen_study_binary;
use hgl_elf::Binary;
use hgl_oracle::{run_differential, DiffConfig, DiffReport};
use hgl_rewrite::{elf_image, rewrite, verify_relift, RewritePass, ShadowStackPass};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    Config {
        quick: args.iter().any(|a| a == "--quick"),
        out,
        check: args.iter().any(|a| a == "--check"),
    }
}

/// One lifted corpus binary, ready to be rewritten repeatedly.
struct Prepared {
    binary: Binary,
    lift: hgl_core::LiftResult,
}

fn prepare_corpus(quick: bool) -> Vec<Prepared> {
    let n = if quick { 4 } else { 8 };
    (0..n)
        .map(|i| {
            let binary = gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2);
            let lift = Lifter::new(&binary).lift_all().result;
            assert!(lift.is_lifted(), "study binary {i} must lift");
            Prepared { binary, lift }
        })
        .collect()
}

struct IdentityResult {
    binaries: usize,
    functions: u64,
    instructions: u64,
    min_wall: Duration,
    nonzero_delta: usize,
    refused: usize,
}

/// Phase 1: identity rewrite of every corpus binary, min-of-reps.
fn identity_phase(corpus: &[Prepared], reps: usize) -> IdentityResult {
    let mut min_wall = Duration::MAX;
    let mut functions = 0;
    let mut instructions = 0;
    let mut nonzero_delta = 0;
    let mut refused = 0;
    for rep in 0..reps {
        let t0 = Instant::now();
        let mut fns = 0;
        let mut instrs = 0;
        let mut bad_delta = 0;
        let mut fail = 0;
        for p in corpus {
            match rewrite(&p.binary, &p.lift, &[]) {
                Ok(out) => {
                    fns += out.stats.functions;
                    instrs += out.stats.instructions_reencoded;
                    if out.stats.bytes_delta != 0 {
                        bad_delta += 1;
                    }
                    // Serialisation is part of the pipeline being
                    // priced, not just the re-encode walk.
                    std::hint::black_box(elf_image(&out.binary));
                }
                Err(_) => fail += 1,
            }
        }
        min_wall = min_wall.min(t0.elapsed());
        if rep == 0 {
            functions = fns;
            instructions = instrs;
            nonzero_delta = bad_delta;
            refused = fail;
        }
    }
    IdentityResult {
        binaries: corpus.len(),
        functions,
        instructions,
        min_wall,
        nonzero_delta,
        refused,
    }
}

struct GuardedResult {
    binaries: usize,
    guards: u64,
    fixture_guards: u64,
    min_wall: Duration,
    refused: usize,
}

/// Phase 2: shadow-stack instrumentation over corpus + fixture.
fn guarded_phase(corpus: &[Prepared], reps: usize) -> GuardedResult {
    let fixture_bin = corrupted_return();
    let fixture_lift = Lifter::new(&fixture_bin).lift_all().result;
    assert!(fixture_lift.is_lifted(), "corrupted-return fixture must lift");
    let pass = ShadowStackPass;
    let passes: [&dyn RewritePass; 1] = [&pass];

    let mut min_wall = Duration::MAX;
    let mut guards = 0;
    let mut fixture_guards = 0;
    let mut refused = 0;
    for rep in 0..reps {
        let t0 = Instant::now();
        let mut g = 0;
        let mut fail = 0;
        for p in corpus {
            match rewrite(&p.binary, &p.lift, &passes) {
                Ok(out) => g += out.stats.guards_inserted,
                Err(_) => fail += 1,
            }
        }
        let fg = match rewrite(&fixture_bin, &fixture_lift, &passes) {
            Ok(out) => {
                g += out.stats.guards_inserted;
                out.stats.guards_inserted
            }
            Err(_) => {
                fail += 1;
                0
            }
        };
        min_wall = min_wall.min(t0.elapsed());
        if rep == 0 {
            guards = g;
            fixture_guards = fg;
            refused = fail;
        }
    }
    GuardedResult { binaries: corpus.len() + 1, guards, fixture_guards, min_wall, refused }
}

struct VerifyResult {
    relift_wall: Duration,
    relifts_ok: usize,
    relifts: usize,
    identity: DiffReport,
    identity_wall: Duration,
    guarded: DiffReport,
    guarded_wall: Duration,
}

/// Phase 3: what `--verify` costs — re-lift correspondence on every
/// identity artifact, then both differential campaign modes.
fn verify_phase(corpus: &[Prepared], quick: bool) -> VerifyResult {
    let t0 = Instant::now();
    let mut relifts_ok = 0;
    for p in corpus {
        let out = rewrite(&p.binary, &p.lift, &[]).expect("identity rewrite");
        let reparsed = Binary::parse(&elf_image(&out.binary)).expect("emitted ELF parses");
        if verify_relift(&p.lift, &reparsed).ok() {
            relifts_ok += 1;
        }
    }
    let relift_wall = t0.elapsed();

    let campaign = DiffConfig {
        programs: if quick { 10 } else { 30 },
        entries_per_program: if quick { 2 } else { 4 },
        ..DiffConfig::default()
    };
    let t1 = Instant::now();
    let identity = run_differential(&DiffConfig { relift_each: true, ..campaign });
    let identity_wall = t1.elapsed();
    let t2 = Instant::now();
    let guarded = run_differential(&DiffConfig { guarded: true, ..campaign });
    let guarded_wall = t2.elapsed();

    VerifyResult {
        relift_wall,
        relifts_ok,
        relifts: corpus.len(),
        identity,
        identity_wall,
        guarded,
        guarded_wall,
    }
}

fn per_second(count: u64, wall: Duration) -> f64 {
    count as f64 / wall.as_secs_f64().max(1e-9)
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let reps = if cfg.quick { 2 } else { 5 };

    eprintln!("bench-rewrite: lifting corpus...");
    let corpus = prepare_corpus(cfg.quick);

    eprintln!("bench-rewrite: identity phase ({reps} reps)...");
    let id = identity_phase(&corpus, reps);
    eprintln!(
        "identity: {} binaries, {} fn, {} instr in {:?} min-of-{reps} ({:.0} instr/s)",
        id.binaries,
        id.functions,
        id.instructions,
        id.min_wall,
        per_second(id.instructions, id.min_wall)
    );

    eprintln!("bench-rewrite: guarded phase ({reps} reps)...");
    let gd = guarded_phase(&corpus, reps);
    eprintln!(
        "guarded: {} binaries, {} guard(s) ({} on the fixture) in {:?} min-of-{reps}",
        gd.binaries, gd.guards, gd.fixture_guards, gd.min_wall
    );

    eprintln!("bench-rewrite: verify phase...");
    let vf = verify_phase(&corpus, cfg.quick);
    eprintln!(
        "verify: {}/{} re-lifts correspond in {:?}; identity campaign {} traces in {:?}; guarded campaign {} traces ({} guards) in {:?}",
        vf.relifts_ok,
        vf.relifts,
        vf.relift_wall,
        vf.identity.traces_run,
        vf.identity_wall,
        vf.guarded.traces_run,
        vf.guarded.guards_inserted,
        vf.guarded_wall
    );

    let divergences = usize::from(vf.identity.divergence.is_some())
        + usize::from(vf.guarded.divergence.is_some());

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"hgl-bench-rewrite\",\n");
    doc.push_str("  \"version\": 1,\n");
    let _ = writeln!(doc, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(doc, "  \"reps\": {reps},");
    let _ = writeln!(doc, "  \"corpus_binaries\": {},", id.binaries);
    let _ = writeln!(doc, "  \"identity_functions\": {},", id.functions);
    let _ = writeln!(doc, "  \"identity_instructions\": {},", id.instructions);
    let _ = writeln!(doc, "  \"identity_min_ns\": {},", id.min_wall.as_nanos());
    let _ = writeln!(
        doc,
        "  \"identity_instructions_per_s\": {:.0},",
        per_second(id.instructions, id.min_wall)
    );
    let _ = writeln!(doc, "  \"identity_nonzero_delta\": {},", id.nonzero_delta);
    let _ = writeln!(doc, "  \"identity_refused\": {},", id.refused);
    let _ = writeln!(doc, "  \"guarded_binaries\": {},", gd.binaries);
    let _ = writeln!(doc, "  \"guarded_min_ns\": {},", gd.min_wall.as_nanos());
    let _ = writeln!(doc, "  \"guards_inserted\": {},", gd.guards);
    let _ = writeln!(doc, "  \"fixture_guards\": {},", gd.fixture_guards);
    let _ = writeln!(doc, "  \"guarded_refused\": {},", gd.refused);
    let _ = writeln!(doc, "  \"verify_relift_ns\": {},", vf.relift_wall.as_nanos());
    let _ = writeln!(doc, "  \"verify_relifts_ok\": {},", vf.relifts_ok);
    let _ = writeln!(doc, "  \"campaign_identity_traces\": {},", vf.identity.traces_run);
    let _ = writeln!(doc, "  \"campaign_identity_ns\": {},", vf.identity_wall.as_nanos());
    let _ = writeln!(
        doc,
        "  \"campaign_identity_relifts_ok\": {},",
        vf.identity.relifts_ok
    );
    let _ = writeln!(doc, "  \"campaign_guarded_traces\": {},", vf.guarded.traces_run);
    let _ = writeln!(doc, "  \"campaign_guarded_ns\": {},", vf.guarded_wall.as_nanos());
    let _ = writeln!(doc, "  \"campaign_guards\": {},", vf.guarded.guards_inserted);
    let _ = writeln!(doc, "  \"divergences\": {divergences}");
    doc.push_str("}\n");

    match &cfg.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("bench-rewrite: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench-rewrite: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if cfg.check {
        if id.refused > 0 || id.nonzero_delta > 0 {
            eprintln!(
                "bench-rewrite: GATE FAILED — identity rewrite refused on {} and drifted on {} binary(ies)",
                id.refused, id.nonzero_delta
            );
            return ExitCode::FAILURE;
        }
        if vf.relifts_ok != vf.relifts {
            eprintln!(
                "bench-rewrite: GATE FAILED — {}/{} identity artifacts re-lift to an equivalent graph",
                vf.relifts_ok, vf.relifts
            );
            return ExitCode::FAILURE;
        }
        if gd.fixture_guards == 0 {
            eprintln!("bench-rewrite: GATE FAILED — corrupted-return fixture got no guard");
            return ExitCode::FAILURE;
        }
        if let Some(d) = &vf.identity.divergence {
            eprintln!("bench-rewrite: GATE FAILED — identity campaign diverged:\n{d}");
            return ExitCode::FAILURE;
        }
        if let Some(d) = &vf.guarded.divergence {
            eprintln!("bench-rewrite: GATE FAILED — guarded campaign diverged:\n{d}");
            return ExitCode::FAILURE;
        }
        if vf.identity.relifts_ok != vf.identity.programs_run {
            eprintln!(
                "bench-rewrite: GATE FAILED — campaign re-lift correspondence {}/{}",
                vf.identity.relifts_ok, vf.identity.programs_run
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench-rewrite: gates passed ({:.0} instr/s identity, {} guard(s), zero divergences)",
            per_second(id.instructions, id.min_wall),
            gd.guards
        );
    }
    ExitCode::SUCCESS
}
