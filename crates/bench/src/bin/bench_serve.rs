//! Daemon benchmark driver: request latency under steady load,
//! shedding behavior under saturation, and coalescing efficiency.
//!
//! Like `bench-engine`, this is a plain binary so CI can run it in
//! seconds and archive the result:
//!
//! ```text
//! cargo run --release -p hgl-bench --bin bench-serve -- \
//!     [--quick] [--out BENCH_serve.json] [--check]
//! ```
//!
//! Three phases, each against a fresh in-process daemon:
//!
//! 1. **steady** — a handful of clients replay a small corpus against
//!    a normally-sized daemon; per-request wall latency gives
//!    p50/p95/p99 (the warm path: after the first pass every request
//!    hits the shared solver cache and store).
//! 2. **saturation** — a deliberately tiny daemon (1 worker, short
//!    queue) is flooded with *distinct* binaries from many concurrent
//!    clients; the shed rate is `overloaded / total`, and totality is
//!    asserted (every request answered with a structured status).
//! 3. **coalescing** — many concurrent clients request the *same*
//!    binary; the coalescing hit-rate is `coalesced / total`.
//!
//! `--check` gates: zero unstructured answers anywhere, a non-zero
//! shed rate in phase 2, and a non-zero coalescing rate in phase 3.

#![forbid(unsafe_code)]

use hgl_corpus::inject::elf_image;
use hgl_corpus::xen::gen_study_binary;
use hgl_serve::{Client, Json, ServeConfig, Server};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    Config {
        quick: args.iter().any(|a| a == "--quick"),
        out,
        check: args.iter().any(|a| a == "--check"),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct SteadyResult {
    p50: Duration,
    p95: Duration,
    p99: Duration,
    requests: usize,
    unstructured: usize,
}

/// Phase 1: moderate concurrent load, small corpus, warm daemon.
fn steady_phase(quick: bool) -> SteadyResult {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind steady");
    let addr = server.local_addr().to_string();
    let corpus: Vec<Vec<u8>> = (0..if quick { 3 } else { 6 })
        .map(|i| elf_image(&gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2)))
        .collect();
    let clients = if quick { 2 } else { 4 };
    let rounds = if quick { 3 } else { 8 };

    let all: Vec<(Duration, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let corpus = &corpus;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(120))).expect("timeout");
                    let mut samples = Vec::new();
                    for round in 0..rounds {
                        for i in 0..corpus.len() {
                            // Stagger which binary each client starts
                            // on so the corpus interleaves.
                            let image = &corpus[(i + c + round) % corpus.len()];
                            let t0 = Instant::now();
                            let resp = client.lift(image, None, false).expect("lift answered");
                            let ok = resp.get("status").and_then(Json::as_str) == Some("ok");
                            samples.push((t0.elapsed(), ok));
                        }
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("steady client")).collect()
    });

    server.shutdown();
    server.join();

    let mut lat: Vec<Duration> = all.iter().filter(|(_, ok)| *ok).map(|(d, _)| *d).collect();
    lat.sort_unstable();
    SteadyResult {
        p50: percentile(&lat, 0.50),
        p95: percentile(&lat, 0.95),
        p99: percentile(&lat, 0.99),
        requests: all.len(),
        unstructured: all.iter().filter(|(_, ok)| !*ok).count(),
    }
}

struct SaturationResult {
    requests: usize,
    ok: usize,
    shed: usize,
    other_structured: usize,
    unstructured: usize,
    shed_rate: f64,
}

/// Phase 2: flood a tiny daemon with distinct binaries.
fn saturation_phase(quick: bool) -> SaturationResult {
    let config = ServeConfig { workers: 1, queue_capacity: 2, ..ServeConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind saturation");
    let addr = server.local_addr().to_string();
    let clients = if quick { 6 } else { 12 };
    let per_client = if quick { 2 } else { 4 };
    // Synchronized release: saturation requires simultaneous arrival,
    // not clients trickling in as fast as the worker drains them.
    let barrier = std::sync::Barrier::new(clients);

    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients as u64)
            .map(|c| {
                let addr = addr.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(120))).expect("timeout");
                    barrier.wait();
                    let mut out = Vec::new();
                    for i in 0..per_client as u64 {
                        let image =
                            elf_image(&gen_study_binary(0xBEEF ^ (c * 100 + i), false));
                        let resp = client.lift(&image, None, false).expect("answered");
                        out.push(
                            resp.get("status")
                                .and_then(Json::as_str)
                                .unwrap_or("<unstructured>")
                                .to_string(),
                        );
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("saturation client")).collect()
    });

    server.shutdown();
    server.join();

    let ok = statuses.iter().filter(|s| *s == "ok").count();
    let shed = statuses.iter().filter(|s| *s == "overloaded").count();
    let structured = ["ok", "overloaded", "deadline", "shutting_down", "internal", "bad_request"];
    let unstructured = statuses.iter().filter(|s| !structured.contains(&s.as_str())).count();
    SaturationResult {
        requests: statuses.len(),
        ok,
        shed,
        other_structured: statuses.len() - ok - shed - unstructured,
        unstructured,
        shed_rate: shed as f64 / statuses.len().max(1) as f64,
    }
}

struct CoalesceResult {
    requests: usize,
    coalesced: usize,
    unstructured: usize,
    rate: f64,
}

/// Phase 3: many clients, one binary, one slow worker.
fn coalesce_phase(quick: bool) -> CoalesceResult {
    let config = ServeConfig { workers: 1, queue_capacity: 64, ..ServeConfig::default() };
    let mut server = Server::bind("127.0.0.1:0", config).expect("bind coalesce");
    let addr = server.local_addr().to_string();
    let clients = if quick { 6 } else { 12 };
    let image = elf_image(&gen_study_binary(0xC0A1E5CE, true));
    // All clients connect first, then release their requests together:
    // the flood lands inside the leader's computation window, which is
    // what coalescing exists for.
    let barrier = std::sync::Barrier::new(clients);

    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let image = &image;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(120))).expect("timeout");
                    barrier.wait();
                    client.lift(image, None, false).expect("answered")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("coalesce client")).collect()
    });

    server.shutdown();
    server.join();

    let coalesced = responses
        .iter()
        .filter(|r| r.get("coalesced").and_then(Json::as_bool) == Some(true))
        .count();
    let unstructured = responses
        .iter()
        .filter(|r| r.get("status").and_then(Json::as_str).is_none())
        .count();
    CoalesceResult {
        requests: responses.len(),
        coalesced,
        unstructured,
        rate: coalesced as f64 / responses.len().max(1) as f64,
    }
}

fn main() -> ExitCode {
    let cfg = parse_args();
    eprintln!("bench-serve: steady phase...");
    let steady = steady_phase(cfg.quick);
    eprintln!(
        "steady: {} requests, p50 {:?}, p95 {:?}, p99 {:?}",
        steady.requests, steady.p50, steady.p95, steady.p99
    );
    eprintln!("bench-serve: saturation phase...");
    let sat = saturation_phase(cfg.quick);
    eprintln!(
        "saturation: {} requests — {} ok, {} shed ({:.1}%), {} other, {} unstructured",
        sat.requests,
        sat.ok,
        sat.shed,
        sat.shed_rate * 100.0,
        sat.other_structured,
        sat.unstructured
    );
    eprintln!("bench-serve: coalescing phase...");
    let co = coalesce_phase(cfg.quick);
    eprintln!(
        "coalescing: {} requests, {} coalesced ({:.1}%)",
        co.requests,
        co.coalesced,
        co.rate * 100.0
    );

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"hgl-bench-serve\",\n");
    doc.push_str("  \"version\": 1,\n");
    let _ = writeln!(doc, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(doc, "  \"steady_requests\": {},", steady.requests);
    let _ = writeln!(doc, "  \"latency_p50_ns\": {},", steady.p50.as_nanos());
    let _ = writeln!(doc, "  \"latency_p95_ns\": {},", steady.p95.as_nanos());
    let _ = writeln!(doc, "  \"latency_p99_ns\": {},", steady.p99.as_nanos());
    let _ = writeln!(doc, "  \"saturation_requests\": {},", sat.requests);
    let _ = writeln!(doc, "  \"saturation_ok\": {},", sat.ok);
    let _ = writeln!(doc, "  \"saturation_shed\": {},", sat.shed);
    let _ = writeln!(doc, "  \"shed_rate\": {:.4},", sat.shed_rate);
    let _ = writeln!(doc, "  \"coalesce_requests\": {},", co.requests);
    let _ = writeln!(doc, "  \"coalesce_hits\": {},", co.coalesced);
    let _ = writeln!(doc, "  \"coalesce_hit_rate\": {:.4},", co.rate);
    let unstructured = steady.unstructured + sat.unstructured + co.unstructured;
    let _ = writeln!(doc, "  \"unstructured_responses\": {unstructured}");
    doc.push_str("}\n");

    match &cfg.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("bench-serve: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench-serve: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if cfg.check {
        if unstructured > 0 {
            eprintln!("bench-serve: GATE FAILED — {unstructured} unstructured response(s)");
            return ExitCode::FAILURE;
        }
        if sat.shed == 0 {
            eprintln!("bench-serve: GATE FAILED — no shedding under saturation (admission control inert)");
            return ExitCode::FAILURE;
        }
        if co.coalesced == 0 {
            eprintln!("bench-serve: GATE FAILED — coalescing hit-rate is zero");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-serve: gates passed (shed rate {:.1}%, coalesce rate {:.1}%)",
            sat.shed_rate * 100.0, co.rate * 100.0);
    }
    ExitCode::SUCCESS
}
