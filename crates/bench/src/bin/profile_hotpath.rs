//! Profiling driver: loops one hot-path section (cold lift or warm
//! store replay) long enough for a sampling profiler to see it.
//!
//! ```text
//! cargo run --release -p hgl-bench --bin profile-hotpath -- cold 200
//! cargo run --release -p hgl-bench --bin profile-hotpath -- warmstore 200
//! ```

#![forbid(unsafe_code)]

use hgl_core::Lifter;
use hgl_corpus::xen::gen_study_binary;
use hgl_store::Store;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("cold");
    let iters: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let bins: Vec<_> =
        (0..24u64).map(|i| gen_study_binary(0x9e37_79b9_7f4a_7c15 ^ i, i % 3 == 2)).collect();

    match mode {
        "cold" => {
            let mut total = 0usize;
            for _ in 0..iters {
                for b in &bins {
                    total += Lifter::new(b).workers(1).lift_all().result.functions.len();
                }
            }
            eprintln!("cold: {total} functions");
        }
        "warmstore" => {
            let root = std::env::temp_dir().join(format!("hgl-prof-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            let store = Store::open(&root).expect("open store");
            for b in &bins {
                let _ = Lifter::new(b).with_store(&store).lift_all();
            }
            let mut total = 0usize;
            for _ in 0..iters {
                let warm = Store::open(&root).expect("reopen store");
                for b in &bins {
                    total += Lifter::new(b).with_store(&warm).lift_all().result.functions.len();
                }
            }
            let _ = std::fs::remove_dir_all(&root);
            eprintln!("warmstore: {total} functions");
        }
        other => {
            eprintln!("unknown mode {other}; use cold|warmstore");
            std::process::exit(2);
        }
    }
}
