//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index) or measures one of the design
//! choices called out there (memory-model insertion policy, the §4
//! join refinement, decoder throughput, solver query latency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hgl_asm::Asm;
use hgl_elf::Binary;
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};

/// Assemble the §2 weird-edge binary used across benches.
pub fn weird_edge_binary() -> Binary {
    let ins = Instr::new;
    let mut asm = Asm::new();
    asm.label("weird");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.jcc(Cond::A, "done");
    let load = ins(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(load, 1, "table");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::Mem(MemOperand::base_disp(Reg::Rsi, 0, Width::B8)), Operand::reg64(Reg::Rax)], Width::B8));
    let poison = ins(Mnemonic::Mov, vec![Operand::Mem(MemOperand::base_disp(Reg::Rdx, 0, Width::B8)), Operand::Imm(0)], Width::B8);
    asm.ins_imm_label_off(poison, 1, "carrier", 1);
    asm.ins(ins(Mnemonic::Jmp, vec![Operand::Mem(MemOperand::base_disp(Reg::Rsi, 0, Width::B8))], Width::B8));
    asm.label("t0");
    asm.ret();
    asm.label("t1");
    asm.ret();
    asm.label("done");
    asm.ret();
    asm.label("carrier");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0xc3)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["t0", "t1"]);
    asm.entry("weird").assemble().expect("assembles")
}
