//! Layered resource budgets for graceful degradation.
//!
//! The paper ran each unit with a single 4-hour wall clock; our original
//! driver mirrored that with one `Duration`. A single deadline cannot
//! distinguish *why* a unit was expensive, and it discards everything on
//! expiry. This module replaces it with a layered [`Budget`] — wall
//! clock, per-function step fuel, solver-query count and fork count —
//! tracked by a shared [`BudgetMeter`]. Exhausting any dimension stops
//! exploration *gracefully*: the partial Hoare Graph built so far is
//! kept, and every unexplored frontier address is annotated with
//! [`Annotation::BudgetFrontier`](crate::diag::Annotation::BudgetFrontier)
//! so the caller can see exactly where coverage stopped.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The budget dimension that ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BudgetDim {
    /// The wall-clock deadline passed.
    WallClock,
    /// A function consumed its per-function step fuel.
    Fuel,
    /// The global solver-query allowance ran out.
    SolverQueries,
    /// The global memory-model fork allowance ran out.
    Forks,
    /// A function exceeded its symbolic-state cap
    /// ([`ExploreLimits::max_states`](crate::explore::ExploreLimits::max_states)).
    States,
}

impl fmt::Display for BudgetDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetDim::WallClock => "wall clock",
            BudgetDim::Fuel => "step fuel",
            BudgetDim::SolverQueries => "solver queries",
            BudgetDim::Forks => "forks",
            BudgetDim::States => "symbolic states",
        };
        f.write_str(s)
    }
}

/// A record of one exhausted budget dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which dimension ran out.
    pub dimension: BudgetDim,
    /// Amount consumed when exploration stopped.
    pub used: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} budget exhausted ({}/{})", self.dimension, self.used, self.limit)
    }
}

/// Layered resource limits for one lift. `None` disables a dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole lift.
    pub wall_clock: Option<Duration>,
    /// Per-function symbolic step limit.
    pub max_fuel: Option<u64>,
    /// Global solver-query limit.
    pub max_solver_queries: Option<u64>,
    /// Global memory-model fork limit.
    pub max_forks: Option<u64>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            wall_clock: Some(Duration::from_secs(60)),
            max_fuel: None,
            max_solver_queries: None,
            max_forks: None,
        }
    }
}

impl Budget {
    /// A budget limited only by wall clock (the legacy `timeout` shape).
    pub fn from_timeout(timeout: Duration) -> Budget {
        Budget { wall_clock: Some(timeout), ..Budget::default() }
    }

    /// A budget with every dimension disabled (tests and harnesses).
    pub fn unlimited() -> Budget {
        Budget { wall_clock: None, max_fuel: None, max_solver_queries: None, max_forks: None }
    }
}

/// Shared consumption counters for one lift.
///
/// Counters are atomic so that read paths holding `&self` (notably
/// solver-context construction in `StepCtx`) can record consumption
/// without threading `&mut` borrows through the stepper, and so one
/// meter can be shared across the parallel engine's worker threads —
/// global dimensions (wall clock, solver queries, forks) are consumed
/// by all workers against a single allowance.
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    wall_clock: Option<Duration>,
    started: Instant,
    solver_queries: AtomicU64,
    forks: AtomicU64,
    max_solver_queries: Option<u64>,
    max_forks: Option<u64>,
}

impl BudgetMeter {
    /// Starts metering against `budget` from now.
    pub fn start(budget: &Budget) -> BudgetMeter {
        let started = Instant::now();
        BudgetMeter {
            deadline: budget.wall_clock.map(|d| started + d),
            wall_clock: budget.wall_clock,
            started,
            solver_queries: AtomicU64::new(0),
            forks: AtomicU64::new(0),
            max_solver_queries: budget.max_solver_queries,
            max_forks: budget.max_forks,
        }
    }

    /// Starts metering against `budget`, additionally clamped to an
    /// absolute `deadline` (requests served by `hgl serve` carry one).
    /// The effective wall-clock limit is the *tighter* of the budget's
    /// own dimension and the time remaining until the deadline, so a
    /// request deadline composes with a configured timeout instead of
    /// replacing it — and, critically, without changing the
    /// [`Budget`] itself (the configuration
    /// [`Fingerprint`](crate::Fingerprint) is deadline-independent, so
    /// deadline-carrying requests still share warm caches and stores).
    pub fn start_with_deadline(budget: &Budget, deadline: Option<Instant>) -> BudgetMeter {
        let mut meter = BudgetMeter::start(budget);
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(meter.started);
            let tighter = match meter.wall_clock {
                Some(w) => w.min(remaining),
                None => remaining,
            };
            meter.wall_clock = Some(tighter);
            meter.deadline = Some(meter.started + tighter);
        }
        meter
    }

    /// Records one solver query.
    pub fn count_solver_query(&self) {
        self.solver_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` memory-model forks.
    pub fn count_forks(&self, n: u64) {
        self.forks.fetch_add(n, Ordering::Relaxed);
    }

    /// Solver queries recorded so far.
    pub fn solver_queries(&self) -> u64 {
        self.solver_queries.load(Ordering::Relaxed)
    }

    /// Forks recorded so far.
    pub fn forks(&self) -> u64 {
        self.forks.load(Ordering::Relaxed)
    }

    /// Checks every *global* dimension (wall clock, solver queries,
    /// forks); per-function fuel and states are checked by the
    /// exploration owning the function.
    pub fn check_global(&self) -> Option<BudgetExhausted> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                let limit = self.wall_clock.unwrap_or(Duration::ZERO);
                return Some(BudgetExhausted {
                    dimension: BudgetDim::WallClock,
                    used: self.started.elapsed().as_millis() as u64,
                    limit: limit.as_millis() as u64,
                });
            }
        }
        if let Some(max) = self.max_solver_queries {
            let used = self.solver_queries.load(Ordering::Relaxed);
            if used >= max {
                return Some(BudgetExhausted {
                    dimension: BudgetDim::SolverQueries,
                    used,
                    limit: max,
                });
            }
        }
        if let Some(max) = self.max_forks {
            let used = self.forks.load(Ordering::Relaxed);
            if used >= max {
                return Some(BudgetExhausted { dimension: BudgetDim::Forks, used, limit: max });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let meter = BudgetMeter::start(&Budget::unlimited());
        meter.count_solver_query();
        meter.count_forks(1_000_000);
        assert_eq!(meter.check_global(), None);
    }

    #[test]
    fn solver_query_limit_trips() {
        let budget = Budget { max_solver_queries: Some(3), ..Budget::unlimited() };
        let meter = BudgetMeter::start(&budget);
        assert_eq!(meter.check_global(), None);
        for _ in 0..3 {
            meter.count_solver_query();
        }
        let ex = meter.check_global().expect("exhausted");
        assert_eq!(ex.dimension, BudgetDim::SolverQueries);
        assert_eq!((ex.used, ex.limit), (3, 3));
    }

    #[test]
    fn expired_wall_clock_trips() {
        let budget = Budget { wall_clock: Some(Duration::ZERO), ..Budget::unlimited() };
        let meter = BudgetMeter::start(&budget);
        std::thread::sleep(Duration::from_millis(2));
        let ex = meter.check_global().expect("exhausted");
        assert_eq!(ex.dimension, BudgetDim::WallClock);
    }

    #[test]
    fn deadline_tightens_wall_clock() {
        // A far-future configured timeout with an already-passed
        // deadline trips immediately.
        let budget = Budget { wall_clock: Some(Duration::from_secs(3600)), ..Budget::unlimited() };
        let meter = BudgetMeter::start_with_deadline(&budget, Some(Instant::now()));
        std::thread::sleep(Duration::from_millis(2));
        let ex = meter.check_global().expect("exhausted");
        assert_eq!(ex.dimension, BudgetDim::WallClock);
    }

    #[test]
    fn deadline_never_loosens_wall_clock() {
        // A generous deadline must not extend a zero wall clock.
        let budget = Budget { wall_clock: Some(Duration::ZERO), ..Budget::unlimited() };
        let meter = BudgetMeter::start_with_deadline(
            &budget,
            Some(Instant::now() + Duration::from_secs(3600)),
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(meter.check_global().is_some());
    }

    #[test]
    fn no_deadline_is_plain_start() {
        let meter = BudgetMeter::start_with_deadline(&Budget::unlimited(), None);
        assert_eq!(meter.check_global(), None);
    }

    #[test]
    fn display_forms() {
        let ex = BudgetExhausted { dimension: BudgetDim::Fuel, used: 10, limit: 10 };
        assert_eq!(ex.to_string(), "step fuel budget exhausted (10/10)");
    }
}
