//! Verification errors, unsoundness annotations and proof obligations.

use crate::budget::BudgetDim;
use hgl_expr::Expr;
use hgl_solver::{Assumption, Region};
use hgl_x86::Reg;
use std::collections::BTreeSet;
use std::fmt;

/// Reasons why lifting *rejects* a function (no Hoare Graph produced).
///
/// These correspond to the second column of Table 1: unprovable return
/// addresses, calling-convention violations, and the related §5.3
/// failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// At a `ret`, the predicate could not prove that the return
    /// address at `*[rsp0, 8]` is unmodified.
    UnprovableReturnAddress {
        /// Address of the `ret`.
        addr: u64,
        /// What the return slot evaluates to (⊥ if destroyed).
        found: Expr,
    },
    /// At a `ret`, the stack pointer is not `rsp0 + 8` (§5.3's
    /// non-standard stack-pointer restoration, or stack probing).
    NonStandardStackRestore {
        /// Address of the `ret`.
        addr: u64,
        /// The symbolic stack-pointer value.
        rsp: Expr,
    },
    /// A callee-saved register was not restored (calling-convention
    /// adherence).
    CallingConventionViolation {
        /// Address of the `ret`.
        addr: u64,
        /// The offending register.
        reg: Reg,
        /// Its symbolic value at return.
        found: Expr,
    },
    /// A write may touch the region holding the return address
    /// (return-address integrity cannot be proven; §1 "as soon as a
    /// memory write occurs… the function is rejected").
    ReturnAddressClobbered {
        /// Address of the writing instruction.
        addr: u64,
        /// The written region.
        region: Region,
    },
    /// Instruction bytes at a reachable address failed to decode.
    Undecodable {
        /// The address.
        addr: u64,
        /// Decoder message.
        message: String,
    },
    /// Control flow left the executable sections.
    JumpOutsideText {
        /// Source instruction.
        addr: u64,
        /// The bogus target.
        target: u64,
    },
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationError::UnprovableReturnAddress { addr, found } => {
                write!(f, "@{addr:#x}: return address not provably intact (slot holds {found})")
            }
            VerificationError::NonStandardStackRestore { addr, rsp } => {
                write!(f, "@{addr:#x}: RSP not restored to RSP0 + 8 (RSP == {rsp})")
            }
            VerificationError::CallingConventionViolation { addr, reg, found } => {
                write!(f, "@{addr:#x}: callee-saved {reg} not restored ({reg} == {found})")
            }
            VerificationError::ReturnAddressClobbered { addr, region } => {
                write!(f, "@{addr:#x}: write to {region} may clobber the return address")
            }
            VerificationError::Undecodable { addr, message } => {
                write!(f, "@{addr:#x}: undecodable instruction: {message}")
            }
            VerificationError::JumpOutsideText { addr, target } => {
                write!(f, "@{addr:#x}: control transfer to non-code address {target:#x}")
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Unsoundness annotations (Algorithm 1, line 13): exploration stopped
/// because an indirection could not be bounded. Columns B and C of
/// Table 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Annotation {
    /// An indirect `jmp` whose target set could not be bounded.
    UnresolvedJump {
        /// Address of the jump.
        addr: u64,
        /// The symbolic target.
        target: Expr,
    },
    /// An indirect `call` whose callee could not be determined
    /// (typically a callback; §5.1).
    UnresolvedCall {
        /// Address of the call.
        addr: u64,
        /// The symbolic target.
        target: Expr,
    },
    /// Exploration stopped at this address because a resource budget
    /// ran out; the Hoare Graph covers everything up to here but the
    /// states queued at `addr` were never stepped.
    BudgetFrontier {
        /// Address of the unexplored frontier state.
        addr: u64,
        /// The exhausted dimension.
        dimension: BudgetDim,
    },
}

impl Annotation {
    /// Address of the annotated instruction.
    pub fn addr(&self) -> u64 {
        match self {
            Annotation::UnresolvedJump { addr, .. }
            | Annotation::UnresolvedCall { addr, .. }
            | Annotation::BudgetFrontier { addr, .. } => *addr,
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::UnresolvedJump { addr, target } => {
                write!(f, "@{addr:#x}: unresolved indirect jump to {target}")
            }
            Annotation::UnresolvedCall { addr, target } => {
                write!(f, "@{addr:#x}: unresolved indirect call to {target}")
            }
            Annotation::BudgetFrontier { addr, dimension } => {
                write!(f, "@{addr:#x}: unexplored frontier ({dimension} budget exhausted)")
            }
        }
    }
}

/// A proof obligation on an external function (§5.3):
/// `@400701: memset(RDI := RSP0 - 40) MUST PRESERVE [RSP0 - 8, 16]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofObligation {
    /// The call site.
    pub call_site: u64,
    /// Name of the external function.
    pub callee: String,
    /// Argument registers whose values point into the caller frame.
    pub frame_args: Vec<(Reg, Expr)>,
    /// Regions the callee must preserve (always includes the return
    /// address slot and saved non-volatile spill slots).
    pub must_preserve: Vec<Region>,
}

impl fmt::Display for ProofObligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}: {}(", self.call_site, self.callee)?;
        for (i, (r, v)) in self.frame_args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} := {v}", r.name64().to_uppercase())?;
        }
        write!(f, ") MUST PRESERVE")?;
        for (i, region) in self.must_preserve.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {region}")?;
        }
        Ok(())
    }
}

/// Aggregated diagnostics of one lifted function.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Unsoundness annotations.
    pub annotations: Vec<Annotation>,
    /// External-function proof obligations.
    pub obligations: Vec<ProofObligation>,
    /// Memory-space assumptions used by the solver.
    pub assumptions: Vec<Assumption>,
    /// Fatal verification errors (function rejected if non-empty).
    pub verification_errors: Vec<VerificationError>,
    /// Count of successfully bounded indirections (column A of
    /// Table 1).
    pub resolved_indirections: usize,
    /// `(addr, size)` of every image byte range the lift *read* while
    /// stepping: read-only constant loads and enumerated jump-table
    /// entries. Together with the decoded instruction extent this is
    /// the exact byte footprint a persisted artifact depends on — the
    /// content hash of the artifact store covers both.
    pub image_reads: BTreeSet<(u64, u8)>,
}

impl Diagnostics {
    /// Record an assumption once (dedup by equality).
    pub fn assume(&mut self, a: Assumption) {
        if !self.assumptions.contains(&a) {
            self.assumptions.push(a);
        }
    }

    /// Record an annotation once.
    pub fn annotate(&mut self, a: Annotation) {
        if !self.annotations.contains(&a) {
            self.annotations.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::Sym;

    #[test]
    fn obligation_display_matches_paper_format() {
        let rsp0 = Expr::sym(Sym::Init(Reg::Rsp));
        let ob = ProofObligation {
            call_site: 0x400701,
            callee: "memset".to_string(),
            frame_args: vec![(Reg::Rdi, rsp0.sub(Expr::imm(40)))],
            must_preserve: vec![Region::stack(-8, 16)],
        };
        let s = ob.to_string();
        assert!(s.starts_with("@0x400701: memset(RDI := "), "{s}");
        assert!(s.contains("MUST PRESERVE"), "{s}");
    }

    #[test]
    fn annotation_display() {
        let a = Annotation::UnresolvedCall { addr: 0x1000, target: Expr::bottom() };
        assert_eq!(a.to_string(), "@0x1000: unresolved indirect call to ⊥");
        assert_eq!(a.addr(), 0x1000);
    }

    #[test]
    fn diagnostics_dedup() {
        let mut d = Diagnostics::default();
        let a = Annotation::UnresolvedJump { addr: 1, target: Expr::bottom() };
        d.annotate(a.clone());
        d.annotate(a);
        assert_eq!(d.annotations.len(), 1);
    }
}
