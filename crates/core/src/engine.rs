//! The parallel whole-binary lifting engine and the [`Lifter`] session
//! API.
//!
//! A [`Lifter`] is one lifting *session* over one binary: it owns the
//! shared solver-query memo table ([`QueryCache`]) and the phase-level
//! [`Metrics`] sink, and exposes two drivers —
//!
//! - [`Lifter::lift_entry`]: the legacy single-entry driver (the
//!   "Binaries" / "Library functions" modes of Table 1), exploring the
//!   call closure of one address sequentially;
//! - [`Lifter::lift_all`]: the whole-binary engine, which discovers
//!   every function entry (the ELF entry point, defined function
//!   symbols, and the call-target closure) and lifts them on a
//!   work-stealing worker pool.
//!
//! # Determinism
//!
//! `lift_all` is *bulk-synchronous*: each round runs every function
//! with bag work to quiescence in parallel, then a single coordinator
//! discovers new callees and activates pending returns in sorted
//! address order. Because functions are explored context-free (§4.2.2)
//! — no symbolic state ever flows between two functions — and each
//! function owns a private fresh-symbol counter, a function's Hoare
//! Graph depends only on the binary and the config, never on worker
//! scheduling. `lift_all` with N workers is therefore byte-identical to
//! `lift_all` with one worker, *except* when a global budget dimension
//! (wall clock, solver queries, forks) trips mid-round: exhaustion
//! points depend on timing by nature. The determinism test in
//! `tests/engine.rs` pins the unlimited-budget guarantee.
//!
//! # Memoization soundness
//!
//! All workers share one [`QueryCache`] attached to every solver
//! context of the session. The cache key canonicalizes exactly the
//! inputs `hgl_solver::decide` reads — see `crates/solver/src/cache.rs`
//! — so a hit returns the answer the solver would have computed.

use crate::budget::BudgetMeter;
use crate::explore::{ExploreCx, FnExploration};
use crate::fingerprint::Fingerprint;
use crate::lift::{
    assemble, concurrency_reject, isolated, lift_bytes_impl, lift_from, panic_message,
    reject_of_exhaustion, FnLift, LiftConfig, LiftResult,
};
use crate::metrics::{Metrics, MetricsSnapshot, Phase};
use crate::store_api::ArtifactStore;
use hgl_elf::Binary;
use hgl_solver::{Layout, QueryCache};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The number of workers the engine uses when none is requested.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A lifting session over one binary.
///
/// ```
/// use hgl_asm::Asm;
/// use hgl_core::{Lifter, LiftConfig};
/// use hgl_x86::{Instr, Mnemonic, Operand, Reg, Width};
///
/// let mut asm = Asm::new();
/// asm.label("main");
/// asm.ins(Instr::new(Mnemonic::Xor,
///     vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
///     Width::B4));
/// asm.ret();
/// let bin = asm.entry("main").assemble()?;
///
/// let report = Lifter::new(&bin).with_config(LiftConfig::default()).lift_all();
/// assert!(report.is_lifted());
/// assert_eq!(report.roots, vec![bin.entry]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Lifter<'b> {
    binary: &'b Binary,
    config: LiftConfig,
    workers: usize,
    cache: Arc<QueryCache>,
    metrics: Metrics,
    /// Persistent artifact store for incremental re-lifting, if any.
    store: Option<&'b dyn ArtifactStore>,
    /// Absolute deadline composed into every lift's budget, if any.
    deadline: Option<Instant>,
    /// Wall time accumulated by this session's lifts, in nanoseconds.
    elapsed: AtomicU64,
}

/// The digest a session's solver cache is bound to: configuration
/// fingerprint *plus* the binary's text/data layout. The cache key
/// (`crates/solver/src/cache.rs`) deliberately omits the layout — it is
/// constant within one session — so a cache shared *across* sessions
/// (the `hgl serve` warm path) is sound only if re-binding flushes it
/// whenever the layout changes. Folding the layout into the bound
/// digest makes that automatic: same binary + same config → warm
/// replay, anything else → flush.
fn cache_scope(fp: &Fingerprint, binary: &Binary) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&fp.digest64().to_le_bytes());
    for (lo, hi) in binary.text_ranges().into_iter().chain(binary.data_ranges()) {
        bytes.extend_from_slice(&lo.to_le_bytes());
        bytes.extend_from_slice(&hi.to_le_bytes());
    }
    crate::fingerprint::fnv1a(&bytes)
}

impl<'b> Lifter<'b> {
    /// Opens a session on `binary` with a default config and an
    /// automatic worker count.
    pub fn new(binary: &'b Binary) -> Lifter<'b> {
        Lifter {
            binary,
            config: LiftConfig::default(),
            workers: 0,
            cache: Arc::new(QueryCache::new()),
            metrics: Metrics::new(),
            store: None,
            deadline: None,
            elapsed: AtomicU64::new(0),
        }
    }

    /// Shares an existing solver-query cache with this session instead
    /// of creating a fresh one. This is how a long-running server keeps
    /// the cache warm across requests: repeat lifts of the same binary
    /// under the same configuration replay memoized verdicts. Soundness
    /// is preserved by scope binding — every lift re-binds the cache to
    /// a digest of (configuration fingerprint ‖ binary layout) and the
    /// cache flushes itself whenever that digest changes, so verdicts
    /// never leak between binaries whose layouts differ.
    pub fn with_cache(mut self, cache: Arc<QueryCache>) -> Lifter<'b> {
        self.cache = cache;
        self
    }

    /// Sets an absolute deadline for this session's lifts. The deadline
    /// composes with the configured [`Budget`](crate::Budget): the
    /// effective wall clock is the tighter of the two, so an expiring
    /// request degrades gracefully to a partial Hoare Graph with
    /// `BudgetFrontier` annotations exactly like a configured timeout.
    /// Unlike tightening `budget.wall_clock`, a deadline does **not**
    /// change the configuration [`Fingerprint`](crate::Fingerprint), so
    /// deadline-carrying requests still share warm solver caches and
    /// persistent stores.
    pub fn with_deadline(mut self, deadline: Instant) -> Lifter<'b> {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a persistent artifact store, turning [`Lifter::lift_all`]
    /// into an *incremental* re-lift: every discovered root is looked up
    /// before lifting, confirmed hits are replayed instead of explored,
    /// and freshly computed artifacts are written back. The session's
    /// solver cache is bound to the configuration
    /// [`Fingerprint`](crate::Fingerprint); re-using one session across
    /// configs flushes it.
    pub fn with_store(mut self, store: &'b dyn ArtifactStore) -> Lifter<'b> {
        self.store = Some(store);
        self
    }

    /// Replaces the session's lifting configuration.
    pub fn with_config(mut self, config: LiftConfig) -> Lifter<'b> {
        self.config = config;
        self
    }

    /// Requests `n` worker threads for [`Lifter::lift_all`]
    /// (`0` = automatic, one per available core).
    pub fn workers(mut self, n: usize) -> Lifter<'b> {
        self.workers = n;
        self
    }

    /// Forces single-threaded operation (equivalent to `.workers(1)`);
    /// the reference mode for determinism checks.
    pub fn sequential(self) -> Lifter<'b> {
        self.workers(1)
    }

    /// The worker count `lift_all` will actually use.
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        }
    }

    /// The session's lifting configuration.
    pub fn config(&self) -> &LiftConfig {
        &self.config
    }

    /// The session's shared solver-query cache.
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Freezes the session's metrics: per-phase timings, gauges summed
    /// over every lift run so far, and the solver cache's counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            Some(self.cache.stats()),
            self.resolved_workers(),
            Duration::from_nanos(self.elapsed.load(Ordering::Relaxed)),
        )
    }

    /// Parse raw bytes as an ELF image and lift it from its entry
    /// point in a one-shot session. Malformed images yield
    /// `RejectReason::MalformedBinary`, never a crash.
    pub fn from_bytes(bytes: &[u8], config: &LiftConfig) -> LiftResult {
        lift_bytes_impl(bytes, config)
    }

    /// Lift the call closure of one entry address with the sequential
    /// driver, sharing this session's solver cache and metrics.
    pub fn lift_entry(&self, entry: u64) -> LiftResult {
        let fp = Fingerprint::of(&self.config);
        self.cache.bind_fingerprint(cache_scope(&fp, self.binary));
        let result = isolated("lift", || {
            lift_from(
                self.binary,
                entry,
                &self.config,
                self.deadline,
                Some(&self.cache),
                Some(&self.metrics),
            )
        });
        self.account(&result);
        result
    }

    /// Lift every discovered function of the binary on the parallel
    /// engine.
    ///
    /// Entry discovery seeds the ELF entry point plus every defined
    /// function symbol inside an executable segment; internal
    /// call targets are then added transitively as exploration finds
    /// them, exactly as in the single-entry driver.
    /// With a store attached (see [`Lifter::with_store`]), `lift_all`
    /// runs incrementally: confirmed cached artifacts are merged into
    /// the result without re-exploration, and only functions whose
    /// bytes, config or callee dependencies changed are lifted fresh.
    pub fn lift_all(&self) -> BinaryLiftReport {
        let started = Instant::now();
        let fp = Fingerprint::of(&self.config);
        self.cache.bind_fingerprint(cache_scope(&fp, self.binary));
        let roots = self.discover_roots();
        let cached = match self.store {
            Some(store) => self.preload(store, &fp, &roots),
            None => BTreeMap::new(),
        };
        let cached_keys: BTreeSet<u64> = cached.keys().copied().collect();
        let result = isolated("engine", || self.run_engine(&roots, cached));
        if let Some(store) = self.store {
            // Persist fresh artifacts — but only from a run whose
            // verdicts are intrinsic: a global budget trip leaves
            // `returns`/frontier state premature, so nothing from such
            // a run may enter the store.
            if result.binary_reject.is_none() {
                for f in result.functions.values() {
                    if !cached_keys.contains(&f.entry) && f.is_storable() {
                        store.insert(self.binary, &fp, f);
                    }
                }
            }
        }
        self.account(&result);
        let mut metrics =
            self.metrics.snapshot(Some(self.cache.stats()), self.resolved_workers(), started.elapsed());
        metrics.store = self.store.map(|s| s.stats());
        BinaryLiftReport { roots, result, metrics }
    }

    /// Phase A of an incremental re-lift: fetch cached artifacts for
    /// every root (and, transitively, their callee dependencies), then
    /// *confirm* them by fixpoint — an artifact is usable only if every
    /// callee it depends on is itself confirmed with the same return
    /// verdict it had when the artifact was computed. Demoted artifacts
    /// are dropped and their functions re-lifted by the engine.
    fn preload(
        &self,
        store: &dyn ArtifactStore,
        fp: &Fingerprint,
        roots: &[u64],
    ) -> BTreeMap<u64, FnLift> {
        let mut fetched: BTreeMap<u64, FnLift> = BTreeMap::new();
        let mut queue: VecDeque<u64> = roots.to_vec().into();
        let mut seen: BTreeSet<u64> = queue.iter().copied().collect();
        while let Some(addr) = queue.pop_front() {
            if let Some(f) = store.lookup(self.binary, fp, addr) {
                for &c in f.callee_deps.keys() {
                    if seen.insert(c) {
                        queue.push_back(c);
                    }
                }
                fetched.insert(addr, f);
            }
        }
        let mut confirmed: BTreeSet<u64> = fetched.keys().copied().collect();
        loop {
            let demoted: Vec<u64> = confirmed
                .iter()
                .copied()
                .filter(|a| {
                    fetched[a].callee_deps.iter().any(|(c, consumed)| {
                        !confirmed.contains(c)
                            || fetched.get(c).map(|f| f.returns) != Some(*consumed)
                    })
                })
                .collect();
            if demoted.is_empty() {
                break;
            }
            for a in demoted {
                confirmed.remove(&a);
            }
        }
        fetched.retain(|a, _| confirmed.contains(a));
        fetched
    }

    /// Folds one lift's totals into the session gauges.
    fn account(&self, result: &LiftResult) {
        self.elapsed.fetch_add(result.elapsed.as_nanos() as u64, Ordering::Relaxed);
        let lifted = result.functions.values().filter(|f| f.is_lifted()).count() as u64;
        let rejected = result.functions.len() as u64 - lifted;
        self.metrics.add_gauges(
            result.state_count() as u64,
            result.instruction_count() as u64,
            lifted,
            rejected,
        );
    }

    /// The root entry set: the ELF entry point plus every defined
    /// function symbol that lies in executable memory, sorted.
    fn discover_roots(&self) -> Vec<u64> {
        let mut roots: Vec<u64> = Vec::new();
        if self.binary.is_code(self.binary.entry) {
            roots.push(self.binary.entry);
        }
        for &addr in self.binary.symbols.keys() {
            if self.binary.is_code(addr) && !self.binary.externals.contains_key(&addr) {
                roots.push(addr);
            }
        }
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// The bulk-synchronous round loop (see the module docs). `cached`
    /// holds store artifacts confirmed by [`Lifter::preload`]: no slot
    /// is created for them, callees resolving to them are not
    /// materialised, and their proven returns are pre-seeded so callers
    /// wake up exactly as if the callee had been explored this run.
    fn run_engine(&self, roots: &[u64], cached: BTreeMap<u64, FnLift>) -> LiftResult {
        let start = Instant::now();
        let mut result = LiftResult::default();
        if let Some(reject) = concurrency_reject(self.binary) {
            result.binary_reject = Some(reject);
            result.elapsed = start.elapsed();
            return result;
        }

        let layout =
            Arc::new(Layout { text: self.binary.text_ranges(), data: self.binary.data_ranges() });
        let meter = BudgetMeter::start_with_deadline(&self.config.budget, self.deadline);
        let workers = self.resolved_workers();

        let mut slots: BTreeMap<u64, FnSlot> = roots
            .iter()
            .filter(|a| !cached.contains_key(a))
            .map(|&a| (a, FnSlot { e: FnExploration::new(a), fresh: 0, internal_error: None }))
            .collect();
        let mut returns_propagated: Vec<u64> =
            cached.values().filter(|f| f.returns).map(|f| f.entry).collect();

        loop {
            if let Some(ex) = meter.check_global() {
                for s in slots.values_mut() {
                    if !s.e.bag.is_empty() {
                        s.e.mark_frontier(ex);
                    }
                }
                result.binary_reject = Some(reject_of_exhaustion(&ex));
                break;
            }
            let runnable: Vec<u64> = slots
                .iter()
                .filter(|(_, s)| {
                    !s.e.bag.is_empty() && s.e.rejected.is_none() && s.internal_error.is_none()
                })
                .map(|(a, _)| *a)
                .collect();
            if !runnable.is_empty() {
                self.metrics.count_round();
                self.run_round(&mut slots, &runnable, &layout, &meter, workers);
                continue;
            }

            // Quiescent: sequential coordination, in sorted order.
            // 1. Materialise explorations for newly discovered callees.
            let mut new_callees = Vec::new();
            for s in slots.values() {
                for c in s.e.pending_callees() {
                    if !slots.contains_key(&c) && !cached.contains_key(&c) {
                        new_callees.push(c);
                    }
                }
            }
            if !new_callees.is_empty() {
                for c in new_callees {
                    slots
                        .entry(c)
                        .or_insert_with(|| FnSlot { e: FnExploration::new(c), fresh: 0, internal_error: None });
                }
                continue;
            }
            // 2. Activate pendings created after their callee's return
            //    was first propagated.
            let mut activated = false;
            for callee in returns_propagated.clone() {
                for s in slots.values_mut() {
                    let before = s.e.bag.len();
                    s.e.activate_returns_from(callee);
                    activated |= s.e.bag.len() != before;
                }
            }
            if activated {
                continue;
            }
            // 3. Propagate newly proven returns.
            let newly: Vec<u64> = slots
                .iter()
                .filter(|(a, s)| s.e.returns && !returns_propagated.contains(a))
                .map(|(a, _)| *a)
                .collect();
            if newly.is_empty() {
                break; // fixpoint
            }
            for callee in newly {
                returns_propagated.push(callee);
                for s in slots.values_mut() {
                    s.e.activate_returns_from(callee);
                }
            }
        }

        let mut explorations = BTreeMap::new();
        let mut internal_errors = BTreeMap::new();
        for (addr, s) in slots {
            if let Some(message) = s.internal_error {
                internal_errors.insert(addr, message);
            }
            explorations.insert(addr, s.e);
        }
        self.metrics.time(Phase::Export, || {
            assemble(explorations, internal_errors, cached, &mut result);
        });
        result.elapsed = start.elapsed();
        result
    }

    /// Runs every function in `runnable` to quiescence on the worker
    /// pool, with per-function panic isolation.
    fn run_round(
        &self,
        slots: &mut BTreeMap<u64, FnSlot>,
        runnable: &[u64],
        layout: &Arc<Layout>,
        meter: &BudgetMeter,
        workers: usize,
    ) {
        let cx = ExploreCx {
            binary: self.binary,
            layout,
            step: &self.config.step,
            limits: &self.config.limits,
            budget: &self.config.budget,
            meter,
            cache: Some(&self.cache),
            metrics: Some(&self.metrics),
        };
        let run_one = |s: &mut FnSlot| {
            let FnSlot { e, fresh, internal_error } = s;
            let ran = catch_unwind(AssertUnwindSafe(|| {
                e.run(&cx, fresh);
            }));
            if let Err(payload) = ran {
                s.e.bag.clear();
                s.e.pending.clear();
                *internal_error = Some(panic_message(payload));
            }
        };
        let pool = workers.min(runnable.len());
        if pool <= 1 {
            for addr in runnable {
                run_one(slots.get_mut(addr).expect("runnable slot exists"));
            }
            return;
        }
        // Move the runnable slots into shared cells; a work-stealing
        // deque per worker hands out indices (owner pops the front,
        // thieves the back).
        let cells: Vec<Mutex<Option<FnSlot>>> = runnable
            .iter()
            .map(|a| Mutex::new(Some(slots.remove(a).expect("runnable slot exists"))))
            .collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..pool).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, _) in runnable.iter().enumerate() {
            queues[i % pool].lock().expect("queue lock").push_back(i);
        }
        let next = |me: usize| -> Option<usize> {
            if let Some(i) = queues[me].lock().expect("queue lock").pop_front() {
                return Some(i);
            }
            for k in 1..pool {
                if let Some(i) = queues[(me + k) % pool].lock().expect("queue lock").pop_back() {
                    return Some(i);
                }
            }
            None
        };
        std::thread::scope(|scope| {
            for me in 0..pool {
                let cells = &cells;
                let next = &next;
                let run_one = &run_one;
                scope.spawn(move || {
                    while let Some(i) = next(me) {
                        let mut cell = cells[i].lock().expect("cell lock");
                        if let Some(s) = cell.as_mut() {
                            run_one(s);
                        }
                    }
                });
            }
        });
        for (i, addr) in runnable.iter().enumerate() {
            let s = cells[i].lock().expect("cell lock").take().expect("slot returned");
            slots.insert(*addr, s);
        }
    }

    /// Lift the function at `entry`, then run the analyze→re-lift
    /// refinement fixpoint: ask `resolver` for target sets of any
    /// indirect jumps the lift left unresolved *and* for a re-proof of
    /// every already-hinted jump on the current (grown) graph, update
    /// the configuration's hint set, and re-lift — until a round
    /// changes nothing or `max_rounds` lifts have run.
    ///
    /// A re-validated bound that grew merges into the hint; a hinted
    /// jump the resolver can no longer bound is *demoted*: its hint is
    /// withdrawn, the address is poisoned against re-admission (so an
    /// under-approximate claim cannot oscillate back in), and the next
    /// round reports the jump unresolved again. Hints and the lifter
    /// configuration are only committed when a re-lift actually runs,
    /// so [`RefinedLift::hints`] is always the set the returned result
    /// was lifted under — even on a round-bound trip.
    ///
    /// Each round is an ordinary [`Lifter::lift_entry`]: it shares
    /// this session's deadline, budget and solver cache, and because
    /// the hint set is part of the configuration fingerprint every
    /// round binds its own cache scope (no stale solver or store
    /// entries can leak between rounds). The final hint set stays in
    /// [`Lifter::config`], so a subsequent `lift_entry` reproduces the
    /// refined result.
    pub fn lift_entry_refined(
        &mut self,
        entry: u64,
        resolver: &dyn crate::refine::IndirectResolver,
        max_rounds: usize,
    ) -> crate::refine::RefinedLift {
        let mut hints = self.config.step.indirect_hints.clone();
        let mut result = self.lift_entry(entry);
        let mut rounds = 1usize;
        let mut converged = false;
        let mut poisoned = BTreeSet::new();
        loop {
            match Lifter::refine_step(self.binary, resolver, &result, &hints, &mut poisoned) {
                None => {
                    converged = true;
                    break;
                }
                Some(next) => {
                    if rounds >= max_rounds {
                        // `next` stays uncommitted: `result` was
                        // lifted under `hints`, and that is what we
                        // report (and leave in the config).
                        break;
                    }
                    hints = next;
                    self.config.step.indirect_hints = hints.clone();
                    result = self.lift_entry(entry);
                    rounds += 1;
                }
            }
        }
        crate::refine::RefinedLift { result, rounds, converged, hints, demoted: poisoned }
    }

    /// [`Lifter::lift_all`] under the same refinement fixpoint as
    /// [`Lifter::lift_entry_refined`]: resolve over *all* lifted
    /// functions, update hints, re-lift the binary. Returns the final
    /// report plus the refinement outcome (whose `result` field is a
    /// clone of the report's).
    pub fn lift_all_refined(
        &mut self,
        resolver: &dyn crate::refine::IndirectResolver,
        max_rounds: usize,
    ) -> (BinaryLiftReport, crate::refine::RefinedLift) {
        let mut hints = self.config.step.indirect_hints.clone();
        let mut report = self.lift_all();
        let mut rounds = 1usize;
        let mut converged = false;
        let mut poisoned = BTreeSet::new();
        loop {
            match Lifter::refine_step(self.binary, resolver, &report.result, &hints, &mut poisoned)
            {
                None => {
                    converged = true;
                    break;
                }
                Some(next) => {
                    if rounds >= max_rounds {
                        break;
                    }
                    hints = next;
                    self.config.step.indirect_hints = hints.clone();
                    report = self.lift_all();
                    rounds += 1;
                }
            }
        }
        let refined = crate::refine::RefinedLift {
            result: report.result.clone(),
            rounds,
            converged,
            hints,
            demoted: poisoned,
        };
        (report, refined)
    }

    /// One resolve pass of the refinement fixpoint: re-validate the
    /// current `hints` against `result` and collect new proposals.
    /// Returns the updated hint set when anything changed — a bound
    /// grew or a hint was demoted — or `None` at a fixpoint. Demoted
    /// addresses accumulate in `poisoned` and are never re-admitted,
    /// so a propose→demote cycle cannot oscillate: every non-fixpoint
    /// round strictly grows the hint set or the poison set, both of
    /// which are bounded by the binary.
    fn refine_step(
        binary: &Binary,
        resolver: &dyn crate::refine::IndirectResolver,
        result: &LiftResult,
        hints: &BTreeMap<u64, BTreeSet<u64>>,
        poisoned: &mut BTreeSet<u64>,
    ) -> Option<BTreeMap<u64, BTreeSet<u64>>> {
        let res = resolver.resolve(binary, result, hints);
        let mut next = hints.clone();
        let mut changed = false;
        for addr in &res.demoted {
            changed |= next.remove(addr).is_some();
            poisoned.insert(*addr);
        }
        let mut proposed = res.resolved;
        proposed.retain(|a, _| !poisoned.contains(a));
        changed |= crate::refine::merge_hints(&mut next, proposed);
        changed.then_some(next)
    }
}

/// One function's engine-side state: its exploration plus a private
/// fresh-symbol counter (sound because exploration is context-free —
/// no state flows between functions) and any isolated panic.
struct FnSlot {
    e: FnExploration,
    fresh: u64,
    internal_error: Option<String>,
}

/// The result of [`Lifter::lift_all`]: the per-function lift results
/// plus the session metrics of the run that produced them.
#[derive(Debug)]
pub struct BinaryLiftReport {
    /// Discovered root entries (ELF entry point + in-text function
    /// symbols), sorted. Call targets found transitively appear in
    /// `result.functions` but not here.
    pub roots: Vec<u64>,
    /// Per-function results, identical in shape to the single-entry
    /// driver's.
    pub result: LiftResult,
    /// Frozen metrics for this run: per-phase timings, gauges, solver
    /// cache counters, worker count and wall time.
    pub metrics: MetricsSnapshot,
}

impl BinaryLiftReport {
    /// True if every function lifted and no binary-level rejection
    /// occurred.
    pub fn is_lifted(&self) -> bool {
        self.result.is_lifted()
    }
}

/// Applies `f` to every item on a pool of `workers` threads, returning
/// results in input order. `workers == 0` means automatic; panics in
/// `f` propagate after the scope joins. The corpus campaign drivers
/// run on this so the engine is the single place that spawns workers.
pub fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let pool = if workers == 0 { default_workers() } else { workers };
    let pool = pool.min(items.len());
    if pool <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..pool {
            let cells = &cells;
            let out = &out;
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i].lock().expect("item lock").take().expect("item present");
                let r = f(item);
                *out[i].lock().expect("result lock") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("result present"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_asm::Asm;
    use hgl_x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};

    fn leaf_binary() -> Binary {
        let mut asm = Asm::new();
        asm.label("main");
        asm.ins(Instr::new(
            Mnemonic::Xor,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
            Width::B4,
        ));
        asm.ret();
        asm.entry("main").assemble().expect("assemble")
    }

    /// A function with stack traffic, so lifting it issues solver
    /// queries (region relations for the spill slots).
    fn spill_binary() -> Binary {
        let mut asm = Asm::new();
        asm.label("main");
        for slot in [-8i64, -16, -24] {
            asm.ins(Instr::new(
                Mnemonic::Mov,
                vec![
                    Operand::Mem(MemOperand::base_disp(Reg::Rsp, slot, Width::B8)),
                    Operand::reg64(Reg::Rax),
                ],
                Width::B8,
            ));
        }
        asm.ins(Instr::new(
            Mnemonic::Mov,
            vec![
                Operand::reg64(Reg::Rcx),
                Operand::Mem(MemOperand::base_disp(Reg::Rsp, -16, Width::B8)),
            ],
            Width::B8,
        ));
        asm.ret();
        asm.entry("main").assemble().expect("assemble")
    }

    #[test]
    fn lift_all_smoke() {
        let bin = leaf_binary();
        let report = Lifter::new(&bin).lift_all();
        assert!(report.is_lifted());
        assert_eq!(report.roots, vec![bin.entry]);
        assert_eq!(report.result.functions.len(), 1);
        assert!(report.metrics.phase(crate::metrics::Phase::Tau).count > 0);
    }

    #[test]
    fn lift_entry_deterministic_across_sessions() {
        let bin = leaf_binary();
        let a = Lifter::new(&bin).lift_entry(bin.entry);
        let b = Lifter::new(&bin).with_config(LiftConfig::default()).lift_entry(bin.entry);
        assert_eq!(format!("{:?}", a.functions), format!("{:?}", b.functions));
    }

    #[test]
    fn shared_cache_stays_warm_across_sessions_on_same_binary() {
        let bin = spill_binary();
        let cache = Arc::new(QueryCache::new());
        let first = Lifter::new(&bin).with_cache(cache.clone());
        first.lift_all();
        assert!(cache.stats().misses > 0, "stack traffic should query the solver");
        let second = Lifter::new(&bin).with_cache(cache.clone());
        second.lift_all();
        assert!(cache.stats().hits > 0, "second session must replay the shared cache");
    }

    #[test]
    fn cache_scope_depends_on_layout_and_config() {
        let a = spill_binary();
        let b = leaf_binary();
        let fp = Fingerprint::of(&LiftConfig::default());
        assert_ne!(cache_scope(&fp, &a), cache_scope(&fp, &b), "layout must change the scope");
        let fp2 = Fingerprint::of(&LiftConfig::default().max_fuel(7));
        assert_ne!(cache_scope(&fp, &a), cache_scope(&fp2, &a), "config must change the scope");
    }

    #[test]
    fn shared_cache_flushes_when_binary_layout_changes() {
        let bin = spill_binary();
        let cache = Arc::new(QueryCache::new());
        Lifter::new(&bin).with_cache(cache.clone()).lift_all();
        let entries_warm = cache.stats().entries;
        assert!(entries_warm > 0);
        // A different layout re-binds the scope, flushing every
        // resident verdict before the new binary's queries land.
        let other = leaf_binary();
        Lifter::new(&other).with_cache(cache.clone()).lift_all();
        let fp = Fingerprint::of(&LiftConfig::default());
        assert_eq!(cache.fingerprint(), cache_scope(&fp, &other));
    }

    #[test]
    fn deadline_in_the_past_degrades_to_partial() {
        let bin = spill_binary();
        let report =
            Lifter::new(&bin).with_deadline(Instant::now() - Duration::from_secs(1)).lift_all();
        assert!(matches!(
            report.result.binary_reject,
            Some(crate::lift::RejectReason::Timeout)
        ));
    }

    #[test]
    fn session_metrics_accumulate_across_lifts() {
        let bin = spill_binary();
        let lifter = Lifter::new(&bin);
        lifter.lift_entry(bin.entry);
        lifter.lift_entry(bin.entry);
        let snap = lifter.metrics_snapshot();
        assert_eq!(snap.functions_lifted, 2);
        assert!(snap.cache.misses > 0, "stack traffic should query the solver");
        assert!(snap.cache.hits > 0, "second lift should hit the session cache");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_zero_workers_is_auto() {
        let out = parallel_map(0, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
