//! Algorithm 1: Hoare-Graph extraction by worklist exploration with
//! joining, plus the §4.2 function-call extensions.

use crate::budget::{Budget, BudgetDim, BudgetExhausted, BudgetMeter};
use crate::diag::{Annotation, Diagnostics};
use crate::graph::{HoareGraph, VertexId};
use crate::metrics::{Metrics, Phase};
use crate::pred::SymState;
use crate::tau::{step, StepConfig, StepCtx, Successor};
use crate::VerificationError;
use hgl_elf::Binary;
use hgl_expr::Expr;
use hgl_solver::{Layout, QueryCache};
use hgl_x86::{decode, Instr};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything one exploration step needs from its surroundings: the
/// binary, the tunables, the shared budget meter, and the optional
/// solver cache and metrics sink. Bundling these keeps
/// [`FnExploration::run`]'s signature stable as the pipeline grows
/// cross-cutting services.
#[derive(Clone, Copy)]
pub struct ExploreCx<'a> {
    /// The binary being lifted.
    pub binary: &'a Binary,
    /// Its section layout (shared handle; cloned per solver query at
    /// the cost of a refcount bump, not a section-table copy).
    pub layout: &'a Arc<Layout>,
    /// Stepping tunables.
    pub step: &'a StepConfig,
    /// Exploration limits.
    pub limits: &'a ExploreLimits,
    /// The configured budget (per-function dimensions).
    pub budget: &'a Budget,
    /// Shared consumption counters.
    pub meter: &'a BudgetMeter,
    /// Shared solver-query memo table, if the caller runs one.
    pub cache: Option<&'a Arc<QueryCache>>,
    /// Metrics sink, if the caller collects phase timings.
    pub metrics: Option<&'a Metrics>,
}

/// Time `f` under `phase` when a metrics sink is present; otherwise
/// run it untimed (the legacy free functions pay zero overhead).
fn timed<T>(metrics: Option<&Metrics>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match metrics {
        Some(m) => m.time(phase, f),
        None => f(),
    }
}

/// Chained phase timing for the solver→decode→tau sequence that runs
/// once per instruction: one timestamp per phase *boundary* instead of
/// two per phase. `stamp` opens the chain; each `lap` charges the time
/// since the previous boundary to `phase` and becomes the next
/// boundary. The few instructions of bookkeeping between phases
/// (window fetch, extent insert, step-context setup) are charged to
/// the following phase — negligible against halving the clock calls
/// on the hot path.
fn stamp(metrics: Option<&Metrics>) -> Option<std::time::Instant> {
    metrics.map(|_| std::time::Instant::now())
}

fn lap(
    metrics: Option<&Metrics>,
    phase: Phase,
    prev: Option<std::time::Instant>,
) -> Option<std::time::Instant> {
    match (metrics, prev) {
        (Some(m), Some(t)) => {
            let now = std::time::Instant::now();
            m.record(phase, now.duration_since(t));
            Some(now)
        }
        _ => None,
    }
}

/// An entry in the exploration bag.
#[derive(Debug, Clone)]
pub struct BagItem {
    /// Instruction address of the state.
    pub addr: u64,
    /// The symbolic state.
    pub state: SymState,
    /// Edge that produced the state (source vertex and instruction).
    pub from: Option<(VertexId, Instr)>,
}

/// A pending internal call discovered during exploration (§4.2.2):
/// the return site becomes reachable only once the callee provably
/// returns.
#[derive(Debug, Clone)]
pub struct PendingReturn {
    /// Callee entry address.
    pub callee: u64,
    /// The call-site vertex and instruction (for the edge).
    pub from: (VertexId, Instr),
    /// Return-site address.
    pub return_site: u64,
    /// Caller state at the return site.
    pub after: SymState,
}

/// Exploration state of a single function.
pub struct FnExploration {
    /// Function entry address.
    pub entry: u64,
    /// The Hoare Graph under construction.
    pub graph: HoareGraph,
    /// Diagnostics gathered so far.
    pub diags: Diagnostics,
    /// The bag of unexplored states.
    pub bag: Vec<BagItem>,
    /// Pending internal calls awaiting callee-return proof.
    pub pending: Vec<PendingReturn>,
    /// True once some path provably returns.
    pub returns: bool,
    /// Set when the function is rejected.
    pub rejected: Option<VerificationError>,
    /// Set when a resource budget stopped exploration; the graph built
    /// so far is kept and the frontier is annotated.
    pub exhausted: Option<BudgetExhausted>,
    /// `(addr, len)` of every byte range fetched for decoding —
    /// successful decodes record the instruction length, the failing
    /// fetch records the whole window. Together with
    /// [`Diagnostics::image_reads`](crate::diag::Diagnostics) this is
    /// the exact image footprint the lift depends on; the artifact
    /// store content-hashes it for invalidation.
    pub extent: BTreeSet<(u64, u8)>,
    /// Internal callees this function's lift depends on, with `true`
    /// once the callee's return proof was consumed (its return sites
    /// were activated). Unlike [`FnExploration::pending`], entries stay
    /// after activation: an incremental re-lift needs the full
    /// dependency set to confirm a cached artifact.
    pub callee_deps: BTreeMap<u64, bool>,
    /// Join counts per vertex, to trigger widening.
    join_counts: BTreeMap<VertexId, u32>,
    /// Next variant index per address.
    variants: BTreeMap<u64, u32>,
    /// Steps executed (budget accounting).
    pub steps: usize,
}

/// Per-function exploration limits.
#[derive(Debug, Clone)]
pub struct ExploreLimits {
    /// Maximum number of symbolic states per function.
    pub max_states: usize,
    /// Joins at one vertex before switching to widening.
    pub widen_after: u32,
    /// Keep states with differing immediate code pointers apart
    /// (the §4 second extension).
    pub code_pointer_refinement: bool,
    /// Test-only fault injection: explore `jcc` fall-through successors
    /// normally but *record no edge* for them, producing a graph that
    /// under-approximates control flow. Exists solely so the trace
    /// oracle can prove it catches a lifter dropping an edge; must stay
    /// `false` everywhere else.
    pub inject_drop_jcc_fallthrough: bool,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_states: 20_000,
            widen_after: 8,
            code_pointer_refinement: true,
            inject_drop_jcc_fallthrough: false,
        }
    }
}

impl FnExploration {
    /// Begin exploring the function at `entry`: the bag starts with the
    /// entry state (Algorithm 1's initialisation).
    pub fn new(entry: u64) -> FnExploration {
        FnExploration {
            entry,
            graph: HoareGraph::new(),
            diags: Diagnostics::default(),
            bag: vec![BagItem { addr: entry, state: SymState::function_entry(entry), from: None }],
            pending: Vec::new(),
            returns: false,
            rejected: None,
            exhausted: None,
            extent: BTreeSet::new(),
            callee_deps: BTreeMap::new(),
            join_counts: BTreeMap::new(),
            variants: BTreeMap::new(),
            steps: 0,
        }
    }

    /// Are two states compatible (Definition 4.3 plus the immediate
    /// code-pointer refinement of §4)?
    fn compatible(&self, binary: &Binary, a: &SymState, b: &SymState, refine: bool) -> bool {
        if !refine {
            return true;
        }
        let code_imm = |e: &Expr| e.as_imm().filter(|v| binary.is_code(*v));
        // A state part holding an immediate code pointer on either side
        // must hold the *same* code pointer on the other — joining
        // would otherwise lose a value that will likely decide future
        // control flow (§4, second extension).
        let clash = |va: Option<&Expr>, vb: Option<&Expr>| -> bool {
            let ca = va.and_then(code_imm);
            let cb = vb.and_then(code_imm);
            match (ca, cb) {
                (Some(x), Some(y)) => x != y,
                (Some(_), None) | (None, Some(_)) => true,
                (None, None) => false,
            }
        };
        for r in hgl_x86::Reg::ALL {
            let (va, vb) = (a.pred.regs.get(r), b.pred.regs.get(r));
            if clash(Some(&va), Some(&vb)) {
                return false;
            }
        }
        for region in a.pred.mem.keys().chain(b.pred.mem.keys()) {
            if clash(a.pred.mem.get(region), b.pred.mem.get(region)) {
                return false;
            }
        }
        true
    }

    /// Run exploration until the bag empties, a budget dimension is
    /// exhausted, or the function is rejected. Returns `true` if any
    /// work was done.
    ///
    /// Exhaustion is *graceful*: the graph built so far stays, every
    /// frontier address still in the bag is annotated with
    /// [`Annotation::BudgetFrontier`], and [`FnExploration::exhausted`]
    /// records the dimension. Only verification failures set
    /// [`FnExploration::rejected`].
    pub fn run(&mut self, cx: &ExploreCx<'_>, fresh: &mut u64) -> bool {
        let mut worked = false;
        while let Some(item) = self.bag.pop() {
            worked = true;
            if cx.meter.check_global().is_some() {
                // Global dimensions (wall clock, solver queries, forks)
                // are reported at the lift level; keep the item so the
                // driver can annotate the frontier across all functions.
                self.bag.push(item);
                return worked;
            }
            let states = self.graph.state_count();
            if states > cx.limits.max_states {
                self.bag.push(item);
                self.mark_frontier(BudgetExhausted {
                    dimension: BudgetDim::States,
                    used: states as u64,
                    limit: cx.limits.max_states as u64,
                });
                return worked;
            }
            if let Some(max_fuel) = cx.budget.max_fuel {
                if self.steps as u64 >= max_fuel {
                    self.bag.push(item);
                    self.mark_frontier(BudgetExhausted {
                        dimension: BudgetDim::Fuel,
                        used: self.steps as u64,
                        limit: max_fuel,
                    });
                    return worked;
                }
            }
            if self.rejected.is_some() {
                self.bag.clear();
                return worked;
            }
            self.explore_item(cx, fresh, item);
        }
        worked
    }

    /// Record budget exhaustion: annotate every address still queued in
    /// the bag as an unexplored frontier, then drop the bag so the
    /// function is not re-run.
    pub fn mark_frontier(&mut self, ex: BudgetExhausted) {
        let mut addrs: Vec<u64> = self.bag.iter().map(|b| b.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        for addr in addrs {
            self.diags.annotate(Annotation::BudgetFrontier { addr, dimension: ex.dimension });
        }
        self.bag.clear();
        if self.exhausted.is_none() {
            self.exhausted = Some(ex);
        }
    }

    /// One iteration of Algorithm 1's `explore`.
    fn explore_item(&mut self, cx: &ExploreCx<'_>, fresh: &mut u64, item: BagItem) {
        let ExploreCx { binary, layout, step: step_config, limits, meter, .. } = *cx;
        let BagItem { addr, state, from } = item;

        // Lines 3–9: find a compatible vertex, join or create.
        let mut target_vid = None;
        for vid in self.graph.vertices_at(addr) {
            let existing = &self.graph.vertices[&vid];
            if self.compatible(binary, &state, &existing.state, limits.code_pointer_refinement) {
                target_vid = Some(vid);
                break;
            }
        }
        let (vid, to_explore) = match target_vid {
            Some(vid) => {
                if let Some((src, instr)) = &from {
                    self.graph.add_edge(*src, vid, instr.clone());
                }
                // Borrow, don't clone: the existing state is only read
                // (leq + join) before the vertex is overwritten.
                let existing = &self.graph.vertices[&vid].state;
                if state.leq(existing) {
                    // Line 4: already covered.
                    (vid, None)
                } else {
                    let widen = {
                        let joins = self.join_counts.entry(vid).or_insert(0);
                        *joins += 1;
                        *joins > limits.widen_after
                    };
                    let joined = timed(cx.metrics, Phase::Join, || state.join(existing, widen));
                    self.graph.add_vertex(vid, joined.clone(), true);
                    (vid, Some(joined))
                }
            }
            None => {
                let variant = self.variants.entry(addr).or_insert(0);
                let vid = VertexId::At(addr, *variant);
                *variant += 1;
                self.graph.add_vertex(vid, state.clone(), true);
                if let Some((src, instr)) = &from {
                    self.graph.add_edge(*src, vid, instr.clone());
                }
                (vid, Some(state))
            }
        };
        let Some(state) = to_explore else { return };

        // Vacuous states (contradictory path clauses) represent no
        // concrete states; exploring them wastes effort and can poison
        // interval reasoning. Prune.
        meter.count_solver_query();
        let t = stamp(cx.metrics);
        let sat_check = hgl_solver::Ctx::from_clauses(state.pred.clauses.iter(), Arc::clone(layout));
        let t = lap(cx.metrics, Phase::Solver, t);
        if sat_check.is_unsat() {
            return;
        }

        // Fetch and decode (the paper's `fetch`).
        let Some(window) = binary.fetch_window(addr) else {
            self.rejected = Some(VerificationError::JumpOutsideText { addr, target: addr });
            return;
        };
        let decoded = decode(window, addr);
        let t = lap(cx.metrics, Phase::Decode, t);
        let instr = match decoded {
            Ok(i) => i,
            Err(e) => {
                // A rejection caused by these bytes is still a cacheable
                // outcome — record the window so the artifact store can
                // detect when the bytes change.
                self.extent.insert((addr, window.len().min(u8::MAX as usize) as u8));
                if let Some(m) = cx.metrics {
                    m.count_decode_reject(e.reject_key());
                }
                self.rejected =
                    Some(VerificationError::Undecodable { addr, message: e.to_string() });
                return;
            }
        };
        self.extent.insert((addr, instr.len));

        // Lines 10–17: step and push successors.
        self.steps += 1;
        let mut ctx = StepCtx {
            binary,
            layout: Arc::clone(layout),
            config: step_config,
            fresh,
            diags: &mut self.diags,
            meter,
            cache: cx.cache.cloned(),
            metrics: cx.metrics,
        };
        let stepped = step(&mut ctx, state, &instr, self.entry);
        lap(cx.metrics, Phase::Tau, t);
        let successors = match stepped {
            Ok(s) => s,
            Err(e) => {
                self.rejected = Some(e);
                return;
            }
        };
        if successors.len() > 1 {
            meter.count_forks(successors.len() as u64 - 1);
        }
        // Push in reverse so the LIFO bag explores successors in
        // production order: structured memory-model forks (alias,
        // separate) resolve their control flow *before* the destroy
        // fallback joins in and weakens the vertex invariant. Edges
        // found early persist across later joins (Algorithm 1 line 6
        // replaces states, never edges).
        for succ in successors.into_iter().rev() {
            match succ {
                Successor::At(a, s) => {
                    // Fault injection (test-only): drop the edge for a
                    // jcc fall-through while still exploring the state.
                    let dropped = limits.inject_drop_jcc_fallthrough
                        && matches!(instr.mnemonic, hgl_x86::Mnemonic::Jcc(_))
                        && a == instr.next_addr();
                    let from = if dropped { None } else { Some((vid, instr.clone())) };
                    self.bag.push(BagItem { addr: a, state: s, from });
                }
                Successor::Return(s) => {
                    // All return paths share the Exit vertex: join.
                    let joined = match self.graph.vertices.get(&VertexId::Exit) {
                        Some(v) => timed(cx.metrics, Phase::Join, || s.join(&v.state, false)),
                        None => s,
                    };
                    self.graph.add_vertex(VertexId::Exit, joined, true);
                    self.graph.add_edge(vid, VertexId::Exit, instr.clone());
                    self.returns = true;
                }
                Successor::CallInternal { callee, return_site, after } => {
                    self.callee_deps.entry(callee).or_insert(false);
                    self.pending.push(PendingReturn {
                        callee,
                        from: (vid, instr.clone()),
                        return_site,
                        after,
                    });
                }
            }
        }
    }

    /// Activate the return site of a pending call once `callee` is
    /// known to return (the reachability marking of §4.2.2).
    pub fn activate_returns_from(&mut self, callee: u64) {
        let mut i = 0;
        let mut any = false;
        while i < self.pending.len() {
            if self.pending[i].callee == callee {
                let p = self.pending.remove(i);
                self.bag.push(BagItem { addr: p.return_site, state: p.after, from: Some(p.from) });
                any = true;
            } else {
                i += 1;
            }
        }
        if any {
            self.callee_deps.insert(callee, true);
        }
    }

    /// Callee entries still awaiting a return proof.
    pub fn pending_callees(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pending.iter().map(|p| p.callee).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_exploration_has_entry_in_bag() {
        let e = FnExploration::new(0x401000);
        assert_eq!(e.bag.len(), 1);
        assert_eq!(e.bag[0].addr, 0x401000);
        assert!(!e.returns);
    }

    #[test]
    fn activate_moves_pending_to_bag() {
        let mut e = FnExploration::new(0x401000);
        e.bag.clear();
        e.pending.push(PendingReturn {
            callee: 0x402000,
            from: (VertexId::At(0x401000, 0), {
                let mut i = Instr::new(hgl_x86::Mnemonic::Call, vec![hgl_x86::Operand::Imm(0x402000)], hgl_x86::Width::B8);
                i.addr = 0x401000;
                i.len = 5;
                i
            }),
            return_site: 0x401005,
            after: SymState::function_entry(0x401000),
        });
        assert_eq!(e.pending_callees(), vec![0x402000]);
        e.activate_returns_from(0x402000);
        assert!(e.pending.is_empty());
        assert_eq!(e.bag.len(), 1);
        assert_eq!(e.bag[0].addr, 0x401005);
    }
}
