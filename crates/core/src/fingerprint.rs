//! Configuration fingerprints: one canonical identity for "the same
//! lift".
//!
//! Both caching layers need to answer the same question — *would this
//! configuration produce the same artifact?* — and before this module
//! each answered it differently: the PR-4 solver cache keyed per
//! session (config constant by construction), while a persistent store
//! must key per *configuration*. A [`Fingerprint`] folds everything a
//! lift's output depends on besides the binary bytes into one canonical
//! byte string:
//!
//! - the artifact schema version ([`ARTIFACT_SCHEMA_VERSION`]),
//! - the semantic crate versions (`hgl-core`, `hgl-solver`, `hgl-expr`,
//!   `hgl-x86` — a decoder or solver fix must invalidate old
//!   artifacts),
//! - every knob of [`LiftConfig`]: all budget dimensions, the stepping
//!   tunables and the exploration limits.
//!
//! The encoding is explicit field-by-field (never `Debug`, whose
//! output is not stable across compiler or code changes), so two
//! processes with the same build and config derive byte-identical
//! fingerprints. `hgl-store` folds [`Fingerprint::bytes`] into its
//! content-addressed key; the session solver cache binds
//! [`Fingerprint::digest64`] and flushes when it changes.

use crate::lift::LiftConfig;

/// Version of the per-function artifact schema (the semantic content
/// of a lift: graph, diagnostics, claims). Bump when the *meaning* of
/// stored artifacts changes; `hgl-store` layers its own byte-format
/// version on top.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// A canonical identity for one lifting configuration under one build
/// of the lifter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    bytes: Vec<u8>,
    digest: u64,
}

impl Fingerprint {
    /// Fingerprint `config` under the current build.
    pub fn of(config: &LiftConfig) -> Fingerprint {
        let mut bytes = Vec::with_capacity(128);
        bytes.extend_from_slice(b"hgl-fingerprint");
        push_u32(&mut bytes, 1); // fingerprint encoding version
        push_u32(&mut bytes, ARTIFACT_SCHEMA_VERSION);
        push_str(&mut bytes, env!("CARGO_PKG_VERSION")); // hgl-core
        push_str(&mut bytes, hgl_solver::VERSION);
        push_str(&mut bytes, hgl_expr::VERSION);
        push_str(&mut bytes, hgl_x86::VERSION);
        // Budget.
        push_opt_u64(&mut bytes, config.budget.wall_clock.map(|d| d.as_nanos() as u64));
        push_opt_u64(&mut bytes, config.budget.max_fuel);
        push_opt_u64(&mut bytes, config.budget.max_solver_queries);
        push_opt_u64(&mut bytes, config.budget.max_forks);
        // Stepping tunables.
        push_u64(&mut bytes, config.step.max_models_per_step as u64);
        push_u64(&mut bytes, config.step.max_jump_table);
        push_u64(&mut bytes, config.step.max_expr_nodes as u64);
        // Resolved-indirection hints: count, then every (jump, target)
        // pair in sorted order — a refinement round with different
        // hints is a different artifact.
        push_u64(&mut bytes, config.step.indirect_hints.len() as u64);
        for (addr, targets) in &config.step.indirect_hints {
            push_u64(&mut bytes, *addr);
            push_u64(&mut bytes, targets.len() as u64);
            for t in targets {
                push_u64(&mut bytes, *t);
            }
        }
        // Exploration limits.
        push_u64(&mut bytes, config.limits.max_states as u64);
        push_u32(&mut bytes, config.limits.widen_after);
        bytes.push(config.limits.code_pointer_refinement as u8);
        bytes.push(config.limits.inject_drop_jcc_fallthrough as u8);
        let digest = fnv1a(&bytes);
        Fingerprint { bytes, digest }
    }

    /// The canonical byte encoding (feeds the store's hash key).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A 64-bit digest of the canonical bytes (binds the session
    /// solver cache; see [`QueryCache::bind_fingerprint`]).
    ///
    /// [`QueryCache::bind_fingerprint`]: hgl_solver::QueryCache::bind_fingerprint
    pub fn digest64(&self) -> u64 {
        self.digest
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            push_u64(out, v);
        }
        None => out.push(0),
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// FNV-1a over `bytes`. Not cryptographic — the store's key hash is
/// SHA-256 over the full canonical bytes; this digest only gates the
/// in-process solver cache (the engine folds the binary's layout in on
/// top; see `engine::cache_scope`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::explore::ExploreLimits;
    use crate::tau::StepConfig;
    use std::time::Duration;

    #[test]
    fn stable_for_equal_configs() {
        let a = Fingerprint::of(&LiftConfig::default());
        let b = Fingerprint::of(&LiftConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.digest64(), b.digest64());
    }

    /// The satellite regression test: changing *any* knob of the
    /// configuration must change the fingerprint. A knob the
    /// fingerprint misses would let the store serve artifacts computed
    /// under a different configuration.
    #[test]
    fn every_knob_changes_the_fingerprint() {
        let base = Fingerprint::of(&LiftConfig::default());
        let variants: Vec<(&str, LiftConfig)> = vec![
            ("timeout", LiftConfig::default().timeout(Duration::from_secs(123))),
            ("budget", LiftConfig::default().budget(Budget::unlimited())),
            ("max_fuel", LiftConfig::default().max_fuel(77)),
            ("max_solver_queries", LiftConfig::default().max_solver_queries(77)),
            ("max_forks", LiftConfig::default().max_forks(77)),
            (
                "step.max_models_per_step",
                LiftConfig::default()
                    .step(StepConfig { max_models_per_step: 3, ..StepConfig::default() }),
            ),
            (
                "step.max_jump_table",
                LiftConfig::default().step(StepConfig { max_jump_table: 3, ..StepConfig::default() }),
            ),
            (
                "step.max_expr_nodes",
                LiftConfig::default().step(StepConfig { max_expr_nodes: 3, ..StepConfig::default() }),
            ),
            (
                "step.indirect_hints",
                LiftConfig::default().indirect_hints(
                    [(0x401000u64, [0x401010u64, 0x401020].into_iter().collect())]
                        .into_iter()
                        .collect(),
                ),
            ),
            (
                "limits.max_states",
                LiftConfig::default().limits(ExploreLimits { max_states: 3, ..ExploreLimits::default() }),
            ),
            (
                "limits.widen_after",
                LiftConfig::default().limits(ExploreLimits { widen_after: 3, ..ExploreLimits::default() }),
            ),
            (
                "limits.code_pointer_refinement",
                LiftConfig::default().limits(ExploreLimits {
                    code_pointer_refinement: false,
                    ..ExploreLimits::default()
                }),
            ),
            (
                "limits.inject_drop_jcc_fallthrough",
                LiftConfig::default().limits(ExploreLimits {
                    inject_drop_jcc_fallthrough: true,
                    ..ExploreLimits::default()
                }),
            ),
        ];
        for (name, cfg) in variants {
            let fp = Fingerprint::of(&cfg);
            assert_ne!(fp.bytes(), base.bytes(), "knob {name} must change the fingerprint bytes");
            assert_ne!(fp.digest64(), base.digest64(), "knob {name} must change the digest");
        }
    }

    #[test]
    fn digest_matches_bytes() {
        let a = Fingerprint::of(&LiftConfig::default().max_fuel(1));
        let b = Fingerprint::of(&LiftConfig::default().max_fuel(2));
        assert_ne!(a.bytes(), b.bytes());
        assert_ne!(a.digest64(), b.digest64());
    }
}
