//! The Hoare Graph (Definition 3.2).

use crate::pred::SymState;
use hgl_x86::Instr;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a vertex of the Hoare Graph.
///
/// Vertices are *mostly* one-per-instruction-address, but the §4 join
/// refinement keeps states with different control-flow-relevant code
/// pointers apart, so an address may carry several variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VertexId {
    /// A state at a concrete instruction address (address, variant).
    At(u64, u32),
    /// The exit state: `rip` equals the function's symbolic return
    /// address.
    Exit,
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexId::At(a, 0) => write!(f, "{a:#x}"),
            VertexId::At(a, v) => write!(f, "{a:#x}.{v}"),
            VertexId::Exit => write!(f, "exit"),
        }
    }
}

/// A vertex: a symbolic state (predicate × memory model).
#[derive(Debug, Clone)]
pub struct Vertex {
    /// The invariant at this program point.
    pub state: SymState,
    /// Whether the vertex is known reachable (§4.2.2's reachability
    /// marking; return sites of calls become reachable only once the
    /// callee provably returns).
    pub reachable: bool,
}

/// An edge: a Hoare triple `{pre} instr {post}` where `pre`/`post` are
/// the states at `from`/`to`.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source vertex.
    pub from: VertexId,
    /// Destination vertex.
    pub to: VertexId,
    /// The disassembled instruction labelling this edge.
    pub instr: Instr,
}

/// An extracted Hoare Graph for one function.
#[derive(Debug, Clone, Default)]
pub struct HoareGraph {
    /// Vertices by id.
    pub vertices: BTreeMap<VertexId, Vertex>,
    /// Edges (may contain several per source for forks).
    pub edges: Vec<Edge>,
}

impl HoareGraph {
    /// An empty graph.
    pub fn new() -> HoareGraph {
        HoareGraph::default()
    }

    /// All vertex ids at instruction address `addr`.
    pub fn vertices_at(&self, addr: u64) -> Vec<VertexId> {
        self.vertices
            .keys()
            .filter(|id| matches!(id, VertexId::At(a, _) if *a == addr))
            .copied()
            .collect()
    }

    /// Number of distinct instruction addresses in the graph (the
    /// "Instrs." column of Table 1). Includes vertices without
    /// outgoing edges (e.g. a terminating `call exit`).
    pub fn instruction_count(&self) -> usize {
        let mut addrs: Vec<u64> = self.edges.iter().map(|e| e.instr.addr).collect();
        addrs.extend(self.vertices.keys().filter_map(|id| match id {
            VertexId::At(a, _) => Some(*a),
            VertexId::Exit => None,
        }));
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }

    /// Number of symbolic states (the "Symbolic States" column).
    pub fn state_count(&self) -> usize {
        self.vertices.len()
    }

    /// Outgoing edges of a vertex.
    pub fn successors(&self, id: VertexId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// Incoming edges of a vertex (backward dataflow passes).
    pub fn predecessors(&self, id: VertexId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// The vertex ids of the function entry address.
    pub fn entry_vertices(&self, entry: u64) -> Vec<VertexId> {
        self.vertices_at(entry)
    }

    /// The distinct instructions labelling edges, by address.
    pub fn instructions(&self) -> BTreeMap<u64, &Instr> {
        let mut out = BTreeMap::new();
        for e in &self.edges {
            out.entry(e.instr.addr).or_insert(&e.instr);
        }
        out
    }

    /// Add (or fetch) a vertex, returning its id.
    pub fn add_vertex(&mut self, id: VertexId, state: SymState, reachable: bool) {
        self.vertices.insert(id, Vertex { state, reachable });
    }

    /// Add an edge.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, instr: Instr) {
        // Dedup identical edges (re-exploration after joins).
        if !self
            .edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.instr == instr)
        {
            self.edges.push(Edge { from, to, instr });
        }
    }
}

impl fmt::Display for HoareGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Hoare Graph: {} states, {} edges", self.state_count(), self.edges.len())?;
        for e in &self.edges {
            writeln!(f, "  {} --[{}]--> {}", e.from, e.instr, e.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::{Mnemonic, Width};

    fn nop_at(addr: u64) -> Instr {
        let mut i = Instr::new(Mnemonic::Nop, vec![], Width::B8);
        i.addr = addr;
        i.len = 1;
        i
    }

    #[test]
    fn counts() {
        let mut g = HoareGraph::new();
        g.add_vertex(VertexId::At(0x10, 0), SymState::function_entry(0x10), true);
        g.add_vertex(VertexId::At(0x11, 0), SymState::function_entry(0x10), true);
        g.add_vertex(VertexId::At(0x11, 1), SymState::function_entry(0x10), true);
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x11, 0), nop_at(0x10));
        g.add_edge(VertexId::At(0x10, 0), VertexId::At(0x11, 1), nop_at(0x10));
        // 0x10 has an outgoing edge; 0x11's vertices also count.
        assert_eq!(g.instruction_count(), 2);
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.vertices_at(0x11).len(), 2);
        assert_eq!(g.successors(VertexId::At(0x10, 0)).count(), 2);
    }

    #[test]
    fn edge_dedup() {
        let mut g = HoareGraph::new();
        g.add_edge(VertexId::At(0, 0), VertexId::Exit, nop_at(0));
        g.add_edge(VertexId::At(0, 0), VertexId::Exit, nop_at(0));
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn vertex_id_display() {
        assert_eq!(VertexId::At(0x401000, 0).to_string(), "0x401000");
        assert_eq!(VertexId::At(0x401000, 2).to_string(), "0x401000.2");
        assert_eq!(VertexId::Exit.to_string(), "exit");
    }
}
