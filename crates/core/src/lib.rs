//! # hgl-core: Hoare-Graph extraction (Step 1 of the paper)
//!
//! Implements the paper's central contribution: extraction of a
//! **Hoare Graph** from an x86-64 binary, simultaneously performing
//! disassembly, control-flow recovery and invariant generation, while
//! verifying three sanity properties —
//!
//! 1. **return address integrity** (functions never overwrite their
//!    own return address),
//! 2. **bounded control flow** (every indirect jump resolves to a
//!    fixed, statically known set of targets), and
//! 3. **calling-convention adherence** (callee-saved registers and the
//!    stack pointer are restored on return).
//!
//! The module structure mirrors the paper:
//!
//! - [`pred`]: symbolic predicates over registers, flags and memory
//!   (§3.1) with the join of Definition 3.3;
//! - [`memmodel`]: memory models — forests of `MemTree`s recording
//!   aliasing/separation/enclosure (§3.2, Definitions 3.7–3.12);
//! - [`tau`]: the instruction-semantics transformer `τ` used by the
//!   symbolic step function (Definition 4.2);
//! - [`explore`]: Algorithm 1 plus the §4.2 extensions (context-free
//!   internal calls, reachability marking, external-call cleaning);
//! - [`graph`]: the extracted Hoare Graph itself;
//! - [`diag`]: verification errors, unsoundness annotations and
//!   generated proof obligations (§5.3);
//! - [`engine`]: the [`Lifter`](engine::Lifter) session API and the
//!   parallel whole-binary engine with its shared solver-query cache;
//! - [`lift`]: the sequential single-entry driver and
//!   [`LiftConfig`](lift::LiftConfig);
//! - [`metrics`]: the phase-level [`Metrics`](metrics::Metrics) sink
//!   behind `hgl lift --metrics`;
//! - [`budget`]: layered resource budgets (wall clock, fuel, solver
//!   queries, forks) behind the graceful-degradation machinery.
//!
//! ```
//! use hgl_asm::Asm;
//! use hgl_core::{Lifter, LiftConfig};
//! use hgl_x86::{Instr, Mnemonic, Operand, Reg, Width};
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.ins(Instr::new(Mnemonic::Xor,
//!     vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
//!     Width::B4));
//! asm.ret();
//! let bin = asm.entry("main").assemble()?;
//!
//! let result = Lifter::new(&bin).with_config(LiftConfig::default()).lift_entry(bin.entry);
//! let f = result.functions.values().next().expect("one function");
//! assert!(f.verification_errors.is_empty());
//! assert!(f.returns);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod diag;
pub mod engine;
pub mod explore;
pub mod fingerprint;
pub mod graph;
pub mod lift;
pub mod memmodel;
pub mod metrics;
pub mod pred;
pub mod refine;
pub mod store_api;
pub mod tau;

pub use budget::{Budget, BudgetDim, BudgetExhausted, BudgetMeter};
pub use diag::{Annotation, ProofObligation, VerificationError};
pub use engine::{parallel_map, BinaryLiftReport, Lifter};
pub use fingerprint::{Fingerprint, ARTIFACT_SCHEMA_VERSION};
pub use graph::{Edge, HoareGraph, Vertex, VertexId};
pub use lift::{FnLift, LiftConfig, LiftResult, RejectReason};
pub use memmodel::{MemModel, MemTree};
pub use metrics::{Metrics, MetricsSnapshot, Phase, PhaseSnapshot, RewriteStats};
pub use pred::{FlagState, Pred, SymState};
pub use refine::{IndirectResolver, RefinedLift, Resolution};
pub use store_api::{ArtifactStore, StoreStats};
