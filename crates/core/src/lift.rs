//! The single-entry lifting driver and its configuration.
//!
//! The entry point is the [`Lifter`](crate::engine::Lifter) session
//! builder in [`engine`](crate::engine): `Lifter::new(&binary)
//! .lift_all()` lifts every discovered function on a worker pool,
//! `.lift_entry(addr)` lifts the closure of one entry, and
//! `Lifter::from_bytes` is the hardened front door for untrusted
//! images. (The deprecated free-function wrappers `lift`,
//! `lift_function` and `lift_bytes` were removed once every caller had
//! migrated; the session API is the single path into the engine.)
//!
//! Either way, internal calls are handled compositionally: every
//! function is explored exactly once from a fresh context-free state
//! (§4.2.2), and return sites become reachable only when their callee
//! provably returns.

use crate::budget::{Budget, BudgetDim, BudgetExhausted, BudgetMeter};
use crate::diag::{Annotation, ProofObligation, VerificationError};
use crate::explore::{ExploreCx, ExploreLimits, FnExploration};
use crate::graph::HoareGraph;
use crate::metrics::Metrics;
use crate::tau::StepConfig;
use hgl_elf::Binary;
use hgl_solver::{Assumption, Layout, QueryCache};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lifting configuration, assembled with chained builder methods:
///
/// ```
/// use hgl_core::lift::LiftConfig;
/// use hgl_core::budget::Budget;
/// use std::time::Duration;
///
/// let cfg = LiftConfig::default()
///     .timeout(Duration::from_secs(30))
///     .max_solver_queries(50_000);
/// assert_eq!(cfg.budget.wall_clock, Some(Duration::from_secs(30)));
/// assert_eq!(cfg.budget.max_solver_queries, Some(50_000));
/// ```
///
/// Each method touches only its own knob, so a timeout composes with
/// budget dimensions set before or after it.
#[derive(Debug, Clone, Default)]
pub struct LiftConfig {
    /// Layered resource budget (the paper used a single 4 h wall clock
    /// per unit; [`Budget`] adds per-function fuel, solver-query and
    /// fork dimensions on top).
    pub budget: Budget,
    /// Stepping tunables.
    pub step: StepConfig,
    /// Exploration limits.
    pub limits: ExploreLimits,
}

impl LiftConfig {
    /// Sets the wall-clock deadline, leaving every other budget
    /// dimension untouched.
    pub fn timeout(mut self, timeout: Duration) -> LiftConfig {
        self.budget.wall_clock = Some(timeout);
        self
    }

    /// Replaces the whole layered budget.
    pub fn budget(mut self, budget: Budget) -> LiftConfig {
        self.budget = budget;
        self
    }

    /// Sets the per-function step-fuel limit.
    pub fn max_fuel(mut self, fuel: u64) -> LiftConfig {
        self.budget.max_fuel = Some(fuel);
        self
    }

    /// Sets the global solver-query limit.
    pub fn max_solver_queries(mut self, queries: u64) -> LiftConfig {
        self.budget.max_solver_queries = Some(queries);
        self
    }

    /// Sets the global memory-model fork limit.
    pub fn max_forks(mut self, forks: u64) -> LiftConfig {
        self.budget.max_forks = Some(forks);
        self
    }

    /// Replaces the stepping tunables.
    pub fn step(mut self, step: StepConfig) -> LiftConfig {
        self.step = step;
        self
    }

    /// Replaces the exploration limits.
    pub fn limits(mut self, limits: ExploreLimits) -> LiftConfig {
        self.limits = limits;
        self
    }

    /// Replaces the resolved-indirection hint set (jump address →
    /// target set) consulted when the lifter's own jump-table
    /// enumeration fails. See [`StepConfig::indirect_hints`].
    pub fn indirect_hints(
        mut self,
        hints: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
    ) -> LiftConfig {
        self.step.indirect_hints = hints;
        self
    }
}

/// Why a unit (binary or function) was not lifted.
///
/// The variants split into *sound rejects* — the analysis proved it
/// cannot overapproximate this unit ([`Verification`], [`Concurrency`],
/// [`DecodeError`], [`MalformedBinary`], [`CalleeRejected`]) — and
/// *resource rejects* — the analysis ran out of budget or crashed before
/// finishing ([`Timeout`], [`StateBudget`], [`Internal`]); see
/// `DESIGN.md`, *Failure taxonomy*.
///
/// [`Verification`]: RejectReason::Verification
/// [`Concurrency`]: RejectReason::Concurrency
/// [`DecodeError`]: RejectReason::DecodeError
/// [`MalformedBinary`]: RejectReason::MalformedBinary
/// [`CalleeRejected`]: RejectReason::CalleeRejected
/// [`Timeout`]: RejectReason::Timeout
/// [`StateBudget`]: RejectReason::StateBudget
/// [`Internal`]: RejectReason::Internal
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// A sanity property could not be proven.
    Verification(VerificationError),
    /// The binary uses threading primitives (out of scope, §1).
    Concurrency,
    /// The wall-clock budget expired. The per-function results still
    /// hold the partial Hoare Graphs built before the deadline, with
    /// frontier vertices annotated.
    Timeout,
    /// A non-wall-clock resource budget ran out (states, fuel, solver
    /// queries or forks). Partial results are kept, as for `Timeout`.
    StateBudget {
        /// The exhausted dimension.
        dimension: BudgetDim,
        /// Amount consumed when exploration stopped.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Instruction bytes at a reachable address failed to decode.
    DecodeError {
        /// Address of the undecodable bytes.
        addr: u64,
        /// Decoder message.
        message: String,
    },
    /// The input is not a loadable ELF image.
    MalformedBinary {
        /// Parser message, with offset context.
        message: String,
    },
    /// A reachable callee was rejected.
    CalleeRejected(u64),
    /// The lifting pipeline itself panicked; the panic was isolated to
    /// this unit and converted into a reject.
    Internal {
        /// Pipeline stage that panicked (e.g. `"explore"`, `"lift"`).
        stage: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl RejectReason {
    /// True for rejects caused by resource exhaustion or pipeline
    /// faults rather than a soundness verdict. Resource rejects may
    /// disappear with a larger budget; sound rejects will not.
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            RejectReason::Timeout | RejectReason::StateBudget { .. } | RejectReason::Internal { .. }
        )
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Verification(e) => write!(f, "verification error: {e}"),
            RejectReason::Concurrency => write!(f, "concurrency (pthread) out of scope"),
            RejectReason::Timeout => write!(f, "timeout"),
            RejectReason::StateBudget { dimension, used, limit } => {
                write!(f, "{dimension} budget exhausted ({used}/{limit})")
            }
            RejectReason::DecodeError { addr, message } => {
                write!(f, "undecodable instruction at {addr:#x}: {message}")
            }
            RejectReason::MalformedBinary { message } => {
                write!(f, "malformed binary: {message}")
            }
            RejectReason::CalleeRejected(a) => write!(f, "reachable callee {a:#x} rejected"),
            RejectReason::Internal { stage, message } => {
                write!(f, "internal fault in {stage}: {message}")
            }
        }
    }
}

/// The lifted artefacts of one function.
#[derive(Debug, Clone)]
pub struct FnLift {
    /// Entry address.
    pub entry: u64,
    /// The extracted Hoare Graph.
    pub graph: HoareGraph,
    /// Unsoundness annotations (columns B/C of Table 1).
    pub annotations: Vec<Annotation>,
    /// External-call proof obligations (§5.3).
    pub obligations: Vec<ProofObligation>,
    /// Memory-space assumptions used by the solver.
    pub assumptions: Vec<Assumption>,
    /// Fatal errors (the function is rejected if non-empty).
    pub verification_errors: Vec<VerificationError>,
    /// Successfully bounded indirections (column A).
    pub resolved_indirections: usize,
    /// `(addr, len)` of every instruction byte range fetched while
    /// exploring this function (including the window of a failed
    /// decode). Part of the artifact store's content-hash footprint.
    pub extent: BTreeSet<(u64, u8)>,
    /// `(addr, size)` of every non-instruction image read the lift
    /// performed (read-only constants, jump-table entries). The other
    /// half of the content-hash footprint.
    pub image_reads: BTreeSet<(u64, u8)>,
    /// Internal callees this lift depends on; `true` once the callee's
    /// return proof was consumed. An incremental re-lift confirms a
    /// cached artifact only when every dependency is itself confirmed
    /// with an unchanged return verdict.
    pub callee_deps: BTreeMap<u64, bool>,
    /// Whether some path provably returns.
    pub returns: bool,
    /// Rejection verdict, if any.
    pub reject: Option<RejectReason>,
}

impl FnLift {
    /// True if the function lifted cleanly (it may still carry
    /// annotations — those mark unexplored indirections, not errors).
    pub fn is_lifted(&self) -> bool {
        self.reject.is_none()
    }

    /// True if this artifact may be persisted by an
    /// [`ArtifactStore`](crate::ArtifactStore): its verdict is
    /// *intrinsic* to the function bytes and configuration. Resource
    /// rejects (`Timeout`, `StateBudget`, `Internal`) are excluded —
    /// they may vanish under a larger budget, so caching them would
    /// freeze a transient outcome. `CalleeRejected` is storable but is
    /// recorded as a dependency (the verdict is recomputed from the
    /// callee graph on every incremental run), never as a stored
    /// reject.
    pub fn is_storable(&self) -> bool {
        matches!(
            self.reject,
            None
                | Some(RejectReason::Verification(_))
                | Some(RejectReason::DecodeError { .. })
                | Some(RejectReason::CalleeRejected(_))
        )
    }
}

/// The result of lifting a binary or function.
#[derive(Debug, Clone, Default)]
pub struct LiftResult {
    /// Per-function results, keyed by entry address.
    pub functions: BTreeMap<u64, FnLift>,
    /// Binary-level rejection (concurrency or timeout), if any.
    pub binary_reject: Option<RejectReason>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl LiftResult {
    /// Total number of distinct instruction addresses lifted.
    pub fn instruction_count(&self) -> usize {
        let mut addrs: Vec<u64> = self
            .functions
            .values()
            .flat_map(|f| f.graph.instructions().keys().copied().collect::<Vec<_>>())
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }

    /// Total number of symbolic states.
    pub fn state_count(&self) -> usize {
        self.functions.values().map(|f| f.graph.state_count()).sum()
    }

    /// Totals of (resolved, unresolved-jump, unresolved-call)
    /// indirections — columns A/B/C of Table 1.
    pub fn indirection_counts(&self) -> (usize, usize, usize) {
        let mut a = 0;
        let mut b = 0;
        let mut c = 0;
        for f in self.functions.values() {
            a += f.resolved_indirections;
            for ann in &f.annotations {
                match ann {
                    Annotation::UnresolvedJump { .. } => b += 1,
                    Annotation::UnresolvedCall { .. } => c += 1,
                    Annotation::BudgetFrontier { .. } => {}
                }
            }
        }
        (a, b, c)
    }

    /// True if every reached function lifted and no binary-level
    /// rejection occurred.
    pub fn is_lifted(&self) -> bool {
        self.binary_reject.is_none() && self.functions.values().all(FnLift::is_lifted)
    }

    /// The first rejection, if any.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        if let Some(r) = &self.binary_reject {
            return Some(r.clone());
        }
        self.functions.values().find_map(|f| f.reject.clone())
    }
}

fn layout_of(binary: &Binary) -> Arc<Layout> {
    Arc::new(Layout { text: binary.text_ranges(), data: binary.data_ranges() })
}

/// Renders a `catch_unwind` payload for a `RejectReason::Internal`.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Isolates a panic in `f` into a `RejectReason::Internal` lift result,
/// so a pipeline fault on one unit never takes down the caller.
pub(crate) fn isolated(stage: &'static str, f: impl FnOnce() -> LiftResult) -> LiftResult {
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => LiftResult {
            functions: BTreeMap::new(),
            binary_reject: Some(RejectReason::Internal { stage, message: panic_message(payload) }),
            elapsed: start.elapsed(),
        },
    }
}

/// The untrusted-input front door behind [`Lifter::from_bytes`]: a
/// malformed image yields `RejectReason::MalformedBinary` (and a
/// parser panic, should one survive the hardened reader, is isolated
/// into `RejectReason::Internal`) — never a crash of the caller.
///
/// [`Lifter::from_bytes`]: crate::engine::Lifter::from_bytes
pub(crate) fn lift_bytes_impl(bytes: &[u8], config: &LiftConfig) -> LiftResult {
    let start = Instant::now();
    let parsed = catch_unwind(AssertUnwindSafe(|| Binary::parse(bytes)));
    let reject = match parsed {
        Ok(Ok(binary)) => {
            return crate::engine::Lifter::new(&binary)
                .with_config(config.clone())
                .lift_entry(binary.entry)
        }
        Ok(Err(e)) => RejectReason::MalformedBinary { message: e.to_string() },
        Err(payload) => RejectReason::Internal { stage: "parse", message: panic_message(payload) },
    };
    LiftResult {
        functions: BTreeMap::new(),
        binary_reject: Some(reject),
        elapsed: start.elapsed(),
    }
}

/// Concurrency scope check (§1): binaries calling `pthread_*` are out
/// of scope and rejected whole.
pub(crate) fn concurrency_reject(binary: &Binary) -> Option<RejectReason> {
    binary
        .externals
        .values()
        .any(|n| n.starts_with("pthread_") && n != "pthread_exit")
        .then_some(RejectReason::Concurrency)
}

/// Maps a global budget exhaustion onto the reject taxonomy.
pub(crate) fn reject_of_exhaustion(ex: &BudgetExhausted) -> RejectReason {
    match ex.dimension {
        BudgetDim::WallClock => RejectReason::Timeout,
        dimension => RejectReason::StateBudget { dimension, used: ex.used, limit: ex.limit },
    }
}

/// The sequential single-entry driver: explores `entry`'s call closure
/// function-by-function with one global fresh-symbol counter.
/// [`Lifter::lift_entry`] lands here, attaching the session's solver
/// cache, metrics sink and (if set) absolute deadline.
///
/// [`Lifter::lift_entry`]: crate::engine::Lifter::lift_entry
pub(crate) fn lift_from(
    binary: &Binary,
    entry: u64,
    config: &LiftConfig,
    deadline: Option<Instant>,
    cache: Option<&Arc<QueryCache>>,
    metrics: Option<&Metrics>,
) -> LiftResult {
    let start = Instant::now();
    let mut result = LiftResult::default();

    if let Some(reject) = concurrency_reject(binary) {
        result.binary_reject = Some(reject);
        result.elapsed = start.elapsed();
        return result;
    }

    let layout = layout_of(binary);
    let meter = BudgetMeter::start_with_deadline(&config.budget, deadline);
    let mut fresh: u64 = 0;

    let mut explorations: BTreeMap<u64, FnExploration> = BTreeMap::new();
    explorations.insert(entry, FnExploration::new(entry));
    // Functions whose return has been proven and propagated.
    let mut returns_propagated: Vec<u64> = Vec::new();
    // Functions whose exploration panicked (isolated; see below).
    let mut internal_errors: BTreeMap<u64, String> = BTreeMap::new();

    loop {
        if let Some(ex) = meter.check_global() {
            // Graceful degradation: keep every partial graph and mark
            // the unexplored frontier of each function before stopping.
            for e in explorations.values_mut() {
                if !e.bag.is_empty() {
                    e.mark_frontier(ex);
                }
            }
            result.binary_reject = Some(reject_of_exhaustion(&ex));
            break;
        }
        // Run one function with work available.
        let runnable = explorations
            .iter()
            .find(|(_, e)| !e.bag.is_empty() && e.rejected.is_none())
            .map(|(k, _)| *k);
        let Some(addr) = runnable else {
            // No bag work: discover new callees, activate pendings on
            // already-proven callees, or propagate newly proven returns.
            let mut new_callees = Vec::new();
            for e in explorations.values() {
                for c in e.pending_callees() {
                    if !explorations.contains_key(&c) {
                        new_callees.push(c);
                    }
                }
            }
            if !new_callees.is_empty() {
                for c in new_callees {
                    explorations.entry(c).or_insert_with(|| FnExploration::new(c));
                }
                continue;
            }
            // Pendings created *after* their callee's return was first
            // propagated still need activation.
            let mut activated = false;
            for callee in returns_propagated.clone() {
                for e in explorations.values_mut() {
                    let before = e.bag.len();
                    e.activate_returns_from(callee);
                    activated |= e.bag.len() != before;
                }
            }
            if activated {
                continue;
            }
            // Propagate newly proven returns.
            let newly: Vec<u64> = explorations
                .iter()
                .filter(|(a, e)| e.returns && !returns_propagated.contains(a))
                .map(|(a, _)| *a)
                .collect();
            if newly.is_empty() {
                break; // fixpoint
            }
            for callee in newly {
                returns_propagated.push(callee);
                for e in explorations.values_mut() {
                    e.activate_returns_from(callee);
                }
            }
            continue;
        };
        let e = explorations.get_mut(&addr).expect("exists");
        // Panic isolation: a fault while exploring one function becomes
        // an `Internal` reject for that function; the remaining
        // functions of the unit still lift.
        let cx = ExploreCx {
            binary,
            layout: &layout,
            step: &config.step,
            limits: &config.limits,
            budget: &config.budget,
            meter: &meter,
            cache,
            metrics,
        };
        let ran = catch_unwind(AssertUnwindSafe(|| e.run(&cx, &mut fresh)));
        if let Err(payload) = ran {
            e.bag.clear();
            e.pending.clear();
            internal_errors.insert(addr, panic_message(payload));
            continue;
        }
        // Immediately propagate a newly proven return so callers wake up.
        if e.returns && !returns_propagated.contains(&addr) {
            returns_propagated.push(addr);
            for e2 in explorations.values_mut() {
                e2.activate_returns_from(addr);
            }
        }
    }

    assemble(explorations, internal_errors, BTreeMap::new(), &mut result);
    result.elapsed = start.elapsed();
    result
}

/// Assembles per-function explorations into [`FnLift`] results,
/// propagating callee rejection (a function whose reachable callee was
/// rejected is itself rejected with [`RejectReason::CalleeRejected`]).
/// Shared by the legacy driver and the parallel engine so the two
/// cannot drift in how verdicts are derived.
///
/// `cached` carries artifacts replayed from a persistent store (empty
/// outside incremental mode). A cached artifact records its *intrinsic*
/// verdict; [`RejectReason::CalleeRejected`] is never stored and is
/// recomputed here from the unconsumed callee dependencies, so a callee
/// that newly rejects (or newly lifts) after an edit changes its
/// cached callers' verdicts without re-exploring them.
pub(crate) fn assemble(
    explorations: BTreeMap<u64, FnExploration>,
    mut internal_errors: BTreeMap<u64, String>,
    cached: BTreeMap<u64, FnLift>,
    result: &mut LiftResult,
) {
    let mut rejected_fns: Vec<u64> = explorations
        .iter()
        .filter(|(a, e)| {
            e.rejected.is_some() || e.exhausted.is_some() || internal_errors.contains_key(a)
        })
        .map(|(a, _)| *a)
        .collect();
    rejected_fns.extend(cached.iter().filter(|(_, f)| f.reject.is_some()).map(|(a, _)| *a));
    for (addr, e) in explorations {
        let reject = if let Some(message) = internal_errors.remove(&addr) {
            Some(RejectReason::Internal { stage: "explore", message })
        } else {
            match &e.rejected {
                Some(VerificationError::Undecodable { addr, message }) => {
                    Some(RejectReason::DecodeError { addr: *addr, message: message.clone() })
                }
                Some(err) => Some(RejectReason::Verification(err.clone())),
                None => match &e.exhausted {
                    Some(ex) => Some(RejectReason::StateBudget {
                        dimension: ex.dimension,
                        used: ex.used,
                        limit: ex.limit,
                    }),
                    None => e
                        .pending_callees()
                        .iter()
                        .find(|c| rejected_fns.contains(c))
                        .map(|c| RejectReason::CalleeRejected(*c)),
                },
            }
        };
        result.functions.insert(
            addr,
            FnLift {
                entry: addr,
                graph: e.graph,
                annotations: e.diags.annotations,
                obligations: e.diags.obligations,
                assumptions: e.diags.assumptions,
                verification_errors: e.rejected.iter().cloned().collect(),
                resolved_indirections: e.diags.resolved_indirections,
                extent: e.extent,
                image_reads: e.diags.image_reads,
                callee_deps: e.callee_deps,
                returns: e.returns,
                reject,
            },
        );
    }
    for (addr, mut f) in cached {
        if f.reject.is_none() {
            f.reject = f
                .callee_deps
                .iter()
                .filter(|(_, consumed)| !**consumed)
                .find(|(c, _)| rejected_fns.contains(c))
                .map(|(c, _)| RejectReason::CalleeRejected(*c));
        }
        result.functions.insert(addr, f);
    }
}
