//! The top-level lifting driver.
//!
//! [`lift`] starts from a binary's entry point (the "Binaries" mode of
//! Table 1); [`lift_function`] starts from an arbitrary function
//! address (the "Library functions" mode used for shared objects).
//! Either way, internal calls are handled compositionally: every
//! function is explored exactly once from a fresh context-free state
//! (§4.2.2), and return sites become reachable only when their callee
//! provably returns.

use crate::diag::{Annotation, ProofObligation, VerificationError};
use crate::explore::{ExploreLimits, FnExploration};
use crate::graph::HoareGraph;
use crate::tau::StepConfig;
use hgl_elf::Binary;
use hgl_solver::{Assumption, Layout};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Lifting configuration.
#[derive(Debug, Clone)]
pub struct LiftConfig {
    /// Wall-clock budget for one lift (the paper used 4 h per unit;
    /// scale to taste).
    pub timeout: Duration,
    /// Stepping tunables.
    pub step: StepConfig,
    /// Exploration limits.
    pub limits: ExploreLimits,
}

impl Default for LiftConfig {
    fn default() -> LiftConfig {
        LiftConfig {
            timeout: Duration::from_secs(60),
            step: StepConfig::default(),
            limits: ExploreLimits::default(),
        }
    }
}

/// Why a unit (binary or function) was not lifted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// A sanity property could not be proven.
    Verification(VerificationError),
    /// The binary uses threading primitives (out of scope, §1).
    Concurrency,
    /// The time budget expired.
    Timeout,
    /// A reachable callee was rejected.
    CalleeRejected(u64),
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Verification(e) => write!(f, "verification error: {e}"),
            RejectReason::Concurrency => write!(f, "concurrency (pthread) out of scope"),
            RejectReason::Timeout => write!(f, "timeout"),
            RejectReason::CalleeRejected(a) => write!(f, "reachable callee {a:#x} rejected"),
        }
    }
}

/// The lifted artefacts of one function.
#[derive(Debug, Clone)]
pub struct FnLift {
    /// Entry address.
    pub entry: u64,
    /// The extracted Hoare Graph.
    pub graph: HoareGraph,
    /// Unsoundness annotations (columns B/C of Table 1).
    pub annotations: Vec<Annotation>,
    /// External-call proof obligations (§5.3).
    pub obligations: Vec<ProofObligation>,
    /// Memory-space assumptions used by the solver.
    pub assumptions: Vec<Assumption>,
    /// Fatal errors (the function is rejected if non-empty).
    pub verification_errors: Vec<VerificationError>,
    /// Successfully bounded indirections (column A).
    pub resolved_indirections: usize,
    /// Whether some path provably returns.
    pub returns: bool,
    /// Rejection verdict, if any.
    pub reject: Option<RejectReason>,
}

impl FnLift {
    /// True if the function lifted cleanly (it may still carry
    /// annotations — those mark unexplored indirections, not errors).
    pub fn is_lifted(&self) -> bool {
        self.reject.is_none()
    }
}

/// The result of lifting a binary or function.
#[derive(Debug, Clone, Default)]
pub struct LiftResult {
    /// Per-function results, keyed by entry address.
    pub functions: BTreeMap<u64, FnLift>,
    /// Binary-level rejection (concurrency or timeout), if any.
    pub binary_reject: Option<RejectReason>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl LiftResult {
    /// Total number of distinct instruction addresses lifted.
    pub fn instruction_count(&self) -> usize {
        let mut addrs: Vec<u64> = self
            .functions
            .values()
            .flat_map(|f| f.graph.instructions().keys().copied().collect::<Vec<_>>())
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }

    /// Total number of symbolic states.
    pub fn state_count(&self) -> usize {
        self.functions.values().map(|f| f.graph.state_count()).sum()
    }

    /// Totals of (resolved, unresolved-jump, unresolved-call)
    /// indirections — columns A/B/C of Table 1.
    pub fn indirection_counts(&self) -> (usize, usize, usize) {
        let mut a = 0;
        let mut b = 0;
        let mut c = 0;
        for f in self.functions.values() {
            a += f.resolved_indirections;
            for ann in &f.annotations {
                match ann {
                    Annotation::UnresolvedJump { .. } => b += 1,
                    Annotation::UnresolvedCall { .. } => c += 1,
                }
            }
        }
        (a, b, c)
    }

    /// True if every reached function lifted and no binary-level
    /// rejection occurred.
    pub fn is_lifted(&self) -> bool {
        self.binary_reject.is_none() && self.functions.values().all(FnLift::is_lifted)
    }

    /// The first rejection, if any.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        if let Some(r) = &self.binary_reject {
            return Some(r.clone());
        }
        self.functions.values().find_map(|f| f.reject.clone())
    }
}

fn layout_of(binary: &Binary) -> Layout {
    Layout { text: binary.text_ranges(), data: binary.data_ranges() }
}

/// Lift a binary from its entry point.
pub fn lift(binary: &Binary, config: &LiftConfig) -> LiftResult {
    lift_from(binary, binary.entry, config)
}

/// Lift starting from a specific function address (library mode).
pub fn lift_function(binary: &Binary, entry: u64, config: &LiftConfig) -> LiftResult {
    lift_from(binary, entry, config)
}

fn lift_from(binary: &Binary, entry: u64, config: &LiftConfig) -> LiftResult {
    let start = Instant::now();
    let mut result = LiftResult::default();

    // Concurrency scope check (§1): binaries calling pthread_* are out
    // of scope.
    if binary
        .externals
        .values()
        .any(|n| n.starts_with("pthread_") && n != "pthread_exit")
    {
        result.binary_reject = Some(RejectReason::Concurrency);
        result.elapsed = start.elapsed();
        return result;
    }

    let layout = layout_of(binary);
    let deadline = Instant::now() + config.timeout;
    let mut fresh: u64 = 0;

    let mut explorations: BTreeMap<u64, FnExploration> = BTreeMap::new();
    explorations.insert(entry, FnExploration::new(entry));
    // Functions whose return has been proven and propagated.
    let mut returns_propagated: Vec<u64> = Vec::new();

    loop {
        if Instant::now() > deadline {
            result.binary_reject = Some(RejectReason::Timeout);
            break;
        }
        // Run one function with work available.
        let runnable = explorations
            .iter()
            .find(|(_, e)| !e.bag.is_empty() && e.rejected.is_none())
            .map(|(k, _)| *k);
        let Some(addr) = runnable else {
            // No bag work: discover new callees, activate pendings on
            // already-proven callees, or propagate newly proven returns.
            let mut new_callees = Vec::new();
            for e in explorations.values() {
                for c in e.pending_callees() {
                    if !explorations.contains_key(&c) {
                        new_callees.push(c);
                    }
                }
            }
            if !new_callees.is_empty() {
                for c in new_callees {
                    explorations.entry(c).or_insert_with(|| FnExploration::new(c));
                }
                continue;
            }
            // Pendings created *after* their callee's return was first
            // propagated still need activation.
            let mut activated = false;
            for callee in returns_propagated.clone() {
                for e in explorations.values_mut() {
                    let before = e.bag.len();
                    e.activate_returns_from(callee);
                    activated |= e.bag.len() != before;
                }
            }
            if activated {
                continue;
            }
            // Propagate newly proven returns.
            let newly: Vec<u64> = explorations
                .iter()
                .filter(|(a, e)| e.returns && !returns_propagated.contains(a))
                .map(|(a, _)| *a)
                .collect();
            if newly.is_empty() {
                break; // fixpoint
            }
            for callee in newly {
                returns_propagated.push(callee);
                for e in explorations.values_mut() {
                    e.activate_returns_from(callee);
                }
            }
            continue;
        };
        let e = explorations.get_mut(&addr).expect("exists");
        e.run(binary, &layout, &config.step, &config.limits, &mut fresh, Some(deadline));
        // Immediately propagate a newly proven return so callers wake up.
        if e.returns && !returns_propagated.contains(&addr) {
            returns_propagated.push(addr);
            for e2 in explorations.values_mut() {
                e2.activate_returns_from(addr);
            }
        }
    }

    // Assemble per-function results; propagate callee rejection.
    let rejected_fns: Vec<u64> = explorations
        .iter()
        .filter(|(_, e)| e.rejected.is_some())
        .map(|(a, _)| *a)
        .collect();
    for (addr, e) in explorations {
        let reject = match &e.rejected {
            Some(err) => Some(RejectReason::Verification(err.clone())),
            None => e
                .pending_callees()
                .iter()
                .find(|c| rejected_fns.contains(c))
                .map(|c| RejectReason::CalleeRejected(*c)),
        };
        result.functions.insert(
            addr,
            FnLift {
                entry: addr,
                graph: e.graph,
                annotations: e.diags.annotations,
                obligations: e.diags.obligations,
                assumptions: e.diags.assumptions,
                verification_errors: e.rejected.iter().cloned().collect(),
                resolved_indirections: e.diags.resolved_indirections,
                returns: e.returns,
                reject,
            },
        );
    }
    result.elapsed = start.elapsed();
    result
}
