//! Memory models: forests of memory trees (§3.2).
//!
//! A [`MemModel`] is a set of [`MemTree`]s. Regions in the same node
//! alias; children are enclosed in their parents; siblings are
//! separate (Definition 3.9). The [`MemModel::insert`] operation
//! implements the `ins` function of Definition 3.7, extended with the
//! nondeterministic fork of §1/§2: when no *necessarily*-relation can
//! be established between the inserted region and an existing tree,
//! insertion produces one branch per *possible* structured relation
//! (assumed aliasing, assumed separation) plus a destroy branch that
//! covers partially-overlapping concrete states.

use hgl_expr::Sym;
use hgl_solver::{decide, Answer, Assumption, Ctx, Region, RegionRel};
use std::collections::BTreeSet;
use std::fmt;

/// A memory tree: a node of mutually aliasing regions plus an enclosed
/// sub-forest.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemTree {
    /// Mutually aliasing regions at this node.
    pub regions: BTreeSet<Region>,
    /// Sub-forest of enclosed regions.
    pub children: MemModel,
}

impl MemTree {
    /// A leaf tree holding one region.
    pub fn leaf(r: Region) -> MemTree {
        MemTree { regions: BTreeSet::from([r]), children: MemModel::default() }
    }

    /// All regions in this tree (node and descendants).
    pub fn all_regions(&self) -> Vec<&Region> {
        let mut out: Vec<&Region> = self.regions.iter().collect();
        for t in &self.children.trees {
            out.extend(t.all_regions());
        }
        out
    }
}

/// A memory model: a forest of memory trees.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemModel {
    /// The trees; kept sorted for canonical equality.
    pub trees: Vec<MemTree>,
}

/// One branch of a (possibly forking) insertion.
#[derive(Debug, Clone)]
pub struct InsBranch {
    /// The resulting memory model.
    pub model: MemModel,
    /// Regions whose trees were destroyed (their known values must be
    /// forgotten by the caller).
    pub destroyed: Vec<Region>,
    /// If this branch *assumes* the inserted region aliases an existing
    /// one, the pair `(inserted, existing)`; the caller adds the
    /// corresponding equality clause to the predicate.
    pub assumed_alias: Option<(Region, Region)>,
    /// Memory-space assumptions used by the solver on this branch.
    pub assumptions: Vec<Assumption>,
}

/// Tree-level relation of a single region against a tree.
fn region_vs_tree(ctx: &Ctx, r: &Region, t: &MemTree, assumptions: &mut Vec<Assumption>) -> RegionRel {
    // Aliases some top-level region?
    for r1 in &t.regions {
        let Answer { rel, assumptions: a } = decide(ctx, r, r1);
        if rel == RegionRel::Alias {
            assumptions.extend(a);
            return RegionRel::Alias;
        }
    }
    // Enclosed in some top-level region?
    for r1 in &t.regions {
        let Answer { rel, assumptions: a } = decide(ctx, r, r1);
        if rel == RegionRel::Enclosed {
            assumptions.extend(a);
            return RegionRel::Enclosed;
        }
    }
    // Encloses all top-level regions?
    if !t.regions.is_empty()
        && t.regions.iter().all(|r1| decide(ctx, r, r1).rel == RegionRel::Encloses)
    {
        for r1 in &t.regions {
            assumptions.extend(decide(ctx, r, r1).assumptions);
        }
        return RegionRel::Encloses;
    }
    // Separate from every region in the whole tree?
    let mut all_sep = true;
    let mut any_overlap = false;
    let mut sep_assumptions = Vec::new();
    for r1 in t.all_regions() {
        let Answer { rel, assumptions: a } = decide(ctx, r, r1);
        match rel {
            RegionRel::Separate => sep_assumptions.extend(a),
            RegionRel::Overlap => {
                any_overlap = true;
                all_sep = false;
            }
            _ => all_sep = false,
        }
    }
    if all_sep {
        assumptions.extend(sep_assumptions);
        return RegionRel::Separate;
    }
    if any_overlap {
        return RegionRel::Overlap;
    }
    RegionRel::Unknown
}

impl MemModel {
    /// An empty model (`M₀ = ∅` of the §2 example).
    pub fn empty() -> MemModel {
        MemModel::default()
    }

    fn canon(mut self) -> MemModel {
        for t in &mut self.trees {
            let children = std::mem::take(&mut t.children);
            t.children = children.canon();
        }
        self.trees.sort();
        self.trees.dedup();
        self
    }

    /// All regions mentioned anywhere in the model.
    pub fn all_regions(&self) -> Vec<&Region> {
        self.trees.iter().flat_map(MemTree::all_regions).collect()
    }

    /// True if `r` occurs anywhere in the model (allocation-free;
    /// insertion probes this on every memory access).
    pub fn contains_region(&self, r: &Region) -> bool {
        fn tree_has(t: &MemTree, r: &Region) -> bool {
            t.regions.contains(r) || t.children.trees.iter().any(|c| tree_has(c, r))
        }
        self.trees.iter().any(|t| tree_has(t, r))
    }

    /// Number of regions in the model.
    pub fn region_count(&self) -> usize {
        self.all_regions().len()
    }

    /// The relation the model structure itself asserts between two
    /// regions it contains, if any (used before consulting the solver,
    /// so that *assumed* relations from earlier forks stay in force).
    pub fn structural_relation(&self, r0: &Region, r1: &Region) -> Option<RegionRel> {
        // One allocation-free walk replaces the old locate-both-paths
        // pass (this runs per stored region on every memory access).
        // Path-prefix logic, expressed positionally: same node → alias;
        // one region at a node the other sits below → enclosure; found
        // under diverging branches → separate.
        enum Found {
            Neither,
            First,
            Second,
            Both(RegionRel),
        }
        fn walk(m: &MemModel, r0: &Region, r1: &Region) -> Found {
            let mut f0 = false;
            let mut f1 = false;
            for t in &m.trees {
                let here0 = t.regions.contains(r0);
                let here1 = t.regions.contains(r1);
                if here0 && here1 {
                    // Same node: alias (identical regions trivially so).
                    return Found::Both(RegionRel::Alias);
                }
                match walk(&t.children, r0, r1) {
                    Found::Both(rel) => return Found::Both(rel),
                    Found::First => {
                        if here1 {
                            return Found::Both(RegionRel::Enclosed);
                        }
                        f0 = true;
                    }
                    Found::Second => {
                        if here0 {
                            return Found::Both(RegionRel::Encloses);
                        }
                        f1 = true;
                    }
                    Found::Neither => {
                        f0 |= here0;
                        f1 |= here1;
                    }
                }
                if f0 && f1 {
                    return Found::Both(RegionRel::Separate);
                }
            }
            match (f0, f1) {
                (true, _) => Found::First,
                (_, true) => Found::Second,
                _ => Found::Neither,
            }
        }
        match walk(self, r0, r1) {
            Found::Both(rel) => Some(rel),
            _ => None,
        }
    }

    /// Decide the relation between two regions: the model's structural
    /// assertion wins; otherwise the solver decides.
    pub fn relation(&self, ctx: &Ctx, r0: &Region, r1: &Region) -> Answer {
        if let Some(rel) = self.structural_relation(r0, r1) {
            return Answer { rel, assumptions: Vec::new() };
        }
        decide(ctx, r0, r1)
    }

    /// Insert `region` (Definition 3.7 + the unknown-relation fork).
    ///
    /// Returns one [`InsBranch`] per produced memory model. If the
    /// number of branches would exceed `cap`, falls back to the single
    /// destroy branch (always sound).
    pub fn insert(&self, ctx: &Ctx, region: Region, cap: usize) -> Vec<InsBranch> {
        if region.is_unknown() {
            // Unknown address: overapproximates any relation; the model
            // is left untouched and the caller must forget all values
            // (paper §4, evaluation of ⊥ regions).
            return vec![InsBranch {
                model: self.clone(),
                destroyed: self.all_regions().into_iter().cloned().collect(),
                assumed_alias: None,
                assumptions: Vec::new(),
            }];
        }
        if self.contains_region(&region) {
            // Already present: nothing to do.
            return vec![InsBranch {
                model: self.clone(),
                destroyed: Vec::new(),
                assumed_alias: None,
                assumptions: Vec::new(),
            }];
        }
        // ins_rec truncates at fork sites, so the branch count is
        // bounded by `cap` on return.
        let mut branches = ins_rec(ctx, MemTree::leaf(region), &self.trees, cap);
        for b in &mut branches {
            let model = std::mem::take(&mut b.model);
            b.model = model.canon();
        }
        branches
    }

    /// Remove a region (and forget its node membership). Children of a
    /// node whose last region is removed are promoted to the parent
    /// level — their mutual separation remains true.
    pub fn remove_region(&self, r: &Region) -> MemModel {
        fn walk(m: &MemModel, r: &Region) -> MemModel {
            let mut out = Vec::new();
            for t in &m.trees {
                let mut regions = t.regions.clone();
                regions.remove(r);
                let children = walk(&t.children, r);
                if regions.is_empty() {
                    out.extend(children.trees);
                } else {
                    out.push(MemTree { regions, children });
                }
            }
            MemModel { trees: out }
        }
        walk(self, r).canon()
    }

    /// Retain only regions satisfying `keep` (used when an external
    /// call destroys the heap and global space).
    pub fn retain<F: Fn(&Region) -> bool>(&self, keep: &F) -> MemModel {
        let mut out = self.clone();
        for r in self.all_regions() {
            if !keep(r) {
                out = out.remove_region(r);
            }
        }
        out
    }

    /// The join `M₀ ⊔ M₁` (Definition 3.12).
    ///
    /// Trees are partitioned by the transitive closure of sharing a
    /// top-level region; each class joins into one tree whose node is
    /// the intersection of the class's nodes and whose children are the
    /// join of the class's sub-forests. Classes containing trees from
    /// only one side are dropped (slightly coarser than the paper's
    /// definition, which keeps them; dropping is sound since a model
    /// with fewer regions asserts strictly less).
    pub fn join(&self, other: &MemModel) -> MemModel {
        if self.trees.is_empty() || other.trees.is_empty() {
            // One-sided classes are dropped, so a join with the empty
            // model is empty — skip the union-find entirely.
            return MemModel::default();
        }
        if let ([t0], [t1]) = (self.trees.as_slice(), other.trees.as_slice()) {
            // One tree a side (the overwhelmingly common shape): the
            // two trees either share a top-level region — one class,
            // node intersection, children joined — or they are
            // one-sided classes and the join is empty. Identical to
            // the general path below, minus the union-find.
            if t0.regions.is_disjoint(&t1.regions) {
                return MemModel::default();
            }
            let regions: BTreeSet<Region> =
                t0.regions.intersection(&t1.regions).cloned().collect();
            if regions.is_empty() {
                return MemModel::default();
            }
            let children = t0.children.join(&t1.children);
            return MemModel { trees: vec![MemTree { regions, children }] }.canon();
        }
        let n0 = self.trees.len();
        let all: Vec<(&MemTree, bool)> = self
            .trees
            .iter()
            .map(|t| (t, false))
            .chain(other.trees.iter().map(|t| (t, true)))
            .collect();
        // Union-find over tree indices by shared top-level regions.
        let mut parent: Vec<usize> = (0..all.len()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
                r
            } else {
                i
            }
        }
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                if !all[i].0.regions.is_disjoint(&all[j].0.regions) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut classes: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..all.len() {
            let r = find(&mut parent, i);
            classes.entry(r).or_default().push(i);
        }
        let mut out = Vec::new();
        for members in classes.values() {
            let has0 = members.iter().any(|&i| i < n0);
            let has1 = members.iter().any(|&i| i >= n0);
            if !(has0 && has1) {
                continue;
            }
            let mut regions: Option<BTreeSet<Region>> = None;
            let mut children = MemModel::default();
            let mut first = true;
            for &i in members {
                let t = all[i].0;
                regions = Some(match regions {
                    None => t.regions.clone(),
                    Some(r) => r.intersection(&t.regions).cloned().collect(),
                });
                children = if first { t.children.clone() } else { children.join(&t.children) };
                first = false;
            }
            let regions = regions.unwrap_or_default();
            if !regions.is_empty() {
                out.push(MemTree { regions, children });
            }
        }
        MemModel { trees: out }.canon()
    }

    /// Evaluate Definition 3.9: does the model hold in the concrete
    /// state given by the symbol environment? `None` if some address
    /// fails to evaluate.
    pub fn holds_in<F>(&self, env: &F) -> Option<bool>
    where
        F: Fn(Sym) -> u64,
    {
        let nomem = |_: u64, _: u8| None;
        let eval = |r: &Region| -> Option<(u64, u64)> {
            let a = r.addr.eval(env, &nomem)?;
            Some((a, r.size))
        };
        fn tree_holds<E: Fn(&Region) -> Option<(u64, u64)>>(t: &MemTree, eval: &E) -> Option<bool> {
            // Node regions pairwise alias.
            let evs: Vec<(u64, u64)> = t.regions.iter().map(eval).collect::<Option<_>>()?;
            for w in evs.windows(2) {
                if w[0] != w[1] {
                    return Some(false);
                }
            }
            let (na, ns) = evs[0];
            // Children enclosed in the node.
            for c in &t.children.trees {
                for r in &c.regions {
                    let (ca, cs) = eval(r)?;
                    if !(ca >= na && ca + cs <= na + ns) {
                        return Some(false);
                    }
                }
                if !tree_holds(c, eval)? {
                    return Some(false);
                }
                // Siblings separate.
            }
            forest_separate(&t.children, eval)
        }
        fn forest_separate<E: Fn(&Region) -> Option<(u64, u64)>>(m: &MemModel, eval: &E) -> Option<bool> {
            for i in 0..m.trees.len() {
                for j in i + 1..m.trees.len() {
                    for r0 in m.trees[i].all_regions() {
                        for r1 in m.trees[j].all_regions() {
                            let (a0, s0) = eval(r0)?;
                            let (a1, s1) = eval(r1)?;
                            if !(a0.wrapping_add(s0) <= a1 || a1.wrapping_add(s1) <= a0) {
                                return Some(false);
                            }
                        }
                    }
                }
            }
            Some(true)
        }
        for t in &self.trees {
            if !tree_holds(t, &eval)? {
                return Some(false);
            }
        }
        forest_separate(self, &eval)
    }
}

/// The recursive `ins` of Definition 3.7 over a tree list, extended
/// with the unknown-relation fork. `t0` is the tree being inserted.
fn ins_rec(ctx: &Ctx, t0: MemTree, trees: &[MemTree], cap: usize) -> Vec<InsBranch> {
    let Some((t1, rest)) = trees.split_first() else {
        return vec![InsBranch {
            model: MemModel { trees: vec![t0] },
            destroyed: Vec::new(),
            assumed_alias: None,
            assumptions: Vec::new(),
        }];
    };
    // Single-region inserts are the only callers, so the relation of t0
    // against t1 is its (first) region's relation.
    let r0 = *t0.regions.iter().next().expect("inserted tree has a region");
    let mut assumptions = Vec::new();
    let rel = region_vs_tree(ctx, &r0, t1, &mut assumptions);

    let with = |mut branches: Vec<InsBranch>, extra: &[Assumption]| -> Vec<InsBranch> {
        for b in &mut branches {
            b.assumptions.extend(extra.iter().cloned());
        }
        branches
    };

    match rel {
        RegionRel::Alias => {
            // insAL: merge node sets; reinsert the children of both.
            let merged_regions: BTreeSet<Region> =
                t0.regions.union(&t1.regions).cloned().collect();
            let mut sub = t1.children.clone();
            let mut branches = vec![InsBranch {
                model: sub.clone(),
                destroyed: Vec::new(),
                assumed_alias: None,
                assumptions: Vec::new(),
            }];
            for child in &t0.children.trees {
                let mut next = Vec::new();
                for b in branches {
                    for nb in ins_rec(ctx, child.clone(), &b.model.trees, cap) {
                        next.push(merge_effects(&b, nb));
                    }
                }
                branches = next;
                if branches.len() > cap {
                    branches.truncate(cap);
                }
            }
            let _ = &mut sub;
            let out: Vec<InsBranch> = branches
                .into_iter()
                .map(|b| InsBranch {
                    model: MemModel {
                        trees: std::iter::once(MemTree {
                            regions: merged_regions.clone(),
                            children: b.model,
                        })
                        .chain(rest.iter().cloned())
                        .collect(),
                    },
                    ..b
                })
                .collect();
            with(out, &assumptions)
        }
        RegionRel::Separate => {
            // insSEP: keep t1, insert into the rest.
            let out = ins_rec(ctx, t0, rest, cap)
                .into_iter()
                .map(|b| InsBranch {
                    model: MemModel {
                        trees: std::iter::once(t1.clone()).chain(b.model.trees).collect(),
                    },
                    ..b
                })
                .collect();
            with(out, &assumptions)
        }
        RegionRel::Enclosed => {
            // insENC: insert into t1's sub-forest.
            let out = ins_rec(ctx, t0, &t1.children.trees, cap)
                .into_iter()
                .map(|b| InsBranch {
                    model: MemModel {
                        trees: std::iter::once(MemTree {
                            regions: t1.regions.clone(),
                            children: b.model,
                        })
                        .chain(rest.iter().cloned())
                        .collect(),
                    },
                    ..b
                })
                .collect();
            with(out, &assumptions)
        }
        RegionRel::Encloses => {
            // insCON: t1 moves under t0; the combined tree is inserted
            // into the rest.
            let mut out = Vec::new();
            for b1 in ins_rec(ctx, t1.clone(), &t0.children.trees, cap) {
                let t = MemTree { regions: t0.regions.clone(), children: b1.model.clone() };
                for b2 in ins_rec(ctx, t, rest, cap) {
                    out.push(merge_effects(&b1, b2));
                }
            }
            if out.len() > cap {
                out.truncate(cap);
            }
            with(out, &assumptions)
        }
        RegionRel::Overlap => {
            // Definite partial overlap: destroy t1 (§1) and continue.
            let destroyed: Vec<Region> = t1.all_regions().into_iter().cloned().collect();
            let out = ins_rec(ctx, t0, rest, cap)
                .into_iter()
                .map(|mut b| {
                    b.destroyed.extend(destroyed.iter().cloned());
                    b
                })
                .collect();
            with(out, &assumptions)
        }
        RegionRel::Unknown => {
            let mut out = Vec::new();
            // (a) assumed-alias fork, for each same-sized top region.
            for r1 in &t1.regions {
                if r1.size == r0.size && t0.children.trees.is_empty() {
                    let merged: BTreeSet<Region> = t1
                        .regions
                        .iter()
                        .cloned()
                        .chain(std::iter::once(r0))
                        .collect();
                    out.push(InsBranch {
                        model: MemModel {
                            trees: std::iter::once(MemTree {
                                regions: merged,
                                children: t1.children.clone(),
                            })
                            .chain(rest.iter().cloned())
                            .collect(),
                        },
                        destroyed: Vec::new(),
                        assumed_alias: Some((r0, *r1)),
                        assumptions: Vec::new(),
                    });
                    break; // one alias fork suffices: node regions all alias
                }
            }
            // (b) assumed-separate fork.
            for b in ins_rec(ctx, t0.clone(), rest, cap) {
                out.push(InsBranch {
                    model: MemModel {
                        trees: std::iter::once(t1.clone()).chain(b.model.trees).collect(),
                    },
                    ..b
                });
            }
            // (c) assumed-enclosed fork (possible when t0's region can
            // fit inside some top-level region of t1).
            if t1.regions.iter().any(|r1| r0.size < r1.size) {
                for b in ins_rec(ctx, t0.clone(), &t1.children.trees, cap) {
                    out.push(InsBranch {
                        model: MemModel {
                            trees: std::iter::once(MemTree {
                                regions: t1.regions.clone(),
                                children: b.model,
                            })
                            .chain(rest.iter().cloned())
                            .collect(),
                        },
                        ..b
                    });
                }
            }
            // (d) assumed-encloses fork (t1 fits inside t0's region).
            if t0.children.trees.is_empty() && t1.regions.iter().all(|r1| r1.size < r0.size) {
                let t = MemTree {
                    regions: t0.regions.clone(),
                    children: MemModel { trees: vec![t1.clone()] },
                };
                out.extend(ins_rec(ctx, t, rest, cap));
            }
            // (e) destroy fork: covers partial overlap.
            let destroyed: Vec<Region> = t1.all_regions().into_iter().cloned().collect();
            for mut b in ins_rec(ctx, t0, rest, cap) {
                b.destroyed.extend(destroyed.iter().cloned());
                out.push(b);
            }
            if out.len() > cap {
                // Keep the destroy branches (they are the sound
                // catch-all) by retaining from the end.
                out.drain(..out.len() - cap);
            }
            out
        }
    }
}

fn merge_effects(a: &InsBranch, mut b: InsBranch) -> InsBranch {
    b.destroyed.extend(a.destroyed.iter().cloned());
    if b.assumed_alias.is_none() {
        b.assumed_alias = a.assumed_alias;
    }
    b.assumptions.extend(a.assumptions.iter().cloned());
    b
}

impl fmt::Display for MemModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for MemTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                write!(f, " ≡ ")?;
            }
            write!(f, "{r}")?;
        }
        if !self.children.trees.is_empty() {
            write!(f, " ⊇ {}", self.children)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::Expr;
    use hgl_x86::Reg;

    fn sym(r: Reg) -> Expr {
        Expr::sym(Sym::Init(r))
    }

    fn insert_all(ctx: &Ctx, m: &MemModel, r: Region) -> Vec<InsBranch> {
        m.insert(ctx, r, 64)
    }

    /// Example 3.8 / Figure 2: the three-instruction snippet produces
    /// the aliasing and non-aliasing models.
    #[test]
    fn example_3_8_memory_models() {
        let ctx = Ctx::new();
        let rdi8 = Region::new(sym(Reg::Rdi), 8);
        let rsi4 = Region::new(sym(Reg::Rsi).add(Expr::imm(4)), 4);
        let rsi8 = Region::new(sym(Reg::Rsi), 8);

        let m0 = MemModel::empty();
        let after1 = insert_all(&ctx, &m0, rdi8);
        assert_eq!(after1.len(), 1, "insert into empty model is deterministic");

        // Insert [rsi+4, 4]: unknown vs [rdi, 8] (different params, no
        // same-size alias possible) → separate + destroy forks.
        let after2: Vec<InsBranch> = after1
            .iter()
            .flat_map(|b| insert_all(&ctx, &b.model, rsi4))
            .collect();
        assert!(after2.len() >= 2);

        // Insert [rsi, 8] into each: in branches where [rsi+4,4]
        // survives, it must end up enclosed in [rsi, 8].
        // Figure 2a: {[rdi0,8] ≡ [rsi0,8]} with [rsi0+4,4] enclosed.
        // Figure 2b: [rdi0,8] ⊲⊳ [rsi0,8] with [rsi0+4,4] enclosed in
        // the latter. Both must appear among the produced models (other
        // fork combinations are allowed; some are vacuous).
        let mut fig2a = false;
        let mut fig2b = false;
        for b in &after2 {
            for b2 in insert_all(&ctx, &b.model, rsi8) {
                let m = &b2.model;
                let enclosed = m.structural_relation(&rsi4, &rsi8) == Some(RegionRel::Enclosed);
                match m.structural_relation(&rdi8, &rsi8) {
                    Some(RegionRel::Alias) if enclosed => fig2a = true,
                    Some(RegionRel::Separate) if enclosed => fig2b = true,
                    _ => {}
                }
            }
        }
        assert!(fig2a, "figure 2a (aliasing) model produced");
        assert!(fig2b, "figure 2b (separate) model produced");
    }

    #[test]
    fn necessary_enclosure_single_branch() {
        let ctx = Ctx::new();
        let outer = Region::new(sym(Reg::Rsi), 8);
        let inner = Region::new(sym(Reg::Rsi).add(Expr::imm(4)), 4);
        let m = MemModel { trees: vec![MemTree::leaf(outer)] };
        let branches = insert_all(&ctx, &m, inner);
        assert_eq!(branches.len(), 1, "necessary relation: no fork");
        assert_eq!(branches[0].model.structural_relation(&inner, &outer), Some(RegionRel::Enclosed));
    }

    #[test]
    fn necessary_separation_single_branch() {
        let ctx = Ctx::new();
        let a = Region::stack(-8, 8);
        let b = Region::stack(-16, 8);
        let m = MemModel { trees: vec![MemTree::leaf(a)] };
        let branches = insert_all(&ctx, &m, b);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].model.structural_relation(&a, &b), Some(RegionRel::Separate));
        assert!(branches[0].destroyed.is_empty());
    }

    #[test]
    fn unknown_relation_forks_with_destroy() {
        let ctx = Ctx::new();
        let a = Region::new(sym(Reg::Rdi), 4);
        let b = Region::new(sym(Reg::Rsi), 4);
        let m = MemModel { trees: vec![MemTree::leaf(a)] };
        let branches = insert_all(&ctx, &m, b);
        // alias + separate + destroy
        assert_eq!(branches.len(), 3);
        assert!(branches.iter().any(|br| br.assumed_alias.is_some()));
        assert!(branches.iter().any(|br| !br.destroyed.is_empty()));
        assert!(branches
            .iter()
            .any(|br| br.model.structural_relation(&a, &b) == Some(RegionRel::Separate)));
    }

    #[test]
    fn encloses_restructures() {
        let ctx = Ctx::new();
        let inner = Region::new(sym(Reg::Rsi).add(Expr::imm(4)), 4);
        let outer = Region::new(sym(Reg::Rsi), 8);
        let m = MemModel { trees: vec![MemTree::leaf(inner)] };
        let branches = insert_all(&ctx, &m, outer);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].model.structural_relation(&inner, &outer), Some(RegionRel::Enclosed));
        assert_eq!(branches[0].model.trees.len(), 1);
    }

    #[test]
    fn structural_relation_wins_over_solver() {
        // After an assumed-alias fork, the model asserts rdi ≡ rsi even
        // though the solver cannot.
        let ctx = Ctx::new();
        let a = Region::new(sym(Reg::Rdi), 4);
        let b = Region::new(sym(Reg::Rsi), 4);
        let m = MemModel { trees: vec![MemTree::leaf(a)] };
        let alias = insert_all(&ctx, &m, b)
            .into_iter()
            .find(|br| br.assumed_alias.is_some())
            .expect("alias fork");
        assert_eq!(alias.model.relation(&ctx, &a, &b).rel, RegionRel::Alias);
    }

    #[test]
    fn remove_region_promotes_children() {
        let inner = Region::stack(-8, 4);
        let outer = Region::stack(-8, 8);
        let m = MemModel {
            trees: vec![MemTree {
                regions: BTreeSet::from([outer]),
                children: MemModel { trees: vec![MemTree::leaf(inner)] },
            }],
        };
        let m2 = m.remove_region(&outer);
        assert_eq!(m2.trees.len(), 1);
        assert!(m2.trees[0].regions.contains(&inner));
    }

    #[test]
    fn join_keeps_shared_drops_disjoint() {
        // Example 3.13: both models share top node [rdi0, 8]; children
        // [rdi0, 4] and [rdi0+4, 4] differ → children join drops both
        // (no shared top region between the child trees).
        let top = Region::new(sym(Reg::Rdi), 8);
        let c0 = Region::new(sym(Reg::Rdi), 4);
        let c1 = Region::new(sym(Reg::Rdi).add(Expr::imm(4)), 4);
        let m0 = MemModel {
            trees: vec![MemTree {
                regions: BTreeSet::from([top]),
                children: MemModel { trees: vec![MemTree::leaf(c0)] },
            }],
        };
        let m1 = MemModel {
            trees: vec![MemTree {
                regions: BTreeSet::from([top]),
                children: MemModel { trees: vec![MemTree::leaf(c1)] },
            }],
        };
        let j = m0.join(&m1);
        assert_eq!(j.trees.len(), 1);
        assert!(j.trees[0].regions.contains(&top));
        // Unlike the paper's Example 3.13 (which keeps both children as
        // separate siblings), our conservative join drops unshared
        // children — sound, strictly less information.
        let solo = MemModel { trees: vec![MemTree::leaf(Region::stack(-64, 8))] };
        let j2 = m0.join(&solo);
        assert!(j2.trees.is_empty(), "one-sided trees dropped");
    }

    #[test]
    fn join_idempotent() {
        let top = Region::new(sym(Reg::Rdi), 8);
        let m = MemModel { trees: vec![MemTree::leaf(top)] };
        assert_eq!(m.join(&m), m);
    }

    #[test]
    fn holds_in_checks_definition_3_9() {
        let a = Region::new(sym(Reg::Rdi), 8);
        let b = Region::new(sym(Reg::Rsi), 8);
        // Model asserting a ⊲⊳ b.
        let sep = MemModel { trees: vec![MemTree::leaf(a), MemTree::leaf(b)] };
        let alias = MemModel {
            trees: vec![MemTree { regions: BTreeSet::from([a, b]), children: MemModel::default() }],
        };
        let disjoint_env = |s: Sym| match s {
            Sym::Init(Reg::Rdi) => 0x1000,
            Sym::Init(Reg::Rsi) => 0x2000,
            _ => 0,
        };
        let alias_env = |s: Sym| match s {
            Sym::Init(Reg::Rdi) | Sym::Init(Reg::Rsi) => 0x1000,
            _ => 0,
        };
        let overlap_env = |s: Sym| match s {
            Sym::Init(Reg::Rdi) => 0x1000,
            Sym::Init(Reg::Rsi) => 0x1004,
            _ => 0,
        };
        assert_eq!(sep.holds_in(&disjoint_env), Some(true));
        assert_eq!(sep.holds_in(&alias_env), Some(false));
        assert_eq!(sep.holds_in(&overlap_env), Some(false));
        assert_eq!(alias.holds_in(&alias_env), Some(true));
        assert_eq!(alias.holds_in(&disjoint_env), Some(false));
    }

    #[test]
    fn insert_unknown_address_destroys_all() {
        let ctx = Ctx::new();
        let m = MemModel { trees: vec![MemTree::leaf(Region::stack(-8, 8))] };
        let branches = m.insert(&ctx, Region::new(Expr::bottom(), 8), 64);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].destroyed.len(), 1);
    }
}
