//! Phase-level pipeline metrics.
//!
//! The ROADMAP's north star is a system "as fast as the hardware
//! allows"; this module is the instrument that makes speed claims
//! checkable. A [`Metrics`] sink is threaded through the lifting
//! pipeline and accumulates, per [`Phase`], wall time and invocation
//! counts, plus binary-level gauges (states, instructions, functions)
//! and the solver cache's hit/miss/eviction statistics. Everything is
//! atomic, so one sink is shared by all workers of the parallel
//! engine.
//!
//! The phases follow the pipeline's structure, not a strict partition
//! of wall time: `tau` (symbolic stepping) *contains* the `solver`
//! time spent deciding region relations during memory-model insertion,
//! and the sum of phase times is less than total wall time (worklist
//! bookkeeping, joins against the bag, scheduling). A
//! [`MetricsSnapshot`] freezes the counters; `hgl-export` serialises
//! it as the `hgl-metrics-v1` document behind `hgl lift --metrics`.

use crate::store_api::StoreStats;
use hgl_solver::CacheStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A pipeline phase with its own wall-time and count counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Instruction fetch + decode.
    Decode,
    /// The symbolic step function `τ` (includes nested solver time).
    Tau,
    /// State joins at graph vertices.
    Join,
    /// Solver-context construction and region-relation queries.
    Solver,
    /// Report assembly and serialisation.
    Export,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [Phase::Decode, Phase::Tau, Phase::Join, Phase::Solver, Phase::Export];

    /// Stable lowercase name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::Tau => "tau",
            Phase::Join => "join",
            Phase::Solver => "solver",
            Phase::Export => "export",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Decode => 0,
            Phase::Tau => 1,
            Phase::Join => 2,
            Phase::Solver => 3,
            Phase::Export => 4,
        }
    }
}

#[derive(Default)]
struct PhaseCell {
    nanos: AtomicU64,
    count: AtomicU64,
}

/// The shared, thread-safe metrics sink.
#[derive(Default)]
pub struct Metrics {
    phases: [PhaseCell; 5],
    states: AtomicU64,
    instructions: AtomicU64,
    functions_lifted: AtomicU64,
    functions_rejected: AtomicU64,
    rounds: AtomicU64,
    // A mutex, not atomics: decode rejects are rare (one ends the
    // exploration of its path), so contention is negligible and the
    // open key space rules out a fixed atomic array.
    decode_rejects: Mutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("snapshot", &self.snapshot(None, 0, Duration::ZERO)).finish()
    }
}

impl Metrics {
    /// A zeroed sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one timed invocation of `phase`.
    pub fn record(&self, phase: Phase, elapsed: Duration) {
        let cell = &self.phases[phase.index()];
        cell.nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Time `f` under `phase`.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.record(phase, started.elapsed());
        out
    }

    /// Accumulate the binary-level gauges (called at report assembly;
    /// additive so a session of several lifts sums its work).
    pub fn add_gauges(&self, states: u64, instructions: u64, lifted: u64, rejected: u64) {
        self.states.fetch_add(states, Ordering::Relaxed);
        self.instructions.fetch_add(instructions, Ordering::Relaxed);
        self.functions_lifted.fetch_add(lifted, Ordering::Relaxed);
        self.functions_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Record one completed engine round.
    pub fn count_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one decode rejection under its histogram bucket (a
    /// [`hgl_x86::DecodeError::reject_key`] such as `opcode:0f05`).
    pub fn count_decode_reject(&self, key: String) {
        let mut map = self.decode_rejects.lock().expect("decode-reject histogram poisoned");
        *map.entry(key).or_insert(0) += 1;
    }

    /// Freeze the counters. `cache` folds the solver cache's counters
    /// in (its accumulated query time is added to the `solver` phase);
    /// `workers`/`elapsed` describe the run that produced the numbers.
    pub fn snapshot(
        &self,
        cache: Option<CacheStats>,
        workers: usize,
        elapsed: Duration,
    ) -> MetricsSnapshot {
        let cache = cache.unwrap_or_default();
        let mut phases = Vec::with_capacity(Phase::ALL.len());
        for p in Phase::ALL {
            let cell = &self.phases[p.index()];
            let mut nanos = cell.nanos.load(Ordering::Relaxed);
            let mut count = cell.count.load(Ordering::Relaxed);
            if p == Phase::Solver {
                nanos += cache.query_nanos;
                count += cache.hits + cache.misses;
            }
            phases.push(PhaseSnapshot { phase: p, nanos, count });
        }
        MetricsSnapshot {
            phases,
            states: self.states.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            functions_lifted: self.functions_lifted.load(Ordering::Relaxed),
            functions_rejected: self.functions_rejected.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            decode_rejects: self
                .decode_rejects
                .lock()
                .expect("decode-reject histogram poisoned")
                .clone(),
            cache,
            store: None,
            rewrite: None,
            workers: workers as u64,
            elapsed_nanos: elapsed.as_nanos() as u64,
        }
    }
}

/// Counters of one `hgl-rewrite` run, carried in the metrics document
/// as the `rewrite` block. Defined here (not in `hgl-rewrite`) so the
/// exporter can serialise it without depending on the rewriter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Functions whose graphs were walked and re-encoded.
    pub functions: u64,
    /// Instructions re-encoded through `hgl_x86::encode`.
    pub instructions_reencoded: u64,
    /// Image-size delta in bytes (rewritten minus original).
    pub bytes_delta: i64,
    /// Shadow-stack guards inserted (0 for identity rewrites).
    pub guards_inserted: u64,
    /// Re-lift graph-correspondence verdict, when `--verify` ran.
    pub verify_relift_ok: Option<bool>,
    /// Differential trace-oracle verdict, when `--verify` ran.
    pub verify_traces_ok: Option<bool>,
}

/// One phase's frozen counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Which phase.
    pub phase: Phase,
    /// Accumulated wall time, in nanoseconds.
    pub nanos: u64,
    /// Invocation count (for `solver`, the number of region-relation
    /// queries plus context constructions).
    pub count: u64,
}

/// A frozen, plain-data view of a [`Metrics`] sink — the payload of
/// the `hgl-metrics-v1` report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-phase timings, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
    /// Total symbolic states across all lifted functions.
    pub states: u64,
    /// Distinct instruction addresses lifted.
    pub instructions: u64,
    /// Functions that lifted cleanly.
    pub functions_lifted: u64,
    /// Functions with a rejection verdict.
    pub functions_rejected: u64,
    /// Engine rounds run (0 for the legacy single-entry driver).
    pub rounds: u64,
    /// Histogram of decode rejections, keyed by
    /// [`hgl_x86::DecodeError::reject_key`] bucket. Empty when every
    /// fetched window decoded — the common case, and the shape the
    /// pre-telemetry metrics documents pin.
    pub decode_rejects: BTreeMap<String, u64>,
    /// Solver-cache counters.
    pub cache: CacheStats,
    /// Persistent artifact-store counters; `None` when the session runs
    /// without a store, so store-less metrics documents are unchanged.
    pub store: Option<StoreStats>,
    /// Rewriting counters; `None` for plain lifts, so pre-rewrite
    /// metrics documents are unchanged.
    pub rewrite: Option<RewriteStats>,
    /// Worker threads used.
    pub workers: u64,
    /// End-to-end wall time of the lift, in nanoseconds.
    pub elapsed_nanos: u64,
}

impl MetricsSnapshot {
    /// The frozen counters of one phase.
    pub fn phase(&self, phase: Phase) -> PhaseSnapshot {
        self.phases[phase.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let m = Metrics::new();
        m.record(Phase::Decode, Duration::from_nanos(100));
        m.record(Phase::Decode, Duration::from_nanos(50));
        m.time(Phase::Join, || std::thread::sleep(Duration::from_millis(1)));
        let s = m.snapshot(None, 2, Duration::from_millis(5));
        assert_eq!(s.phase(Phase::Decode).count, 2);
        assert_eq!(s.phase(Phase::Decode).nanos, 150);
        assert_eq!(s.phase(Phase::Join).count, 1);
        assert!(s.phase(Phase::Join).nanos >= 1_000_000);
        assert_eq!(s.phase(Phase::Tau).count, 0);
        assert_eq!(s.workers, 2);
    }

    #[test]
    fn cache_stats_fold_into_solver_phase() {
        let m = Metrics::new();
        m.record(Phase::Solver, Duration::from_nanos(10));
        let cache = CacheStats { hits: 3, misses: 2, evictions: 0, entries: 2, query_nanos: 90 };
        let s = m.snapshot(Some(cache), 1, Duration::ZERO);
        assert_eq!(s.phase(Phase::Solver).nanos, 100);
        assert_eq!(s.phase(Phase::Solver).count, 6);
        assert!((s.cache.hit_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn shared_across_threads() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        m.record(Phase::Tau, Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(m.snapshot(None, 4, Duration::ZERO).phase(Phase::Tau).count, 400);
    }
}
