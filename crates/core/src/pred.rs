//! Symbolic predicates (§3.1) and symbolic states.

use crate::memmodel::MemModel;
use hgl_expr::{Clause, Expr, ExprKind, Rel, Sym};
use hgl_solver::Region;
use hgl_x86::{Cond, Reg, RegRef, Width};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A copy-on-write collection handle. Symbolic states are forked at
/// every branch, join, and memory-model split, but most forks never
/// touch most of the forked maps — the clause set and memory valuation
/// ride along unchanged. `Shared` makes the fork a reference-count
/// bump: reads go through [`Deref`]; the first write through
/// [`DerefMut`] un-shares (clones) the underlying collection if and
/// only if another state still holds it. Semantically transparent —
/// equality, ordering, and iteration all delegate to the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shared<T>(Arc<T>);

impl<T> Shared<T> {
    /// Wrap an owned collection.
    pub fn new(value: T) -> Shared<T> {
        Shared(Arc::new(value))
    }
}

impl<T: Clone + Default> Default for Shared<T> {
    fn default() -> Shared<T> {
        Shared::new(T::default())
    }
}

impl<T: Clone> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Clone> DerefMut for Shared<T> {
    fn deref_mut(&mut self) -> &mut T {
        Arc::make_mut(&mut self.0)
    }
}

impl<'a, T: Clone> IntoIterator for &'a Shared<T>
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type IntoIter = <&'a T as IntoIterator>::IntoIter;
    fn into_iter(self) -> Self::IntoIter {
        (&*self.0).into_iter()
    }
}

/// Abstract flag state: which comparison produced the current flags.
///
/// Keeping the producing operands (rather than six separate flag
/// expressions) is what lets a later `jcc` turn the flags into a
/// precise [`Clause`] — the `cmp`/`ja` pair of the §2 example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagState {
    /// Nothing known.
    Unknown,
    /// Flags set by `sub`/`cmp lhs, rhs` at the given width (operand
    /// expressions already truncated to that width).
    Cmp {
        /// Operand width.
        width: Width,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// Flags set by `test`/`and lhs, rhs` (CF=OF=0).
    Test {
        /// Operand width.
        width: Width,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// Flags set from a known result value (CF=OF=0, e.g. `xor`/`or`).
    Result {
        /// Operand width.
        width: Width,
        /// The result expression.
        value: Expr,
    },
}

impl FlagState {
    /// The clause guaranteed by taking a conditional branch on `cond`
    /// with the current flag state (`None` if nothing useful can be
    /// derived). Negate `cond` for the fall-through edge.
    pub fn clause_for(&self, cond: Cond) -> Option<Clause> {
        match self {
            FlagState::Cmp { width, lhs, rhs } if !lhs.is_bottom() && !rhs.is_bottom() => {
                let (l, r) = (*lhs, *rhs);
                // Signed relations are evaluated on 64-bit values, so
                // sub-64-bit operands must be *sign*-extended (their
                // zero-extended form would misorder negatives).
                let (sl, sr) = (lhs.sext(*width), rhs.sext(*width));
                let bump = |e: &Expr| e.as_imm().filter(|v| *v < u64::MAX).map(|v| Expr::imm(v + 1));
                let bump_s = |e: &Expr| {
                    e.as_imm().filter(|v| (*v as i64) < i64::MAX).map(|v| Expr::imm(v + 1))
                };
                Some(match cond {
                    Cond::E => Clause::new(l, Rel::Eq, r),
                    Cond::Ne => Clause::new(l, Rel::Ne, r),
                    Cond::B => Clause::new(l, Rel::Lt, r),
                    Cond::Ae => Clause::new(l, Rel::Ge, r),
                    Cond::A => Clause::new(l, Rel::Ge, bump(&r)?),
                    Cond::Be => Clause::new(l, Rel::Lt, bump(&r)?),
                    Cond::L => Clause::new(sl, Rel::SLt, sr),
                    Cond::Ge => Clause::new(sl, Rel::SGe, sr),
                    Cond::G => Clause::new(sl, Rel::SGe, bump_s(&sr)?),
                    Cond::Le => Clause::new(sl, Rel::SLt, bump_s(&sr)?),
                    _ => return None,
                })
            }
            FlagState::Test { lhs, rhs, .. } if lhs == rhs => Some(match cond {
                Cond::E => Clause::new(*lhs, Rel::Eq, Expr::imm(0)),
                Cond::Ne => Clause::new(*lhs, Rel::Ne, Expr::imm(0)),
                _ => return None,
            }),
            FlagState::Result { value, .. } => Some(match cond {
                Cond::E => Clause::new(*value, Rel::Eq, Expr::imm(0)),
                Cond::Ne => Clause::new(*value, Rel::Ne, Expr::imm(0)),
                _ => return None,
            }),
            _ => None,
        }
    }

    /// Concretely evaluate whether `cond` holds, given a symbol
    /// environment and memory oracle. `None` when unknown.
    ///
    /// [`FlagState::Result`] constrains only ZF/SF/PF: the producing
    /// instruction (`inc`, shifts, …) computes CF/OF by rules the
    /// abstraction does not track, so CF/OF-dependent conditions are
    /// unknown there.
    pub fn eval_cond<F, M>(&self, cond: Cond, env: &F, mem: &M) -> Option<bool>
    where
        F: Fn(Sym) -> u64,
        M: Fn(u64, u8) -> Option<u64>,
    {
        let (cf, zf, sf, of, pf) = match self {
            FlagState::Unknown => return None,
            FlagState::Cmp { width, lhs, rhs } => {
                let a = width.trunc(lhs.eval(env, mem)?);
                let b = width.trunc(rhs.eval(env, mem)?);
                let r = width.trunc(a.wrapping_sub(b));
                let (sa, sb, sr) = (width.sign_bit(a), width.sign_bit(b), width.sign_bit(r));
                (a < b, r == 0, sr, sa != sb && sr != sa, (r as u8).count_ones().is_multiple_of(2))
            }
            FlagState::Test { width, lhs, rhs } => {
                let r = width.trunc(lhs.eval(env, mem)? & rhs.eval(env, mem)?);
                (false, r == 0, width.sign_bit(r), false, (r as u8).count_ones().is_multiple_of(2))
            }
            FlagState::Result { width, value } => {
                if !matches!(cond, Cond::E | Cond::Ne | Cond::S | Cond::Ns | Cond::P | Cond::Np) {
                    return None;
                }
                let r = width.trunc(value.eval(env, mem)?);
                (false, r == 0, width.sign_bit(r), false, (r as u8).count_ones().is_multiple_of(2))
            }
        };
        Some(cond.eval(cf, pf, zf, sf, of))
    }
}

/// Dense register file: every one of the sixteen general-purpose
/// registers always has a value (⊥ when unknown), so a fixed array
/// indexed by [`Reg::number`] replaces the former `BTreeMap<Reg,
/// Expr>`. Iteration follows [`Reg::ALL`] — the same order the map's
/// keys sorted in — so canonical forms and serialized artifacts are
/// byte-identical, while clone is a 16-word copy and lookup an array
/// index (this sits on the join/step hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegFile([Expr; 16]);

impl RegFile {
    /// Every register holds its initial-value symbol `init(r)`.
    pub fn function_entry() -> RegFile {
        let mut f = RegFile::all_bottom();
        for r in Reg::ALL {
            f.set(r, Expr::sym(Sym::Init(r)));
        }
        f
    }

    /// Every register holds ⊥ (decode seed; also the value absent
    /// entries of the old map representation denoted).
    pub fn all_bottom() -> RegFile {
        RegFile([Expr::bottom(); 16])
    }

    /// Current value of `r`.
    pub fn get(&self, r: Reg) -> Expr {
        self.0[r.number() as usize]
    }

    /// Set the value of `r`.
    pub fn set(&mut self, r: Reg, v: Expr) {
        self.0[r.number() as usize] = v;
    }

    /// `(register, value)` pairs in [`Reg::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, Expr)> + '_ {
        Reg::ALL.iter().map(move |&r| (r, self.get(r)))
    }

    /// Register values in [`Reg::ALL`] order.
    pub fn values(&self) -> impl Iterator<Item = Expr> + '_ {
        self.0.iter().copied()
    }

    /// Number of registers (always sixteen; mirrors the map API for
    /// the serialization layer).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

/// A symbolic predicate: current register values, flag state, known
/// memory contents, direction flag, and path clauses — all in terms of
/// constant expressions over the function-entry symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pred {
    /// Current value of each 64-bit register.
    pub regs: RegFile,
    /// Current flag state.
    pub flags: FlagState,
    /// Direction flag (`Some(false)` per the System V entry contract).
    pub df: Option<bool>,
    /// Known memory contents: region → value. Copy-on-write: forked
    /// states share it until one of them writes.
    pub mem: Shared<BTreeMap<Region, Expr>>,
    /// Path clauses. Copy-on-write, like `mem`.
    pub clauses: Shared<BTreeSet<Clause>>,
}

impl Pred {
    /// The entry predicate of a function at `entry`: every register
    /// holds its initial-value symbol, and the return-address slot
    /// `*[rsp0, 8]` holds the return symbol `S_entry` (§4.2.2).
    pub fn function_entry(entry: u64) -> Pred {
        let regs = RegFile::function_entry();
        let mut mem = BTreeMap::new();
        mem.insert(Region::return_address_slot(), Expr::sym(Sym::RetSym(entry)));
        Pred {
            regs,
            flags: FlagState::Unknown,
            df: Some(false),
            mem: Shared::new(mem),
            clauses: Shared::default(),
        }
    }

    /// Current value of a 64-bit register.
    pub fn reg(&self, r: Reg) -> Expr {
        self.regs.get(r)
    }

    /// Set a 64-bit register.
    pub fn set_reg(&mut self, r: Reg, v: Expr) {
        self.regs.set(r, v);
    }

    /// The value of a register view, as a 64-bit (zero-extended)
    /// expression.
    pub fn reg_ref(&self, r: RegRef) -> Expr {
        let v = self.reg(r.reg);
        if r.high8 {
            v.shr(Expr::imm(8)).trunc(Width::B1)
        } else {
            v.trunc(r.width)
        }
    }

    /// Write a register view with x86 aliasing semantics. Sub-64-bit
    /// partial writes (16/8-bit) merge bit-precisely when the old value
    /// is known, otherwise the register degrades to ⊥.
    pub fn write_reg_ref(&mut self, r: RegRef, v: Expr) {
        let new = match (r.width, r.high8) {
            (Width::B8, _) => v,
            (Width::B4, _) => v.trunc(Width::B4),
            (Width::B2, _) | (Width::B1, _) => {
                let old = self.reg(r.reg);
                let (mask, shift) = match (r.width, r.high8) {
                    (Width::B2, _) => (0xffffu64, 0u32),
                    (Width::B1, false) => (0xff, 0),
                    _ => (0xff00, 8),
                };
                let vpart = if shift == 0 {
                    v.and(Expr::imm(mask))
                } else {
                    v.trunc(Width::B1).mul(Expr::imm(1 << shift))
                };
                if old.is_bottom() {
                    Expr::bottom()
                } else {
                    old.and(Expr::imm(!mask)).or(vpart)
                }
            }
        };
        self.set_reg(r.reg, new);
    }

    /// Look up the known value of a memory region (exact match after
    /// normalisation).
    pub fn mem_value(&self, r: &Region) -> Option<&Expr> {
        self.mem.get(r)
    }

    /// Record the value of a region.
    pub fn set_mem(&mut self, r: Region, v: Expr) {
        self.mem.insert(r, v);
    }

    /// Forget the value of a region.
    pub fn forget_mem(&mut self, r: &Region) {
        self.mem.remove(r);
    }

    /// Forget everything a predicate knows about regions failing `keep`.
    pub fn retain_mem<F: Fn(&Region) -> bool>(&mut self, keep: F) {
        self.mem.retain(|r, _| keep(r));
    }

    /// Join (Definition 3.3): clause sets merge with range abstraction
    /// over equal left-hand sides; register/memory entries must agree
    /// — *up to a consistent renaming of fresh symbols* — or are
    /// dropped. `widen` disables range abstraction, guaranteeing a
    /// strictly shrinking (hence terminating) join for vertices that
    /// keep growing.
    ///
    /// Fresh symbols are existentially quantified unknowns (havoc
    /// results, contents of unresolved reads). Two visits of the same
    /// program point allocate different ids for the same unknowns, so
    /// the join matches them with a bijection: `{rax == u48, *[s] ==
    /// u48} ⊔ {rax == u128, *[s] == u128}` keeps the sharing (`rax ==
    /// *[s]`), while inconsistent sharing patterns degrade to ⊥.
    /// Surviving entries keep `other`'s names, so a vertex's state is
    /// stable across repeated joins (important for the ⊑ fixpoint
    /// check).
    pub fn join(&self, other: &Pred, widen: bool) -> Pred {
        let mut uni = Unifier::default();
        let mut regs = RegFile::all_bottom();
        for (r, v) in self.regs.iter() {
            let v2 = other.regs.get(r);
            if uni.unify(v, v2) {
                regs.set(r, v2);
            }
        }
        let mut mem = BTreeMap::new();
        for (region, v) in &self.mem {
            if let Some(v2) = other.mem.get(region) {
                if uni.unify(*v, *v2) {
                    mem.insert(*region, *v2);
                }
            }
        }
        let flags = match (&self.flags, &other.flags) {
            (a, b) if a == b => other.flags,
            (
                FlagState::Cmp { width: w1, lhs: l1, rhs: r1 },
                FlagState::Cmp { width: w2, lhs: l2, rhs: r2 },
            ) if w1 == w2 && uni.unify(*l1, *l2) && uni.unify(*r1, *r2) => other.flags,
            _ => FlagState::Unknown,
        };
        let df = if self.df == other.df { self.df } else { None };
        let clauses = join_clauses(&self.clauses, &other.clauses, widen);
        Pred { regs, flags, df, mem: Shared::new(mem), clauses: Shared::new(clauses) }
    }

    /// Evaluate whether a concrete state (symbol environment plus
    /// memory oracle) satisfies all clauses and memory entries of this
    /// predicate. Registers/flags are checked by the caller against the
    /// machine. Returns `None` if some expression cannot be evaluated.
    pub fn clauses_hold<F, M>(&self, env: &F, mem: &M) -> Option<bool>
    where
        F: Fn(Sym) -> u64,
        M: Fn(u64, u8) -> Option<u64>,
    {
        for c in &self.clauses {
            if !c.eval(env, mem)? {
                return Some(false);
            }
        }
        for (r, v) in &self.mem {
            let addr = r.addr.eval(env, mem)?;
            // Compare only up to 8 bytes (larger regions are tracked
            // structurally, not by value).
            if r.size <= 8 {
                let actual = mem(addr, r.size as u8)?;
                let expected = v.eval(env, mem)?;
                let mask = if r.size == 8 { u64::MAX } else { (1 << (8 * r.size)) - 1 };
                if actual & mask != expected & mask {
                    return Some(false);
                }
            }
        }
        Some(true)
    }
}

/// A greedy bijection between the fresh symbols of two predicates.
#[derive(Default)]
struct Unifier {
    fwd: BTreeMap<Sym, Sym>,
    rev: BTreeMap<Sym, Sym>,
}

impl Unifier {
    /// True if `a` and `b` are equal up to a consistent renaming of
    /// fresh symbols (extending the bijection as a side effect).
    fn unify(&mut self, a: Expr, b: Expr) -> bool {
        // O(1) fast path: identical interned terms with no fresh
        // symbols unify trivially and leave no bijection obligations.
        // (Identical terms *with* fresh symbols must still walk, so the
        // identity mapping is recorded and later pairs stay consistent
        // with it.)
        if a == b && !a.has_fresh() {
            return true;
        }
        match (a.kind(), b.kind()) {
            (ExprKind::Imm(x), ExprKind::Imm(y)) => x == y,
            (ExprKind::Sym(Sym::Fresh(x)), ExprKind::Sym(Sym::Fresh(y))) => {
                let (sa, sb) = (Sym::Fresh(*x), Sym::Fresh(*y));
                match (self.fwd.get(&sa), self.rev.get(&sb)) {
                    (Some(mapped), Some(back)) => *mapped == sb && *back == sa,
                    (None, None) => {
                        self.fwd.insert(sa, sb);
                        self.rev.insert(sb, sa);
                        true
                    }
                    _ => false,
                }
            }
            (ExprKind::Sym(x), ExprKind::Sym(y)) => x == y,
            (ExprKind::Deref { addr: a1, size: s1 }, ExprKind::Deref { addr: a2, size: s2 }) => {
                s1 == s2 && self.unify(*a1, *a2)
            }
            (ExprKind::Op { op: o1, args: a1 }, ExprKind::Op { op: o2, args: a2 }) => {
                o1 == o2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| self.unify(*x, *y))
            }
            _ => false,
        }
    }
}

/// Clause-set join: intersection, plus range abstraction (Example 3.4)
/// for pairs of constant comparisons over the same left-hand side.
fn join_clauses(a: &BTreeSet<Clause>, b: &BTreeSet<Clause>, widen: bool) -> BTreeSet<Clause> {
    if a.is_empty() || b.is_empty() {
        // Intersection is empty and range abstraction needs bounds
        // from *both* sides, so the join is empty.
        return BTreeSet::new();
    }
    let mut out: BTreeSet<Clause> = a.intersection(b).copied().collect();
    if widen {
        return out;
    }
    // Bounds per lhs: Eq c contributes [c, c]; Lt c → [0, c-1]; Ge c →
    // [c, MAX].
    let bounds = |set: &BTreeSet<Clause>| -> BTreeMap<Expr, (Option<u64>, Option<u64>)> {
        let mut m: BTreeMap<Expr, (Option<u64>, Option<u64>)> = BTreeMap::new();
        for c in set {
            let Some(v) = c.rhs.as_imm() else { continue };
            let e = m.entry(c.lhs).or_insert((None, None));
            match c.rel {
                Rel::Eq => {
                    e.0 = Some(e.0.map_or(v, |x| x.max(v)));
                    e.1 = Some(e.1.map_or(v, |x| x.min(v)));
                }
                Rel::Lt if v > 0 => e.1 = Some(e.1.map_or(v - 1, |x| x.min(v - 1))),
                Rel::Ge => e.0 = Some(e.0.map_or(v, |x| x.max(v))),
                _ => {}
            }
        }
        m
    };
    let ba = bounds(a);
    let bb = bounds(b);
    for (lhs, (lo_a, hi_a)) in &ba {
        let Some((lo_b, hi_b)) = bb.get(lhs) else { continue };
        // Joined lower bound: min of the two sides' lower bounds.
        if let (Some(la), Some(lb)) = (lo_a, lo_b) {
            let lo = la.min(lb);
            if *lo > 0 {
                out.insert(Clause::new(*lhs, Rel::Ge, Expr::imm(*lo)));
            }
        }
        if let (Some(ha), Some(hb)) = (hi_a, hi_b) {
            let hi = ha.max(hb);
            if *hi < u64::MAX {
                out.insert(Clause::new(*lhs, Rel::Lt, Expr::imm(hi + 1)));
            }
        }
    }
    out
}

/// A symbolic state: a predicate plus a memory model (the `P × M`
/// vertices of the Hoare Graph, Definition 3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymState {
    /// The predicate.
    pub pred: Pred,
    /// The memory model. Copy-on-write: states forked by branching
    /// share the forest until a step replaces it.
    pub model: Shared<MemModel>,
}

impl SymState {
    /// The entry state of a function at `entry`.
    pub fn function_entry(entry: u64) -> SymState {
        let pred = Pred::function_entry(entry);
        let mut model = MemModel::empty();
        model.trees.push(crate::memmodel::MemTree::leaf(Region::return_address_slot()));
        SymState { pred, model: Shared::new(model) }
    }

    /// The join `σ₀ ⊔ σ₁` (Definition 3.15).
    pub fn join(&self, other: &SymState, widen: bool) -> SymState {
        SymState {
            pred: self.pred.join(&other.pred, widen),
            model: Shared::new(self.model.join(&other.model)),
        }
    }

    /// `self ⊑ other`: other is at least as abstract (defined as
    /// `other == self ⊔ other`, §3).
    pub fn leq(&self, other: &SymState) -> bool {
        &self.join(other, false) == other
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (r, v) in self.regs.iter() {
            if v != Expr::sym(Sym::Init(r)) && !v.is_bottom() {
                if wrote {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{r} == {v}")?;
                wrote = true;
            }
        }
        for (region, v) in &self.mem {
            if wrote {
                write!(f, " ∧ ")?;
            }
            write!(f, "*{region} == {v}")?;
            wrote = true;
        }
        for c in &self.clauses {
            if wrote {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rax0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rax))
    }

    #[test]
    fn entry_state_has_return_symbol() {
        let s = SymState::function_entry(0x401000);
        assert_eq!(
            s.pred.mem_value(&Region::return_address_slot()),
            Some(&Expr::sym(Sym::RetSym(0x401000)))
        );
        assert_eq!(s.pred.reg(Reg::Rsp), Expr::sym(Sym::Init(Reg::Rsp)));
        assert_eq!(s.pred.df, Some(false));
    }

    #[test]
    fn reg_ref_width_views() {
        let mut p = Pred::function_entry(0);
        p.set_reg(Reg::Rax, Expr::imm(0x1122_3344_5566_7788));
        assert_eq!(p.reg_ref(RegRef::new(Reg::Rax, Width::B4)), Expr::imm(0x5566_7788));
        assert_eq!(p.reg_ref(RegRef::new(Reg::Rax, Width::B1)), Expr::imm(0x88));
        assert_eq!(p.reg_ref(RegRef::high(Reg::Rax)), Expr::imm(0x77));
    }

    #[test]
    fn partial_writes() {
        let mut p = Pred::function_entry(0);
        p.set_reg(Reg::Rbx, Expr::imm(0xaaaa_bbbb_cccc_dddd));
        p.write_reg_ref(RegRef::new(Reg::Rbx, Width::B4), Expr::imm(0x1234));
        assert_eq!(p.reg(Reg::Rbx), Expr::imm(0x1234), "32-bit write zero-extends");
        p.set_reg(Reg::Rcx, Expr::imm(0xffff));
        p.write_reg_ref(RegRef::new(Reg::Rcx, Width::B1), Expr::imm(0xab));
        assert_eq!(p.reg(Reg::Rcx), Expr::imm(0xffab), "8-bit write merges");
    }

    #[test]
    fn cmp_ja_clause() {
        // cmp eax, 0xc3 ; flags = Cmp(B4, trunc32(rax0), 0xc3)
        let fs = FlagState::Cmp { width: Width::B4, lhs: rax0().trunc(Width::B4), rhs: Expr::imm(0xc3) };
        // Not-taken edge of `ja`: !(l > r) = l <= r → l < r+1.
        let c = fs.clause_for(Cond::A.negate()).expect("clause");
        assert_eq!(c.rel, Rel::Lt);
        assert_eq!(c.rhs.as_imm(), Some(0xc4));
        // Taken edge: l > r → l >= r+1.
        let t = fs.clause_for(Cond::A).expect("clause");
        assert_eq!(t.rel, Rel::Ge);
        assert_eq!(t.rhs.as_imm(), Some(0xc4));
    }

    #[test]
    fn flag_eval_matches_clause() {
        let fs = FlagState::Cmp { width: Width::B4, lhs: rax0().trunc(Width::B4), rhs: Expr::imm(5) };
        let nomem = |_: u64, _: u8| None;
        for v in [0u64, 4, 5, 6, 0xffff_ffff] {
            let env = |_s: Sym| v;
            let taken = fs.eval_cond(Cond::B, &env, &nomem).expect("concrete");
            assert_eq!(taken, (v & 0xffff_ffff) < 5);
        }
    }

    #[test]
    fn join_example_3_4() {
        // P = {a = 3}, Q = {a = 4}  ⊔→  {a ≥ 3, a < 5}
        let mut p = Pred::function_entry(0);
        p.clauses.insert(Clause::new(rax0(), Rel::Eq, Expr::imm(3)));
        let mut q = Pred::function_entry(0);
        q.clauses.insert(Clause::new(rax0(), Rel::Eq, Expr::imm(4)));
        let j = p.join(&q, false);
        assert!(j.clauses.contains(&Clause::new(rax0(), Rel::Ge, Expr::imm(3))));
        assert!(j.clauses.contains(&Clause::new(rax0(), Rel::Lt, Expr::imm(5))));
        assert!(!j.clauses.contains(&Clause::new(rax0(), Rel::Eq, Expr::imm(3))));
    }

    #[test]
    fn join_drops_disagreeing_regs() {
        let mut p = Pred::function_entry(0);
        p.set_reg(Reg::Rax, Expr::imm(1));
        let mut q = Pred::function_entry(0);
        q.set_reg(Reg::Rax, Expr::imm(2));
        let j = p.join(&q, false);
        assert!(j.reg(Reg::Rax).is_bottom());
        assert_eq!(j.reg(Reg::Rbx), Expr::sym(Sym::Init(Reg::Rbx)), "agreeing regs kept");
    }

    #[test]
    fn join_is_idempotent_and_commutative_on_clauses() {
        let mut p = Pred::function_entry(0);
        p.clauses.insert(Clause::new(rax0(), Rel::Lt, Expr::imm(10)));
        assert_eq!(p.join(&p, false), p);
        let mut q = Pred::function_entry(0);
        q.clauses.insert(Clause::new(rax0(), Rel::Lt, Expr::imm(20)));
        assert_eq!(p.join(&q, false).clauses, q.join(&p, false).clauses);
    }

    #[test]
    fn leq_reflexive_and_after_join() {
        let s = SymState::function_entry(0x1000);
        assert!(s.leq(&s));
        let mut bigger = s.clone();
        bigger.pred.set_reg(Reg::Rax, Expr::imm(1));
        // `bigger` knows more; joining loses that → bigger ⊑ joined.
        let joined = bigger.join(&s, false);
        assert!(bigger.leq(&joined));
        assert!(s.leq(&joined));
    }

    #[test]
    fn widen_join_is_plain_intersection() {
        let mut p = Pred::function_entry(0);
        p.clauses.insert(Clause::new(rax0(), Rel::Eq, Expr::imm(3)));
        let mut q = Pred::function_entry(0);
        q.clauses.insert(Clause::new(rax0(), Rel::Eq, Expr::imm(4)));
        let j = p.join(&q, true);
        assert!(j.clauses.is_empty());
    }

    #[test]
    fn clauses_hold_checks_memory() {
        let mut p = Pred::function_entry(0x400);
        p.set_mem(Region::stack(-8, 8), Expr::imm(7));
        let env = |s: Sym| match s {
            Sym::Init(Reg::Rsp) => 0x8000,
            Sym::RetSym(_) => 0xdead,
            _ => 0,
        };
        let good_mem = |addr: u64, _sz: u8| match addr {
            0x7ff8 => Some(7),
            0x8000 => Some(0xdead),
            _ => None,
        };
        assert_eq!(p.clauses_hold(&env, &good_mem), Some(true));
        let bad_mem = |addr: u64, _sz: u8| match addr {
            0x7ff8 => Some(8),
            0x8000 => Some(0xdead),
            _ => None,
        };
        assert_eq!(p.clauses_hold(&env, &bad_mem), Some(false));
    }
}
