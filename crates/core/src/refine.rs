//! The analyze→re-lift refinement loop.
//!
//! A lift can leave indirect jumps unresolved ([`Annotation::
//! UnresolvedJump`](crate::diag::Annotation)); a static analysis over
//! the extracted graphs (e.g. the value-set analysis in
//! `hgl-analysis`) may then bound their targets after the fact. An
//! [`IndirectResolver`] packages that step, and
//! [`Lifter::lift_entry_refined`](crate::engine::Lifter::lift_entry_refined)
//! iterates lift → resolve → merge-hints → re-lift until a resolve
//! pass changes nothing (or the round bound trips).
//!
//! Crucially the resolver sees the *current* hint set each round and
//! re-validates every already-hinted jump against the grown graph: a
//! hinted jump no longer carries an `UnresolvedJump` annotation, yet
//! the paths its own targets introduced may feed new index values into
//! the same dispatch. A re-validation that proves a *larger* target
//! set grows the hint; one that can no longer bound the jump at all
//! [`demotes`](Resolution::demoted) it — the hint is withdrawn, the
//! jump address is poisoned for the rest of the fixpoint (so an
//! under-approximate claim cannot oscillate back in), and the re-lift
//! reports the jump unresolved again, which is the sound outcome.
//!
//! Soundness: a hint claims "this indirect jump only ever transfers to
//! these addresses". The lifter re-checks every hinted target against
//! the executable segments, the hint set is part of the configuration
//! [`Fingerprint`](crate::fingerprint::Fingerprint) (so store and
//! solver caches never mix hinted and unhinted artifacts), and the
//! trace oracle cross-validates every claim dynamically: a concretely
//! executed indirect target outside the claimed set is a reported
//! violation, not a silent mislift.

use crate::lift::LiftResult;
use hgl_elf::Binary;
use std::collections::{BTreeMap, BTreeSet};

/// What one resolve pass concluded about the current lift.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// Complete proven target sets, keyed by indirect-jump address —
    /// for jumps the lift left unresolved *and* for already-hinted
    /// jumps re-proven on the current graph (whose set may have grown
    /// since the hint was first made). Jumps the analysis cannot bound
    /// must be absent (an empty set is treated the same way).
    pub resolved: BTreeMap<u64, BTreeSet<u64>>,
    /// Previously hinted jumps whose claim could **not** be re-proven
    /// on the current graph (the bound no longer holds, or widened to
    /// top). The refinement loop withdraws these hints and never
    /// re-admits them: the jump goes back to unresolved, which is the
    /// sound report for a claim the analysis cannot sustain.
    pub demoted: BTreeSet<u64>,
}

/// A static analysis that proposes concrete target sets for indirect
/// jumps the lifter left unresolved, and re-validates the claims made
/// in earlier rounds.
pub trait IndirectResolver {
    /// Resolve against the current lift. `hints` is the hint set the
    /// lift ran under: every hinted jump that appears in a lifted
    /// function must be re-analysed on that function's (possibly
    /// grown) graph and either re-proven — its full current target
    /// set returned in [`Resolution::resolved`] — or reported in
    /// [`Resolution::demoted`]. Every returned claim must
    /// over-approximate the concrete behaviour — an unsound claim will
    /// surface as an oracle containment violation, not be silently
    /// absorbed.
    fn resolve(
        &self,
        binary: &Binary,
        lift: &LiftResult,
        hints: &BTreeMap<u64, BTreeSet<u64>>,
    ) -> Resolution;
}

/// The outcome of a refinement fixpoint.
#[derive(Debug, Clone)]
pub struct RefinedLift {
    /// The final lift (under the final hint set).
    pub result: LiftResult,
    /// Lift rounds performed (1 = nothing to refine).
    pub rounds: usize,
    /// True when the loop reached a fixpoint (a resolve pass neither
    /// proposed a new target nor demoted a hint) within the round
    /// bound.
    pub converged: bool,
    /// The hint set `result` was lifted under — on the converged path
    /// this is also the fixpoint set; on a round-bound trip it is the
    /// last *committed* set (a final proposal that never got its
    /// re-lift is discarded, so a plain `lift_entry` under the
    /// lifter's config always reproduces `result`).
    pub hints: BTreeMap<u64, BTreeSet<u64>>,
    /// Jumps whose hint was withdrawn during refinement because a
    /// later round's graph no longer supported the claimed bound.
    /// They are reported unresolved in `result`.
    pub demoted: BTreeSet<u64>,
}

impl RefinedLift {
    /// Total targets across all hints.
    pub fn hinted_targets(&self) -> usize {
        self.hints.values().map(|s| s.len()).sum()
    }
}

/// Merge `proposed` into `hints`; true if anything new appeared.
pub(crate) fn merge_hints(
    hints: &mut BTreeMap<u64, BTreeSet<u64>>,
    proposed: BTreeMap<u64, BTreeSet<u64>>,
) -> bool {
    let mut grew = false;
    for (addr, targets) in proposed {
        if targets.is_empty() {
            continue;
        }
        let entry = hints.entry(addr).or_default();
        for t in targets {
            grew |= entry.insert(t);
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_detects_growth() {
        let mut hints = BTreeMap::new();
        let one: BTreeMap<u64, BTreeSet<u64>> =
            [(0x10u64, [0x20u64, 0x30].into_iter().collect())].into_iter().collect();
        assert!(merge_hints(&mut hints, one.clone()));
        assert!(!merge_hints(&mut hints, one));
        let more: BTreeMap<u64, BTreeSet<u64>> =
            [(0x10u64, [0x40u64].into_iter().collect())].into_iter().collect();
        assert!(merge_hints(&mut hints, more));
        assert_eq!(hints[&0x10].len(), 3);
        // Empty proposals are not growth.
        let empty: BTreeMap<u64, BTreeSet<u64>> =
            [(0x50u64, BTreeSet::new())].into_iter().collect();
        assert!(!merge_hints(&mut hints, empty));
        assert!(!hints.contains_key(&0x50));
    }
}
