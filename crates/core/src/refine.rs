//! The analyze→re-lift refinement loop.
//!
//! A lift can leave indirect jumps unresolved ([`Annotation::
//! UnresolvedJump`](crate::diag::Annotation)); a static analysis over
//! the extracted graphs (e.g. the value-set analysis in
//! `hgl-analysis`) may then bound their targets after the fact. An
//! [`IndirectResolver`] packages that step, and
//! [`Lifter::lift_entry_refined`](crate::engine::Lifter::lift_entry_refined)
//! iterates lift → resolve → merge-hints → re-lift until no new
//! targets appear (or the round bound trips).
//!
//! Soundness: a hint claims "this indirect jump only ever transfers to
//! these addresses". The lifter re-checks every hinted target against
//! the executable segments, the hint set is part of the configuration
//! [`Fingerprint`](crate::fingerprint::Fingerprint) (so store and
//! solver caches never mix hinted and unhinted artifacts), and the
//! trace oracle cross-validates every claim dynamically: a concretely
//! executed indirect target outside the claimed set is a reported
//! violation, not a silent mislift.

use crate::lift::LiftResult;
use hgl_elf::Binary;
use std::collections::{BTreeMap, BTreeSet};

/// A static analysis that proposes concrete target sets for indirect
/// jumps the lifter left unresolved.
pub trait IndirectResolver {
    /// Map from unresolved indirect-jump address to the complete set
    /// of targets the analysis proved for it. Jumps the analysis
    /// cannot bound must be *absent* (an empty set is treated the same
    /// way). Every returned claim must over-approximate the concrete
    /// behaviour — an unsound claim will surface as an oracle
    /// containment violation, not be silently absorbed.
    fn resolve(&self, binary: &Binary, lift: &LiftResult) -> BTreeMap<u64, BTreeSet<u64>>;
}

/// The outcome of a refinement fixpoint.
#[derive(Debug, Clone)]
pub struct RefinedLift {
    /// The final lift (under the final hint set).
    pub result: LiftResult,
    /// Lift rounds performed (1 = nothing to refine).
    pub rounds: usize,
    /// True when the loop reached a fixpoint (a resolve pass proposed
    /// no new target) within the round bound.
    pub converged: bool,
    /// The accumulated hint set the final round was lifted under.
    pub hints: BTreeMap<u64, BTreeSet<u64>>,
}

impl RefinedLift {
    /// Total targets across all hints.
    pub fn hinted_targets(&self) -> usize {
        self.hints.values().map(|s| s.len()).sum()
    }
}

/// Merge `proposed` into `hints`; true if anything new appeared.
pub(crate) fn merge_hints(
    hints: &mut BTreeMap<u64, BTreeSet<u64>>,
    proposed: BTreeMap<u64, BTreeSet<u64>>,
) -> bool {
    let mut grew = false;
    for (addr, targets) in proposed {
        if targets.is_empty() {
            continue;
        }
        let entry = hints.entry(addr).or_default();
        for t in targets {
            grew |= entry.insert(t);
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_detects_growth() {
        let mut hints = BTreeMap::new();
        let one: BTreeMap<u64, BTreeSet<u64>> =
            [(0x10u64, [0x20u64, 0x30].into_iter().collect())].into_iter().collect();
        assert!(merge_hints(&mut hints, one.clone()));
        assert!(!merge_hints(&mut hints, one));
        let more: BTreeMap<u64, BTreeSet<u64>> =
            [(0x10u64, [0x40u64].into_iter().collect())].into_iter().collect();
        assert!(merge_hints(&mut hints, more));
        assert_eq!(hints[&0x10].len(), 3);
        // Empty proposals are not growth.
        let empty: BTreeMap<u64, BTreeSet<u64>> =
            [(0x50u64, BTreeSet::new())].into_iter().collect();
        assert!(!merge_hints(&mut hints, empty));
        assert!(!hints.contains_key(&0x50));
    }
}
