//! The engine-side interface to a persistent artifact store.
//!
//! Hoare-Graph extraction is context-free per function (§4.2.2): a
//! function's artifact depends only on its instruction bytes (plus any
//! image bytes its lift read), the configuration
//! [`Fingerprint`](crate::Fingerprint), and the binary's segment/
//! external layout. That makes per-function artifacts safely cacheable
//! across processes. The concrete on-disk store lives in `hgl-store`
//! (which depends on this crate); the engine sees only this
//! object-safe trait, so `hgl-core` stays free of a dependency cycle.
//!
//! # Contract
//!
//! - [`ArtifactStore::lookup`] must return an artifact only if it is
//!   *valid for the current binary*: the bytes at the artifact's
//!   recorded extent (instructions + image reads) hash to the recorded
//!   content hash, and the requesting fingerprint matches the one the
//!   artifact was stored under. Corrupted, truncated or version-skewed
//!   entries must surface as `None` (a miss/invalidation), never as a
//!   wrong artifact — degrading to recompute is always sound.
//! - Implementations must never panic on malformed store contents;
//!   the never-crash pipeline contract extends to the cache layer.
//! - [`ArtifactStore::insert`] may be a no-op (e.g. read-only stores).

use crate::lift::FnLift;
use crate::Fingerprint;
use hgl_elf::Binary;

/// A persistent, content-addressed store of per-function lift
/// artifacts, as seen by the engine.
pub trait ArtifactStore: Sync {
    /// Fetch the artifact for the function at `entry`, if the store
    /// holds one valid for this binary and fingerprint.
    fn lookup(&self, binary: &Binary, fingerprint: &Fingerprint, entry: u64) -> Option<FnLift>;

    /// Persist a freshly computed artifact.
    fn insert(&self, binary: &Binary, fingerprint: &Fingerprint, lift: &FnLift);

    /// Point-in-time counters (folded into the metrics snapshot).
    fn stats(&self) -> StoreStats;
}

/// Point-in-time counters of a persistent artifact store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered with a valid artifact.
    pub hits: u64,
    /// Lookups with no stored entry.
    pub misses: u64,
    /// Lookups that found an entry but rejected it: stale content
    /// hash, version skew, corruption, or a failed `--store-verify`
    /// replay. Every invalidation degrades to recompute.
    pub invalidations: u64,
    /// Entries evicted to respect the store's capacity.
    pub evictions: u64,
    /// Artifacts written by this session.
    pub inserts: u64,
    /// Orphaned temp files collected by the startup sweep (crash
    /// leftovers from a process that died between tmp write and
    /// rename).
    pub tmp_swept: u64,
    /// Publish attempts retried after a transient I/O failure.
    pub write_retries: u64,
    /// Publishes abandoned after exhausting retries. Each one degrades
    /// to a recompute on the next lift — never an error.
    pub write_failures: u64,
}

impl StoreStats {
    /// Hit fraction in `[0, 1]` over all lookups; `0` when none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.invalidations;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}
