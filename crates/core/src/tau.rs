//! The symbolic step function `step_Σ` (Definition 4.2) and the
//! predicate transformer `τ`.
//!
//! Given a symbolic state and a decoded instruction, [`step`] produces
//! the overapproximating set of successor states. Memory-operand
//! regions are evaluated against the predicate and inserted into the
//! memory model (forking per §2 when pointer relations are unknown);
//! the predicate is then transformed per instruction semantics.

use crate::budget::BudgetMeter;
use crate::diag::{Annotation, Diagnostics, ProofObligation, VerificationError};
use crate::memmodel::InsBranch;
use crate::pred::{FlagState, Pred, Shared, SymState};
use hgl_elf::Binary;
use hgl_expr::{Clause, Expr, Rel, Sym};
use hgl_solver::{Ctx, Layout, Provenance, Region, RegionRel};
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, RegRef, RepPrefix, Width};

/// Tunables threaded through stepping (a subset of `LiftConfig`).
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// Maximum memory models produced by one insertion.
    pub max_models_per_step: usize,
    /// Maximum entries enumerated from one jump table.
    pub max_jump_table: u64,
    /// Maximum expression size before degrading to ⊥.
    pub max_expr_nodes: usize,
    /// Externally resolved indirect-branch targets, keyed by the
    /// address of the (otherwise unresolvable) indirect jump. Fed back
    /// by the analyze→re-lift refinement loop (`Lifter::
    /// lift_entry_refined`); consulted only after the lifter's own
    /// table enumeration fails, and every hinted target is still
    /// required to land in executable code. Part of the configuration
    /// fingerprint, so cached artifacts and solver scopes stay sound.
    pub indirect_hints: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
}

impl Default for StepConfig {
    fn default() -> StepConfig {
        StepConfig {
            max_models_per_step: 16,
            max_jump_table: 1024,
            max_expr_nodes: 256,
            indirect_hints: std::collections::BTreeMap::new(),
        }
    }
}

/// Mutable context for one step.
pub struct StepCtx<'a> {
    /// The binary being lifted.
    pub binary: &'a Binary,
    /// Its section layout (for provenance classification). Shared:
    /// built once per binary by the engine; every step and every
    /// solver context holds a handle instead of copying section
    /// tables.
    pub layout: std::sync::Arc<Layout>,
    /// Step tunables (borrowed from the lift configuration; one copy
    /// per lift, not per step).
    pub config: &'a StepConfig,
    /// Fresh-symbol counter.
    pub fresh: &'a mut u64,
    /// Diagnostics sink.
    pub diags: &'a mut Diagnostics,
    /// Budget consumption counters (solver queries, forks).
    pub meter: &'a BudgetMeter,
    /// Shared solver-query memo table, attached to every solver
    /// context this step constructs. `None` outside an engine session.
    pub cache: Option<std::sync::Arc<hgl_solver::QueryCache>>,
    /// Metrics sink for phase timings. `None` disables timing.
    pub metrics: Option<&'a crate::metrics::Metrics>,
}

impl<'a> StepCtx<'a> {
    fn fresh_sym(&mut self) -> Expr {
        let id = *self.fresh;
        *self.fresh += 1;
        Expr::sym(Sym::Fresh(id))
    }

    fn solver_ctx(&self, pred: &Pred) -> Ctx {
        self.meter.count_solver_query();
        let build = || Ctx::from_clauses(pred.clauses.iter(), std::sync::Arc::clone(&self.layout));
        let ctx = match self.metrics {
            Some(m) => m.time(crate::metrics::Phase::Solver, build),
            None => build(),
        };
        match &self.cache {
            Some(cache) => ctx.with_cache(std::sync::Arc::clone(cache)),
            None => ctx,
        }
    }
}

/// A successor produced by one symbolic step.
#[derive(Debug, Clone)]
pub enum Successor {
    /// Control continues at a concrete address.
    At(u64, SymState),
    /// The function returns (rip evaluates to its return symbol) with
    /// the given final state.
    Return(SymState),
    /// An internal call: the callee must be explored (context-free)
    /// and `after` becomes reachable only once the callee provably
    /// returns (§4.2.2).
    CallInternal {
        /// Callee entry address.
        callee: u64,
        /// Return-site address.
        return_site: u64,
        /// Caller state at the return site (post-call cleaning applied).
        after: SymState,
    },
}

/// External functions known to never return (§4.2.1).
pub const TERMINATING_EXTERNALS: &[&str] = &[
    "exit",
    "_exit",
    "abort",
    "__stack_chk_fail",
    "__assert_fail",
    "err",
    "errx",
    "exit_group",
    "pthread_exit",
    "longjmp",
];

/// System V volatile (caller-saved) registers havocked by calls.
const VOLATILE: &[Reg] =
    &[Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11];

/// The effective-address expression of a memory operand, evaluated
/// against a predicate's register bindings. Public so that downstream
/// analyses (write classification in `hgl-analysis`) and the trace
/// oracle compute the *same* address a step would.
pub fn addr_expr(pred: &Pred, m: &MemOperand, next: u64) -> Expr {
    if m.rip_relative {
        return Expr::imm(next.wrapping_add(m.disp as u64));
    }
    let mut e = Expr::imm(m.disp as u64);
    if let Some(b) = m.base {
        e = e.add(pred.reg(b));
    }
    if let Some(i) = m.index {
        e = e.add(pred.reg(i).mul(Expr::imm(m.scale as u64)));
    }
    e
}

/// Read the value of a region from the state, consulting (in order)
/// the predicate's known contents, the memory model's alias/enclosure
/// structure, and the binary's read-only image; otherwise materialise
/// a fresh symbol so that repeated reads agree.
fn read_region(ctx: &mut StepCtx<'_>, state: &mut SymState, region: &Region) -> Expr {
    if region.is_unknown() {
        return Expr::bottom();
    }
    if let Some(v) = state.pred.mem_value(region) {
        return *v;
    }
    let sctx = ctx.solver_ctx(&state.pred);
    // Alias or constant-offset enclosure against a recorded region.
    let entries: Vec<(Region, Expr)> =
        state.pred.mem.iter().map(|(r, v)| (*r, *v)).collect();
    for (r1, v1) in &entries {
        match state.model.relation(&sctx, region, r1).rel {
            RegionRel::Alias => return *v1,
            RegionRel::Enclosed if region.size <= 8 && r1.size <= 8 => {
                // Extract bytes at a constant offset.
                let d = region.linear().diff(r1.linear());
                if let Some(off) = d.as_constant() {
                    // Odd-sized regions (3, 5, 6, 7 bytes) have no
                    // operand width; fall through to a fresh symbol.
                    if let Some(w) = Width::try_from_bytes(region.size as u8) {
                        if off >= 0 && (off as u64 + region.size) <= r1.size {
                            let shifted = (*v1).shr(Expr::imm(8 * off as u64));
                            return shifted.trunc(w);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Constant address in a non-writable segment: read the image.
    if let Some(addr) = region.addr.as_imm() {
        if region.size <= 8 {
            let read_only = ctx
                .binary
                .segments
                .iter()
                .any(|s| !s.flags.w && s.covers(addr, region.size));
            if read_only {
                if let Some(v) = ctx.binary.read_int(addr, region.size as u8) {
                    // The lifted output now depends on these image
                    // bytes: record them so the artifact store's
                    // content hash covers them.
                    ctx.diags.image_reads.insert((addr, region.size as u8));
                    return Expr::imm(v);
                }
            }
        }
    }
    // Unknown contents: a fresh-but-fixed symbol, memoised.
    let v = ctx.fresh_sym();
    if region.size <= 8 {
        state.pred.set_mem(*region, v);
    }
    v
}

/// Write `value` to `region`: invalidate everything not provably
/// separate, honouring the model's structural assertions.
fn write_region(ctx: &mut StepCtx<'_>, state: &mut SymState, region: &Region, value: Expr) {
    let sctx = ctx.solver_ctx(&state.pred);
    if region.is_unknown() {
        // A write to an unknown address may hit anything.
        state.pred.mem.clear();
        return;
    }
    let stored: Vec<Region> = state.pred.mem.keys().cloned().collect();
    for r1 in stored {
        if r1 == *region {
            continue;
        }
        let answer = state.model.relation(&sctx, region, &r1);
        for a in answer.assumptions {
            ctx.diags.assume(a);
        }
        match answer.rel {
            RegionRel::Separate => {}
            RegionRel::Alias => {
                state.pred.set_mem(r1, value);
            }
            _ => state.pred.forget_mem(&r1),
        }
    }
    let v = if value.node_count() > ctx.config.max_expr_nodes { Expr::bottom() } else { value };
    if region.size <= 8 && !v.is_bottom() {
        state.pred.set_mem(*region, v);
    }
}

/// Evaluate an operand to a (zero-extended) value expression of the
/// instruction's width.
fn read_operand(
    ctx: &mut StepCtx<'_>,
    state: &mut SymState,
    op: &Operand,
    w: Width,
    next: u64,
) -> Expr {
    match op {
        Operand::Reg(r) => state.pred.reg_ref(*r),
        Operand::Imm(v) => Expr::imm(w.trunc(*v as u64)),
        Operand::Mem(m) => {
            let addr = addr_expr(&state.pred, m, next);
            let region = Region::new(addr, m.size.bytes() as u64);
            read_region(ctx, state, &region)
        }
    }
}

/// Write a value to an operand destination.
fn write_operand(ctx: &mut StepCtx<'_>, state: &mut SymState, op: &Operand, v: Expr, next: u64) {
    let v = if v.node_count() > ctx.config.max_expr_nodes { Expr::bottom() } else { v };
    match op {
        Operand::Reg(r) => state.pred.write_reg_ref(*r, v),
        Operand::Mem(m) => {
            let addr = addr_expr(&state.pred, m, next);
            let region = Region::new(addr, m.size.bytes() as u64);
            write_region(ctx, state, &region, v);
        }
        Operand::Imm(_) => unreachable!("immediate as destination"),
    }
}

/// Insert every memory region accessed by `instr` into the memory
/// model, forking per Definition 3.7. Returns the branched states.
/// Also enforces return-address integrity: an *unknown-relation* write
/// into the frame region holding the return address rejects the
/// function (§1).
fn insert_regions(
    ctx: &mut StepCtx<'_>,
    state: SymState,
    instr: &Instr,
) -> Result<Vec<SymState>, VerificationError> {
    let next = instr.next_addr();
    let mut regions: Vec<(Region, bool)> = Vec::new(); // (region, is_write)
    // `lea` computes an address without touching memory; its Mem
    // operand is not an access. An indirect `jmp [mem]` does read, but
    // the read is terminal: its value only feeds branch resolution,
    // which re-derives the table from the operand (or falls back to an
    // annotation). Forking an aliasing model for it would manufacture
    // an assumed-alias branch against the return-address slot whose
    // read yields the return symbol — a spurious tail transfer that
    // rejects the function on an assumption the lifter itself invented.
    let address_only = matches!(instr.mnemonic, Mnemonic::Lea | Mnemonic::Jmp);
    for (i, op) in instr.operands.iter().enumerate() {
        if address_only {
            continue;
        }
        if let Operand::Mem(m) = op {
            let addr = addr_expr(&state.pred, m, next);
            let is_write = i == 0 && writes_first_operand(instr.mnemonic);
            regions.push((Region::new(addr, m.size.bytes() as u64), is_write));
        }
    }
    // Implicit stack accesses.
    let rsp = state.pred.reg(Reg::Rsp);
    match instr.mnemonic {
        Mnemonic::Push | Mnemonic::Call => {
            regions.push((Region::new(rsp.sub(Expr::imm(8)), 8), true));
        }
        Mnemonic::Pop | Mnemonic::Ret => {
            regions.push((Region::new(rsp, 8), false));
        }
        Mnemonic::Leave => {
            regions.push((Region::new(state.pred.reg(Reg::Rbp), 8), false));
        }
        _ => {}
    }

    // Ownership threads through: the incoming state is moved into the
    // working set, and each branching round moves every state into its
    // *last* branch, cloning only for the extra ones. Instructions
    // with no memory operand (the common case) and single-branch
    // inserts therefore copy no state at all.
    let mut states = vec![state];
    for (region, is_write) in regions {
        let mut out = Vec::new();
        for s in states {
            let sctx = ctx.solver_ctx(&s.pred);
            // Return-address integrity (§1): an unknown-relation WRITE
            // against the return-address slot rejects the function —
            // unless it is the assumed-separate caller-pointer case,
            // which instead records an assumption.
            if is_write && region.is_unknown() {
                // A write to a ⊥ address may hit the return slot.
                return Err(VerificationError::ReturnAddressClobbered {
                    addr: instr.addr,
                    region,
                });
            }
            if is_write {
                let ra = Region::return_address_slot();
                let rel = s.model.relation(&sctx, &region, &ra);
                match rel.rel {
                    RegionRel::Separate => {
                        for a in rel.assumptions {
                            ctx.diags.assume(a);
                        }
                    }
                    RegionRel::Alias | RegionRel::Enclosed | RegionRel::Encloses
                    | RegionRel::Overlap => {
                        return Err(VerificationError::ReturnAddressClobbered {
                            addr: instr.addr,
                            region,
                        });
                    }
                    RegionRel::Unknown => {
                        // Unknown vs the return slot: if the write is
                        // stack-rooted we must reject (cannot prove
                        // integrity); caller-pointer writes were already
                        // Separate-with-assumption above.
                        return Err(VerificationError::ReturnAddressClobbered {
                            addr: instr.addr,
                            region,
                        });
                    }
                }
            }
            let branches: Vec<InsBranch> =
                s.model.insert(&sctx, region, ctx.config.max_models_per_step);
            let mut branches = branches.into_iter();
            let last = branches.next_back();
            let apply = |mut ns: SymState, b: InsBranch, diags: &mut Diagnostics| {
                ns.model = Shared::new(b.model);
                for d in &b.destroyed {
                    ns.pred.forget_mem(d);
                }
                if let Some((r0, r1)) = &b.assumed_alias {
                    ns.pred
                        .clauses
                        .insert(Clause::new(r0.addr, Rel::Eq, r1.addr));
                    // The alias makes any recorded value of r1 apply to r0.
                    if let Some(v) = ns.pred.mem_value(r1).cloned() {
                        ns.pred.set_mem(*r0, v);
                    }
                }
                for a in b.assumptions {
                    diags.assume(a);
                }
                ns
            };
            for b in branches {
                out.push(apply(s.clone(), b, ctx.diags));
            }
            if let Some(b) = last {
                out.push(apply(s, b, ctx.diags));
            }
        }
        states = out;
        if states.len() > ctx.config.max_models_per_step {
            states.truncate(ctx.config.max_models_per_step);
        }
    }
    Ok(states)
}

/// Does this mnemonic write through a memory first operand? Shared
/// with the static write classifier and the oracle's dynamic write
/// cross-check so all three agree on what counts as a memory write.
pub fn writes_first_operand(m: Mnemonic) -> bool {
    !matches!(
        m,
        Mnemonic::Cmp | Mnemonic::Test | Mnemonic::Bt | Mnemonic::Push | Mnemonic::Jmp
            | Mnemonic::Jcc(_)
            | Mnemonic::Call
    )
}

/// The top-level symbolic step: `step_Σ(σ)` of Definition 4.2.
///
/// # Errors
///
/// Returns a [`VerificationError`] when a sanity property becomes
/// unprovable (the function is then rejected).
pub fn step(
    ctx: &mut StepCtx<'_>,
    state: SymState,
    instr: &Instr,
    entry: u64,
) -> Result<Vec<Successor>, VerificationError> {
    let mut out = Vec::new();
    for branched in insert_regions(ctx, state, instr)? {
        step_one(ctx, branched, instr, entry, &mut out)?;
    }
    Ok(out)
}

/// Execute the instruction semantics on one (already model-branched)
/// state.
fn step_one(
    ctx: &mut StepCtx<'_>,
    mut s: SymState,
    instr: &Instr,
    entry: u64,
    out: &mut Vec<Successor>,
) -> Result<(), VerificationError> {
    let next = instr.next_addr();
    let w = instr.width;
    let ops = &instr.operands;

    macro_rules! fall {
        ($s:expr) => {
            out.push(Successor::At(next, $s))
        };
    }

    match instr.mnemonic {
        Mnemonic::Mov | Mnemonic::Movabs => {
            let v = read_operand(ctx, &mut s, &ops[1], w, next);
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Movzx => {
            let v = read_operand(ctx, &mut s, &ops[1], w, next);
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Movsx | Mnemonic::Movsxd => {
            let srcw = ops[1].width().unwrap_or(Width::B4);
            let v = read_operand(ctx, &mut s, &ops[1], srcw, next);
            write_operand(ctx, &mut s, &ops[0], v.sext(srcw).trunc(w), next);
            fall!(s);
        }
        Mnemonic::Lea => {
            if let Operand::Mem(m) = &ops[1] {
                let ea = addr_expr(&s.pred, m, next);
                write_operand(ctx, &mut s, &ops[0], ea.trunc(w), next);
            }
            fall!(s);
        }
        Mnemonic::Xchg => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let b = read_operand(ctx, &mut s, &ops[1], w, next);
            write_operand(ctx, &mut s, &ops[0], b, next);
            write_operand(ctx, &mut s, &ops[1], a, next);
            fall!(s);
        }
        Mnemonic::Add | Mnemonic::Sub | Mnemonic::And | Mnemonic::Or | Mnemonic::Xor => {
            // `xor r, r` / `sub r, r` zero a register regardless of its
            // (possibly unknown) value.
            if ops[0] == ops[1] && matches!(instr.mnemonic, Mnemonic::Xor | Mnemonic::Sub) {
                s.pred.flags = FlagState::Result { width: w, value: Expr::imm(0) };
                write_operand(ctx, &mut s, &ops[0], Expr::imm(0), next);
                fall!(s);
                return Ok(());
            }
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let b = read_operand(ctx, &mut s, &ops[1], w, next);
            let r = match instr.mnemonic {
                Mnemonic::Add => a.add(b).trunc(w),
                Mnemonic::Sub => a.sub(b).trunc(w),
                Mnemonic::And => a.and(b).trunc(w),
                Mnemonic::Or => a.or(b).trunc(w),
                _ => a.xor(b).trunc(w),
            };
            s.pred.flags = match instr.mnemonic {
                Mnemonic::Add | Mnemonic::Sub => {
                    if instr.mnemonic == Mnemonic::Sub {
                        FlagState::Cmp { width: w, lhs: a, rhs: b }
                    } else {
                        FlagState::Result { width: w, value: r }
                    }
                }
                Mnemonic::And => FlagState::Test { width: w, lhs: a, rhs: b },
                _ => FlagState::Result { width: w, value: r },
            };
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Adc | Mnemonic::Sbb => {
            // Carry participation is rarely resolvable symbolically.
            let _ = read_operand(ctx, &mut s, &ops[0], w, next);
            let v = ctx.fresh_sym();
            s.pred.flags = FlagState::Unknown;
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Cmp => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let b = read_operand(ctx, &mut s, &ops[1], w, next);
            s.pred.flags = FlagState::Cmp { width: w, lhs: a, rhs: b };
            fall!(s);
        }
        Mnemonic::Test => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let b = read_operand(ctx, &mut s, &ops[1], w, next);
            s.pred.flags = FlagState::Test { width: w, lhs: a, rhs: b };
            fall!(s);
        }
        Mnemonic::Inc | Mnemonic::Dec => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let r = if instr.mnemonic == Mnemonic::Inc {
                a.add(Expr::imm(1)).trunc(w)
            } else {
                a.sub(Expr::imm(1)).trunc(w)
            };
            // CF is preserved; the remaining flags come from the result.
            s.pred.flags = FlagState::Result { width: w, value: r };
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Neg => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let r = a.neg().trunc(w);
            s.pred.flags = FlagState::Cmp { width: w, lhs: Expr::imm(0), rhs: a };
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Not => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            write_operand(ctx, &mut s, &ops[0], a.not().trunc(w), next);
            fall!(s);
        }
        Mnemonic::Shl | Mnemonic::Shr | Mnemonic::Sar => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let b = read_operand(ctx, &mut s, &ops[1], Width::B1, next);
            let masked = b.and(Expr::imm(if w == Width::B8 { 63 } else { 31 }));
            let r = match instr.mnemonic {
                Mnemonic::Shl => a.shl(masked).trunc(w),
                Mnemonic::Shr => a.shr(masked).trunc(w),
                _ => a.sext(w).sar(masked).trunc(w),
            };
            // A zero shift count leaves the flags untouched, so only a
            // provably non-zero count lets us assert result flags.
            s.pred.flags = match masked.as_imm() {
                Some(0) => s.pred.flags,
                Some(_) => FlagState::Result { width: w, value: r },
                None => FlagState::Unknown,
            };
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Rol | Mnemonic::Ror | Mnemonic::Rcl | Mnemonic::Rcr | Mnemonic::Shld
        | Mnemonic::Shrd | Mnemonic::Bts | Mnemonic::Btr | Mnemonic::Btc | Mnemonic::Cmpxchg
        | Mnemonic::Xadd => {
            // Modelled imprecisely: result unknown, flags unknown. The
            // concrete emulator remains precise; the lifted invariant
            // simply says nothing.
            let v = ctx.fresh_sym();
            s.pred.flags = FlagState::Unknown;
            if instr.mnemonic == Mnemonic::Cmpxchg {
                let f = ctx.fresh_sym();
                s.pred.set_reg(Reg::Rax, f);
            }
            if instr.mnemonic == Mnemonic::Xadd {
                let f = ctx.fresh_sym();
                write_operand(ctx, &mut s, &ops[1], f, next);
            }
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Bt => {
            let _ = read_operand(ctx, &mut s, &ops[0], w, next);
            s.pred.flags = FlagState::Unknown;
            fall!(s);
        }
        Mnemonic::Bsf | Mnemonic::Bsr | Mnemonic::Tzcnt | Mnemonic::Popcnt => {
            let a = read_operand(ctx, &mut s, &ops[1], w, next);
            let op = match instr.mnemonic {
                Mnemonic::Bsf => hgl_expr::OpKind::Bsf,
                Mnemonic::Bsr => hgl_expr::OpKind::Bsr,
                Mnemonic::Tzcnt => hgl_expr::OpKind::Tzcnt,
                _ => hgl_expr::OpKind::Popcnt,
            };
            let r = Expr::apply_un(op, a.trunc(w));
            s.pred.flags = FlagState::Unknown;
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Imul | Mnemonic::Mul => {
            match ops.len() {
                1 => {
                    let a = s.pred.reg_ref(RegRef::new(Reg::Rax, w));
                    let b = read_operand(ctx, &mut s, &ops[0], w, next);
                    let lo = a.mul(b).trunc(w);
                    let hi = ctx.fresh_sym();
                    if w == Width::B1 {
                        s.pred.write_reg_ref(RegRef::new(Reg::Rax, Width::B2), lo);
                    } else {
                        s.pred.write_reg_ref(RegRef::new(Reg::Rax, w), lo);
                        s.pred.write_reg_ref(RegRef::new(Reg::Rdx, w), hi);
                    }
                }
                2 => {
                    let a = read_operand(ctx, &mut s, &ops[0], w, next);
                    let b = read_operand(ctx, &mut s, &ops[1], w, next);
                    write_operand(ctx, &mut s, &ops[0], a.mul(b).trunc(w), next);
                }
                _ => {
                    let a = read_operand(ctx, &mut s, &ops[1], w, next);
                    let b = read_operand(ctx, &mut s, &ops[2], w, next);
                    write_operand(ctx, &mut s, &ops[0], a.mul(b).trunc(w), next);
                }
            }
            s.pred.flags = FlagState::Unknown;
            fall!(s);
        }
        Mnemonic::Div | Mnemonic::Idiv => {
            let d = read_operand(ctx, &mut s, &ops[0], w, next);
            let hi = s.pred.reg_ref(RegRef::new(Reg::Rdx, w));
            let lo = s.pred.reg_ref(RegRef::new(Reg::Rax, w));
            let (q, r) = if hi == Expr::imm(0) && instr.mnemonic == Mnemonic::Div {
                (lo.udiv(d).trunc(w), lo.urem(d).trunc(w))
            } else {
                (ctx.fresh_sym(), ctx.fresh_sym())
            };
            if w == Width::B1 {
                let f = ctx.fresh_sym();
                s.pred.write_reg_ref(RegRef::new(Reg::Rax, Width::B2), f);
            } else {
                s.pred.write_reg_ref(RegRef::new(Reg::Rax, w), q);
                s.pred.write_reg_ref(RegRef::new(Reg::Rdx, w), r);
            }
            s.pred.flags = FlagState::Unknown;
            fall!(s);
        }
        Mnemonic::Cbw | Mnemonic::Cwde | Mnemonic::Cdqe => {
            let (from, to) = match instr.mnemonic {
                Mnemonic::Cbw => (Width::B1, Width::B2),
                Mnemonic::Cwde => (Width::B2, Width::B4),
                _ => (Width::B4, Width::B8),
            };
            let a = s.pred.reg_ref(RegRef::new(Reg::Rax, from));
            s.pred.write_reg_ref(RegRef::new(Reg::Rax, to), a.sext(from).trunc(to));
            fall!(s);
        }
        Mnemonic::Cwd | Mnemonic::Cdq | Mnemonic::Cqo => {
            let wd = match instr.mnemonic {
                Mnemonic::Cwd => Width::B2,
                Mnemonic::Cdq => Width::B4,
                _ => Width::B8,
            };
            let a = s.pred.reg_ref(RegRef::new(Reg::Rax, wd));
            let hi = match a.as_imm() {
                Some(v) => Expr::imm(if wd.sign_bit(v) { wd.mask() } else { 0 }),
                None => a.sext(wd).sar(Expr::imm(63)).trunc(wd),
            };
            s.pred.write_reg_ref(RegRef::new(Reg::Rdx, wd), hi);
            fall!(s);
        }
        Mnemonic::Setcc(c) => {
            let nomem = |_: u64, _: u8| None;
            let v = match try_concrete_cond(&s.pred.flags, c, &nomem) {
                Some(b) => Expr::imm(b as u64),
                None => {
                    // Fork on the condition so both byte values are
                    // covered with their clauses.
                    let mut s_true = s.clone();
                    if let Some(cl) = s.pred.flags.clause_for(c) {
                        s_true.pred.clauses.insert(cl);
                    }
                    write_operand(ctx, &mut s_true, &ops[0], Expr::imm(1), next);
                    out.push(Successor::At(next, s_true));
                    if let Some(cl) = s.pred.flags.clause_for(c.negate()) {
                        s.pred.clauses.insert(cl);
                    }
                    write_operand(ctx, &mut s, &ops[0], Expr::imm(0), next);
                    out.push(Successor::At(next, s));
                    return Ok(());
                }
            };
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Cmovcc(c) => {
            let nomem = |_: u64, _: u8| None;
            match try_concrete_cond(&s.pred.flags, c, &nomem) {
                Some(true) => {
                    let v = read_operand(ctx, &mut s, &ops[1], w, next);
                    write_operand(ctx, &mut s, &ops[0], v, next);
                    fall!(s);
                }
                Some(false) => {
                    let v = read_operand(ctx, &mut s, &ops[0], w, next);
                    write_operand(ctx, &mut s, &ops[0], v.trunc(w), next);
                    fall!(s);
                }
                None => {
                    let mut s_true = s.clone();
                    if let Some(cl) = s.pred.flags.clause_for(c) {
                        s_true.pred.clauses.insert(cl);
                    }
                    let v = read_operand(ctx, &mut s_true, &ops[1], w, next);
                    write_operand(ctx, &mut s_true, &ops[0], v, next);
                    out.push(Successor::At(next, s_true));
                    if let Some(cl) = s.pred.flags.clause_for(c.negate()) {
                        s.pred.clauses.insert(cl);
                    }
                    let old = read_operand(ctx, &mut s, &ops[0], w, next);
                    write_operand(ctx, &mut s, &ops[0], old.trunc(w), next);
                    fall!(s);
                }
            }
        }
        Mnemonic::Push => {
            let v = match &ops[0] {
                Operand::Imm(i) => Expr::imm(*i as u64),
                op => read_operand(ctx, &mut s, op, Width::B8, next),
            };
            let rsp = s.pred.reg(Reg::Rsp).sub(Expr::imm(8));
            s.pred.set_reg(Reg::Rsp, rsp);
            write_region(ctx, &mut s, &Region::new(rsp, 8), v);
            fall!(s);
        }
        Mnemonic::Pop => {
            let rsp = s.pred.reg(Reg::Rsp);
            let v = read_region(ctx, &mut s, &Region::new(rsp, 8));
            s.pred.set_reg(Reg::Rsp, rsp.add(Expr::imm(8)));
            write_operand(ctx, &mut s, &ops[0], v, next);
            fall!(s);
        }
        Mnemonic::Leave => {
            let rbp = s.pred.reg(Reg::Rbp);
            let v = read_region(ctx, &mut s, &Region::new(rbp, 8));
            s.pred.set_reg(Reg::Rsp, rbp.add(Expr::imm(8)));
            s.pred.set_reg(Reg::Rbp, v);
            fall!(s);
        }
        Mnemonic::Jmp => {
            resolve_branch(ctx, s, instr, entry, out)?;
        }
        Mnemonic::Bswap => {
            let a = read_operand(ctx, &mut s, &ops[0], w, next);
            let r = match a.as_imm() {
                Some(v) if w == Width::B8 => Expr::imm(v.swap_bytes()),
                Some(v) => Expr::imm((v as u32).swap_bytes() as u64),
                None => ctx.fresh_sym(),
            };
            write_operand(ctx, &mut s, &ops[0], r, next);
            fall!(s);
        }
        Mnemonic::Jrcxz => {
            let target = match &ops[0] {
                Operand::Imm(t) => *t as u64,
                _ => {
                    return Err(VerificationError::Undecodable {
                        addr: instr.addr,
                        message: "jrcxz with non-immediate target".to_string(),
                    })
                }
            };
            let rcx = s.pred.reg(Reg::Rcx);
            match rcx.as_imm() {
                Some(0) => out.push(Successor::At(target, s)),
                Some(_) => fall!(s),
                None => {
                    let mut taken = s.clone();
                    if !rcx.is_bottom() {
                        taken.pred.clauses.insert(Clause::new(rcx, Rel::Eq, Expr::imm(0)));
                        s.pred.clauses.insert(Clause::new(rcx, Rel::Ne, Expr::imm(0)));
                    }
                    out.push(Successor::At(target, taken));
                    fall!(s);
                }
            }
        }
        Mnemonic::Loop | Mnemonic::Loope | Mnemonic::Loopne => {
            let target = match &ops[0] {
                Operand::Imm(t) => *t as u64,
                _ => {
                    return Err(VerificationError::Undecodable {
                        addr: instr.addr,
                        message: "loop with non-immediate target".to_string(),
                    })
                }
            };
            let rcx = s.pred.reg(Reg::Rcx).sub(Expr::imm(1));
            s.pred.set_reg(Reg::Rcx, rcx);
            // The loop-taken condition combines rcx≠0 with (for
            // loope/loopne) a flag the abstraction may not know;
            // decide concretely where possible, otherwise cover both.
            let nomem = |_: u64, _: u8| None;
            let zf_known = match instr.mnemonic {
                Mnemonic::Loope => try_concrete_cond(&s.pred.flags, Cond::E, &nomem),
                Mnemonic::Loopne => try_concrete_cond(&s.pred.flags, Cond::Ne, &nomem),
                _ => Some(true),
            };
            match (rcx.as_imm(), zf_known) {
                (Some(0), _) => fall!(s),
                (Some(_), Some(true)) => out.push(Successor::At(target, s)),
                (Some(_), Some(false)) => fall!(s),
                _ => {
                    let taken = s.clone();
                    out.push(Successor::At(target, taken));
                    fall!(s);
                }
            }
        }
        Mnemonic::Jcc(c) => {
            let target = match &ops[0] {
                Operand::Imm(t) => *t as u64,
                _ => {
                    return Err(VerificationError::Undecodable {
                        addr: instr.addr,
                        message: "jcc with non-immediate target".to_string(),
                    })
                }
            };
            let nomem = |_: u64, _: u8| None;
            match try_concrete_cond(&s.pred.flags, c, &nomem) {
                Some(true) => out.push(Successor::At(target, s)),
                Some(false) => fall!(s),
                None => {
                    let mut taken = s.clone();
                    if let Some(cl) = s.pred.flags.clause_for(c) {
                        taken.pred.clauses.insert(cl);
                    }
                    out.push(Successor::At(target, taken));
                    if let Some(cl) = s.pred.flags.clause_for(c.negate()) {
                        s.pred.clauses.insert(cl);
                    }
                    fall!(s);
                }
            }
        }
        Mnemonic::Call => {
            resolve_call(ctx, s, instr, out)?;
        }
        Mnemonic::Ret => {
            do_return(ctx, s, instr, entry, out)?;
        }
        Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps => {
            exec_string(ctx, &mut s, instr, next);
            fall!(s);
        }
        Mnemonic::Stc | Mnemonic::Clc | Mnemonic::Cmc => {
            s.pred.flags = FlagState::Unknown;
            fall!(s);
        }
        Mnemonic::Std => {
            s.pred.df = Some(true);
            fall!(s);
        }
        Mnemonic::Cld => {
            s.pred.df = Some(false);
            fall!(s);
        }
        Mnemonic::Nop | Mnemonic::Endbr64 => fall!(s),
        Mnemonic::Ud2 | Mnemonic::Int3 | Mnemonic::Hlt => {
            // Execution halts: no successors.
        }
        Mnemonic::Syscall => {
            // rcx/r11 clobbered; result in rax unknown.
            let f1 = ctx.fresh_sym();
            let f2 = ctx.fresh_sym();
            let f3 = ctx.fresh_sym();
            s.pred.set_reg(Reg::Rcx, f1);
            s.pred.set_reg(Reg::R11, f2);
            s.pred.set_reg(Reg::Rax, f3);
            fall!(s);
        }
        Mnemonic::Cpuid => {
            for r in [Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx] {
                let f = ctx.fresh_sym();
                s.pred.set_reg(r, f);
            }
            fall!(s);
        }
        Mnemonic::Rdtsc => {
            for r in [Reg::Rax, Reg::Rdx] {
                let f = ctx.fresh_sym();
                s.pred.set_reg(r, f);
            }
            fall!(s);
        }
    }
    Ok(())
}

fn try_concrete_cond<M>(flags: &FlagState, c: Cond, nomem: &M) -> Option<bool>
where
    M: Fn(u64, u8) -> Option<u64>,
{
    // Only fully constant flag sources decide concretely.
    let env = |_s: Sym| 0u64;
    match flags {
        FlagState::Cmp { lhs, rhs, .. } | FlagState::Test { lhs, rhs, .. } => {
            if lhs.as_imm().is_some() && rhs.as_imm().is_some() {
                flags.eval_cond(c, &env, nomem)
            } else {
                None
            }
        }
        FlagState::Result { value, .. } => {
            if value.as_imm().is_some() {
                flags.eval_cond(c, &env, nomem)
            } else {
                None
            }
        }
        FlagState::Unknown => None,
    }
}

/// Resolve `jmp` successors: direct, return-symbol, bounded jump
/// table, or annotation.
fn resolve_branch(
    ctx: &mut StepCtx<'_>,
    mut s: SymState,
    instr: &Instr,
    entry: u64,
    out: &mut Vec<Successor>,
) -> Result<(), VerificationError> {
    let next = instr.next_addr();
    let target = match &instr.operands[0] {
        Operand::Imm(t) => Expr::imm(*t as u64),
        op => read_operand(ctx, &mut s, op, Width::B8, next),
    };
    // Tail transfer to the function's return address?
    if target == Expr::sym(Sym::RetSym(entry)) {
        verify_return(&s, instr.addr, entry, true)?;
        out.push(Successor::Return(s));
        return Ok(());
    }
    if let Some(t) = target.as_imm() {
        if !ctx.binary.is_code(t) {
            return Err(VerificationError::JumpOutsideText { addr: instr.addr, target: t });
        }
        out.push(Successor::At(t, s));
        return Ok(());
    }
    // Bounded set: enumerate an indexed jump table.
    if let Some(targets) = enumerate_targets(ctx, &s, &target, instr) {
        for (t, clause) in targets {
            if !ctx.binary.is_code(t) {
                return Err(VerificationError::JumpOutsideText { addr: instr.addr, target: t });
            }
            let mut branch = s.clone();
            if let Some(cl) = clause {
                branch.pred.clauses.insert(cl);
            }
            out.push(Successor::At(t, branch));
        }
        ctx.diags.resolved_indirections += 1;
        return Ok(());
    }
    // Externally resolved target set (analyze→re-lift refinement).
    if let Some(hinted) = ctx.config.indirect_hints.get(&instr.addr) {
        if !hinted.is_empty() {
            for &t in hinted {
                if !ctx.binary.is_code(t) {
                    return Err(VerificationError::JumpOutsideText { addr: instr.addr, target: t });
                }
                out.push(Successor::At(t, s.clone()));
            }
            ctx.diags.resolved_indirections += 1;
            return Ok(());
        }
    }
    ctx.diags.annotate(Annotation::UnresolvedJump { addr: instr.addr, target });
    Ok(())
}

/// Enumerate the concrete targets of an indirect branch whose operand
/// has a bounded address range inside read-only data (a jump table),
/// or whose value expression itself is range-bounded.
///
/// Returns `(target, optional index clause)` pairs, deduplicated.
fn enumerate_targets(
    ctx: &mut StepCtx<'_>,
    s: &SymState,
    target: &Expr,
    instr: &Instr,
) -> Option<Vec<(u64, Option<Clause>)>> {
    let sctx = ctx.solver_ctx(&s.pred);
    // Case 1: the target was read from memory this instruction —
    // re-derive the table address range from the memory operand. On
    // failure, fall through to the stored-region search below.
    if let Some(Operand::Mem(m)) = instr.operands.first() {
        let addr = addr_expr(&s.pred, m, instr.next_addr());
        let size = m.size.bytes() as u64;
        let mut direct = || -> Option<Vec<(u64, Option<Clause>)>> {
            let iv = sctx.interval_of(&addr)?;
            // Stride: the scale of the index register if present, else
            // the access size.
            let stride = if m.index.is_some() { m.scale.max(1) as u64 } else { size };
            let entries = (iv.hi - iv.lo) / stride + 1;
            if entries > ctx.config.max_jump_table {
                return None;
            }
            let mut targets = Vec::new();
            let mut a = iv.lo;
            loop {
                // Only load-time-constant (non-writable) memory may be
                // enumerated as a jump table.
                let v = ctx.binary.read_int_ro(a, size as u8)?;
                ctx.diags.image_reads.insert((a, size as u8));
                targets.push((v, None));
                if a >= iv.hi {
                    break;
                }
                a += stride;
            }
            targets.sort_unstable();
            targets.dedup();
            Some(targets)
        };
        if let Some(targets) = direct() {
            return Some(targets);
        }
    }
    // Case 2: a register target whose expression is a bounded Deref of
    // a table (mov rax, [table + i*8]; jmp rax): the register holds a
    // fresh/materialised value — look for the producing region in
    // pred.mem and bound its address.
    let candidates: Vec<(Region, Expr)> =
        s.pred.mem.iter().map(|(r, v)| (*r, *v)).collect();
    for (region, v) in candidates {
        if v != *target {
            continue;
        }
        let mut enumerate = || -> Option<Vec<(u64, Option<Clause>)>> {
            let iv = sctx.interval_of(&region.addr)?;
            let stride = region.size.max(1);
            let entries = (iv.hi - iv.lo) / stride + 1;
            if entries > ctx.config.max_jump_table {
                return None;
            }
            let mut targets = Vec::new();
            let mut a = iv.lo;
            loop {
                let val = ctx.binary.read_int_ro(a, region.size as u8)?;
                ctx.diags.image_reads.insert((a, region.size as u8));
                targets.push((val, None));
                if a >= iv.hi {
                    break;
                }
                a += stride;
            }
            targets.sort_unstable();
            targets.dedup();
            Some(targets)
        };
        if let Some(targets) = enumerate() {
            return Some(targets);
        }
    }
    None
}

/// Resolve `call` successors (§4.2).
fn resolve_call(
    ctx: &mut StepCtx<'_>,
    mut s: SymState,
    instr: &Instr,
    out: &mut Vec<Successor>,
) -> Result<(), VerificationError> {
    let next = instr.next_addr();
    let target = match &instr.operands[0] {
        Operand::Imm(t) => Some(*t as u64),
        op => read_operand(ctx, &mut s, op, Width::B8, next).as_imm(),
    };
    match target {
        Some(t) if ctx.binary.external_at(t).is_some() => {
            let name = ctx.binary.external_at(t).expect("checked").to_string();
            if TERMINATING_EXTERNALS.contains(&name.as_str()) {
                return Ok(()); // no successors: path terminates
            }
            clean_for_external(ctx, &mut s, instr.addr, &name);
            out.push(Successor::At(next, s));
            Ok(())
        }
        Some(t) if ctx.binary.is_code(t) => {
            // Internal call, context-free (§4.2.2): the callee is
            // explored from a fresh state; here we only prepare the
            // caller's post-return state.
            let mut after = s.clone();
            clean_for_internal(ctx, &mut after);
            out.push(Successor::CallInternal { callee: t, return_site: next, after });
            Ok(())
        }
        Some(t) => Err(VerificationError::JumpOutsideText { addr: instr.addr, target: t }),
        None => {
            // Unresolved indirect call: annotate (column C) and treat
            // as an unknown external function (§5.1).
            let texpr = match &instr.operands[0] {
                Operand::Imm(t) => Expr::imm(*t as u64),
                op => read_operand(ctx, &mut s, op, Width::B8, next),
            };
            ctx.diags.annotate(Annotation::UnresolvedCall { addr: instr.addr, target: texpr });
            clean_for_external(ctx, &mut s, instr.addr, "<unknown>");
            out.push(Successor::At(next, s));
            Ok(())
        }
    }
}

/// Verify the sanity properties at a return site.
fn verify_return(s: &SymState, addr: u64, entry: u64, tail: bool) -> Result<(), VerificationError> {
    let rsp0 = Expr::sym(Sym::Init(Reg::Rsp));
    let expected_rsp = rsp0.add(Expr::imm(8));
    let rsp = s.pred.reg(Reg::Rsp);
    // For a `ret`, the check happens *before* popping, so rsp == rsp0;
    // for a tail transfer the stack is already unwound.
    let ok_rsp = if tail { rsp == expected_rsp } else { rsp == rsp0 };
    if !ok_rsp {
        return Err(VerificationError::NonStandardStackRestore { addr, rsp });
    }
    if !tail {
        let slot = s.pred.mem_value(&Region::return_address_slot()).copied().unwrap_or_else(Expr::bottom);
        if slot != Expr::sym(Sym::RetSym(entry)) {
            return Err(VerificationError::UnprovableReturnAddress { addr, found: slot });
        }
    }
    for r in Reg::CALLEE_SAVED {
        let v = s.pred.reg(r);
        if v != Expr::sym(Sym::Init(r)) {
            return Err(VerificationError::CallingConventionViolation { addr, reg: r, found: v });
        }
    }
    Ok(())
}

/// Handle `ret`.
fn do_return(
    ctx: &mut StepCtx<'_>,
    mut s: SymState,
    instr: &Instr,
    entry: u64,
    out: &mut Vec<Successor>,
) -> Result<(), VerificationError> {
    let rsp = s.pred.reg(Reg::Rsp);
    let target = read_region(ctx, &mut s, &Region::new(rsp, 8));
    verify_return(&s, instr.addr, entry, false)?;
    if target != Expr::sym(Sym::RetSym(entry)) {
        return Err(VerificationError::UnprovableReturnAddress { addr: instr.addr, found: target });
    }
    // Pop the return address.
    let extra = if let Some(Operand::Imm(i)) = instr.operands.first() { *i as u64 } else { 0 };
    s.pred.set_reg(Reg::Rsp, rsp.add(Expr::imm(8 + extra)));
    out.push(Successor::Return(s));
    Ok(())
}

/// System V cleaning after an external call (§1): volatile registers
/// and flags are havocked, the heap and global space destroyed, the
/// local stack frame preserved — recorded as a proof obligation.
fn clean_for_external(ctx: &mut StepCtx<'_>, s: &mut SymState, call_site: u64, callee: &str) {
    let sctx = ctx.solver_ctx(&s.pred);
    // Which argument registers point into the caller's frame?
    let mut frame_args = Vec::new();
    for r in [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9] {
        let v = s.pred.reg(r);
        if sctx.provenance(&v) == Provenance::Stack {
            frame_args.push((r, v));
        }
    }
    // The preserved hull: every stack region whose value we keep.
    let stack_regions: Vec<Region> = s
        .pred
        .mem
        .keys()
        .filter(|r| sctx.provenance(&r.addr) == Provenance::Stack)
        .cloned()
        .collect();
    let hull = contiguous_hull(&stack_regions);
    if !frame_args.is_empty() || !stack_regions.is_empty() {
        ctx.diags.obligations.push(ProofObligation {
            call_site,
            callee: callee.to_string(),
            frame_args,
            must_preserve: hull.into_iter().collect(),
        });
    }
    havoc_for_call(ctx, s, &sctx);
}

/// Cleaning after an internal call: same state effect as an external
/// call (the callee is verified separately to preserve callee-saved
/// registers and its own frame), but no obligation is emitted.
fn clean_for_internal(ctx: &mut StepCtx<'_>, s: &mut SymState) {
    let sctx = ctx.solver_ctx(&s.pred);
    havoc_for_call(ctx, s, &sctx);
}

fn havoc_for_call(ctx: &mut StepCtx<'_>, s: &mut SymState, sctx: &Ctx) {
    for r in VOLATILE {
        let f = ctx.fresh_sym();
        s.pred.set_reg(*r, f);
    }
    s.pred.flags = FlagState::Unknown;
    s.pred.df = Some(false);
    // Heap and globals destroyed; the stack frame survives.
    s.pred.retain_mem(|r| sctx.provenance(&r.addr) == Provenance::Stack);
    let keep = |r: &Region| sctx.provenance(&r.addr) == Provenance::Stack;
    s.model = Shared::new(s.model.retain(&keep));
    // Clauses over heap/global contents would now be stale; keep only
    // those whose symbols are entry values (always fixed).
    s.pred.clauses.retain(|c| {
        c.lhs.syms().iter().chain(c.rhs.syms().iter()).all(|sym| !matches!(sym, Sym::Global(_)))
    });
}

/// The smallest contiguous region(s) covering the given stack regions
/// (used in proof obligations, e.g. `[RSP0 - 8, 16]`).
fn contiguous_hull(regions: &[Region]) -> Option<Region> {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for r in regions {
        let lin = r.linear();
        let Some(off) = lin.single_atom().map(|(_, k)| k) else { continue };
        lo = lo.min(off);
        hi = hi.max(off + r.size as i64);
    }
    (lo < hi).then(|| Region::stack(lo, (hi - lo) as u64))
}

/// String-operation semantics (imprecise but sound: touched memory is
/// havocked unless the extent is concrete).
fn exec_string(ctx: &mut StepCtx<'_>, s: &mut SymState, instr: &Instr, _next: u64) {
    let w = instr.width;
    let sz = w.bytes() as u64;
    let count = match instr.rep {
        None => Some(1),
        Some(RepPrefix::Rep) => s.pred.reg(Reg::Rcx).as_imm(),
        Some(RepPrefix::Repne) => None,
    };
    let df_clear = s.pred.df == Some(false);
    match (instr.mnemonic, count, df_clear) {
        (Mnemonic::Stos, Some(n), true) if n <= 64 => {
            let base = s.pred.reg(Reg::Rdi);
            let v = s.pred.reg_ref(RegRef::new(Reg::Rax, w));
            for i in 0..n {
                let region = Region::new(base.add(Expr::imm(i * sz)), sz);
                write_region(ctx, s, &region, v);
            }
            s.pred.set_reg(Reg::Rdi, base.add(Expr::imm(n * sz)));
            if instr.rep.is_some() {
                s.pred.set_reg(Reg::Rcx, Expr::imm(0));
            }
        }
        (Mnemonic::Movs, Some(n), true) if n <= 64 => {
            let src = s.pred.reg(Reg::Rsi);
            let dst = s.pred.reg(Reg::Rdi);
            for i in 0..n {
                let sreg = Region::new(src.add(Expr::imm(i * sz)), sz);
                let v = read_region(ctx, s, &sreg);
                let dreg = Region::new(dst.add(Expr::imm(i * sz)), sz);
                write_region(ctx, s, &dreg, v);
            }
            s.pred.set_reg(Reg::Rsi, src.add(Expr::imm(n * sz)));
            s.pred.set_reg(Reg::Rdi, dst.add(Expr::imm(n * sz)));
            if instr.rep.is_some() {
                s.pred.set_reg(Reg::Rcx, Expr::imm(0));
            }
        }
        (Mnemonic::Lods, Some(1), _) => {
            let src = s.pred.reg(Reg::Rsi);
            let v = read_region(ctx, s, &Region::new(src, sz));
            s.pred.write_reg_ref(RegRef::new(Reg::Rax, w), v);
            let delta = if df_clear { src.add(Expr::imm(sz)) } else { src.sub(Expr::imm(sz)) };
            s.pred.set_reg(Reg::Rsi, delta);
        }
        _ => {
            // Unknown extent: havoc everything the op may touch. If
            // the destination pointer provably lives outside the stack
            // frame, the frame survives (with a recorded caller-pointer
            // assumption); otherwise everything is cleared.
            if matches!(instr.mnemonic, Mnemonic::Stos | Mnemonic::Movs | Mnemonic::Cmps) {
                let sctx = ctx.solver_ctx(&s.pred);
                let dst_prov = sctx.provenance(&s.pred.reg(Reg::Rdi));
                let frame_safe = matches!(
                    dst_prov,
                    Provenance::Param(_) | Provenance::Heap(_) | Provenance::Global
                );
                if frame_safe {
                    s.pred.retain_mem(|r| sctx.provenance(&r.addr) == Provenance::Stack);
                    let keep = |r: &Region| sctx.provenance(&r.addr) == Provenance::Stack;
                    s.model = Shared::new(s.model.retain(&keep));
                } else {
                    s.pred.mem.clear();
                    s.model = Shared::new(crate::memmodel::MemModel::empty());
                }
            }
            for r in [Reg::Rsi, Reg::Rdi, Reg::Rcx] {
                let f = ctx.fresh_sym();
                s.pred.set_reg(r, f);
            }
            if matches!(instr.mnemonic, Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps) {
                let f = ctx.fresh_sym();
                s.pred.set_reg(Reg::Rax, f);
            }
            s.pred.flags = FlagState::Unknown;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::ExprKind;
    use hgl_elf::{Segment, SegmentFlags};
    use hgl_x86::encode;
    use std::collections::BTreeMap;

    const BASE: u64 = 0x40_1000;

    fn binary_with(instr: &mut Instr) -> hgl_elf::Binary {
        instr.addr = BASE;
        let bytes = encode(instr).expect("encodable");
        instr.len = bytes.len() as u8;
        let mut padded = bytes;
        padded.resize(64, 0x90);
        hgl_elf::Binary {
            entry: BASE,
            segments: vec![
                Segment { vaddr: BASE, bytes: padded, flags: SegmentFlags::RX },
                Segment { vaddr: 0x50_0000, bytes: (0u8..64).collect(), flags: SegmentFlags::RO },
                Segment { vaddr: 0x60_1000, bytes: vec![0xaa; 64], flags: SegmentFlags::RW },
            ],
            externals: BTreeMap::from([(0x40_0800, "memset".to_string())]),
            symbols: BTreeMap::new(),
        }
    }

    fn run(instr: &mut Instr, state: &SymState) -> (Vec<Successor>, Diagnostics) {
        let bin = binary_with(instr);
        let mut fresh = 100;
        let mut diags = Diagnostics::default();
        let meter = crate::budget::BudgetMeter::start(&crate::budget::Budget::unlimited());
        let succ = {
            let mut ctx = StepCtx {
                binary: &bin,
                layout: std::sync::Arc::new(Layout { text: bin.text_ranges(), data: bin.data_ranges() }),
                config: &StepConfig::default(),
                fresh: &mut fresh,
                diags: &mut diags,
                meter: &meter,
                cache: None,
                metrics: None,
            };
            step(&mut ctx, state.clone(), instr, BASE).expect("steps")
        };
        (succ, diags)
    }

    fn entry_state() -> SymState {
        SymState::function_entry(BASE)
    }

    fn only_at(succ: Vec<Successor>) -> SymState {
        assert_eq!(succ.len(), 1, "expected a single fall-through successor");
        match succ.into_iter().next().expect("one") {
            Successor::At(_, s) => s,
            other => panic!("expected At, got {other:?}"),
        }
    }

    #[test]
    fn push_pop_roundtrip_symbolically() {
        let s0 = entry_state();
        let mut push = Instr::new(Mnemonic::Push, vec![Operand::reg64(Reg::Rbx)], Width::B8);
        let s1 = only_at(run(&mut push, &s0).0);
        assert_eq!(s1.pred.reg(Reg::Rsp), Expr::sym(Sym::Init(Reg::Rsp)).sub(Expr::imm(8)));
        assert_eq!(
            s1.pred.mem_value(&Region::stack(-8, 8)),
            Some(&Expr::sym(Sym::Init(Reg::Rbx)))
        );
        let mut pop = Instr::new(Mnemonic::Pop, vec![Operand::reg64(Reg::Rcx)], Width::B8);
        let s2 = only_at(run(&mut pop, &s1).0);
        assert_eq!(s2.pred.reg(Reg::Rcx), Expr::sym(Sym::Init(Reg::Rbx)), "popped the pushed value");
        assert_eq!(s2.pred.reg(Reg::Rsp), Expr::sym(Sym::Init(Reg::Rsp)));
    }

    #[test]
    fn reads_memoize_fresh_values() {
        let s0 = entry_state();
        let mut load = Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::base_disp(Reg::Rdi, 0, Width::B8))],
            Width::B8,
        );
        let s1 = only_at(run(&mut load, &s0).0);
        let v = s1.pred.reg(Reg::Rax);
        assert!(matches!(v.kind(), ExprKind::Sym(Sym::Fresh(_))), "unknown read gives a fresh symbol");
        // Second read of the same region yields the same symbol.
        let mut load2 = Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rcx), Operand::Mem(MemOperand::base_disp(Reg::Rdi, 0, Width::B8))],
            Width::B8,
        );
        let s2 = only_at(run(&mut load2, &s1).0);
        assert_eq!(s2.pred.reg(Reg::Rcx), v, "repeated reads agree");
    }

    #[test]
    fn rodata_reads_are_concrete() {
        let s0 = entry_state();
        // mov rax, [0x500000] — RO segment holds bytes 0,1,2,...
        let mut load = Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::absolute(0x50_0000, Width::B8))],
            Width::B8,
        );
        let s1 = only_at(run(&mut load, &s0).0);
        assert_eq!(s1.pred.reg(Reg::Rax), Expr::imm(0x0706050403020100));
    }

    #[test]
    fn rw_data_reads_are_fresh() {
        let s0 = entry_state();
        let mut load = Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::absolute(0x60_1000, Width::B8))],
            Width::B8,
        );
        let s1 = only_at(run(&mut load, &s0).0);
        assert!(
            matches!(s1.pred.reg(Reg::Rax).kind(), ExprKind::Sym(Sym::Fresh(_))),
            "writable data is not a load-time constant"
        );
    }

    #[test]
    fn enclosed_read_extracts_bytes() {
        let mut s0 = entry_state();
        // Frame slot holds a known 8-byte value…
        s0.pred.set_mem(Region::stack(-8, 8), Expr::imm(0x1122334455667788));
        s0.model.trees.push(crate::memmodel::MemTree::leaf(Region::stack(-8, 8)));
        // …read its high dword: mov eax, [rsp-4].
        let mut load = Instr::new(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::Mem(MemOperand::base_disp(Reg::Rsp, -4, Width::B4))],
            Width::B4,
        );
        let s1 = only_at(run(&mut load, &s0).0);
        assert_eq!(s1.pred.reg(Reg::Rax), Expr::imm(0x11223344));
    }

    #[test]
    fn write_invalidates_non_separate_only() {
        let mut s0 = entry_state();
        s0.pred.set_mem(Region::stack(-8, 8), Expr::imm(1));
        s0.pred.set_mem(Region::stack(-16, 8), Expr::imm(2));
        // mov qword [rsp-8], 9 overwrites slot -8, leaves -16 alone.
        let mut store = Instr::new(
            Mnemonic::Mov,
            vec![Operand::Mem(MemOperand::base_disp(Reg::Rsp, -8, Width::B8)), Operand::Imm(9)],
            Width::B8,
        );
        let s1 = only_at(run(&mut store, &s0).0);
        assert_eq!(s1.pred.mem_value(&Region::stack(-8, 8)), Some(&Expr::imm(9)));
        assert_eq!(s1.pred.mem_value(&Region::stack(-16, 8)), Some(&Expr::imm(2)));
    }

    #[test]
    fn external_call_cleans_and_obliges() {
        let mut s0 = entry_state();
        // rdi points into the frame; a global is known.
        s0.pred.set_reg(Reg::Rdi, Expr::sym(Sym::Init(Reg::Rsp)).sub(Expr::imm(0x20)));
        s0.pred.set_mem(Region::global(0x60_1000, 8), Expr::imm(5));
        s0.pred.set_mem(Region::stack(-8, 8), Expr::imm(7));
        let mut call = Instr::new(Mnemonic::Call, vec![Operand::Imm(0x40_0800)], Width::B8);
        let (succ, diags) = run(&mut call, &s0);
        let s1 = only_at(succ);
        // Volatile registers havocked, frame preserved, globals gone.
        assert!(matches!(s1.pred.reg(Reg::Rax).kind(), ExprKind::Sym(Sym::Fresh(_))));
        assert_eq!(s1.pred.mem_value(&Region::stack(-8, 8)), Some(&Expr::imm(7)));
        assert_eq!(s1.pred.mem_value(&Region::global(0x60_1000, 8)), None);
        // Obligation names the frame argument and the preserve hull.
        let ob = diags.obligations.first().expect("obligation");
        assert_eq!(ob.callee, "memset");
        assert!(ob.frame_args.iter().any(|(r, _)| *r == Reg::Rdi));
        assert!(!ob.must_preserve.is_empty());
    }

    #[test]
    fn terminating_external_has_no_successors() {
        let s0 = entry_state();
        let mut bin_instr = Instr::new(Mnemonic::Call, vec![Operand::Imm(0x40_0800)], Width::B8);
        // Rebind the stub name to `exit` by building a custom binary.
        bin_instr.addr = BASE;
        let bytes = encode(&bin_instr).expect("encodable");
        bin_instr.len = bytes.len() as u8;
        let mut padded = bytes;
        padded.resize(64, 0x90);
        let bin = hgl_elf::Binary {
            entry: BASE,
            segments: vec![Segment { vaddr: BASE, bytes: padded, flags: SegmentFlags::RX }],
            externals: BTreeMap::from([(0x40_0800, "exit".to_string())]),
            symbols: BTreeMap::new(),
        };
        let mut fresh = 0;
        let mut diags = Diagnostics::default();
        let meter = crate::budget::BudgetMeter::start(&crate::budget::Budget::unlimited());
        let mut ctx = StepCtx {
            binary: &bin,
            layout: std::sync::Arc::new(Layout { text: bin.text_ranges(), data: bin.data_ranges() }),
            config: &StepConfig::default(),
            fresh: &mut fresh,
            diags: &mut diags,
            meter: &meter,
            cache: None,
            metrics: None,
        };
        let succ = step(&mut ctx, s0.clone(), &bin_instr, BASE).expect("steps");
        assert!(succ.is_empty(), "exit terminates the path");
    }

    #[test]
    fn cmov_forks_on_unknown_flags() {
        let mut s0 = entry_state();
        s0.pred.flags = FlagState::Cmp {
            width: Width::B8,
            lhs: Expr::sym(Sym::Init(Reg::Rdi)),
            rhs: Expr::imm(10),
        };
        let mut cmov = Instr::new(
            Mnemonic::Cmovcc(Cond::B),
            vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rbx)],
            Width::B8,
        );
        let (succ, _) = run(&mut cmov, &s0);
        assert_eq!(succ.len(), 2, "both outcomes covered");
        let values: Vec<Expr> = succ
            .iter()
            .map(|s| match s {
                Successor::At(_, st) => st.pred.reg(Reg::Rax),
                other => panic!("expected At, got {other:?}"),
            })
            .collect();
        assert!(values.contains(&Expr::sym(Sym::Init(Reg::Rbx))), "taken side moved rbx");
        assert!(values.contains(&Expr::sym(Sym::Init(Reg::Rax))), "other side kept rax");
    }

    #[test]
    fn unknown_write_destroys_model() {
        let mut s0 = entry_state();
        s0.pred.set_reg(Reg::Rax, Expr::bottom());
        let mut store = Instr::new(
            Mnemonic::Mov,
            vec![Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)), Operand::Imm(1)],
            Width::B8,
        );
        // A ⊥-address write may hit the return slot: rejection.
        let bin = binary_with(&mut store);
        let mut fresh = 0;
        let mut diags = Diagnostics::default();
        let meter = crate::budget::BudgetMeter::start(&crate::budget::Budget::unlimited());
        let mut ctx = StepCtx {
            binary: &bin,
            layout: std::sync::Arc::new(Layout { text: bin.text_ranges(), data: bin.data_ranges() }),
            config: &StepConfig::default(),
            fresh: &mut fresh,
            diags: &mut diags,
            meter: &meter,
            cache: None,
            metrics: None,
        };
        let r = step(&mut ctx, s0.clone(), &store, BASE);
        assert!(
            matches!(r, Err(VerificationError::ReturnAddressClobbered { .. })),
            "got {r:?}"
        );
    }

    #[test]
    fn concrete_rep_stos_writes_precisely() {
        let mut s0 = entry_state();
        s0.pred.set_reg(Reg::Rcx, Expr::imm(2));
        s0.pred.set_reg(Reg::Rax, Expr::imm(0));
        let mut stos = Instr::new(Mnemonic::Stos, vec![], Width::B8);
        stos.rep = Some(RepPrefix::Rep);
        let s1 = only_at(run(&mut stos, &s0).0);
        let rdi0 = Expr::sym(Sym::Init(Reg::Rdi));
        assert_eq!(
            s1.pred.mem_value(&Region::new(rdi0, 8)),
            Some(&Expr::imm(0))
        );
        assert_eq!(
            s1.pred.mem_value(&Region::new(rdi0.add(Expr::imm(8)), 8)),
            Some(&Expr::imm(0))
        );
        assert_eq!(s1.pred.reg(Reg::Rcx), Expr::imm(0));
        assert_eq!(s1.pred.reg(Reg::Rdi), rdi0.add(Expr::imm(16)));
    }

    #[test]
    fn jump_outside_text_rejected() {
        let s0 = entry_state();
        let mut jmp = Instr::new(Mnemonic::Jmp, vec![Operand::Imm(0x60_1000)], Width::B8);
        let bin = binary_with(&mut jmp);
        let mut fresh = 0;
        let mut diags = Diagnostics::default();
        let meter = crate::budget::BudgetMeter::start(&crate::budget::Budget::unlimited());
        let mut ctx = StepCtx {
            binary: &bin,
            layout: std::sync::Arc::new(Layout { text: bin.text_ranges(), data: bin.data_ranges() }),
            config: &StepConfig::default(),
            fresh: &mut fresh,
            diags: &mut diags,
            meter: &meter,
            cache: None,
            metrics: None,
        };
        let r = step(&mut ctx, s0.clone(), &jmp, BASE);
        assert!(matches!(r, Err(VerificationError::JumpOutsideText { .. })));
    }

    #[test]
    fn contiguous_hull_covers_regions() {
        let regions = vec![Region::stack(0, 8), Region::stack(-8, 8)];
        let hull = contiguous_hull(&regions).expect("hull");
        assert_eq!(hull, Region::stack(-8, 16));
        assert_eq!(contiguous_hull(&[]), None);
    }
}
