//! Graceful degradation: exhausting any budget dimension stops
//! exploration but keeps the partial Hoare Graph, annotates the
//! unexplored frontier, and reports a structured resource reject.

use hgl_asm::Asm;
use hgl_core::lift::{LiftConfig, RejectReason};
use hgl_core::{Annotation, BudgetDim, Lifter};
use hgl_elf::Binary;
use hgl_x86::{Cond, Instr, Mnemonic, Operand, Reg, Width};
use std::time::Duration;

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

/// A straight-line function long enough to outlast a small fuel budget.
fn long_function(len: usize) -> Binary {
    let mut asm = Asm::new();
    asm.label("main");
    for i in 0..len {
        asm.ins(ins(
            Mnemonic::Mov,
            vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(i as i64)],
            Width::B4,
        ));
    }
    asm.ret();
    asm.entry("main").assemble().expect("assembles")
}

/// A function with a two-way branch (forks the symbolic state and
/// issues solver queries).
fn branchy_function() -> Binary {
    let mut asm = Asm::new();
    asm.label("main");
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg64(Reg::Rdi), Operand::Imm(3)], Width::B8));
    asm.jcc(Cond::E, "other");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.ret();
    asm.label("other");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(2)], Width::B4));
    asm.ret();
    asm.entry("main").assemble().expect("assembles")
}

#[test]
fn fuel_exhaustion_keeps_partial_graph_with_frontier() {
    let bin = long_function(40);
    let mut config = LiftConfig::default();
    config.budget.max_fuel = Some(10);

    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(!result.is_lifted(), "fuel budget must reject the lift");

    let f = &result.functions[&bin.entry];
    match &f.reject {
        Some(RejectReason::StateBudget { dimension: BudgetDim::Fuel, used, limit }) => {
            assert_eq!(*limit, 10);
            assert!(*used >= 10, "used {used} steps");
        }
        other => panic!("expected fuel StateBudget, got {other:?}"),
    }

    // Partial coverage: roughly one instruction per step survived.
    assert!(result.instruction_count() > 0, "partial graph must be non-empty");
    assert!(
        result.instruction_count() < 40,
        "only a prefix was explored, got {}",
        result.instruction_count()
    );

    // The stop point is annotated.
    let frontiers: Vec<&Annotation> = f
        .annotations
        .iter()
        .filter(|a| matches!(a, Annotation::BudgetFrontier { dimension: BudgetDim::Fuel, .. }))
        .collect();
    assert!(!frontiers.is_empty(), "unexplored frontier must be annotated: {:?}", f.annotations);
    // Frontier addresses lie inside the function body.
    for a in frontiers {
        let addr = a.addr();
        assert!(addr >= bin.entry, "frontier {addr:#x} before entry {:#x}", bin.entry);
    }
}

#[test]
fn expired_wall_clock_rejects_with_timeout() {
    let bin = long_function(8);
    let mut config = LiftConfig::default();
    config.budget.wall_clock = Some(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));

    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    assert_eq!(result.binary_reject, Some(RejectReason::Timeout));
    // A resource reject, not a soundness verdict.
    assert!(result.reject_reason().expect("rejected").is_resource());
}

#[test]
fn solver_query_budget_trips_as_state_budget() {
    let bin = branchy_function();
    let mut config = LiftConfig::default();
    config.budget.max_solver_queries = Some(1);

    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    match result.reject_reason() {
        Some(RejectReason::StateBudget { dimension: BudgetDim::SolverQueries, limit: 1, .. }) => {}
        other => panic!("expected solver StateBudget, got {other:?}"),
    }
}

#[test]
fn fork_budget_trips_as_state_budget() {
    let bin = branchy_function();
    let mut config = LiftConfig::default();
    config.budget.max_forks = Some(0);

    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    match result.reject_reason() {
        Some(RejectReason::StateBudget { dimension: BudgetDim::Forks, limit: 0, .. }) => {}
        other => panic!("expected fork StateBudget, got {other:?}"),
    }
}

#[test]
fn unlimited_budget_lifts_everything() {
    let bin = long_function(40);
    let config = LiftConfig { budget: hgl_core::Budget::unlimited(), ..LiftConfig::default() };
    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert_eq!(result.instruction_count(), 41); // 40 movs + ret
}

/// The builder knobs compose: each method touches only its own
/// dimension, so chaining them accumulates instead of clobbering.
#[test]
fn builder_knobs_compose_without_clobbering() {
    let config = LiftConfig::default()
        .timeout(Duration::from_secs(7))
        .max_fuel(123)
        .max_solver_queries(456)
        .max_forks(789);
    assert_eq!(config.budget.wall_clock, Some(Duration::from_secs(7)));
    assert_eq!(config.budget.max_fuel, Some(123));
    assert_eq!(config.budget.max_solver_queries, Some(456));
    assert_eq!(config.budget.max_forks, Some(789));

    // Order independence: the same knobs in reverse give the same config.
    let reversed = LiftConfig::default()
        .max_forks(789)
        .max_solver_queries(456)
        .max_fuel(123)
        .timeout(Duration::from_secs(7));
    assert_eq!(reversed.budget, config.budget);

    // A whole-budget override still composes with a later knob.
    let layered = LiftConfig::default()
        .budget(hgl_core::Budget::unlimited())
        .timeout(Duration::from_secs(1));
    assert_eq!(layered.budget.wall_clock, Some(Duration::from_secs(1)));
    assert_eq!(layered.budget.max_fuel, None);

    // And a composed config actually binds: the fuel knob trips on a
    // binary the timeout alone would have let through.
    let bin = long_function(40);
    let strict = LiftConfig::default().timeout(Duration::from_secs(60)).max_fuel(10);
    let result = Lifter::new(&bin).with_config(strict).lift_entry(bin.entry);
    match result.reject_reason() {
        Some(RejectReason::StateBudget { dimension: BudgetDim::Fuel, .. }) => {}
        other => panic!("expected fuel StateBudget, got {other:?}"),
    }
}
