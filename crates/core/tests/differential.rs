//! Differential testing of the symbolic transformer `τ` against the
//! independent concrete emulator: when `τ` is given fully concrete
//! register values, every concrete claim it makes (immediate register
//! values, the next rip, decided flag conditions) must match what the
//! hardware-model emulator computes.
//!
//! This is the offline analogue of validating the instruction
//! semantics against machine-learned ground truth (§1, [22, 47]).

use hgl_core::diag::Diagnostics;
use hgl_core::pred::{FlagState, Pred, Shared, SymState};
use hgl_core::tau::{step, StepConfig, StepCtx, Successor};
use hgl_core::MemModel;
use hgl_elf::{Binary, Segment, SegmentFlags};
use hgl_emu::{FillPolicy, Machine, Mem};
use hgl_expr::Expr;
use hgl_solver::Layout;
use hgl_x86::{encode, Cond, Instr, Mnemonic, Operand, Reg, RegRef, Width};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CODE_BASE: u64 = 0x40_1000;

/// Build a one-instruction binary.
fn binary_for(instr: &Instr) -> (Binary, Instr) {
    let mut placed = instr.clone();
    placed.addr = CODE_BASE;
    let bytes = encode(&placed).expect("encodable");
    placed.len = bytes.len() as u8;
    let mut padded = bytes;
    padded.resize(32, 0x90); // nops after, so fall-through targets exist
    let bin = Binary {
        entry: CODE_BASE,
        segments: vec![Segment { vaddr: CODE_BASE, bytes: padded, flags: SegmentFlags::RX }],
        externals: BTreeMap::new(),
        symbols: BTreeMap::new(),
    };
    (bin, placed)
}

/// How the flags were set before a flag-consuming instruction runs:
/// by `cmp lhs, rhs` or by `test lhs, rhs`, at a given width.
#[derive(Clone, Copy, Debug)]
struct FlagSetup {
    lhs: u64,
    rhs: u64,
    width: Width,
    /// `test` (AND semantics, CF=OF=0) instead of `cmp` (SUB).
    is_test: bool,
}

/// Run τ on a fully concrete state and compare with the emulator.
fn check(instr: &Instr, regs: &BTreeMap<Reg, u64>, flags_from: Option<FlagSetup>) {
    let (bin, placed) = binary_for(instr);

    // Symbolic side: all registers hold immediates.
    let mut pred = Pred::function_entry(CODE_BASE);
    pred.mem.clear(); // no return-slot knowledge needed here
    for (r, v) in regs {
        pred.set_reg(*r, Expr::imm(*v));
    }
    if let Some(fs) = flags_from {
        let (w, lhs, rhs) =
            (fs.width, Expr::imm(fs.width.trunc(fs.lhs)), Expr::imm(fs.width.trunc(fs.rhs)));
        pred.flags = if fs.is_test {
            FlagState::Test { width: w, lhs, rhs }
        } else {
            FlagState::Cmp { width: w, lhs, rhs }
        };
    }
    let state = SymState { pred, model: Shared::new(MemModel::empty()) };
    let mut fresh = 0u64;
    let mut diags = Diagnostics::default();
    let meter = hgl_core::BudgetMeter::start(&hgl_core::Budget::unlimited());
    let mut ctx = StepCtx {
        binary: &bin,
        layout: std::sync::Arc::new(Layout { text: bin.text_ranges(), data: bin.data_ranges() }),
        config: &StepConfig::default(),
        fresh: &mut fresh,
        diags: &mut diags,
        meter: &meter,
        cache: None,
        metrics: None,
    };
    let successors = match step(&mut ctx, state, &placed, CODE_BASE) {
        Ok(s) => s,
        Err(_) => return, // rejection paths are exercised elsewhere
    };

    // Concrete side.
    let mut m = Machine::new(Mem::new(FillPolicy::Zero));
    for seg in &bin.segments {
        m.mem.load(seg.vaddr, &seg.bytes);
    }
    m.rip = CODE_BASE;
    for (r, v) in regs {
        m.set_reg(RegRef::full(*r), *v);
    }
    if let Some(fs) = flags_from {
        let w = fs.width;
        let (a, b) = (w.trunc(fs.lhs), w.trunc(fs.rhs));
        if fs.is_test {
            let res = w.trunc(a & b);
            m.flags.cf = false;
            m.flags.of = false;
            m.flags.zf = res == 0;
            m.flags.sf = w.sign_bit(res);
            m.flags.pf = (res as u8).count_ones().is_multiple_of(2);
        } else {
            let res = w.trunc(a.wrapping_sub(b));
            m.flags.cf = a < b;
            m.flags.zf = res == 0;
            m.flags.sf = w.sign_bit(res);
            let (sa, sb, sr) = (w.sign_bit(a), w.sign_bit(b), w.sign_bit(res));
            m.flags.of = sa != sb && sr != sa;
            m.flags.pf = (res as u8).count_ones().is_multiple_of(2);
        }
    }
    if m.exec(&placed).is_err() {
        return; // faulting concrete path (e.g. divide error)
    }

    // Some successor must match the machine exactly on all concrete
    // claims.
    let mut errs = Vec::new();
    for succ in &successors {
        let s = match succ {
            Successor::At(a, s) if *a == m.rip => s,
            Successor::At(_, _) => continue,
            _ => continue,
        };
        let mut ok = true;
        for (r, e) in s.pred.regs.iter() {
            if let Some(v) = e.as_imm() {
                if v != m.reg(r) {
                    errs.push(format!("{r}: τ says {v:#x}, machine {:#x}", m.reg(r)));
                    ok = false;
                }
            }
        }
        // Flag conditions τ decides must agree with the machine.
        let nomem = |_: u64, _: u8| None;
        for c in Cond::ALL {
            if let Some(expected) = s.pred.flags.eval_cond(c, &|_| 0, &nomem) {
                let f = &m.flags;
                if expected != c.eval(f.cf, f.pf, f.zf, f.sf, f.of) {
                    errs.push(format!("cond {c}: τ says {expected}"));
                    ok = false;
                }
            }
        }
        if ok {
            return; // matched
        }
    }
    panic!(
        "no successor matches machine after `{placed}` (rip {:#x}, {} successors): {}",
        m.rip,
        successors.len(),
        errs.join("; ")
    );
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    // Avoid rsp so stack discipline stays intact.
    prop_oneof![
        Just(Reg::Rax),
        Just(Reg::Rcx),
        Just(Reg::Rdx),
        Just(Reg::Rbx),
        Just(Reg::Rsi),
        Just(Reg::Rdi),
        Just(Reg::R8),
        Just(Reg::R12),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4), Just(Width::B8)]
}

fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        Just(0u64),
        Just(1),
        Just(u64::MAX),
        Just(0x7fff_ffff),
        Just(0x8000_0000),
        Just(0xffff_ffff),
        0u64..256,
    ]
}

fn arb_regs() -> impl Strategy<Value = BTreeMap<Reg, u64>> {
    proptest::collection::vec(arb_value(), 16).prop_map(|vals| {
        Reg::ALL.iter().copied().zip(vals).map(|(r, v)| (r, if r == Reg::Rsp { 0x7fff_0000 } else { v })).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn alu_reg_reg(
        m in prop_oneof![
            Just(Mnemonic::Add), Just(Mnemonic::Sub), Just(Mnemonic::And),
            Just(Mnemonic::Or), Just(Mnemonic::Xor),
        ],
        dst in arb_reg(),
        src in arb_reg(),
        w in arb_width(),
        regs in arb_regs(),
    ) {
        let i = Instr::new(m, vec![Operand::reg(dst, w), Operand::reg(src, w)], w);
        check(&i, &regs, None);
    }

    #[test]
    fn alu_reg_imm(
        m in prop_oneof![
            Just(Mnemonic::Add), Just(Mnemonic::Sub), Just(Mnemonic::And),
            Just(Mnemonic::Or), Just(Mnemonic::Xor), Just(Mnemonic::Cmp),
            Just(Mnemonic::Test),
        ],
        dst in arb_reg(),
        v in -0x8000_0000i64..0x8000_0000,
        w in prop_oneof![Just(Width::B4), Just(Width::B8)],
        regs in arb_regs(),
    ) {
        let i = Instr::new(m, vec![Operand::reg(dst, w), Operand::Imm(w.trunc(v as u64) as i64)], w);
        // Group-1 immediates are sign-extended imm32; keep them in range.
        let i = if w == Width::B8 {
            Instr::new(i.mnemonic, vec![Operand::reg(dst, w), Operand::Imm(v)], w)
        } else { i };
        check(&i, &regs, None);
    }

    #[test]
    fn mov_and_extend(
        dst in arb_reg(),
        src in arb_reg(),
        w in arb_width(),
        regs in arb_regs(),
        which in 0u8..4,
    ) {
        let i = match which {
            0 => Instr::new(Mnemonic::Mov, vec![Operand::reg(dst, w), Operand::reg(src, w)], w),
            1 => Instr::new(
                Mnemonic::Movzx,
                vec![Operand::reg(dst, Width::B4), Operand::reg(src, Width::B1)],
                Width::B4,
            ),
            2 => Instr::new(
                Mnemonic::Movsx,
                vec![Operand::reg(dst, Width::B8), Operand::reg(src, Width::B2)],
                Width::B8,
            ),
            _ => Instr::new(
                Mnemonic::Movsxd,
                vec![Operand::reg64(dst), Operand::reg(src, Width::B4)],
                Width::B8,
            ),
        };
        check(&i, &regs, None);
    }

    #[test]
    fn shifts_by_imm(
        m in prop_oneof![Just(Mnemonic::Shl), Just(Mnemonic::Shr), Just(Mnemonic::Sar)],
        dst in arb_reg(),
        amt in 0i64..64,
        w in prop_oneof![Just(Width::B4), Just(Width::B8)],
        regs in arb_regs(),
    ) {
        let i = Instr::new(m, vec![Operand::reg(dst, w), Operand::Imm(amt)], w);
        check(&i, &regs, None);
    }

    #[test]
    fn inc_dec_neg_not(
        m in prop_oneof![
            Just(Mnemonic::Inc), Just(Mnemonic::Dec),
            Just(Mnemonic::Neg), Just(Mnemonic::Not),
        ],
        dst in arb_reg(),
        w in arb_width(),
        regs in arb_regs(),
    ) {
        let i = Instr::new(m, vec![Operand::reg(dst, w)], w);
        check(&i, &regs, None);
    }

    #[test]
    fn lea_computes_address(
        dst in arb_reg(),
        base in arb_reg(),
        idx in arb_reg().prop_filter("no rsp idx", |r| *r != Reg::Rsp),
        scale in prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        disp in -0x1000i64..0x1000,
        regs in arb_regs(),
    ) {
        let i = Instr::new(
            Mnemonic::Lea,
            vec![
                Operand::reg64(dst),
                Operand::Mem(hgl_x86::MemOperand::sib(Some(base), idx, scale, disp, Width::B8)),
            ],
            Width::B8,
        );
        check(&i, &regs, None);
    }

    // Flag consumers after `cmp` AND after `test`, at all four flag
    // widths. The consumer width for cmov is kept wide (cmov has no
    // byte form) but the *flag-producing* width ranges over all four.
    #[test]
    fn setcc_cmovcc_after_cmp_or_test(
        n in 0u8..16,
        dst in arb_reg(),
        src in arb_reg(),
        l in arb_value(),
        r in arb_value(),
        fw in arb_width(),
        cw in prop_oneof![Just(Width::B2), Just(Width::B4), Just(Width::B8)],
        regs in arb_regs(),
        is_set in any::<bool>(),
        is_test in any::<bool>(),
    ) {
        let c = Cond::from_number(n);
        let i = if is_set {
            Instr::new(Mnemonic::Setcc(c), vec![Operand::reg(dst, Width::B1)], Width::B1)
        } else {
            Instr::new(Mnemonic::Cmovcc(c), vec![Operand::reg(dst, cw), Operand::reg(src, cw)], cw)
        };
        check(&i, &regs, Some(FlagSetup { lhs: l, rhs: r, width: fw, is_test }));
    }

    #[test]
    fn jcc_after_cmp_or_test(
        n in 0u8..16,
        l in arb_value(),
        r in arb_value(),
        w in arb_width(),
        regs in arb_regs(),
        is_test in any::<bool>(),
    ) {
        let c = Cond::from_number(n);
        let i = Instr::new(Mnemonic::Jcc(c), vec![Operand::Imm((CODE_BASE + 0x10) as i64)], Width::B8);
        check(&i, &regs, Some(FlagSetup { lhs: l, rhs: r, width: w, is_test }));
    }

    // Degenerate but common compiler idiom: `test r, r` (zero/sign of
    // a single value) followed by each consumer, at all four widths.
    #[test]
    fn consumers_after_self_test(
        n in 0u8..16,
        dst in arb_reg(),
        v in arb_value(),
        w in arb_width(),
        regs in arb_regs(),
        which in 0u8..3,
    ) {
        let c = Cond::from_number(n);
        let i = match which {
            0 => Instr::new(Mnemonic::Setcc(c), vec![Operand::reg(dst, Width::B1)], Width::B1),
            1 => Instr::new(
                Mnemonic::Cmovcc(c),
                vec![Operand::reg(dst, Width::B8), Operand::reg64(Reg::Rsi)],
                Width::B8,
            ),
            _ => Instr::new(
                Mnemonic::Jcc(c),
                vec![Operand::Imm((CODE_BASE + 0x10) as i64)],
                Width::B8,
            ),
        };
        check(&i, &regs, Some(FlagSetup { lhs: v, rhs: v, width: w, is_test: true }));
    }

    #[test]
    fn wide_conversions(
        m in prop_oneof![
            Just(Mnemonic::Cdqe), Just(Mnemonic::Cwde), Just(Mnemonic::Cqo), Just(Mnemonic::Cdq),
        ],
        regs in arb_regs(),
    ) {
        let w = match m {
            Mnemonic::Cwde => Width::B4,
            Mnemonic::Cdq => Width::B4,
            _ => Width::B8,
        };
        let i = Instr::new(m, vec![], w);
        check(&i, &regs, None);
    }

    #[test]
    fn imul_two_op(
        dst in arb_reg(),
        src in arb_reg(),
        w in prop_oneof![Just(Width::B4), Just(Width::B8)],
        regs in arb_regs(),
    ) {
        let i = Instr::new(Mnemonic::Imul, vec![Operand::reg(dst, w), Operand::reg(src, w)], w);
        check(&i, &regs, None);
    }
}
