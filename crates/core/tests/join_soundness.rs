//! Property tests for the join semilattice (§3): joining only loses
//! information, never invents it. Concretely: any machine state
//! satisfying `P` (or `Q`) also satisfies `P ⊔ Q` — the soundness
//! criterion `s ⊢ P ∨ Q ⟹ s ⊢ P ⊔ Q` stated in §3 and Lemma 3.14.

use hgl_core::memmodel::{MemModel, MemTree};
use hgl_core::pred::{Pred, SymState};
use hgl_expr::{Clause, Expr, Rel, Sym};
use hgl_solver::Region;
use hgl_x86::Reg;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A concrete environment for the symbols we use.
fn env_of(vals: &BTreeMap<Sym, u64>) -> impl Fn(Sym) -> u64 + '_ {
    move |s| *vals.get(&s).unwrap_or(&0)
}

/// Does the concrete state satisfy the predicate's clause set and
/// memory entries? (Register satisfaction is definitional in our
/// representation: the predicate *maps* registers to value terms.)
fn clauses_sat(p: &Pred, vals: &BTreeMap<Sym, u64>, mem: &BTreeMap<u64, u64>) -> Option<bool> {
    let env = env_of(vals);
    let oracle = |a: u64, _sz: u8| mem.get(&a).copied();
    p.clauses_hold(&env, &oracle)
}

fn arb_sym() -> impl Strategy<Value = Sym> {
    prop_oneof![
        Just(Sym::Init(Reg::Rax)),
        Just(Sym::Init(Reg::Rdi)),
        Just(Sym::Fresh(1)),
        Just(Sym::Fresh(2)),
    ]
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    (arb_sym(), 0u64..64, prop_oneof![Just(Rel::Eq), Just(Rel::Lt), Just(Rel::Ge), Just(Rel::Ne)])
        .prop_map(|(s, v, rel)| Clause::new(Expr::sym(s), rel, Expr::imm(v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Clause-level join soundness: an env satisfying P's clauses
    /// satisfies (P ⊔ Q)'s clauses.
    #[test]
    fn clause_join_sound(
        ca in proptest::collection::vec(arb_clause(), 0..5),
        cb in proptest::collection::vec(arb_clause(), 0..5),
        vals in proptest::collection::btree_map(arb_sym(), 0u64..64, 0..4),
        widen in any::<bool>(),
    ) {
        let mut p = Pred::function_entry(0);
        p.mem.clear();
        p.clauses.extend(ca);
        let mut q = Pred::function_entry(0);
        q.mem.clear();
        q.clauses.extend(cb);
        let j = p.join(&q, widen);
        let mem = BTreeMap::new();
        for side in [&p, &q] {
            if clauses_sat(side, &vals, &mem) == Some(true) {
                prop_assert_eq!(
                    clauses_sat(&j, &vals, &mem), Some(true),
                    "state satisfying a side must satisfy the join"
                );
            }
        }
    }

    /// Register join soundness: if a register's joined value term
    /// evaluates, it equals the side's value whenever the side's term
    /// evaluates (fresh symbols matched by the unifier pick the
    /// satisfying binding).
    #[test]
    fn reg_join_keeps_only_common_values(
        va in 0u64..8,
        vb in 0u64..8,
        same in any::<bool>(),
    ) {
        let mut p = Pred::function_entry(0);
        let mut q = Pred::function_entry(0);
        p.set_reg(Reg::Rax, Expr::imm(va));
        q.set_reg(Reg::Rax, Expr::imm(if same { va } else { vb }));
        let j = p.join(&q, false);
        if same || va == vb {
            prop_assert_eq!(j.reg(Reg::Rax), Expr::imm(va));
        } else {
            prop_assert!(j.reg(Reg::Rax).is_bottom());
        }
    }

    /// Memory-model join soundness on concrete layouts (Lemma 3.14):
    /// an environment in which M0 holds also makes M0 ⊔ M1 hold.
    #[test]
    fn model_join_sound(
        a0 in 0u64..4u64,
        a1 in 0u64..4u64,
        b0 in 0u64..4u64,
        share in any::<bool>(),
    ) {
        // Two-region models over two pointer symbols with random
        // concrete placements (scaled so regions may or may not
        // overlap).
        let pa = Expr::sym(Sym::Init(Reg::Rdi));
        let pb = Expr::sym(Sym::Init(Reg::Rsi));
        let ra = Region::new(pa, 8);
        let rb = Region::new(pb, 8);
        let m0 = MemModel { trees: vec![MemTree::leaf(ra), MemTree::leaf(rb)] };
        let m1 = if share {
            m0.clone()
        } else {
            MemModel { trees: vec![MemTree::leaf(ra)] }
        };
        let j = m0.join(&m1);
        let env = move |s: Sym| match s {
            Sym::Init(Reg::Rdi) => 0x1000 + a0 * 8 + a1,
            Sym::Init(Reg::Rsi) => 0x1000 + b0 * 8,
            _ => 0,
        };
        for m in [&m0, &m1] {
            if m.holds_in(&env) == Some(true) {
                prop_assert_eq!(j.holds_in(&env), Some(true), "join weaker than both sides");
            }
        }
    }

    /// `leq` is a partial order compatible with join: σ ⊑ σ⊔τ and
    /// τ ⊑ σ⊔τ … up to the unifier's greedy renaming.
    #[test]
    fn join_is_upper_bound(
        va in 0u64..8,
        vb in 0u64..8,
        clause_v in 0u64..16,
    ) {
        let mut s1 = SymState::function_entry(0x1000);
        s1.pred.set_reg(Reg::Rax, Expr::imm(va));
        s1.pred.clauses.insert(Clause::new(
            Expr::sym(Sym::Init(Reg::Rdi)), Rel::Lt, Expr::imm(clause_v + 1),
        ));
        let mut s2 = SymState::function_entry(0x1000);
        s2.pred.set_reg(Reg::Rax, Expr::imm(vb));
        let j = s1.join(&s2, false);
        prop_assert!(s1.leq(&j), "s1 ⊑ s1⊔s2");
        prop_assert!(s2.leq(&j), "s2 ⊑ s1⊔s2");
        // Idempotence.
        prop_assert_eq!(&j.join(&j, false), &j);
    }

    /// Joining with unified fresh symbols preserves sharing: the
    /// central property behind call-havoc convergence.
    #[test]
    fn unifier_preserves_sharing(id_a in 10u64..20, id_b in 20u64..30) {
        let mut s1 = SymState::function_entry(0x1000);
        s1.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(id_a)));
        s1.pred.set_mem(Region::stack(-8, 8), Expr::sym(Sym::Fresh(id_a)));
        let mut s2 = SymState::function_entry(0x1000);
        s2.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(id_b)));
        s2.pred.set_mem(Region::stack(-8, 8), Expr::sym(Sym::Fresh(id_b)));
        let j = s1.join(&s2, false);
        // The join keeps rax == *[rsp0-8] with a single symbol.
        let r = j.pred.reg(Reg::Rax);
        prop_assert!(matches!(r.kind(), hgl_expr::ExprKind::Sym(Sym::Fresh(_))));
        prop_assert_eq!(j.pred.mem_value(&Region::stack(-8, 8)), Some(&r));
        // And the re-join is a fixpoint.
        prop_assert!(s2.leq(&j));
        prop_assert!(s1.leq(&j));
    }

    /// Mismatched sharing degrades instead of lying.
    #[test]
    fn unifier_rejects_inconsistent_sharing(id_a in 10u64..20, id_b in 20u64..30, id_c in 30u64..40) {
        let mut s1 = SymState::function_entry(0x1000);
        s1.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(id_a)));
        s1.pred.set_reg(Reg::Rbx, Expr::sym(Sym::Fresh(id_a))); // rax == rbx
        let mut s2 = SymState::function_entry(0x1000);
        s2.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(id_b)));
        s2.pred.set_reg(Reg::Rbx, Expr::sym(Sym::Fresh(id_c))); // rax != rbx possible
        let j = s1.join(&s2, false);
        // The join must NOT claim rax == rbx.
        let (ra, rb) = (j.pred.reg(Reg::Rax), j.pred.reg(Reg::Rbx));
        prop_assert!(ra.is_bottom() || rb.is_bottom() || ra != rb,
            "join invented sharing: rax={ra} rbx={rb}");
    }
}

/// `join` of the reg map respects the documented name-stability: the
/// surviving names come from the `other` (existing-vertex) side.
#[test]
fn join_keeps_existing_names() {
    let mut incoming = SymState::function_entry(0);
    incoming.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(99)));
    let mut existing = SymState::function_entry(0);
    existing.pred.set_reg(Reg::Rax, Expr::sym(Sym::Fresh(7)));
    let j = incoming.join(&existing, false);
    assert_eq!(j.pred.reg(Reg::Rax), Expr::sym(Sym::Fresh(7)));
}
