//! Property tests for `MemModel::insert` (Definition 3.7): the
//! structural invariants of the forest — siblings pairwise separate,
//! children enclosed in their parents (checked concretely via
//! Definition 3.9's `holds_in`) — and canonicality: the model reached
//! is independent of insertion order.
//!
//! Regions are drawn from a buddy decomposition of eight 8-byte stack
//! slots (sub-regions have power-of-two sizes at aligned offsets), so
//! every pair is arithmetically decidable as alias, nested or
//! disjoint — insertion never forks and never destroys, making the
//! expected outcome exact.

use hgl_core::memmodel::MemModel;
use hgl_expr::Sym;
use hgl_solver::{Ctx, Region, RegionRel};
use hgl_x86::Reg;
use proptest::prelude::*;

/// A buddy sub-region of one of eight stack slots: offset
/// `-(8 * slot) + off`, size a power of two, `off` aligned to it.
fn arb_buddy_region() -> impl Strategy<Value = Region> {
    (1u8..9, 0u8..4).prop_flat_map(|(slot, size_log)| {
        let size = 1u64 << size_log;
        let positions = 8 / size;
        (Just(slot), Just(size), 0u64..positions)
            .prop_map(|(slot, size, idx)| Region::stack(-(8 * slot as i64) + (idx * size) as i64, size))
    })
}

/// An arbitrary (possibly partially overlapping) sub-region of the
/// same eight slots, for the relation test.
fn arb_loose_region() -> impl Strategy<Value = Region> {
    (1u8..9, 0u64..8, 1u64..9)
        .prop_filter("inside one slot", |(_, off, size)| off + size <= 8)
        .prop_map(|(slot, off, size)| Region::stack(-(8 * slot as i64) + off as i64, size))
}

/// The concrete frame base used to evaluate regions.
fn env(s: Sym) -> u64 {
    if s == Sym::Init(Reg::Rsp) {
        0x8000
    } else {
        0
    }
}

/// Concrete half-open extent of a stack region under [`env`].
fn extent(r: &Region) -> (i64, i64) {
    let d = r.displacement_from_rsp0().expect("stack region");
    (d, d + r.size as i64)
}

/// Ground-truth relation from concrete extents.
fn concrete_rel(a: &Region, b: &Region) -> RegionRel {
    let (a0, a1) = extent(a);
    let (b0, b1) = extent(b);
    if a0 == b0 && a1 == b1 {
        RegionRel::Alias
    } else if a1 <= b0 || b1 <= a0 {
        RegionRel::Separate
    } else if b0 <= a0 && a1 <= b1 {
        RegionRel::Enclosed
    } else if a0 <= b0 && b1 <= a1 {
        RegionRel::Encloses
    } else {
        RegionRel::Overlap
    }
}

/// Deterministic Fisher–Yates driven by splitmix64.
fn shuffled(mut v: Vec<Region>, mut seed: u64) -> Vec<Region> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Insert each region in order; decidable relations must produce
/// exactly one branch with no destruction and no assumed alias.
fn build(ctx: &Ctx, regions: &[Region]) -> MemModel {
    let mut model = MemModel::empty();
    for r in regions {
        let mut branches = model.insert(ctx, *r, 64);
        assert_eq!(branches.len(), 1, "decidable insert must not fork: {r}");
        let b = branches.pop().expect("one branch");
        assert!(b.destroyed.is_empty(), "buddy regions never partially overlap: {r}");
        assert!(b.assumed_alias.is_none(), "no alias assumptions needed: {r}");
        model = b.model;
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The forest `insert` builds satisfies Definition 3.9 concretely
    /// (children inside parents, siblings separate), keeps every
    /// inserted region, and is canonical: any insertion order yields
    /// the identical model.
    #[test]
    fn insert_invariants_and_permutation_stability(
        specs in proptest::collection::vec(arb_buddy_region(), 1..10),
        seed in any::<u64>(),
    ) {
        let ctx = Ctx::new();
        let model = build(&ctx, &specs);

        // Definition 3.9 under a concrete frame base: mutual aliasing
        // at nodes, enclosure of children, separation of siblings.
        prop_assert_eq!(model.holds_in(&env), Some(true));

        // Every inserted region is present exactly once.
        let held = model.all_regions();
        for r in &specs {
            prop_assert_eq!(held.iter().filter(|h| ***h == *r).count(), 1);
        }

        // Canonicality: a permuted insertion order reaches the same
        // model (`PartialEq` on the canonicalised forest).
        let permuted = build(&ctx, &shuffled(specs.clone(), seed));
        prop_assert_eq!(&model, &permuted);

        // Structural queries agree with arithmetic ground truth for
        // regions the model holds.
        for a in &specs {
            for b in &specs {
                prop_assert_eq!(model.relation(&ctx, a, b).rel, concrete_rel(a, b));
            }
        }
    }

    /// The decision procedure behind `insert` matches concrete extents
    /// for every pair of (possibly partially overlapping) stack
    /// regions.
    #[test]
    fn relation_matches_concrete_extents(
        a in arb_loose_region(),
        b in arb_loose_region(),
    ) {
        let ctx = Ctx::new();
        prop_assert_eq!(MemModel::empty().relation(&ctx, &a, &b).rel, concrete_rel(&a, &b));
    }
}
