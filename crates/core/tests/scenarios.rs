//! End-to-end lifting scenarios: each test assembles a real binary and
//! lifts it, reproducing the paper's worked examples — the §2 weird
//! edge, Table 1's rejection categories, and the §5.3 failure cases.

use hgl_asm::Asm;
use hgl_core::lift::{LiftConfig, RejectReason};
use hgl_core::Lifter;
use hgl_core::{Annotation, VerificationError, VertexId};
use hgl_solver::AssumptionKind;
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn mem(base: Reg, disp: i64, size: Width) -> Operand {
    Operand::Mem(MemOperand::base_disp(base, disp, size))
}

/// A classic frame: prologue, local store/load, epilogue.
#[test]
fn simple_frame_function_lifts() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x20)], Width::B8));
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rbp, -4, Width::B4), Operand::Imm(7)], Width::B4));
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), mem(Reg::Rbp, -4, Width::B4)],
        Width::B4,
    ));
    asm.ins(ins(Mnemonic::Leave, vec![], Width::B8));
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns, "function provably returns");
    assert_eq!(f.graph.instruction_count(), 7);
    assert!(f.annotations.is_empty());
    // The loaded value is known: rax == 7 at the exit vertex.
    let exit = &f.graph.vertices[&VertexId::Exit];
    assert_eq!(exit.state.pred.reg(Reg::Rax).as_imm(), Some(7));
}

/// Internal calls are context-free; the return site becomes reachable
/// once the callee provably returns (§4.2.2).
#[test]
fn internal_call_chain() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.call("helper");
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(1)], Width::B8));
    asm.ret();
    asm.label("helper");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(5)], Width::B4));
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert_eq!(result.functions.len(), 2, "both functions explored");
    for f in result.functions.values() {
        assert!(f.returns);
    }
    // The helper's entry is one of the explored functions.
    let helper_entry = *result.functions.keys().max().expect("two functions");
    assert!(result.functions[&helper_entry].graph.instruction_count() == 2);
}

/// Calling a terminating external (`exit`) ends the path: the function
/// lifts but never returns.
#[test]
fn call_to_exit_never_returns() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rdi, Width::B4), Operand::Imm(0)], Width::B4));
    asm.call_ext("exit");
    asm.ret(); // unreachable
    let bin = asm.entry("main").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted());
    let f = &result.functions[&bin.entry];
    assert!(!f.returns, "exit never returns");
    // The trailing ret is never reached.
    assert_eq!(f.graph.instruction_count(), 2);
}

/// An unknown external call havocs volatile state but preserves the
/// frame, generating a proof obligation.
#[test]
fn external_call_generates_obligation() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x20)], Width::B8));
    // lea rdi, [rbp-0x20]; mov esi, 0; mov edx, 48; call memset
    asm.ins(ins(
        Mnemonic::Lea,
        vec![Operand::reg64(Reg::Rdi), mem(Reg::Rbp, -0x20, Width::B8)],
        Width::B8,
    ));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rsi, Width::B4), Operand::Imm(0)], Width::B4));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rdx, Width::B4), Operand::Imm(48)], Width::B4));
    asm.call_ext("memset");
    asm.ins(ins(Mnemonic::Leave, vec![], Width::B8));
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns, "frame preserved by assumption; ret verifies");
    // The §5.3 ret2win-style obligation.
    let ob = f.obligations.iter().find(|o| o.callee == "memset").expect("memset obligation");
    assert!(
        ob.frame_args.iter().any(|(r, _)| *r == Reg::Rdi),
        "rdi points into the caller frame: {ob}"
    );
    assert!(!ob.must_preserve.is_empty(), "preserve set non-empty: {ob}");
    let display = ob.to_string();
    assert!(display.contains("MUST PRESERVE"), "{display}");
}

/// A write through an unbounded index into the stack frame makes
/// return-address integrity unprovable: the function is rejected
/// (the §5.1 induced-buffer-overflow experiment).
#[test]
fn buffer_overflow_rejected() {
    let mut asm = Asm::new();
    asm.label("bad");
    // mov eax, edi  (unbounded index)
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
        Width::B4,
    ));
    // mov byte [rsp + rax - 0x20], 1
    asm.ins(ins(
        Mnemonic::Mov,
        vec![
            Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::Rax, 1, -0x20, Width::B1)),
            Operand::Imm(1),
        ],
        Width::B1,
    ));
    asm.ret();
    let bin = asm.entry("bad").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(!result.is_lifted(), "overflow must reject");
    match result.reject_reason() {
        Some(RejectReason::Verification(VerificationError::ReturnAddressClobbered { .. })) => {}
        other => panic!("expected ReturnAddressClobbered, got {other:?}"),
    }
}

/// The same write with a *bounded* index verifies: the bound proves
/// separation from the return-address slot.
#[test]
fn bounded_stack_write_lifts() {
    let mut asm = Asm::new();
    asm.label("good");
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
        Width::B4,
    ));
    // cmp eax, 0x10 ; ja out
    asm.ins(ins(
        Mnemonic::Cmp,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0x10)],
        Width::B4,
    ));
    asm.jcc(Cond::A, "out");
    // mov byte [rsp + rax - 0x20], 1   — rax ≤ 0x10 < 0x18 keeps the
    // write below the return-address slot.
    asm.ins(ins(
        Mnemonic::Mov,
        vec![
            Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::Rax, 1, -0x20, Width::B1)),
            Operand::Imm(1),
        ],
        Width::B1,
    ));
    asm.label("out");
    asm.ret();
    let bin = asm.entry("good").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert!(result.functions[&bin.entry].returns);
}

/// A bounded jump table resolves to all entries (column A of Table 1).
#[test]
fn jump_table_resolved() {
    let mut asm = Asm::new();
    asm.label("dispatch");
    // mov eax, edi ; cmp eax, 2 ; ja default
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
        Width::B4,
    ));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(2)], Width::B4));
    asm.jcc(Cond::A, "default");
    // jmp qword [table + rax*8]
    let jmp_tbl = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp_tbl, 0, "table");
    asm.label("case0");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(10)], Width::B4));
    asm.ret();
    asm.label("case1");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(11)], Width::B4));
    asm.ret();
    asm.label("case2");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(12)], Width::B4));
    asm.ret();
    asm.label("default");
    asm.ins(ins(
        Mnemonic::Xor,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)],
        Width::B4,
    ));
    asm.ret();
    asm.jump_table("table", &["case0", "case1", "case2"]);
    let bin = asm.entry("dispatch").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns);
    assert_eq!(f.resolved_indirections, 1, "the jump table is resolved");
    assert!(f.annotations.is_empty(), "no unresolved indirections: {:?}", f.annotations);
    // All four cases (table entries + default) are in the graph.
    assert_eq!(f.graph.instruction_count(), 12);
}

/// The §2 example, ported to x86-64: whether `jmp [rsi]` lands on the
/// intended jump-table target or on a ROP gadget depends on pointer
/// aliasing. The lifted graph must contain the weird edge.
#[test]
fn weird_edge_found() {
    let mut asm = Asm::new();
    asm.label("weird");
    // mov eax, edi ; cmp eax, 1 ; ja done
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
        Width::B4,
    ));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.jcc(Cond::A, "done");
    // mov rax, [table + rax*8]    (a_jt)
    let load = ins(
        Mnemonic::Mov,
        vec![
            Operand::reg64(Reg::Rax),
            Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8)),
        ],
        Width::B8,
    );
    asm.ins_mem_label(load, 1, "table");
    // mov [rsi], rax              (*rsi := a_jt)
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rsi, 0, Width::B8), Operand::reg64(Reg::Rax)], Width::B8));
    // mov qword [rdx], carrier+1  (the §2 `mov [esi], 1`: the written
    // value is the address of a 0xc3 byte inside another instruction)
    let poison = ins(Mnemonic::Mov, vec![mem(Reg::Rdx, 0, Width::B8), Operand::Imm(0)], Width::B8);
    asm.ins_imm_label_off(poison, 1, "carrier", 1);
    // jmp [rsi]
    asm.ins(ins(Mnemonic::Jmp, vec![mem(Reg::Rsi, 0, Width::B8)], Width::B8));
    asm.label("t0");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.ret();
    asm.label("t1");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(2)], Width::B4));
    asm.ret();
    asm.label("done");
    asm.ret();
    // carrier: mov eax, 0xc3 — its immediate byte at carrier+1 is 0xc3,
    // i.e. a hidden `ret` instruction.
    asm.label("carrier");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0xc3)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["t0", "t1"]);
    let bin = asm.entry("weird").assemble().expect("assembles");

    // Locate the carrier instruction's address.
    let carrier_addr = {
        // carrier: the "mov eax, 0xc3" directly before the final ret;
        // find the byte pattern b8 c3 00 00 00 in .text.
        let seg = &bin.segments[0];
        let pos = seg
            .bytes
            .windows(5)
            .position(|w| w == [0xb8, 0xc3, 0x00, 0x00, 0x00])
            .expect("carrier pattern");
        seg.vaddr + pos as u64
    };
    let gadget = carrier_addr + 1;

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns);
    // The weird edge: a vertex at the mid-instruction ROP gadget.
    assert!(
        !f.graph.vertices_at(gadget).is_empty(),
        "weird edge to {gadget:#x} found; vertices: {:?}",
        f.graph.vertices.keys().collect::<Vec<_>>()
    );
    // And the intended targets as well (overapproximation).
    for label_addr in f.graph.instructions().keys() {
        let _ = label_addr;
    }
    let t0_found = f.graph.edges.iter().any(|e| e.instr.mnemonic == Mnemonic::Jmp
        && matches!(e.to, VertexId::At(a, _) if bin.is_code(a) && a != gadget));
    assert!(t0_found, "intended jump-table targets present");
    // The aliasing fork produced an equality clause somewhere: the
    // gadget vertex's invariant knows rsi0 == rdx0.
    let gadget_vid = f.graph.vertices_at(gadget)[0];
    let gadget_state = &f.graph.vertices[&gadget_vid].state;
    assert!(
        !gadget_state.pred.clauses.is_empty(),
        "aliasing clause recorded: {}",
        gadget_state.pred
    );
}

/// An indirect call through a register parameter is a callback: it is
/// annotated (column C) and treated as an unknown external call (§5.1).
#[test]
fn callback_annotated_not_rejected() {
    let mut asm = Asm::new();
    asm.label("invoke");
    // call rdi
    asm.ins(ins(Mnemonic::Call, vec![Operand::reg64(Reg::Rdi)], Width::B8));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0)], Width::B4));
    asm.ret();
    let bin = asm.entry("invoke").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns);
    assert_eq!(f.annotations.len(), 1);
    assert!(matches!(f.annotations[0], Annotation::UnresolvedCall { .. }));
}

/// §5.3 stack probing: `sub rsp, rax` after a call makes the stack
/// pointer unprovable and the function is rejected.
#[test]
fn stack_probing_rejected() {
    let mut asm = Asm::new();
    asm.label("user");
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0x1400)],
        Width::B4,
    ));
    asm.call("probe");
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::reg64(Reg::Rax)], Width::B8));
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x1400)], Width::B8));
    asm.ret();
    asm.label("probe");
    asm.ret();
    let bin = asm.entry("user").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    match result.reject_reason() {
        Some(RejectReason::Verification(
            VerificationError::NonStandardStackRestore { .. }
            | VerificationError::UnprovableReturnAddress { .. },
        )) => {}
        other => panic!("expected stack-restore failure, got {other:?}"),
    }
}

/// §5.3 non-standard stack-pointer restoration (`/usr/bin/ssh`): rsp
/// loaded from memory cannot be proven restored.
#[test]
fn nonstandard_rsp_restore_rejected() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.mov(Operand::reg64(Reg::Rsp), mem(Reg::Rdi, 0, Width::B8));
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    match result.reject_reason() {
        Some(RejectReason::Verification(VerificationError::NonStandardStackRestore { rsp, .. })) => {
            assert!(!rsp.is_bottom(), "the offending symbolic rsp is reported");
        }
        other => panic!("expected NonStandardStackRestore, got {other:?}"),
    }
}

/// Calling-convention adherence: clobbering a callee-saved register
/// rejects the function.
#[test]
fn callee_saved_violation_rejected() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg64(Reg::Rbx), Operand::Imm(1)], Width::B8));
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(!result.is_lifted());
    match result.reject_reason() {
        Some(RejectReason::Verification(VerificationError::CallingConventionViolation {
            reg, ..
        })) => assert_eq!(reg, Reg::Rbx),
        other => panic!("expected CallingConventionViolation, got {other:?}"),
    }
}

/// Saving and restoring a callee-saved register through the frame is
/// fine.
#[test]
fn push_pop_callee_saved_lifts() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.push(Reg::Rbx);
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg64(Reg::Rbx), Operand::Imm(42)], Width::B8));
    asm.mov(Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rbx));
    asm.pop(Reg::Rbx);
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert!(result.functions[&bin.entry].returns);
}

/// Binaries touching pthreads are out of scope (Table 1 "concurrency"
/// column).
#[test]
fn pthread_binary_rejected_as_concurrency() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.call_ext("pthread_create");
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert_eq!(result.reject_reason(), Some(RejectReason::Concurrency));
}

/// Library mode: lifting an exported function that is not the entry
/// point.
#[test]
fn lift_function_library_mode() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.ret();
    asm.label("exported_fn");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.pop(Reg::Rbp);
    asm.ret();
    asm.export("exported_fn", "do_thing");
    let bin = asm.entry("main").assemble().expect("assembles");
    let addr = *bin.symbols.iter().find(|(_, n)| *n == "do_thing").expect("symbol").0;

    let result = Lifter::new(&bin).lift_entry(addr);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    assert!(result.functions[&addr].returns);
    assert_eq!(result.functions[&addr].graph.instruction_count(), 4);
}

/// Loops terminate through joining: a simple counted loop reaches a
/// fixpoint rather than unrolling forever.
#[test]
fn loop_reaches_fixpoint() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rcx, Width::B4), Operand::Imm(10)], Width::B4));
    asm.label("loop");
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(1)], Width::B8));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rcx), Operand::Imm(1)], Width::B8));
    asm.jcc(Cond::Ne, "loop");
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");

    let mut config = LiftConfig::default();
    config.budget.wall_clock = Some(std::time::Duration::from_secs(20));
    let result = Lifter::new(&bin).with_config(config.clone()).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(f.returns);
    assert_eq!(f.graph.instruction_count(), 5);
    // States stay close to the instruction count (§2's observation).
    assert!(f.graph.state_count() <= 10, "state count: {}", f.graph.state_count());
}

/// The caller-pointer separation assumption is recorded when writing
/// through parameters (the source of the paper's implicit-assumption
/// proof obligations).
#[test]
fn caller_pointer_assumptions_recorded() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rdi, 0, Width::B8), Operand::Imm(1)], Width::B8));
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");

    let result = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
    let f = &result.functions[&bin.entry];
    assert!(
        f.assumptions.iter().any(|a| a.kind == AssumptionKind::CallerVsFrame),
        "CallerVsFrame assumption recorded: {:?}",
        f.assumptions
    );
}

/// Root discovery deduplicates aliased symbols: two names bound to one
/// address (an ifunc alias, a versioned export) must produce a single
/// root and a single lifted function, not two redundant lifts.
#[test]
fn aliased_symbols_yield_one_root() {
    use hgl_elf::{Binary, Builder, SegmentFlags};
    let elf = Builder::new()
        .entry(0x401000)
        // One function: `ret`.
        .section(".text", 0x401000, vec![0xc3], SegmentFlags::RX)
        .symbol(0x401000, "func")
        .symbol_alias(0x401000, "func@v2")
        .build();
    let bin = Binary::parse(&elf).expect("parses");
    assert_eq!(bin.symbols.len(), 1, "aliases collapse at parse time");

    let report = Lifter::new(&bin).lift_all();
    assert_eq!(report.roots, vec![0x401000], "exactly one root");
    assert_eq!(report.result.functions.len(), 1);
    assert!(report.result.functions[&0x401000].reject.is_none());
}

/// Decode-failure telemetry end to end: lifting a function whose body
/// hits unimplemented bytes rejects it as `Undecodable` *and* files the
/// rejection under its `reject_key` bucket in the session metrics, so
/// the `hgl-metrics-v1` histogram names exactly what the decoder is
/// missing.
#[test]
fn decode_rejects_land_in_the_metrics_histogram() {
    use hgl_elf::{Binary, Builder, SegmentFlags};
    // `0f ff` is an unimplemented 0f-escape; the trailing `c3` is never
    // reached.
    let elf = Builder::new()
        .entry(0x401000)
        .section(".text", 0x401000, vec![0x0f, 0xff, 0xc3], SegmentFlags::RX)
        .build();
    let bin = Binary::parse(&elf).expect("parses");

    let lifter = Lifter::new(&bin);
    let result = lifter.lift_entry(bin.entry);
    assert!(
        matches!(result.reject_reason(), Some(RejectReason::DecodeError { .. })),
        "reject: {:?}",
        result.reject_reason()
    );

    let snap = lifter.metrics_snapshot();
    assert_eq!(snap.decode_rejects.get("opcode:0fff"), Some(&1), "{:?}", snap.decode_rejects);

    // A second lift of the same entry files a second sample — the
    // histogram accumulates across the session like every other gauge.
    let _ = lifter.lift_entry(bin.entry);
    assert_eq!(lifter.metrics_snapshot().decode_rejects.get("opcode:0fff"), Some(&2));
}
