//! The Table-2 corpus: six CoreUtils-like binaries sized in proportion
//! to the paper's `hexdump`, `od`, `wc`, `tar`, `du` and `gzip`
//! (scaled ~1/10), each fully liftable and exportable to Isabelle.

use crate::gen::{GenOptions, ProgramGen};
use hgl_elf::Binary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of one CoreUtils-like binary.
#[derive(Debug, Clone)]
pub struct CoreutilsSpec {
    /// Binary name (as in Table 2).
    pub name: &'static str,
    /// Paper's instruction count (for the report).
    pub paper_instructions: usize,
    /// Paper's resolved-indirection count.
    pub paper_indirections: usize,
    /// Number of functions to generate (scaled size).
    pub functions: usize,
    /// Jump tables to guarantee (≈ scaled indirections).
    pub jump_tables: usize,
}

/// Table 2's rows.
pub fn specs() -> Vec<CoreutilsSpec> {
    vec![
        CoreutilsSpec { name: "hexdump", paper_instructions: 2515, paper_indirections: 11, functions: 9, jump_tables: 3 },
        CoreutilsSpec { name: "od", paper_instructions: 3040, paper_indirections: 11, functions: 11, jump_tables: 3 },
        CoreutilsSpec { name: "wc", paper_instructions: 445, paper_indirections: 0, functions: 3, jump_tables: 0 },
        CoreutilsSpec { name: "tar", paper_instructions: 5730, paper_indirections: 5, functions: 19, jump_tables: 2 },
        CoreutilsSpec { name: "du", paper_instructions: 883, paper_indirections: 3, functions: 3, jump_tables: 1 },
        CoreutilsSpec { name: "gzip", paper_instructions: 3465, paper_indirections: 7, functions: 12, jump_tables: 2 },
    ]
}

/// Build one CoreUtils-like binary. Deterministic per (name, seed).
pub fn build(spec: &CoreutilsSpec, seed: u64) -> Binary {
    let name_seed: u64 = spec.name.bytes().map(u64::from).sum();
    let mut rng = SmallRng::seed_from_u64(seed ^ (name_seed << 32));
    let mut pg = ProgramGen::new();
    let names: Vec<String> = (0..spec.functions).map(|i| format!("{}_{i}", spec.name)).collect();
    let mut tables_left = spec.jump_tables;
    for i in 0..spec.functions {
        let callees: Vec<String> = names[i + 1..].to_vec();
        // Force jump tables into the earliest functions until the quota
        // is met; no callbacks/wild jumps — Table 2 binaries exported to
        // Isabelle have *no unresolved* indirections.
        let force_table = tables_left > 0;
        if force_table {
            tables_left -= 1;
        }
        let opts = GenOptions {
            segments: rng.gen_range(4..9),
            callees,
            p_jump_table: if force_table { 1.0 } else { 0.0 },
            p_callback: 0.0,
            p_wild_jump: 0.0,
            p_param_write: 0.08,
            ..GenOptions::default()
        };
        pg.gen_function(&names[i], &mut rng, &opts);
    }
    pg.asm.entry(&names[0]);
    pg.asm.export(&names[0], "main");
    pg.asm.assemble().expect("coreutils binary assembles")
}

/// Build all six binaries.
pub fn build_all(seed: u64) -> Vec<(CoreutilsSpec, Binary)> {
    specs().into_iter().map(|s| {
        let b = build(&s, seed);
        (s, b)
    }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::Lifter;

    #[test]
    fn all_coreutils_binaries_lift_cleanly() {
        for (spec, bin) in build_all(1) {
            let result = Lifter::new(&bin).lift_entry(bin.entry);
            assert!(
                result.is_lifted(),
                "{}: rejected: {:?}",
                spec.name,
                result.reject_reason()
            );
            let (resolved, uj, uc) = result.indirection_counts();
            assert_eq!(uj + uc, 0, "{}: no unresolved indirections (Table 2)", spec.name);
            assert!(resolved >= spec.jump_tables, "{}: at least the quota resolved", spec.name);
            assert!(result.instruction_count() > 20, "{}: non-trivial size", spec.name);
        }
    }

    #[test]
    fn sizes_track_paper_proportions() {
        let built = build_all(1);
        let wc = built.iter().find(|(s, _)| s.name == "wc").expect("wc");
        let tar = built.iter().find(|(s, _)| s.name == "tar").expect("tar");
        // tar is the paper's largest, wc its smallest.
        assert!(tar.1.mapped_len() > wc.1.mapped_len() * 3);
    }
}
