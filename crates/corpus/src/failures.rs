//! The §5.3 failure-case binaries, reproduced as synthesized ELFs.

use hgl_asm::Asm;
use hgl_elf::Binary;
use hgl_x86::{Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn mem(base: Reg, disp: i64, size: Width) -> Operand {
    Operand::Mem(MemOperand::base_disp(base, disp, size))
}

/// The ROP-emporium `ret2win` shape (§5.3): `main` passes a pointer to
/// a 32-byte stack buffer to external `memset` with a 48-byte length.
/// The lifter cannot see the length, so it emits a proof obligation
/// that `memset` preserves `[RSP0-8, RSP0+8]` — the negation of which
/// is the exploit.
pub fn ret2win() -> Binary {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x20)], Width::B8));
    // lea rdi, [rbp-0x20] ; mov esi, 0 ; mov edx, 48 ; call memset
    asm.ins(ins(
        Mnemonic::Lea,
        vec![Operand::reg64(Reg::Rdi), mem(Reg::Rbp, -0x20, Width::B8)],
        Width::B8,
    ));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rsi, Width::B4), Operand::Imm(0)], Width::B4));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rdx, Width::B4), Operand::Imm(48)], Width::B4));
    asm.call_ext("memset");
    asm.ins(ins(Mnemonic::Leave, vec![], Width::B8));
    asm.ret();
    // The hidden win function the exploit would pivot to.
    asm.label("ret2win");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rdi, Width::B4), Operand::Imm(0)], Width::B4));
    asm.call_ext("system");
    asm.ret();
    asm.entry("main").assemble().expect("ret2win assembles")
}

/// The `/usr/bin/zip` stack-probing shape (§5.3): an internal call
/// whose callee's effect on `rax` is unknown, followed by
/// `sub rsp, rax`.
pub fn stack_probe() -> Binary {
    let mut asm = Asm::new();
    asm.label("caller");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0x1400)], Width::B4));
    asm.call("probe");
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::reg64(Reg::Rax)], Width::B8));
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rsp, 0, Width::B8), Operand::Imm(0)], Width::B8));
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x1400)], Width::B8));
    asm.ret();
    // The probing routine: touches guard pages below rsp.
    asm.label("probe");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg64(Reg::Rcx), Operand::reg64(Reg::Rax)], Width::B8));
    asm.ret();
    asm.entry("caller").assemble().expect("stack probe assembles")
}

/// The `/usr/bin/ssh` non-standard stack-pointer restoration (§5.3):
/// `rsp` is reloaded from a computed memory location before `ret`.
pub fn nonstandard_rsp() -> Binary {
    let mut asm = Asm::new();
    asm.label("f");
    // rsp := *[(rsp - (48 - ((-4 - r9) * 8))) & -400 + ...] — we keep
    // the shape simple: rsp loaded through a pointer parameter.
    asm.ins(ins(
        Mnemonic::Lea,
        vec![
            Operand::reg64(Reg::Rax),
            Operand::Mem(MemOperand::sib(Some(Reg::Rdi), Reg::R9, 8, -48, Width::B8)),
        ],
        Width::B8,
    ));
    asm.ins(ins(Mnemonic::And, vec![Operand::reg64(Reg::Rax), Operand::Imm(-400)], Width::B8));
    asm.mov(Operand::reg64(Reg::Rsp), mem(Reg::Rax, 8, Width::B8));
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(56)], Width::B8));
    asm.ret();
    asm.entry("f").assemble().expect("nonstandard rsp assembles")
}

/// A function that clobbers a callee-saved register (`rbx`) and
/// returns without restoring it — a calling-convention defect the
/// lifter rejects and the `callee-saved-clobber` lint must flag.
pub fn callee_saved_clobber() -> Binary {
    let mut asm = Asm::new();
    asm.label("clobber");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg64(Reg::Rbx), Operand::Imm(1)], Width::B8));
    asm.ret();
    asm.entry("clobber").assemble().expect("clobber assembles")
}

/// A function that writes straight over its own return-address slot
/// `[rsp0, 8]` — the defect the `ret-slot-overwrite` lint must flag.
pub fn ret_slot_overwrite() -> Binary {
    let mut asm = Asm::new();
    asm.label("smash");
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rsp, 0, Width::B8), Operand::Imm(0x41)], Width::B8));
    asm.ret();
    asm.entry("smash").assemble().expect("smash assembles")
}

/// An indirect jump through a *writable* function-pointer cell: the
/// lifter annotates it (column B), and the value-set recovery cannot
/// bound it either — the target is a register whose value came from
/// mutable memory, so `vsa-unbounded-indirect` fires.
pub fn vsa_unbounded_indirect() -> Binary {
    let mut asm = Asm::new();
    asm.label("wild");
    asm.data("jptr", vec![0u8; 8]);
    asm.movabs_label(Reg::Rax, "jptr");
    asm.mov(
        Operand::reg64(Reg::Rax),
        Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)),
    );
    asm.ins(ins(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8));
    asm.entry("wild").assemble().expect("wild assembles")
}

/// Argument value that steers [`corrupted_return`] onto its
/// corrupting path.
pub const CORRUPT_TRIGGER: i64 = 0x2bad;

/// Value the corrupting path writes through the laundered pointer.
pub const CORRUPT_PAYLOAD: i64 = 0x4141_4141;

/// A function whose return-address integrity rests on an *assumed*
/// separation: when `edi == CORRUPT_TRIGGER` it writes
/// `CORRUPT_PAYLOAD` through a pointer loaded from the writable
/// `cell` in `.data`. The loaded value is a fresh symbol, so the
/// solver can only separate the write from `[rsp0, 8]` by the
/// stack-vs-heap provenance assumption — the lifter accepts (with the
/// assumption recorded) and the `ret-slot-overwrite` lint downgrades
/// the ret to a warning. Seeding `cell` with the concrete
/// return-slot address falsifies the assumption at runtime: the
/// shadow-stack guard must catch exactly this.
pub fn corrupted_return() -> Binary {
    let mut asm = Asm::new();
    asm.label("victim");
    asm.data("cell", vec![0u8; 8]);
    asm.ins(ins(Mnemonic::Endbr64, vec![], Width::B8));
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x18)], Width::B8));
    asm.ins(ins(
        Mnemonic::Cmp,
        vec![Operand::reg(Reg::Rdi, Width::B4), Operand::Imm(CORRUPT_TRIGGER)],
        Width::B4,
    ));
    asm.jcc(hgl_x86::Cond::Ne, "benign");
    asm.movabs_label(Reg::Rax, "cell");
    asm.mov(Operand::reg64(Reg::Rax), mem(Reg::Rax, 0, Width::B8));
    asm.ins(ins(
        Mnemonic::Mov,
        vec![mem(Reg::Rax, 0, Width::B8), Operand::Imm(CORRUPT_PAYLOAD)],
        Width::B8,
    ));
    asm.label("benign");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(7)], Width::B4));
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x18)], Width::B8));
    asm.pop(Reg::Rbp);
    asm.ret();
    asm.entry("victim").assemble().expect("corrupted_return assembles")
}

/// The §5.1 induced buffer overflow: no Hoare Graph may be produced.
pub fn induced_overflow() -> Binary {
    let mut asm = Asm::new();
    asm.label("vuln");
    asm.ins(ins(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)],
        Width::B4,
    ));
    asm.ins(ins(
        Mnemonic::Mov,
        vec![
            Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::Rax, 1, -0x40, Width::B1)),
            Operand::Imm(0x41),
        ],
        Width::B1,
    ));
    asm.ret();
    asm.entry("vuln").assemble().expect("overflow assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::{Lifter, RejectReason};
    use hgl_core::VerificationError;

    #[test]
    fn ret2win_lifts_with_obligation() {
        let bin = ret2win();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
        let f = &result.functions[&bin.entry];
        let ob = f.obligations.iter().find(|o| o.callee == "memset").expect("obligation");
        let s = ob.to_string();
        assert!(s.contains("memset(RDI := (rsp0 + -0x28))"), "{s}");
        assert!(s.contains("MUST PRESERVE [(rsp0 + -0x8), 16]"), "{s}");
    }

    #[test]
    fn corrupted_return_lifts_on_assumed_separation() {
        let bin = corrupted_return();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
        let f = &result.functions[&bin.entry];
        // The corrupting store is only separated from the return slot
        // by a provenance assumption — that's the whole point of the
        // fixture.
        assert!(
            !f.assumptions.is_empty(),
            "expected an assumed separation backing the laundered write"
        );
    }

    #[test]
    fn stack_probe_rejected() {
        let bin = stack_probe();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
        assert!(matches!(
            result.reject_reason(),
            Some(RejectReason::Verification(
                VerificationError::ReturnAddressClobbered { .. }
                    | VerificationError::NonStandardStackRestore { .. }
            ))
        ));
    }

    #[test]
    fn nonstandard_rsp_rejected() {
        let bin = nonstandard_rsp();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
        match result.reject_reason() {
            Some(RejectReason::Verification(VerificationError::NonStandardStackRestore {
                rsp, ..
            })) => {
                // The reported symbolic rsp involves the loaded value.
                assert!(!rsp.is_bottom());
            }
            other => panic!("expected NonStandardStackRestore, got {other:?}"),
        }
    }

    #[test]
    fn callee_saved_clobber_rejected() {
        let bin = callee_saved_clobber();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
        assert!(matches!(
            result.reject_reason(),
            Some(RejectReason::Verification(VerificationError::CallingConventionViolation {
                ..
            }))
        ));
    }

    #[test]
    fn ret_slot_overwrite_rejected() {
        let bin = ret_slot_overwrite();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
        assert!(matches!(
            result.reject_reason(),
            Some(RejectReason::Verification(VerificationError::ReturnAddressClobbered { .. }))
        ));
    }

    #[test]
    fn induced_overflow_rejected() {
        let bin = induced_overflow();
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
    }
}
