//! Seeded generation of C-compiler-shaped x86-64 functions.

use hgl_asm::Asm;
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use rand::rngs::SmallRng;
use rand::Rng;

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn reg32(r: Reg) -> Operand {
    Operand::reg(r, Width::B4)
}

/// Volatile scratch registers the generator computes in.
const SCRATCH: [Reg; 4] = [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::R8];

/// The mnemonic stems [`ProgramGen::gen_function`] can emit, collapsed
/// over condition codes (see [`mnemonic_stem`]). This doubles as the
/// checked-in coverage floor of the trace oracle: a campaign that never
/// executes one of these means either the generator rotted (it stopped
/// emitting the shape) or the campaign profiles stopped reaching it —
/// both are regressions the oracle must flag.
///
/// `movabs` requires a profile with callbacks or wild jumps enabled;
/// `pop` requires a frame or saved registers (probability ≈ 1 over a
/// whole campaign).
pub fn emittable_mnemonics() -> &'static [&'static str] {
    &[
        "add", "call", "cmp", "endbr64", "imul", "jcc", "jmp", "lea", "mov", "movabs", "pop",
        "push", "ret", "shl", "sub", "xor",
    ]
}

/// Collapse a mnemonic to the stem used in coverage accounting:
/// condition-code families count as one (`jne`/`je`/… → `jcc`).
pub fn mnemonic_stem(m: Mnemonic) -> String {
    match m {
        Mnemonic::Jcc(_) => "jcc".to_string(),
        Mnemonic::Setcc(_) => "setcc".to_string(),
        Mnemonic::Cmovcc(_) => "cmovcc".to_string(),
        other => other.name(),
    }
}

/// Options controlling one generated function.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Approximate number of body segments.
    pub segments: usize,
    /// Names of sibling functions this one may call (acyclicity is the
    /// caller's responsibility).
    pub callees: Vec<String>,
    /// External functions it may call.
    pub externals: Vec<String>,
    /// Probability of a bounded jump table per segment.
    pub p_jump_table: f64,
    /// Probability of a *masked* jump table per segment: the index is
    /// bounded by `and eax, n-1` instead of a `cmp`/`ja` guard, so the
    /// lifter's inline bound mining cannot resolve it (column B) and
    /// only the analyze→re-lift value-set refinement can.
    pub p_masked_table: f64,
    /// Probability of an indirect callback call per segment (column C).
    pub p_callback: f64,
    /// Probability of an unresolved indirect jump per function
    /// (column B).
    pub p_wild_jump: f64,
    /// Probability of writing through a caller pointer per segment.
    pub p_param_write: f64,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            segments: 8,
            callees: Vec::new(),
            externals: vec!["puts".into(), "malloc".into(), "free".into(), "memcpy".into()],
            p_jump_table: 0.08,
            p_masked_table: 0.0,
            p_callback: 0.05,
            p_wild_jump: 0.02,
            p_param_write: 0.1,
        }
    }
}

/// Statistics of one generated function.
#[derive(Debug, Clone, Default)]
pub struct FunctionSpec {
    /// The function's label.
    pub name: String,
    /// Jump tables emitted (each is a resolvable indirection).
    pub jump_tables: usize,
    /// Masked jump tables emitted (unresolvable inline; resolvable by
    /// value-set refinement).
    pub masked_tables: usize,
    /// Callback call sites emitted (unresolvable indirect calls).
    pub callbacks: usize,
    /// Wild indirect jumps emitted (unresolvable indirect jumps).
    pub wild_jumps: usize,
    /// Internal call sites.
    pub calls: usize,
    /// External call sites.
    pub ext_calls: usize,
}

/// A program generator: owns the assembler, unique-label counters and
/// shared data pools.
pub struct ProgramGen {
    /// The assembler being filled.
    pub asm: Asm,
    label_counter: usize,
    data_counter: usize,
    /// Collected per-function statistics.
    pub specs: Vec<FunctionSpec>,
    /// Half-open text-item index ranges of every emitted body segment,
    /// across all functions. Prologues/epilogues are not spanned, so a
    /// shrinker that drops whole spans keeps functions well-formed.
    pub segment_spans: Vec<(usize, usize)>,
}

impl Default for ProgramGen {
    fn default() -> Self {
        ProgramGen::new()
    }
}

impl ProgramGen {
    /// A fresh generator.
    pub fn new() -> ProgramGen {
        ProgramGen {
            asm: Asm::new(),
            label_counter: 0,
            data_counter: 0,
            specs: Vec::new(),
            segment_spans: Vec::new(),
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}_{}", self.label_counter)
    }

    /// Emit one function shaped like compiled C code.
    pub fn gen_function(&mut self, name: &str, rng: &mut SmallRng, opts: &GenOptions) -> FunctionSpec {
        let mut spec = FunctionSpec { name: name.to_string(), ..FunctionSpec::default() };
        let asm = &mut self.asm;
        asm.label(name);
        asm.ins(ins(Mnemonic::Endbr64, vec![], Width::B8));

        // Prologue.
        let use_frame = rng.gen_bool(0.8);
        let saved: Vec<Reg> = [Reg::Rbx, Reg::R12, Reg::R13]
            .into_iter()
            .filter(|_| rng.gen_bool(0.3))
            .collect();
        if use_frame {
            asm.push(Reg::Rbp);
            asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
        }
        for r in &saved {
            asm.push(*r);
        }
        let frame = 8 * rng.gen_range(2..8i64);
        asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(frame)], Width::B8));
        // Local slots live at [rsp + k] — always in-frame.
        let slots: Vec<i64> = (0..frame / 8).map(|i| 8 * i).collect();

        // Body.
        for _ in 0..opts.segments {
            let start = self.asm.text_len();
            self.gen_segment(rng, opts, &slots, &saved, &mut spec);
            self.segment_spans.push((start, self.asm.text_len()));
        }

        // Epilogue.
        let asm = &mut self.asm;
        asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(frame)], Width::B8));
        for r in saved.iter().rev() {
            asm.pop(*r);
        }
        if use_frame {
            asm.pop(Reg::Rbp);
        }
        asm.ret();
        self.specs.push(spec.clone());
        spec
    }

    fn gen_segment(
        &mut self,
        rng: &mut SmallRng,
        opts: &GenOptions,
        slots: &[i64],
        saved: &[Reg],
        spec: &mut FunctionSpec,
    ) {
        // Weighted choice of segment kind.
        let roll: f64 = rng.gen();
        if roll < opts.p_jump_table {
            self.gen_jump_table(rng, spec);
            return;
        }
        if roll < opts.p_jump_table + opts.p_masked_table {
            self.gen_masked_jump_table(rng, spec);
            return;
        }
        if roll < opts.p_jump_table + opts.p_masked_table + opts.p_callback {
            self.gen_callback(rng, spec);
            return;
        }
        let base = opts.p_jump_table + opts.p_masked_table + opts.p_callback;
        if roll < base + opts.p_param_write {
            self.gen_param_write(rng);
            return;
        }
        if roll < base + opts.p_param_write + opts.p_wild_jump {
            // A reachable-but-unlikely error path ending in an
            // unresolvable indirect jump (column B).
            let skip = self.fresh_label("skip");
            self.asm.ins(ins(
                Mnemonic::Cmp,
                vec![reg32(Reg::Rax), Operand::Imm(0x7fff_0000 + rng.gen_range(0..0x100))],
                Width::B4,
            ));
            self.asm.jcc(Cond::Ne, &skip);
            self.gen_wild_jump(spec);
            self.asm.label(&skip);
            return;
        }
        match rng.gen_range(0..6u32) {
            0 => self.gen_arith(rng, saved),
            1 => self.gen_locals(rng, slots),
            2 => self.gen_diamond(rng),
            3 => self.gen_loop(rng),
            4 => {
                if let Some(callee) = pick(rng, &opts.callees) {
                    self.asm.call(&callee);
                    spec.calls += 1;
                } else {
                    self.gen_arith(rng, saved);
                }
            }
            _ => {
                if let Some(ext) = pick(rng, &opts.externals) {
                    // Conventional argument setup.
                    self.asm.ins(ins(
                        Mnemonic::Mov,
                        vec![reg32(Reg::Rdi), Operand::Imm(rng.gen_range(0..64))],
                        Width::B4,
                    ));
                    self.asm.call_ext(&ext);
                    spec.ext_calls += 1;
                } else {
                    self.gen_locals(rng, slots);
                }
            }
        }
    }

    fn gen_arith(&mut self, rng: &mut SmallRng, saved: &[Reg]) {
        let asm = &mut self.asm;
        let mut pool: Vec<Reg> = SCRATCH.to_vec();
        pool.extend(saved.iter().copied());
        for _ in 0..rng.gen_range(1..5u32) {
            let dst = pool[rng.gen_range(0..pool.len())];
            let kind = rng.gen_range(0..6u32);
            match kind {
                0 => {
                    asm.ins(ins(
                        Mnemonic::Mov,
                        vec![reg32(dst), Operand::Imm(rng.gen_range(0..0x1000))],
                        Width::B4,
                    ));
                }
                1 => {
                    asm.ins(ins(
                        Mnemonic::Add,
                        vec![Operand::reg64(dst), Operand::Imm(rng.gen_range(1..0x100))],
                        Width::B8,
                    ));
                }
                2 => {
                    let src = SCRATCH[rng.gen_range(0..SCRATCH.len())];
                    asm.ins(ins(
                        Mnemonic::Xor,
                        vec![Operand::reg64(dst), Operand::reg64(src)],
                        Width::B8,
                    ));
                }
                3 => {
                    asm.ins(ins(
                        Mnemonic::Imul,
                        vec![Operand::reg64(dst), Operand::reg64(dst), Operand::Imm(3)],
                        Width::B8,
                    ));
                }
                4 => {
                    asm.ins(ins(
                        Mnemonic::Shl,
                        vec![Operand::reg64(dst), Operand::Imm(rng.gen_range(1..8))],
                        Width::B8,
                    ));
                }
                _ => {
                    let src = SCRATCH[rng.gen_range(0..SCRATCH.len())];
                    asm.ins(ins(
                        Mnemonic::Lea,
                        vec![
                            Operand::reg64(dst),
                            Operand::Mem(MemOperand::sib(
                                Some(src),
                                SCRATCH[rng.gen_range(0..SCRATCH.len())],
                                1 << rng.gen_range(0..3u32),
                                rng.gen_range(-64..64),
                                Width::B8,
                            )),
                        ],
                        Width::B8,
                    ));
                }
            }
        }
    }

    fn gen_locals(&mut self, rng: &mut SmallRng, slots: &[i64]) {
        if slots.is_empty() {
            return;
        }
        let asm = &mut self.asm;
        let slot = slots[rng.gen_range(0..slots.len())];
        let r = SCRATCH[rng.gen_range(0..SCRATCH.len())];
        asm.ins(ins(
            Mnemonic::Mov,
            vec![Operand::Mem(MemOperand::base_disp(Reg::Rsp, slot, Width::B8)), Operand::reg64(r)],
            Width::B8,
        ));
        let r2 = SCRATCH[rng.gen_range(0..SCRATCH.len())];
        asm.ins(ins(
            Mnemonic::Mov,
            vec![Operand::reg64(r2), Operand::Mem(MemOperand::base_disp(Reg::Rsp, slot, Width::B8))],
            Width::B8,
        ));
    }

    fn gen_diamond(&mut self, rng: &mut SmallRng) {
        let lbl_then = self.fresh_label("then");
        let lbl_join = self.fresh_label("join");
        let asm = &mut self.asm;
        let r = SCRATCH[rng.gen_range(0..SCRATCH.len())];
        asm.ins(ins(Mnemonic::Cmp, vec![reg32(r), Operand::Imm(rng.gen_range(0..100))], Width::B4));
        let cond = [Cond::E, Cond::Ne, Cond::B, Cond::A, Cond::L, Cond::Ge][rng.gen_range(0..6usize)];
        asm.jcc(cond, &lbl_then);
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(1)], Width::B4));
        asm.jmp(&lbl_join);
        asm.label(&lbl_then);
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(2)], Width::B4));
        asm.label(&lbl_join);
    }

    fn gen_loop(&mut self, rng: &mut SmallRng) {
        let lbl = self.fresh_label("loop");
        let asm = &mut self.asm;
        asm.ins(ins(
            Mnemonic::Mov,
            vec![reg32(Reg::Rcx), Operand::Imm(rng.gen_range(1..32))],
            Width::B4,
        ));
        asm.label(&lbl);
        asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(1)], Width::B8));
        asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rcx), Operand::Imm(1)], Width::B8));
        asm.jcc(Cond::Ne, &lbl);
    }

    fn gen_jump_table(&mut self, rng: &mut SmallRng, spec: &mut FunctionSpec) {
        let n = rng.gen_range(2..6usize);
        let table = self.fresh_label("table");
        let join = self.fresh_label("tjoin");
        let default = self.fresh_label("tdefault");
        let cases: Vec<String> = (0..n).map(|_| self.fresh_label("case")).collect();
        let asm = &mut self.asm;
        // mov eax, edi ; cmp eax, n-1 ; ja default ; jmp [table + rax*8]
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
        asm.ins(ins(Mnemonic::Cmp, vec![reg32(Reg::Rax), Operand::Imm(n as i64 - 1)], Width::B4));
        asm.jcc(Cond::A, &default);
        let jmp = ins(
            Mnemonic::Jmp,
            vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
            Width::B8,
        );
        asm.ins_mem_label(jmp, 0, &table);
        for (i, c) in cases.iter().enumerate() {
            asm.label(c);
            asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(10 + i as i64)], Width::B4));
            asm.jmp(&join);
        }
        asm.label(&default);
        asm.ins(ins(Mnemonic::Xor, vec![reg32(Reg::Rax), reg32(Reg::Rax)], Width::B4));
        asm.label(&join);
        let case_refs: Vec<&str> = cases.iter().map(String::as_str).collect();
        asm.jump_table(&table, &case_refs);
        spec.jump_tables += 1;
    }

    fn gen_masked_jump_table(&mut self, rng: &mut SmallRng, spec: &mut FunctionSpec) {
        // Power-of-two fan-out bounded by masking instead of a cmp/ja
        // guard: every masked value is a valid index, so there is no
        // default case and no comparison for the lifter to mine a bound
        // from. The jump stays unresolved (column B) until the
        // value-set refinement bounds `rax` to [0, n-1].
        let n = [2usize, 4, 8][rng.gen_range(0..3usize)];
        let table = self.fresh_label("mtable");
        let join = self.fresh_label("mtjoin");
        let cases: Vec<String> = (0..n).map(|_| self.fresh_label("mcase")).collect();
        let asm = &mut self.asm;
        // mov eax, edi ; and eax, n-1 ; jmp [table + rax*8]
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
        asm.ins(ins(Mnemonic::And, vec![reg32(Reg::Rax), Operand::Imm(n as i64 - 1)], Width::B4));
        let jmp = ins(
            Mnemonic::Jmp,
            vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
            Width::B8,
        );
        asm.ins_mem_label(jmp, 0, &table);
        for (i, c) in cases.iter().enumerate() {
            asm.label(c);
            asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), Operand::Imm(20 + i as i64)], Width::B4));
            asm.jmp(&join);
        }
        asm.label(&join);
        let case_refs: Vec<&str> = cases.iter().map(String::as_str).collect();
        asm.jump_table(&table, &case_refs);
        spec.masked_tables += 1;
    }

    fn gen_callback(&mut self, rng: &mut SmallRng, spec: &mut FunctionSpec) {
        self.data_counter += 1;
        let ptr = format!("fnptr_{}", self.data_counter);
        let asm = &mut self.asm;
        // The function pointer lives in writable data (set elsewhere by
        // some registration function, as in the paper's callbacks): its
        // value is unknown to the context-free analysis.
        asm.data(&ptr, vec![0u8; 8]);
        asm.movabs_label(Reg::Rax, &ptr);
        asm.mov(Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)));
        asm.ins(ins(Mnemonic::Call, vec![Operand::reg64(Reg::Rax)], Width::B8));
        let _ = rng;
        spec.callbacks += 1;
    }

    fn gen_param_write(&mut self, rng: &mut SmallRng) {
        let asm = &mut self.asm;
        let off = 8 * rng.gen_range(0..4i64);
        asm.ins(ins(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::base_disp(Reg::Rdi, off, Width::B8)),
                Operand::Imm(rng.gen_range(0..0x100)),
            ],
            Width::B8,
        ));
    }

    /// Emit an unresolvable indirect jump (column B): a tail jump
    /// through a writable function-pointer global.
    pub fn gen_wild_jump(&mut self, spec: &mut FunctionSpec) {
        self.data_counter += 1;
        let ptr = format!("jptr_{}", self.data_counter);
        let asm = &mut self.asm;
        asm.data(&ptr, vec![0u8; 8]);
        asm.movabs_label(Reg::Rax, &ptr);
        asm.mov(Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)));
        asm.ins(ins(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8));
        spec.wild_jumps += 1;
    }

    /// Emit a function whose return-address integrity is unprovable:
    /// an unbounded indexed write into the frame (the §5.1 induced
    /// overflow).
    pub fn gen_overflow_function(&mut self, name: &str) {
        let asm = &mut self.asm;
        asm.label(name);
        asm.ins(ins(Mnemonic::Mov, vec![reg32(Reg::Rax), reg32(Reg::Rdi)], Width::B4));
        asm.ins(ins(
            Mnemonic::Mov,
            vec![
                Operand::Mem(MemOperand::sib(Some(Reg::Rsp), Reg::Rax, 1, -0x40, Width::B1)),
                Operand::Imm(0x41),
            ],
            Width::B1,
        ));
        asm.ret();
    }

    /// Emit a function designed to explode the symbolic state space
    /// (the paper's timeout category): a chain of diamonds each storing
    /// one of two *code pointers* into a distinct frame slot. The §4
    /// join refinement keeps states with differing immediate code
    /// pointers apart, so the vertex count doubles per diamond —
    /// exactly the "large number of states that could not be joined"
    /// the paper blames for its timeouts (§5.1).
    pub fn gen_explosive_function(&mut self, name: &str, depth: usize) {
        let frame = 8 * depth as i64 + 8;
        {
            let asm = &mut self.asm;
            asm.label(name);
            asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(frame)], Width::B8));
        }
        let target_a = format!("{name}_a");
        let target_b = format!("{name}_b");
        for i in 0..depth {
            let l_else = self.fresh_label("xe");
            let l_join = self.fresh_label("xj");
            let asm = &mut self.asm;
            // `test edi, 1<<i` keeps every diamond independent (no
            // clause is derivable, so neither branch can be pruned).
            asm.ins(ins(
                Mnemonic::Test,
                vec![reg32(Reg::Rdi), Operand::Imm(1 << i)],
                Width::B4,
            ));
            asm.jcc(Cond::E, &l_else);
            let mv = ins(Mnemonic::Movabs, vec![Operand::reg64(Reg::Rax), Operand::Imm(0)], Width::B8);
            asm.ins_imm_label(mv, 1, &target_a);
            asm.ins(ins(
                Mnemonic::Mov,
                vec![Operand::Mem(MemOperand::base_disp(Reg::Rsp, 8 * i as i64, Width::B8)), Operand::reg64(Reg::Rax)],
                Width::B8,
            ));
            asm.jmp(&l_join);
            asm.label(&l_else);
            let mv = ins(Mnemonic::Movabs, vec![Operand::reg64(Reg::Rax), Operand::Imm(0)], Width::B8);
            asm.ins_imm_label(mv, 1, &target_b);
            asm.ins(ins(
                Mnemonic::Mov,
                vec![Operand::Mem(MemOperand::base_disp(Reg::Rsp, 8 * i as i64, Width::B8)), Operand::reg64(Reg::Rax)],
                Width::B8,
            ));
            asm.label(&l_join);
        }
        let asm = &mut self.asm;
        asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rsp), Operand::Imm(frame)], Width::B8));
        asm.ret();
        asm.label(&target_a);
        asm.ret();
        asm.label(&target_b);
        asm.ret();
    }
}

fn pick(rng: &mut SmallRng, pool: &[String]) -> Option<String> {
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.gen_range(0..pool.len())].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::Lifter;
    use rand::SeedableRng;

    #[test]
    fn generated_functions_assemble_and_lift() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut pg = ProgramGen::new();
            let opts = GenOptions { segments: 6, ..GenOptions::default() };
            pg.gen_function("main", &mut rng, &opts);
            pg.asm.entry("main");
            let bin = pg.asm.assemble().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let result = Lifter::new(&bin).lift_entry(bin.entry);
            assert!(
                result.is_lifted(),
                "seed {seed}: rejected: {:?}",
                result.reject_reason()
            );
            assert!(result.functions[&bin.entry].returns, "seed {seed}: must return");
        }
    }

    #[test]
    fn overflow_function_rejected() {
        let mut pg = ProgramGen::new();
        pg.gen_overflow_function("bad");
        pg.asm.entry("bad");
        let bin = pg.asm.assemble().expect("assembles");
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(!result.is_lifted());
    }

    #[test]
    fn callback_produces_annotation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pg = ProgramGen::new();
        let opts = GenOptions {
            segments: 3,
            p_jump_table: 0.0,
            p_callback: 1.0,
            p_param_write: 0.0,
            ..GenOptions::default()
        };
        let spec = pg.gen_function("cb", &mut rng, &opts);
        assert!(spec.callbacks > 0);
        pg.asm.entry("cb");
        let bin = pg.asm.assemble().expect("assembles");
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
        let f = &result.functions[&bin.entry];
        let (_, _, c) = result.indirection_counts();
        assert!(c >= 1, "unresolved calls counted: {:?}", f.annotations);
    }

    #[test]
    fn jump_tables_resolve() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut pg = ProgramGen::new();
        let opts = GenOptions {
            segments: 2,
            p_jump_table: 1.0,
            p_callback: 0.0,
            p_param_write: 0.0,
            ..GenOptions::default()
        };
        let spec = pg.gen_function("jt", &mut rng, &opts);
        assert!(spec.jump_tables > 0);
        pg.asm.entry("jt");
        let bin = pg.asm.assemble().expect("assembles");
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
        let (a, b, _) = result.indirection_counts();
        assert_eq!(a, spec.jump_tables, "all tables resolved");
        assert_eq!(b, 0);
    }

    #[test]
    fn masked_tables_stay_unresolved_inline() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut pg = ProgramGen::new();
        // One segment: exploration stops at the first unresolved jump,
        // so a second table would never be reached (or counted).
        let opts = GenOptions {
            segments: 1,
            p_jump_table: 0.0,
            p_masked_table: 1.0,
            p_callback: 0.0,
            p_param_write: 0.0,
            p_wild_jump: 0.0,
            ..GenOptions::default()
        };
        let spec = pg.gen_function("mt", &mut rng, &opts);
        assert!(spec.masked_tables > 0);
        pg.asm.entry("mt");
        let bin = pg.asm.assemble().expect("assembles");
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        assert!(result.is_lifted(), "reject: {:?}", result.reject_reason());
        let (a, b, _) = result.indirection_counts();
        assert_eq!(a, 0, "no cmp guard for the lifter to mine a bound from");
        // One annotation per alias case-split of the table read, so
        // the count is >= the table count, not equal.
        assert!(b >= spec.masked_tables, "masked tables are column B inline");
    }
}
