//! Fault injection for the never-crash pipeline guarantee.
//!
//! The lifter's contract is *overapproximate or reject*: on any input —
//! including corrupted or adversarial binaries — it must terminate
//! within its budget and either produce a sound (possibly partial)
//! Hoare Graph or a structured [`RejectReason`]. This module corrupts
//! pristine corpus ELF images in the ways binaries actually rot
//! (truncation, flipped header fields, byte flips in `.text`, skewed
//! tables) and drives the full `parse → lift` pipeline over them,
//! tallying how every case terminated. `tests/fault_injection.rs`
//! asserts the campaign invariants: zero panics, zero hangs.

use hgl_core::lift::{LiftConfig, LiftResult, RejectReason};
use hgl_core::Lifter;
use hgl_elf::{Binary, Builder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Serialize a loaded [`Binary`] back into an ELF64 image, so that
/// byte-level faults can be injected ahead of the parser.
pub fn elf_image(bin: &Binary) -> Vec<u8> {
    let mut b = Builder::new().entry(bin.entry);
    for (i, seg) in bin.segments.iter().enumerate() {
        let name = if seg.flags.x {
            format!(".text{i}")
        } else if seg.flags.w {
            format!(".data{i}")
        } else {
            format!(".rodata{i}")
        };
        b = b.section(&name, seg.vaddr, seg.bytes.clone(), seg.flags);
    }
    for (addr, name) in &bin.externals {
        b = b.external(*addr, name);
    }
    for (addr, name) in &bin.symbols {
        b = b.symbol(*addr, name);
    }
    b.build()
}

fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn u16le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

/// File offset of program header `i`, if the image is large enough to
/// hold it. Reads the pristine header layout; callers corrupt *after*
/// locating their target.
fn phdr_off(image: &[u8], i: usize) -> Option<usize> {
    if image.len() < 64 {
        return None;
    }
    let phoff = u64le(&image[32..]) as usize;
    let phentsize = u16le(&image[54..]) as usize;
    let phnum = u16le(&image[56..]) as usize;
    if i >= phnum {
        return None;
    }
    let off = phoff.checked_add(i.checked_mul(phentsize)?)?;
    (off.checked_add(56)? <= image.len()).then_some(off)
}

/// File range (`offset`, `len`) of the first segment matching `want_x`
/// (executable or not), from the program header table.
fn segment_file_range(image: &[u8], want_x: bool) -> Option<(usize, usize)> {
    for i in 0..u16le(image.get(56..58)?) as usize {
        let ph = phdr_off(image, i)?;
        let p_type = u32::from_le_bytes([image[ph], image[ph + 1], image[ph + 2], image[ph + 3]]);
        let p_flags = u32::from_le_bytes([image[ph + 4], image[ph + 5], image[ph + 6], image[ph + 7]]);
        if p_type != 1 {
            continue; // not PT_LOAD
        }
        if (p_flags & 1 != 0) != want_x {
            continue; // PF_X
        }
        let off = u64le(&image[ph + 8..]) as usize;
        let filesz = u64le(&image[ph + 32..]) as usize;
        if filesz > 0 && off.checked_add(filesz).is_some_and(|end| end <= image.len()) {
            return Some((off, filesz));
        }
    }
    None
}

/// One byte-level fault to inject into a pristine ELF image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the file to its first `keep` bytes.
    TruncateTail {
        /// Bytes to keep.
        keep: usize,
    },
    /// Point `e_shoff` just short of the end of the file, so the
    /// section header table runs off the end.
    SkewSectionTable,
    /// Overwrite one byte of the ELF header (`e_ident` through
    /// `e_shstrndx`).
    HeaderByte {
        /// Byte offset within the first 64 bytes.
        offset: usize,
        /// Replacement value.
        value: u8,
    },
    /// Blow up the first `PT_LOAD` program header's `p_filesz`.
    OversizedSegment,
    /// XOR one byte inside the executable segment — instruction soup.
    TextByteFlip {
        /// Offset (reduced modulo the segment length).
        offset: usize,
        /// XOR mask (0 is promoted to 1 so the flip is never a no-op).
        xor: u8,
    },
    /// XOR one byte inside a non-executable segment — corrupts
    /// read-only data such as jump tables, skewing entries out of
    /// range.
    DataByteFlip {
        /// Offset (reduced modulo the segment length).
        offset: usize,
        /// XOR mask (0 is promoted to 1 so the flip is never a no-op).
        xor: u8,
    },
}

impl Fault {
    /// Draw a random fault for an image of `len` bytes.
    pub fn random(rng: &mut SmallRng, len: usize) -> Fault {
        match rng.gen_range(0u32..6) {
            0 => Fault::TruncateTail { keep: rng.gen_range(0..len.max(1)) },
            1 => Fault::SkewSectionTable,
            2 => Fault::HeaderByte { offset: rng.gen_range(0..64usize), value: rng.gen() },
            3 => Fault::OversizedSegment,
            4 => Fault::TextByteFlip { offset: rng.gen_range(0..len.max(1)), xor: rng.gen() },
            _ => Fault::DataByteFlip { offset: rng.gen_range(0..len.max(1)), xor: rng.gen() },
        }
    }

    /// Apply the fault to `image`. Faults whose target is missing from
    /// an already-damaged image (no executable segment, say) degrade to
    /// a no-op rather than failing: the campaign measures the
    /// pipeline, not the injector.
    pub fn apply(self, image: &mut Vec<u8>) {
        match self {
            Fault::TruncateTail { keep } => {
                let keep = keep.min(image.len());
                image.truncate(keep);
            }
            Fault::SkewSectionTable => {
                if image.len() >= 64 {
                    let bogus = (image.len() as u64).saturating_sub(8);
                    image[40..48].copy_from_slice(&bogus.to_le_bytes());
                }
            }
            Fault::HeaderByte { offset, value } => {
                if let Some(b) = image.get_mut(offset.min(63)) {
                    *b = value;
                }
            }
            Fault::OversizedSegment => {
                if let Some(ph) = phdr_off(image, 0) {
                    image[ph + 32..ph + 40].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
                }
            }
            Fault::TextByteFlip { offset, xor } => {
                if let Some((off, len)) = segment_file_range(image, true) {
                    image[off + offset % len] ^= xor.max(1);
                }
            }
            Fault::DataByteFlip { offset, xor } => {
                if let Some((off, len)) = segment_file_range(image, false) {
                    image[off + offset % len] ^= xor.max(1);
                }
            }
        }
    }
}

/// Tally of how a fault-injection campaign's cases terminated.
#[derive(Debug, Default, Clone, Copy)]
pub struct CampaignStats {
    /// Cases run.
    pub cases: usize,
    /// The corruption was benign; the unit still lifted soundly.
    pub lifted: usize,
    /// Sound structured reject (malformed image, undecodable bytes,
    /// failed verification, …).
    pub sound_reject: usize,
    /// Resource reject: the budget tripped, a sound partial graph (or
    /// nothing) was returned.
    pub resource_reject: usize,
    /// A panic was isolated into [`RejectReason::Internal`]. The
    /// campaign still terminated — but this counts as a robustness bug.
    pub internal: usize,
    /// Slowest single case.
    pub max_case_time: Duration,
}

impl CampaignStats {
    fn tally(&mut self, result: &LiftResult, elapsed: Duration) {
        self.cases += 1;
        self.max_case_time = self.max_case_time.max(elapsed);
        match result.reject_reason() {
            None => self.lifted += 1,
            Some(RejectReason::Internal { .. }) => self.internal += 1,
            Some(r) if r.is_resource() => self.resource_reject += 1,
            Some(_) => self.sound_reject += 1,
        }
    }
}

/// Run `cases` faulted lifts of `pristine`, drawing faults from `seed`.
///
/// Every case goes through the full byte-level pipeline
/// ([`Lifter::from_bytes`]): parse the corrupted image, then lift under
/// `config`'s budget. Panics anywhere in that pipeline are isolated
/// into [`RejectReason::Internal`] and show up in
/// [`CampaignStats::internal`] — they never propagate to the caller.
pub fn run_campaign(pristine: &[u8], config: &LiftConfig, seed: u64, cases: usize) -> CampaignStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stats = CampaignStats::default();
    for _ in 0..cases {
        let fault = Fault::random(&mut rng, pristine.len());
        let mut image = pristine.to_vec();
        fault.apply(&mut image);
        let start = Instant::now();
        let result = Lifter::from_bytes(&image, config);
        stats.tally(&result, start.elapsed());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ProgramGen;

    fn pristine() -> Vec<u8> {
        let mut pg = ProgramGen::new();
        let mut rng = SmallRng::seed_from_u64(7);
        pg.gen_function("main", &mut rng, &crate::gen::GenOptions::default());
        pg.asm.entry("main");
        let bin = pg.asm.assemble().expect("assembles");
        elf_image(&bin)
    }

    #[test]
    fn pristine_image_roundtrips() {
        let image = pristine();
        let bin = Binary::parse(&image).expect("parses");
        let result = Lifter::from_bytes(&image, &LiftConfig::default());
        assert!(result.reject_reason().is_none(), "pristine image lifts: {:?}", result.reject_reason());
        assert!(bin.segments.iter().any(|s| s.flags.x));
    }

    #[test]
    fn each_fault_kind_is_survivable() {
        let image = pristine();
        let faults = [
            Fault::TruncateTail { keep: 3 },
            Fault::TruncateTail { keep: image.len() / 2 },
            Fault::SkewSectionTable,
            Fault::HeaderByte { offset: 4, value: 1 },
            Fault::OversizedSegment,
            Fault::TextByteFlip { offset: 5, xor: 0x81 },
            Fault::DataByteFlip { offset: 5, xor: 0x81 },
        ];
        for fault in faults {
            let mut corrupt = image.clone();
            fault.apply(&mut corrupt);
            // Must terminate and classify; panics would fail the test.
            let _ = Lifter::from_bytes(&corrupt, &LiftConfig::default());
        }
    }

    #[test]
    fn small_campaign_has_no_internal_errors() {
        let image = pristine();
        let stats = run_campaign(&image, &LiftConfig::default(), 2022, 32);
        assert_eq!(stats.cases, 32);
        assert_eq!(stats.internal, 0, "panics leaked through the pipeline: {stats:?}");
    }
}
