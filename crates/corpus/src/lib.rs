//! # hgl-corpus: synthetic evaluation corpora
//!
//! The paper evaluates on the Xen 4.12 hypervisor (63 binaries, 2151
//! library functions, ~400 K instructions), several CoreUtils binaries
//! and hand-picked failure cases. Those binaries are not available
//! offline, so this crate *synthesizes* corpora that reproduce the
//! phenomena the evaluation measures (see `DESIGN.md`,
//! *Substitutions*):
//!
//! - [`gen`]: a seeded generator of realistic C-compiler-shaped
//!   functions — stack frames, saved registers, diamonds, loops,
//!   bounded jump tables, internal/external calls, callbacks through
//!   function-pointer globals;
//! - [`xen`]: the Table-1 study — directories of binaries and library
//!   functions with the paper's mix of liftable units, unprovable
//!   return addresses, concurrency rejections and timeouts;
//! - [`coreutils`]: six CoreUtils-like binaries (Table 2) sized
//!   proportionally to the paper's `hexdump`, `od`, `wc`, `tar`, `du`
//!   and `gzip`;
//! - [`failures`]: the §5.3 case studies — the ret2win stack overflow,
//!   stack probing, and non-standard stack-pointer restoration;
//! - [`inject`]: byte-level fault injection over corpus ELF images,
//!   exercising the never-crash pipeline contract (terminate within
//!   budget with a sound result or a structured reject).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coreutils;
pub mod failures;
pub mod gen;
pub mod inject;
pub mod xen;

pub use gen::{emittable_mnemonics, mnemonic_stem, FunctionSpec, GenOptions, ProgramGen};
pub use xen::{CorpusUnit, ExpectedOutcome, StudySpec, UnitKind, XenStudy};
