//! The Table-1 study: a synthetic corpus mirroring the Xen 4.12 case
//! study's structure — directories of binaries and shared-object
//! functions with the paper's mix of outcomes.
//!
//! Sizes are scaled down (the paper lifts 399 771 instructions in ~18
//! hours; this corpus lifts tens of thousands in minutes) but the
//! *composition* of each directory row — how many units lift, how many
//! are rejected for unprovable return addresses, concurrency or
//! timeout, and the ratio of resolved/unresolved indirections — follows
//! Table 1.

use crate::gen::{GenOptions, ProgramGen};
use hgl_core::lift::{LiftConfig, LiftResult, RejectReason};
use hgl_core::Lifter;
use hgl_elf::Binary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Whether a unit is a whole binary (lifted from its entry point) or a
/// shared-object function (lifted from its exported symbol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitKind {
    /// A whole binary.
    Binary,
    /// One exported library function.
    LibraryFunction,
}

/// The outcome a unit was *constructed* to have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// Lifts to a Hoare Graph.
    Lifted,
    /// Rejected: unprovable return address / calling convention.
    UnprovableReturn,
    /// Rejected: uses threading primitives.
    Concurrency,
    /// Rejected: exhausts the time/state budget.
    Timeout,
}

/// One corpus unit.
pub struct CorpusUnit {
    /// Table-1 directory this unit belongs to.
    pub directory: String,
    /// Unit name.
    pub name: String,
    /// Binary or library function.
    pub kind: UnitKind,
    /// The synthesized binary.
    pub binary: Binary,
    /// Lift entry point.
    pub entry: u64,
    /// Constructed outcome.
    pub expected: ExpectedOutcome,
}

/// One row of the study specification.
#[derive(Debug, Clone)]
pub struct RowSpec {
    /// Directory name (as printed in Table 1).
    pub directory: String,
    /// Binary or library row.
    pub kind: UnitKind,
    /// Units that should lift.
    pub lifted: usize,
    /// Units with unprovable return addresses.
    pub unprovable: usize,
    /// Units rejected for concurrency.
    pub concurrency: usize,
    /// Units that time out.
    pub timeout: usize,
}

/// The whole study specification.
#[derive(Debug, Clone)]
pub struct StudySpec {
    /// Rows, in Table-1 order.
    pub rows: Vec<RowSpec>,
}

impl StudySpec {
    /// The default specification: Table 1's rows with library-function
    /// counts scaled by ~1/10.
    pub fn table1() -> StudySpec {
        let row = |directory: &str, kind, lifted, unprovable, concurrency, timeout| RowSpec {
            directory: directory.to_string(),
            kind,
            lifted,
            unprovable,
            concurrency,
            timeout,
        };
        StudySpec {
            rows: vec![
                row(".../bin", UnitKind::Binary, 12, 2, 1, 0),
                row(".../xen/bin", UnitKind::Binary, 7, 1, 8, 1),
                row(".../libexec", UnitKind::Binary, 1, 0, 0, 0),
                row(".../sbin", UnitKind::Binary, 25, 1, 4, 0),
                row(".../lib", UnitKind::LibraryFunction, 186, 3, 0, 1),
                row(".../xenfsimage", UnitKind::LibraryFunction, 10, 1, 0, 0),
                row(".../dist-packages", UnitKind::LibraryFunction, 16, 0, 0, 0),
                row(".../lowlevel", UnitKind::LibraryFunction, 12, 0, 0, 0),
            ],
        }
    }

    /// A miniature spec for fast tests.
    pub fn mini() -> StudySpec {
        StudySpec {
            rows: vec![
                RowSpec {
                    directory: ".../bin".to_string(),
                    kind: UnitKind::Binary,
                    lifted: 2,
                    unprovable: 1,
                    concurrency: 1,
                    timeout: 0,
                },
                RowSpec {
                    directory: ".../lib".to_string(),
                    kind: UnitKind::LibraryFunction,
                    lifted: 4,
                    unprovable: 1,
                    concurrency: 0,
                    timeout: 1,
                },
            ],
        }
    }
}

/// The generated corpus.
pub struct XenStudy {
    /// All units, grouped by directory order of the spec.
    pub units: Vec<CorpusUnit>,
}

/// Build one liftable multi-function binary from a seed: the corpus
/// generator behind the `Lifted` rows, exposed for harnesses (the
/// engine determinism test, the bench driver) that need realistic
/// whole binaries with several exported functions.
pub fn gen_study_binary(seed: u64, is_library: bool) -> Binary {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen_lifted_binary(&mut rng, is_library)
}

/// Build one liftable multi-function binary.
fn gen_lifted_binary(rng: &mut SmallRng, is_library: bool) -> Binary {
    let mut pg = ProgramGen::new();
    let n_fns = if is_library { rng.gen_range(1..4usize) } else { rng.gen_range(4..9usize) };
    // Acyclic call graph: function i may call j > i.
    let names: Vec<String> = (0..n_fns).map(|i| format!("fn_{i}")).collect();
    for i in 0..n_fns {
        let callees: Vec<String> = names[i + 1..].to_vec();
        // Three body profiles so per-instruction cost varies widely —
        // the paper's Figure 3 shows size and verification time are
        // only weakly correlated because join/fork behaviour dominates.
        let profile = rng.gen_range(0..10u32);
        let opts = if is_library && profile < 2 {
            // Small but fork-heavy: several writes through distinct
            // caller pointers multiply memory models.
            GenOptions {
                segments: rng.gen_range(3..6),
                callees,
                p_jump_table: 0.05,
                p_callback: 0.04,
                p_param_write: 0.55,
                ..GenOptions::default()
            }
        } else if is_library && profile < 4 {
            // Large but structurally simple: straight-line arithmetic.
            GenOptions {
                segments: rng.gen_range(16..40),
                callees,
                p_jump_table: 0.02,
                p_callback: 0.01,
                p_param_write: 0.0,
                ..GenOptions::default()
            }
        } else {
            GenOptions {
                segments: rng.gen_range(3..10),
                callees,
                p_jump_table: if is_library { 0.10 } else { 0.05 },
                p_callback: if is_library { 0.06 } else { 0.02 },
                p_param_write: if is_library { 0.12 } else { 0.06 },
                ..GenOptions::default()
            }
        };
        pg.gen_function(&names[i], rng, &opts);
    }
    pg.asm.entry("fn_0");
    pg.asm.export("fn_0", "entry_fn");
    pg.asm.assemble().expect("generated binary assembles")
}

fn gen_unprovable_binary(rng: &mut SmallRng) -> Binary {
    let mut pg = ProgramGen::new();
    let opts = GenOptions { segments: rng.gen_range(2..5), ..GenOptions::default() };
    // A normal prologue function that calls the vulnerable one.
    pg.gen_function("helper", rng, &opts);
    pg.gen_overflow_function("vuln");
    let mut asm = std::mem::take(&mut pg.asm);
    asm.label("main");
    asm.call("vuln");
    asm.ret();
    asm.entry("main");
    asm.assemble().expect("assembles")
}

fn gen_concurrency_binary(rng: &mut SmallRng) -> Binary {
    let mut pg = ProgramGen::new();
    let opts = GenOptions {
        segments: rng.gen_range(2..6),
        externals: vec!["pthread_create".into(), "pthread_join".into(), "puts".into()],
        ..GenOptions::default()
    };
    pg.gen_function("main", rng, &opts);
    // Guarantee the pthread marker is present even if the generator
    // rolled no external calls.
    pg.asm.label("spawn_helper");
    pg.asm.call_ext("pthread_create");
    pg.asm.ret();
    pg.asm.entry("main");
    pg.asm.assemble().expect("assembles")
}

fn gen_timeout_binary(rng: &mut SmallRng) -> Binary {
    let mut pg = ProgramGen::new();
    pg.gen_explosive_function("main", 14 + rng.gen_range(0..4usize));
    pg.asm.entry("main");
    pg.asm.assemble().expect("assembles")
}

/// Generate the corpus for a spec.
pub fn build_study(spec: &StudySpec, seed: u64) -> XenStudy {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut units = Vec::new();
    for row in &spec.rows {
        let is_library = row.kind == UnitKind::LibraryFunction;
        let mut push = |expected, idx: usize, binary: Binary, rng: &mut SmallRng| {
            let _ = rng;
            let entry = match row.kind {
                UnitKind::Binary => binary.entry,
                UnitKind::LibraryFunction => binary
                    .symbols
                    .iter()
                    .find(|(_, n)| *n == "entry_fn")
                    .map(|(a, _)| *a)
                    .unwrap_or(binary.entry),
            };
            units.push(CorpusUnit {
                directory: row.directory.clone(),
                name: format!("{}_{idx}", row.directory.rsplit('/').next().unwrap_or("unit")),
                kind: row.kind,
                binary,
                entry,
                expected,
            });
        };
        for i in 0..row.lifted {
            let b = gen_lifted_binary(&mut rng, is_library);
            push(ExpectedOutcome::Lifted, i, b, &mut rng);
        }
        for i in 0..row.unprovable {
            let b = gen_unprovable_binary(&mut rng);
            push(ExpectedOutcome::UnprovableReturn, row.lifted + i, b, &mut rng);
        }
        for i in 0..row.concurrency {
            let b = gen_concurrency_binary(&mut rng);
            push(ExpectedOutcome::Concurrency, row.lifted + row.unprovable + i, b, &mut rng);
        }
        for i in 0..row.timeout {
            let b = gen_timeout_binary(&mut rng);
            push(
                ExpectedOutcome::Timeout,
                row.lifted + row.unprovable + row.concurrency + i,
                b,
                &mut rng,
            );
        }
    }
    XenStudy { units }
}

/// Category under which a lift result is tallied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Lifted.
    Lifted,
    /// Unprovable return address (or other sound reject).
    Unprovable,
    /// Concurrency rejection.
    Concurrency,
    /// Timed out / exhausted budgets.
    Timeout,
    /// The pipeline panicked on this unit; the fault was isolated and
    /// the rest of the study completed.
    Internal,
}

/// Classify a [`LiftResult`] for the study tally.
pub fn classify(result: &LiftResult) -> Outcome {
    classify_reject(result.reject_reason().as_ref())
}

/// Classify a reject verdict (`None` means the unit lifted).
pub fn classify_reject(reject: Option<&RejectReason>) -> Outcome {
    match reject {
        None => Outcome::Lifted,
        Some(RejectReason::Concurrency) => Outcome::Concurrency,
        // Resource exhaustion in any dimension is the paper's timeout
        // category: the unit *might* lift with a larger budget.
        Some(RejectReason::Timeout) | Some(RejectReason::StateBudget { .. }) => Outcome::Timeout,
        Some(RejectReason::Internal { .. }) => Outcome::Internal,
        // Sound rejects: verification failures, undecodable reachable
        // bytes, malformed inputs, poisoned callees.
        Some(RejectReason::Verification(_))
        | Some(RejectReason::DecodeError { .. })
        | Some(RejectReason::MalformedBinary { .. })
        | Some(RejectReason::CalleeRejected(_)) => Outcome::Unprovable,
    }
}

/// Per-unit study measurement.
pub struct UnitResult {
    /// The unit's directory.
    pub directory: String,
    /// Unit name.
    pub name: String,
    /// Outcome category.
    pub outcome: Outcome,
    /// Constructed expectation.
    pub expected: ExpectedOutcome,
    /// Instructions lifted.
    pub instructions: usize,
    /// Symbolic states.
    pub states: usize,
    /// (resolved, unresolved jumps, unresolved calls).
    pub indirections: (usize, usize, usize),
    /// Wall-clock lift time.
    pub time: Duration,
    /// The structured reject verdict, if the unit did not lift.
    pub reject: Option<RejectReason>,
}

/// Lift one corpus unit with the mode matching its kind: a one-shot
/// [`Lifter`] session from the binary's entry point or the exported
/// symbol.
pub fn lift_unit(u: &CorpusUnit, config: &LiftConfig) -> LiftResult {
    let lifter = Lifter::new(&u.binary).with_config(config.clone());
    match u.kind {
        UnitKind::Binary => lifter.lift_entry(u.binary.entry),
        UnitKind::LibraryFunction => lifter.lift_entry(u.entry),
    }
}

/// Tally one unit's lift result.
fn measure(u: &CorpusUnit, result: &LiftResult, time: Duration) -> UnitResult {
    UnitResult {
        directory: u.directory.clone(),
        name: u.name.clone(),
        outcome: classify(result),
        expected: u.expected,
        instructions: result.instruction_count(),
        states: result.state_count(),
        indirections: result.indirection_counts(),
        time,
        reject: result.reject_reason(),
    }
}

/// A `UnitResult` recording an isolated pipeline fault.
fn internal_result(u: &CorpusUnit, message: String, time: Duration) -> UnitResult {
    UnitResult {
        directory: u.directory.clone(),
        name: u.name.clone(),
        outcome: Outcome::Internal,
        expected: u.expected,
        instructions: 0,
        states: 0,
        indirections: (0, 0, 0),
        time,
        reject: Some(RejectReason::Internal { stage: "worker", message }),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the lifter over every unit of a study. A panic while processing
/// one unit is isolated into an `Outcome::Internal` tally for that unit.
pub fn run_study(study: &XenStudy, config: &LiftConfig) -> Vec<UnitResult> {
    study
        .units
        .iter()
        .map(|u| {
            let start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| {
                let result = lift_unit(u, config);
                measure(u, &result, start.elapsed())
            })) {
                Ok(r) => r,
                Err(payload) => internal_result(u, panic_message(payload), start.elapsed()),
            }
        })
        .collect()
}

/// Run the lifter over every unit of a study, in parallel across
/// worker threads (the per-unit lifts are independent, mirroring the
/// paper's exploitation of Isabelle's parallel proof checking).
///
/// Fault tolerance: a panic while lifting or tallying one unit — in
/// `lift_fn` or anywhere else inside the per-unit closure — degrades
/// *that unit* to `Outcome::Internal` with a structured
/// `RejectReason::Internal`; every other unit still completes and the
/// study returns a result for all units.
pub fn run_study_parallel(study: &XenStudy, config: &LiftConfig, workers: usize) -> Vec<UnitResult> {
    run_study_parallel_with(study, config, workers, lift_unit)
}

/// [`run_study_parallel`] with a custom per-unit lift function. The
/// fault-injection harness uses this to drive poisoned lift pipelines
/// through the production study driver.
///
/// The worker pool is the engine's
/// [`parallel_map`](hgl_core::parallel_map), so the corpus campaign
/// and the whole-binary engine share one spawning path.
pub fn run_study_parallel_with<F>(
    study: &XenStudy,
    config: &LiftConfig,
    workers: usize,
    lift_fn: F,
) -> Vec<UnitResult>
where
    F: Fn(&CorpusUnit, &LiftConfig) -> LiftResult + Sync,
{
    hgl_core::parallel_map(workers.max(1), study.units.iter().collect(), |u| {
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            let result = lift_fn(u, config);
            measure(u, &result, start.elapsed())
        })) {
            Ok(r) => r,
            Err(payload) => internal_result(u, panic_message(payload), start.elapsed()),
        }
    })
}

/// A fast configuration for corpus studies: modest wall-clock and state
/// budgets so rejected units fail quickly.
pub fn study_config() -> LiftConfig {
    let mut c = LiftConfig::default();
    c.budget.wall_clock = Some(Duration::from_secs(10));
    c.limits.max_states = 4000;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_study_outcomes_match_expectations() {
        let study = build_study(&StudySpec::mini(), 42);
        assert_eq!(study.units.len(), 10);
        let results = run_study(&study, &study_config());
        for r in &results {
            let ok = match r.expected {
                ExpectedOutcome::Lifted => r.outcome == Outcome::Lifted,
                ExpectedOutcome::UnprovableReturn => r.outcome == Outcome::Unprovable,
                ExpectedOutcome::Concurrency => r.outcome == Outcome::Concurrency,
                ExpectedOutcome::Timeout => r.outcome == Outcome::Timeout,
            };
            assert!(ok, "{} ({:?}): expected {:?}, got {:?}", r.name, r.directory, r.expected, r.outcome);
        }
        // States stay close to instruction counts for lifted units (§2).
        for r in results.iter().filter(|r| r.outcome == Outcome::Lifted) {
            assert!(r.instructions > 0);
            assert!(
                r.states <= r.instructions * 3,
                "{}: states {} vs instrs {}",
                r.name,
                r.states,
                r.instructions
            );
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = build_study(&StudySpec::mini(), 7);
        let b = build_study(&StudySpec::mini(), 7);
        for (ua, ub) in a.units.iter().zip(&b.units) {
            assert_eq!(ua.binary, ub.binary, "same seed, same corpus");
        }
        let c = build_study(&StudySpec::mini(), 8);
        assert!(
            a.units.iter().zip(&c.units).any(|(x, y)| x.binary != y.binary),
            "different seeds differ"
        );
    }
}
