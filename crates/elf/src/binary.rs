//! The loaded-binary view consumed by the lifter.

use crate::types::SegmentFlags;
use std::collections::BTreeMap;

/// A loadable segment with its bytes mapped at a virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u64,
    /// Mapped bytes (`memsz` long; file bytes zero-padded).
    pub bytes: Vec<u8>,
    /// Access flags.
    pub flags: SegmentFlags,
}

impl Segment {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.vaddr + self.bytes.len() as u64
    }

    /// True if `[addr, addr+len)` lies within this segment.
    pub fn covers(&self, addr: u64, len: u64) -> bool {
        addr >= self.vaddr && addr.checked_add(len).is_some_and(|e| e <= self.end())
    }
}

/// A loaded x86-64 binary: the lifter's model of Definition 3.1.
///
/// Produced by [`Binary::parse`] (from ELF bytes) or by the `hgl-asm`
/// builder directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binary {
    /// Entry point `a_e`.
    pub entry: u64,
    /// Loaded segments, sorted by address.
    pub segments: Vec<Segment>,
    /// External-function stubs: stub address → symbol name.
    pub externals: BTreeMap<u64, String>,
    /// Defined function symbols (empty for stripped binaries): address
    /// → name. Shared objects use these as lift entry points.
    pub symbols: BTreeMap<u64, String>,
}

impl Binary {
    /// `[start, end)` ranges of executable segments.
    pub fn text_ranges(&self) -> Vec<(u64, u64)> {
        self.segments.iter().filter(|s| s.flags.x).map(|s| (s.vaddr, s.end())).collect()
    }

    /// `[start, end)` ranges of non-executable segments.
    pub fn data_ranges(&self) -> Vec<(u64, u64)> {
        self.segments.iter().filter(|s| !s.flags.x).map(|s| (s.vaddr, s.end())).collect()
    }

    /// True if `addr` lies in an executable segment (an *immediate
    /// pointer to an instruction* in the sense of §4's join
    /// refinement).
    pub fn is_code(&self, addr: u64) -> bool {
        self.segments.iter().any(|s| s.flags.x && s.covers(addr, 1))
    }

    /// Read `len` bytes at virtual address `addr`.
    pub fn read(&self, addr: u64, len: u64) -> Option<&[u8]> {
        let seg = self.segments.iter().find(|s| s.covers(addr, len))?;
        let off = (addr - seg.vaddr) as usize;
        Some(&seg.bytes[off..off + len as usize])
    }

    /// Read a little-endian value of `size` bytes (1, 2, 4 or 8).
    pub fn read_int(&self, addr: u64, size: u8) -> Option<u64> {
        let b = self.read(addr, size as u64)?;
        let mut v = 0u64;
        for (i, byte) in b.iter().enumerate() {
            v |= (*byte as u64) << (8 * i);
        }
        Some(v)
    }

    /// Read a little-endian value of `size` bytes, but only from a
    /// non-writable segment (whose contents are load-time constants).
    pub fn read_int_ro(&self, addr: u64, size: u8) -> Option<u64> {
        let seg = self.segments.iter().find(|s| s.covers(addr, size as u64))?;
        if seg.flags.w {
            return None;
        }
        self.read_int(addr, size)
    }

    /// The byte window for the instruction decoder: up to 15 bytes at
    /// `addr`, clipped to the containing executable segment.
    pub fn fetch_window(&self, addr: u64) -> Option<&[u8]> {
        let seg = self.segments.iter().find(|s| s.flags.x && s.covers(addr, 1))?;
        let off = (addr - seg.vaddr) as usize;
        let end = seg.bytes.len().min(off + 15);
        Some(&seg.bytes[off..end])
    }

    /// Is this address an external-function stub?
    pub fn external_at(&self, addr: u64) -> Option<&str> {
        self.externals.get(&addr).map(String::as_str)
    }

    /// Total number of mapped bytes.
    pub fn mapped_len(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin() -> Binary {
        Binary {
            entry: 0x401000,
            segments: vec![
                Segment { vaddr: 0x401000, bytes: vec![0xc3; 16], flags: SegmentFlags::RX },
                Segment { vaddr: 0x601000, bytes: vec![0xaa; 8], flags: SegmentFlags::RW },
            ],
            externals: BTreeMap::new(),
            symbols: BTreeMap::new(),
        }
    }

    #[test]
    fn ranges() {
        let b = bin();
        assert_eq!(b.text_ranges(), vec![(0x401000, 0x401010)]);
        assert_eq!(b.data_ranges(), vec![(0x601000, 0x601008)]);
        assert!(b.is_code(0x401000));
        assert!(!b.is_code(0x601000));
    }

    #[test]
    fn reads() {
        let b = bin();
        assert_eq!(b.read(0x601000, 8), Some(&[0xaa; 8][..]));
        assert_eq!(b.read(0x601004, 8), None, "crosses segment end");
        assert_eq!(b.read_int(0x601000, 4), Some(0xaaaa_aaaa));
    }

    #[test]
    fn fetch_window_clips() {
        let b = bin();
        assert_eq!(b.fetch_window(0x401000).map(<[u8]>::len), Some(15));
        assert_eq!(b.fetch_window(0x40100e).map(<[u8]>::len), Some(2));
        assert_eq!(b.fetch_window(0x601000), None, "data is not fetchable");
    }
}
