//! # hgl-elf: ELF64 container support
//!
//! A from-scratch reader and writer for the x86-64 ELF binaries the
//! lifter consumes (Definition 3.1's `⟨a_e, fetch, S, →_B⟩` starts from
//! an entry point and a byte-addressed image).
//!
//! - [`Binary`] is the loaded view: entry point, loadable segments,
//!   executable/data address ranges, and the external-function map.
//!   [`Binary::parse`] reads a (possibly stripped) ELF file;
//!   [`Binary::fetch_window`] provides the byte window for the
//!   decoder's `fetch`.
//! - [`Builder`] writes minimal static executables — used by `hgl-asm`
//!   to synthesize the evaluation corpus. Emitted files round-trip
//!   through [`Binary::parse`].
//!
//! ## External functions
//!
//! Real COTS binaries carry dynamic-linking metadata (`.dynsym`,
//! `.rela.plt`) from which the paper's tool learns external function
//! names. This implementation records the same information in a
//! compact `.extmap` section (stub address → name), which the reader
//! turns into [`Binary::externals`]; parsing the full dynamic-linking
//! machinery is orthogonal to the lifting algorithm (see `DESIGN.md`,
//! *Substitutions*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod read;
mod types;
mod write;

pub use binary::{Binary, Segment};
pub use read::ParseError;
pub use types::{SegmentFlags, PAGE};
pub use write::Builder;
