//! ELF64 parser.

use crate::types::*;
use crate::{Binary, Segment, SegmentFlags};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by [`Binary::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The file does not start with the ELF magic.
    NotElf,
    /// Not a little-endian 64-bit x86-64 image.
    UnsupportedFormat(&'static str),
    /// A header or table points outside the file.
    Truncated(&'static str),
    /// A header field is structurally invalid; `offset` is the byte
    /// offset of the offending field within the file.
    Malformed {
        /// Which field is invalid.
        what: &'static str,
        /// Byte offset of the field within the file.
        offset: u64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotElf => write!(f, "not an ELF file"),
            ParseError::UnsupportedFormat(what) => write!(f, "unsupported ELF format: {what}"),
            ParseError::Truncated(what) => write!(f, "truncated ELF file: {what}"),
            ParseError::Malformed { what, offset } => {
                write!(f, "malformed ELF file: {what} (field at byte offset {offset:#x})")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Cap on a single loadable segment's in-memory size. A corrupted
/// `p_memsz`/`p_filesz` must not be able to drive a multi-gigabyte
/// allocation before the bounds check fails.
const MAX_SEGMENT_SIZE: usize = 1 << 28; // 256 MiB

fn get<'a>(bytes: &'a [u8], off: usize, len: usize, what: &'static str) -> Result<&'a [u8], ParseError> {
    off.checked_add(len)
        .and_then(|end| bytes.get(off..end))
        .ok_or(ParseError::Truncated(what))
}

/// `base + i * entsize`, rejecting offsets that wrap the address space.
fn table_entry_off(base: usize, i: usize, entsize: usize, what: &'static str) -> Result<usize, ParseError> {
    i.checked_mul(entsize)
        .and_then(|o| base.checked_add(o))
        .ok_or(ParseError::Truncated(what))
}

fn u16le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

impl Binary {
    /// Parse an ELF64 image into the loaded view.
    ///
    /// Stripped binaries parse fine (`symbols` stays empty); the
    /// `.extmap` section, if present, populates [`Binary::externals`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] for non-ELF input, non-x86-64 images, or
    /// tables pointing outside the file.
    pub fn parse(bytes: &[u8]) -> Result<Binary, ParseError> {
        let ident = get(bytes, 0, 16, "e_ident")?;
        if ident[..4] != MAGIC {
            return Err(ParseError::NotElf);
        }
        if ident[4] != ELFCLASS64 {
            return Err(ParseError::UnsupportedFormat("not 64-bit"));
        }
        if ident[5] != ELFDATA2LSB {
            return Err(ParseError::UnsupportedFormat("not little-endian"));
        }
        let hdr = get(bytes, 0, EHDR_SIZE as usize, "ELF header")?;
        let e_type = u16le(&hdr[16..]);
        if e_type != ET_EXEC && e_type != ET_DYN {
            return Err(ParseError::UnsupportedFormat("not an executable or shared object"));
        }
        if u16le(&hdr[18..]) != EM_X86_64 {
            return Err(ParseError::UnsupportedFormat("not x86-64"));
        }
        let entry = u64le(&hdr[24..]);
        let phoff = u64le(&hdr[32..]) as usize;
        let shoff = u64le(&hdr[40..]) as usize;
        let phentsize = u16le(&hdr[54..]) as usize;
        let phnum = u16le(&hdr[56..]) as usize;
        let shentsize = u16le(&hdr[58..]) as usize;
        let shnum = u16le(&hdr[60..]) as usize;
        let shstrndx = u16le(&hdr[62..]) as usize;

        // Program headers → segments.
        if phnum > 0 && phentsize < PHDR_SIZE as usize {
            return Err(ParseError::Malformed { what: "e_phentsize smaller than a program header", offset: 54 });
        }
        let mut segments = Vec::new();
        for i in 0..phnum {
            let ph_off = table_entry_off(phoff, i, phentsize, "program header table")?;
            let ph = get(bytes, ph_off, PHDR_SIZE as usize, "program header")?;
            if u32le(&ph[0..]) != PT_LOAD {
                continue;
            }
            let flags = SegmentFlags::from_p_flags(u32le(&ph[4..]));
            let off = u64le(&ph[8..]) as usize;
            let vaddr = u64le(&ph[16..]);
            let filesz = u64le(&ph[32..]) as usize;
            let memsz = u64le(&ph[40..]) as usize;
            if memsz == 0 {
                continue;
            }
            if filesz > MAX_SEGMENT_SIZE {
                return Err(ParseError::Malformed { what: "oversized p_filesz", offset: ph_off as u64 + 32 });
            }
            if memsz > MAX_SEGMENT_SIZE {
                return Err(ParseError::Malformed { what: "oversized p_memsz", offset: ph_off as u64 + 40 });
            }
            let mut seg_bytes = get(bytes, off, filesz, "segment contents")?.to_vec();
            seg_bytes.resize(memsz, 0);
            segments.push(Segment { vaddr, bytes: seg_bytes, flags });
        }
        segments.sort_by_key(|s| s.vaddr);

        // Section headers: look for .extmap and .symtab.
        let mut externals = BTreeMap::new();
        let mut symbols = BTreeMap::new();
        if shoff != 0 && shnum != 0 {
            if shentsize < SHDR_SIZE as usize {
                return Err(ParseError::Malformed { what: "e_shentsize smaller than a section header", offset: 58 });
            }
            if shstrndx >= shnum {
                return Err(ParseError::Malformed { what: "e_shstrndx out of range", offset: 62 });
            }
            let sh = |i: usize| -> Result<&[u8], ParseError> {
                let off = table_entry_off(shoff, i, shentsize, "section header table")?;
                get(bytes, off, SHDR_SIZE as usize, "section header")
            };
            let shstr_hdr = sh(shstrndx)?;
            let shstr_off = u64le(&shstr_hdr[24..]) as usize;
            let shstr_size = u64le(&shstr_hdr[32..]) as usize;
            let shstr = get(bytes, shstr_off, shstr_size, "shstrtab")?;
            let sec_name = |name_off: usize| -> &str {
                let rest = &shstr[name_off.min(shstr.len())..];
                let end = rest.iter().position(|&b| b == 0).unwrap_or(0);
                std::str::from_utf8(&rest[..end]).unwrap_or("")
            };
            for i in 0..shnum {
                let h = sh(i)?;
                let name = sec_name(u32le(&h[0..]) as usize);
                let sh_type = u32le(&h[4..]);
                let off = u64le(&h[24..]) as usize;
                let size = u64le(&h[32..]) as usize;
                match (name, sh_type) {
                    (".extmap", _) => {
                        let data = get(bytes, off, size, ".extmap")?;
                        externals = parse_extmap(data)?;
                    }
                    (_, SHT_SYMTAB) => {
                        let link = u32le(&h[40..]) as usize;
                        if link >= shnum {
                            continue;
                        }
                        let strh = sh(link)?;
                        let str_off = u64le(&strh[24..]) as usize;
                        let str_size = u64le(&strh[32..]) as usize;
                        let strtab = get(bytes, str_off, str_size, ".strtab")?;
                        let data = get(bytes, off, size, ".symtab")?;
                        symbols = parse_symtab(data, strtab);
                    }
                    _ => {}
                }
            }
        }

        Ok(Binary { entry, segments, externals, symbols })
    }
}

fn parse_extmap(data: &[u8]) -> Result<BTreeMap<u64, String>, ParseError> {
    let mut out = BTreeMap::new();
    let mut pos = 0;
    while pos + 10 <= data.len() {
        let addr = u64le(&data[pos..]);
        let len = u16le(&data[pos + 8..]) as usize;
        pos += 10;
        let name = data.get(pos..pos + len).ok_or(ParseError::Truncated(".extmap entry"))?;
        pos += len;
        out.insert(addr, String::from_utf8_lossy(name).into_owned());
    }
    Ok(out)
}

fn parse_symtab(data: &[u8], strtab: &[u8]) -> BTreeMap<u64, String> {
    let mut out: BTreeMap<u64, String> = BTreeMap::new();
    for chunk in data.chunks_exact(SYM_SIZE as usize).skip(1) {
        let name_off = u32le(&chunk[0..]) as usize;
        let info = chunk[4];
        let shndx = u16le(&chunk[6..]);
        let value = u64le(&chunk[8..]);
        if info & 0xf != 2 || shndx == 0 {
            continue; // not a defined function
        }
        let rest = &strtab[name_off.min(strtab.len())..];
        let end = rest.iter().position(|&b| b == 0).unwrap_or(0);
        if let Ok(name) = std::str::from_utf8(&rest[..end]) {
            if !name.is_empty() {
                // Aliased symbols (several names at one address — weak
                // aliases, ICF) collapse to one entry; keep the
                // lexicographically smallest name so the choice depends
                // on the symbol *set*, not on symtab order.
                match out.get(&value) {
                    Some(existing) if existing.as_str() <= name => {}
                    _ => {
                        out.insert(value, name.to_string());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn roundtrip_through_elf() {
        let elf = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0x48, 0x89, 0xe5, 0xc3], SegmentFlags::RX)
            .section(".rodata", 0x402000, vec![9; 32], SegmentFlags::RO)
            .section(".data", 0x601000, vec![1, 2, 3, 4], SegmentFlags::RW)
            .external(0x400800, "memset")
            .external(0x400808, "exit")
            .symbol(0x401000, "main")
            .build();
        let bin = Binary::parse(&elf).expect("parses");
        assert_eq!(bin.entry, 0x401000);
        assert_eq!(bin.segments.len(), 3);
        assert_eq!(bin.read(0x401000, 4), Some(&[0x48, 0x89, 0xe5, 0xc3][..]));
        assert_eq!(bin.read(0x601000, 4), Some(&[1, 2, 3, 4][..]));
        assert_eq!(bin.external_at(0x400800), Some("memset"));
        assert_eq!(bin.external_at(0x400808), Some("exit"));
        assert_eq!(bin.symbols.get(&0x401000).map(String::as_str), Some("main"));
        assert!(bin.is_code(0x401003));
        assert!(!bin.is_code(0x402000));
    }

    #[test]
    fn aliased_symbols_resolve_deterministically() {
        // Two symbol names at one address (e.g. an ifunc alias or a
        // versioned export) must collapse to a single, order-independent
        // canonical name: the lexicographically smallest one.
        let forward = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3; 4], SegmentFlags::RX)
            .symbol(0x401000, "zeta")
            .symbol_alias(0x401000, "alpha")
            .build();
        let backward = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3; 4], SegmentFlags::RX)
            .symbol(0x401000, "alpha")
            .symbol_alias(0x401000, "zeta")
            .build();
        let f = Binary::parse(&forward).expect("parses");
        let b = Binary::parse(&backward).expect("parses");
        assert_eq!(f.symbols.get(&0x401000).map(String::as_str), Some("alpha"));
        assert_eq!(b.symbols.get(&0x401000).map(String::as_str), Some("alpha"));
        assert_eq!(f.symbols.len(), 1, "one address, one canonical symbol");
        assert_eq!(f.symbols, b.symbols);
        // to_binary (the non-serialized path) agrees with the parser.
        let direct = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3; 4], SegmentFlags::RX)
            .symbol(0x401000, "zeta")
            .symbol_alias(0x401000, "alpha")
            .to_binary();
        assert_eq!(direct.symbols, f.symbols);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Binary::parse(&[0; 3]), Err(ParseError::Truncated("e_ident")));
        assert_eq!(Binary::parse(&[0; 64]), Err(ParseError::NotElf));
        let mut bogus = vec![0u8; 64];
        bogus[..4].copy_from_slice(&MAGIC);
        bogus[4] = 1; // 32-bit
        assert_eq!(Binary::parse(&bogus), Err(ParseError::UnsupportedFormat("not 64-bit")));
    }

    #[test]
    fn builder_binary_equals_parsed() {
        let b = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3; 7], SegmentFlags::RX)
            .external(0x400800, "puts");
        let direct = b.to_binary();
        let parsed = Binary::parse(&b.build()).expect("parses");
        assert_eq!(direct, parsed);
    }

    #[test]
    fn malformed_fields_get_offset_context() {
        let elf = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3], SegmentFlags::RX)
            .build();
        let phoff = u64le(&elf[32..]) as usize;

        // e_shstrndx pointing past the section header table.
        let mut bad = elf.clone();
        bad[62..64].copy_from_slice(&0x7fffu16.to_le_bytes());
        assert_eq!(
            Binary::parse(&bad),
            Err(ParseError::Malformed { what: "e_shstrndx out of range", offset: 62 })
        );

        // A p_filesz that would drive a huge allocation.
        let mut bad = elf.clone();
        bad[phoff + 32..phoff + 40].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert_eq!(
            Binary::parse(&bad),
            Err(ParseError::Malformed { what: "oversized p_filesz", offset: phoff as u64 + 32 })
        );

        // Same for p_memsz.
        let mut bad = elf.clone();
        bad[phoff + 40..phoff + 48].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert_eq!(
            Binary::parse(&bad),
            Err(ParseError::Malformed { what: "oversized p_memsz", offset: phoff as u64 + 40 })
        );

        // Section header table running off the end of the file.
        let mut bad = elf.clone();
        let shoff = (elf.len() - 8) as u64;
        bad[40..48].copy_from_slice(&shoff.to_le_bytes());
        assert!(matches!(Binary::parse(&bad), Err(ParseError::Truncated(_))));

        // An e_phoff so large the per-entry offset computation wraps.
        let mut bad = elf.clone();
        bad[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(Binary::parse(&bad), Err(ParseError::Truncated(_))));
    }

    #[test]
    fn stripped_binary_has_no_symbols() {
        let elf = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3], SegmentFlags::RX)
            .build();
        let bin = Binary::parse(&elf).expect("parses");
        assert!(bin.symbols.is_empty());
        assert!(bin.externals.is_empty());
    }
}
