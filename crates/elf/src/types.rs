//! ELF64 constants and small shared types.

/// Page size used for segment alignment.
pub const PAGE: u64 = 0x1000;

/// `e_ident` magic.
pub const MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];

/// 64-bit class.
pub const ELFCLASS64: u8 = 2;
/// Little-endian data.
pub const ELFDATA2LSB: u8 = 1;
/// Current version.
pub const EV_CURRENT: u8 = 1;
/// Executable file type.
pub const ET_EXEC: u16 = 2;
/// Shared object file type.
pub const ET_DYN: u16 = 3;
/// x86-64 machine.
pub const EM_X86_64: u16 = 0x3e;

/// Loadable program header type.
pub const PT_LOAD: u32 = 1;

/// Program-header flag: executable.
pub const PF_X: u32 = 1;
/// Program-header flag: writable.
pub const PF_W: u32 = 2;
/// Program-header flag: readable.
pub const PF_R: u32 = 4;

/// Section type: program data.
pub const SHT_PROGBITS: u32 = 1;
/// Section type: symbol table.
pub const SHT_SYMTAB: u32 = 2;
/// Section type: string table.
pub const SHT_STRTAB: u32 = 3;

/// Section flag: occupies memory at run time.
pub const SHF_ALLOC: u64 = 2;
/// Section flag: executable.
pub const SHF_EXECINSTR: u64 = 4;
/// Section flag: writable.
pub const SHF_WRITE: u64 = 1;

/// Size of the ELF64 file header.
pub const EHDR_SIZE: u64 = 64;
/// Size of one program header.
pub const PHDR_SIZE: u64 = 56;
/// Size of one section header.
pub const SHDR_SIZE: u64 = 64;
/// Size of one symbol-table entry.
pub const SYM_SIZE: u64 = 24;

/// Symbol binding GLOBAL, type FUNC (`st_info`).
pub const STB_GLOBAL_FUNC: u8 = 0x12;

/// Access permissions of a loaded segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentFlags {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl SegmentFlags {
    /// Read + execute.
    pub const RX: SegmentFlags = SegmentFlags { r: true, w: false, x: true };
    /// Read + write.
    pub const RW: SegmentFlags = SegmentFlags { r: true, w: true, x: false };
    /// Read-only.
    pub const RO: SegmentFlags = SegmentFlags { r: true, w: false, x: false };

    /// Convert to ELF `p_flags` bits.
    pub fn to_p_flags(self) -> u32 {
        (if self.r { PF_R } else { 0 }) | (if self.w { PF_W } else { 0 }) | (if self.x { PF_X } else { 0 })
    }

    /// Convert from ELF `p_flags` bits.
    pub fn from_p_flags(f: u32) -> SegmentFlags {
        SegmentFlags { r: f & PF_R != 0, w: f & PF_W != 0, x: f & PF_X != 0 }
    }
}
