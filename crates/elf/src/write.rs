//! Minimal ELF64 writer.

use crate::types::*;
use crate::{Binary, Segment, SegmentFlags};
use std::collections::BTreeMap;

struct SectionSpec {
    name: String,
    vaddr: u64,
    bytes: Vec<u8>,
    flags: SegmentFlags,
}

/// Builds a static x86-64 ELF executable (or shared object) from raw
/// section contents.
///
/// Emitted files parse back with [`Binary::parse`]; section file
/// offsets are page-congruent with their virtual addresses so the
/// images are also loadable by a real OS loader.
///
/// ```
/// use hgl_elf::{Builder, Binary, SegmentFlags};
///
/// let elf = Builder::new()
///     .entry(0x401000)
///     .section(".text", 0x401000, vec![0xc3], SegmentFlags::RX)
///     .build();
/// let bin = Binary::parse(&elf)?;
/// assert_eq!(bin.entry, 0x401000);
/// assert!(bin.is_code(0x401000));
/// # Ok::<(), hgl_elf::ParseError>(())
/// ```
#[derive(Default)]
pub struct Builder {
    entry: u64,
    sections: Vec<SectionSpec>,
    externals: BTreeMap<u64, String>,
    symbols: BTreeMap<u64, String>,
    /// Extra symtab entries at already-named addresses (aliases).
    aliases: Vec<(u64, String)>,
    shared_object: bool,
}

impl Builder {
    /// A new, empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Set the entry point.
    pub fn entry(mut self, addr: u64) -> Builder {
        self.entry = addr;
        self
    }

    /// Emit the file as `ET_DYN` (shared object) instead of `ET_EXEC`.
    pub fn shared_object(mut self) -> Builder {
        self.shared_object = true;
        self
    }

    /// Add an allocatable section mapped at `vaddr`.
    ///
    /// # Panics
    ///
    /// Panics if the section overlaps an existing one.
    pub fn section(mut self, name: &str, vaddr: u64, bytes: Vec<u8>, flags: SegmentFlags) -> Builder {
        let end = vaddr + bytes.len() as u64;
        for s in &self.sections {
            let s_end = s.vaddr + s.bytes.len() as u64;
            assert!(
                end <= s.vaddr || vaddr >= s_end,
                "section {name} [{vaddr:#x}, {end:#x}) overlaps {}",
                s.name
            );
        }
        self.sections.push(SectionSpec { name: name.to_string(), vaddr, bytes, flags });
        self
    }

    /// Record an external-function stub (written to `.extmap`).
    pub fn external(mut self, addr: u64, name: &str) -> Builder {
        self.externals.insert(addr, name.to_string());
        self
    }

    /// Record a defined function symbol (written to `.symtab`).
    pub fn symbol(mut self, addr: u64, name: &str) -> Builder {
        self.symbols.insert(addr, name.to_string());
        self
    }

    /// Record an *additional* symtab entry for an address (ELF permits
    /// any number of names per address: weak aliases, identical-code
    /// folding). The loaded [`Binary`] keeps one name per address —
    /// the lexicographically smallest — so aliases exist to exercise
    /// exactly that collapse.
    pub fn symbol_alias(mut self, addr: u64, name: &str) -> Builder {
        self.aliases.push((addr, name.to_string()));
        self
    }

    /// Produce the loaded view directly, without serialising to ELF.
    pub fn to_binary(&self) -> Binary {
        let mut segments: Vec<Segment> = self
            .sections
            .iter()
            .map(|s| Segment { vaddr: s.vaddr, bytes: s.bytes.clone(), flags: s.flags })
            .collect();
        segments.sort_by_key(|s| s.vaddr);
        // Collapse aliases exactly as the ELF reader does: smallest
        // name per address wins.
        let mut symbols = self.symbols.clone();
        for (addr, name) in &self.aliases {
            match symbols.get(addr) {
                Some(existing) if existing <= name => {}
                _ => {
                    symbols.insert(*addr, name.clone());
                }
            }
        }
        Binary { entry: self.entry, segments, externals: self.externals.clone(), symbols }
    }

    /// Serialise to ELF64 bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut sections = self.sections.iter().collect::<Vec<_>>();
        sections.sort_by_key(|s| s.vaddr);
        let nload = sections.len() as u64;

        // ---- plan the file layout ----
        let phdrs_off = EHDR_SIZE;
        let mut cursor = phdrs_off + nload * PHDR_SIZE;
        // Loadable sections, page-congruent offsets.
        let mut load_offsets = Vec::new();
        for s in &sections {
            let want = s.vaddr % PAGE;
            if cursor % PAGE != want {
                cursor += (want + PAGE - cursor % PAGE) % PAGE;
            }
            load_offsets.push(cursor);
            cursor += s.bytes.len() as u64;
        }
        // Non-loadable payloads.
        let extmap = encode_extmap(&self.externals);
        let extmap_off = cursor;
        cursor += extmap.len() as u64;

        let (symtab, strtab) = encode_symtab(&self.symbols, &self.aliases);
        let symtab_off = cursor;
        cursor += symtab.len() as u64;
        let strtab_off = cursor;
        cursor += strtab.len() as u64;

        // Section-header string table.
        let mut shstrtab = vec![0u8];
        let name_off = |name: &str, shstrtab: &mut Vec<u8>| -> u32 {
            let off = shstrtab.len() as u32;
            shstrtab.extend_from_slice(name.as_bytes());
            shstrtab.push(0);
            off
        };
        // Section table: null + loads + .extmap + .symtab + .strtab + .shstrtab
        struct Shdr {
            name: u32,
            sh_type: u32,
            flags: u64,
            addr: u64,
            off: u64,
            size: u64,
            link: u32,
            entsize: u64,
        }
        let mut shdrs = vec![Shdr { name: 0, sh_type: 0, flags: 0, addr: 0, off: 0, size: 0, link: 0, entsize: 0 }];
        for (s, off) in sections.iter().zip(&load_offsets) {
            let mut flags = SHF_ALLOC;
            if s.flags.x {
                flags |= SHF_EXECINSTR;
            }
            if s.flags.w {
                flags |= SHF_WRITE;
            }
            shdrs.push(Shdr {
                name: name_off(&s.name, &mut shstrtab),
                sh_type: SHT_PROGBITS,
                flags,
                addr: s.vaddr,
                off: *off,
                size: s.bytes.len() as u64,
                link: 0,
                entsize: 0,
            });
        }
        let strtab_index = (shdrs.len() + 2) as u32; // after .extmap and .symtab
        shdrs.push(Shdr {
            name: name_off(".extmap", &mut shstrtab),
            sh_type: SHT_PROGBITS,
            flags: 0,
            addr: 0,
            off: extmap_off,
            size: extmap.len() as u64,
            link: 0,
            entsize: 0,
        });
        shdrs.push(Shdr {
            name: name_off(".symtab", &mut shstrtab),
            sh_type: SHT_SYMTAB,
            flags: 0,
            addr: 0,
            off: symtab_off,
            size: symtab.len() as u64,
            link: strtab_index,
            entsize: SYM_SIZE,
        });
        shdrs.push(Shdr {
            name: name_off(".strtab", &mut shstrtab),
            sh_type: SHT_STRTAB,
            flags: 0,
            addr: 0,
            off: strtab_off,
            size: strtab.len() as u64,
            link: 0,
            entsize: 0,
        });
        let shstrtab_off = cursor;
        let shstrndx = shdrs.len() as u16;
        shdrs.push(Shdr {
            name: name_off(".shstrtab", &mut shstrtab),
            sh_type: SHT_STRTAB,
            flags: 0,
            addr: 0,
            off: shstrtab_off,
            size: shstrtab.len() as u64,
            link: 0,
            entsize: 0,
        });
        cursor += shstrtab.len() as u64;
        let shdrs_off = (cursor + 7) & !7;

        // ---- emit ----
        let mut out = Vec::with_capacity(shdrs_off as usize + shdrs.len() * SHDR_SIZE as usize);
        // ELF header.
        out.extend_from_slice(&MAGIC);
        out.push(ELFCLASS64);
        out.push(ELFDATA2LSB);
        out.push(EV_CURRENT);
        out.extend_from_slice(&[0; 9]); // OS ABI + padding
        out.extend_from_slice(&(if self.shared_object { ET_DYN } else { ET_EXEC }).to_le_bytes());
        out.extend_from_slice(&EM_X86_64.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // e_version
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&phdrs_off.to_le_bytes());
        out.extend_from_slice(&shdrs_off.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        out.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(nload as u16).to_le_bytes());
        out.extend_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(shdrs.len() as u16).to_le_bytes());
        out.extend_from_slice(&shstrndx.to_le_bytes());
        debug_assert_eq!(out.len() as u64, EHDR_SIZE);

        // Program headers.
        for (s, off) in sections.iter().zip(&load_offsets) {
            out.extend_from_slice(&PT_LOAD.to_le_bytes());
            out.extend_from_slice(&s.flags.to_p_flags().to_le_bytes());
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&s.vaddr.to_le_bytes()); // p_vaddr
            out.extend_from_slice(&s.vaddr.to_le_bytes()); // p_paddr
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes()); // p_filesz
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes()); // p_memsz
            out.extend_from_slice(&PAGE.to_le_bytes());
        }

        // Section payloads.
        for (s, off) in sections.iter().zip(&load_offsets) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(&s.bytes);
        }
        out.resize(extmap_off as usize, 0);
        out.extend_from_slice(&extmap);
        out.extend_from_slice(&symtab);
        out.extend_from_slice(&strtab);
        out.extend_from_slice(&shstrtab);
        out.resize(shdrs_off as usize, 0);

        // Section headers.
        for h in &shdrs {
            out.extend_from_slice(&h.name.to_le_bytes());
            out.extend_from_slice(&h.sh_type.to_le_bytes());
            out.extend_from_slice(&h.flags.to_le_bytes());
            out.extend_from_slice(&h.addr.to_le_bytes());
            out.extend_from_slice(&h.off.to_le_bytes());
            out.extend_from_slice(&h.size.to_le_bytes());
            out.extend_from_slice(&h.link.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // sh_info
            out.extend_from_slice(&8u64.to_le_bytes()); // sh_addralign
            out.extend_from_slice(&h.entsize.to_le_bytes());
        }
        out
    }
}

fn encode_extmap(externals: &BTreeMap<u64, String>) -> Vec<u8> {
    let mut out = Vec::new();
    for (addr, name) in externals {
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out
}

fn encode_symtab(symbols: &BTreeMap<u64, String>, aliases: &[(u64, String)]) -> (Vec<u8>, Vec<u8>) {
    let mut symtab = vec![0u8; SYM_SIZE as usize]; // null symbol
    let mut strtab = vec![0u8];
    let all = symbols.iter().map(|(a, n)| (*a, n)).chain(aliases.iter().map(|(a, n)| (*a, n)));
    for (addr, name) in all {
        let name_off = strtab.len() as u32;
        strtab.extend_from_slice(name.as_bytes());
        strtab.push(0);
        symtab.extend_from_slice(&name_off.to_le_bytes());
        symtab.push(STB_GLOBAL_FUNC);
        symtab.push(0); // st_other
        symtab.extend_from_slice(&1u16.to_le_bytes()); // st_shndx (defined)
        symtab.extend_from_slice(&addr.to_le_bytes());
        symtab.extend_from_slice(&0u64.to_le_bytes()); // st_size
    }
    (symtab, strtab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_sections_rejected() {
        let _ = Builder::new()
            .section(".text", 0x401000, vec![0; 16], SegmentFlags::RX)
            .section(".data", 0x401008, vec![0; 16], SegmentFlags::RW);
    }

    #[test]
    fn to_binary_matches_sections() {
        let b = Builder::new()
            .entry(0x401000)
            .section(".text", 0x401000, vec![0xc3], SegmentFlags::RX)
            .section(".data", 0x601000, vec![1, 2, 3], SegmentFlags::RW)
            .external(0x400800, "memset")
            .to_binary();
        assert_eq!(b.entry, 0x401000);
        assert_eq!(b.segments.len(), 2);
        assert_eq!(b.external_at(0x400800), Some("memset"));
    }
}
