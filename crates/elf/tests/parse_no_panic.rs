//! `Binary::parse` must never panic — not on random bytes, and not on
//! structured corruptions of a valid image. Malformed input is a
//! `ParseError`, full stop.

use hgl_elf::{Binary, Builder, SegmentFlags};
use proptest::prelude::*;

fn valid_image() -> Vec<u8> {
    Builder::new()
        .entry(0x401000)
        .section(".text", 0x401000, vec![0x48, 0x89, 0xe5, 0xc3], SegmentFlags::RX)
        .section(".rodata", 0x402000, vec![9; 32], SegmentFlags::RO)
        .section(".data", 0x601000, vec![1, 2, 3, 4], SegmentFlags::RW)
        .external(0x400800, "memset")
        .symbol(0x401000, "main")
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Binary::parse(&bytes);
    }

    /// Random bytes rarely get past the magic check; this variant
    /// starts from a valid image and corrupts it, driving the deeper
    /// header/table paths.
    #[test]
    fn parse_never_panics_on_mutated_valid_images(
        flips in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
        truncate_to in any::<usize>(),
    ) {
        let mut image = valid_image();
        for (off, val) in flips {
            let len = image.len();
            image[off % len] = val;
        }
        if truncate_to.is_multiple_of(4) {
            let keep = truncate_to / 4 % (image.len() + 1);
            image.truncate(keep);
        }
        match Binary::parse(&image) {
            Ok(bin) => {
                // Parsed despite corruption: the loaded view must obey
                // the segment size cap the parser promises.
                for seg in &bin.segments {
                    prop_assert!(seg.bytes.len() <= 1 << 28);
                }
            }
            Err(e) => {
                // Structured error with a non-empty rendering.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
