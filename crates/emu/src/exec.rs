//! The instruction interpreter.

use crate::Machine;
use hgl_x86::{decode, Cond, DecodeError, Instr, Mnemonic, Operand, Reg, RegRef, RepPrefix, Width};
use std::fmt;

/// Outcome of a successful step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Execution continues at the new `rip`.
    Normal,
    /// `hlt`, `ud2` or `int3`: execution stops.
    Halt,
    /// `syscall` was executed; `rax` holds the call number. `rip` has
    /// advanced past the instruction.
    Syscall,
}

/// Errors during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The bytes at `rip` did not decode.
    Decode {
        /// Address of the faulting fetch.
        rip: u64,
        /// Underlying decode failure.
        err: DecodeError,
    },
    /// Division by zero or quotient overflow (`#DE`).
    DivideError,
    /// A `rep`-prefixed instruction exceeded the iteration cap.
    RepTooLong,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Decode { rip, err } => write!(f, "decode fault at {rip:#x}: {err}"),
            EmuError::DivideError => write!(f, "divide error (#DE)"),
            EmuError::RepTooLong => write!(f, "rep iteration cap exceeded"),
        }
    }
}

impl std::error::Error for EmuError {}

const REP_CAP: u64 = 1 << 24;

impl Machine {
    fn read_operand(&mut self, op: &Operand, w: Width, next_rip: u64) -> u64 {
        match op {
            Operand::Reg(r) => self.reg_ref(*r),
            Operand::Imm(v) => w.trunc(*v as u64),
            Operand::Mem(m) => {
                let ea = self.effective_addr(m, next_rip);
                self.mem.read(ea, m.size.bytes())
            }
        }
    }

    fn write_operand(&mut self, op: &Operand, v: u64, next_rip: u64) {
        match op {
            Operand::Reg(r) => self.set_reg(*r, v),
            Operand::Mem(m) => {
                let ea = self.effective_addr(m, next_rip);
                self.mem.write(ea, m.size.bytes(), v);
            }
            Operand::Imm(_) => unreachable!("immediate as destination"),
        }
    }

    fn eval_cond(&self, c: Cond) -> bool {
        let f = &self.flags;
        c.eval(f.cf, f.pf, f.zf, f.sf, f.of)
    }

    /// Execute one instruction at `rip`.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on decode faults, divide errors, or
    /// runaway `rep` loops.
    pub fn step(&mut self) -> Result<Event, EmuError> {
        let rip = self.rip;
        let mut window = [0u8; 15];
        for (i, b) in window.iter_mut().enumerate() {
            *b = self.mem.read_u8(rip.wrapping_add(i as u64));
        }
        let instr = decode(&window, rip).map_err(|err| EmuError::Decode { rip, err })?;
        self.exec(&instr)
    }

    /// Execute an already-decoded instruction (its `addr`/`len` must be
    /// correct for RIP-relative semantics).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::step`].
    pub fn exec(&mut self, instr: &Instr) -> Result<Event, EmuError> {
        let next = instr.next_addr();
        self.rip = next;
        self.tsc = self.tsc.wrapping_add(1);
        let w = instr.width;
        let ops = &instr.operands;

        match instr.mnemonic {
            Mnemonic::Mov | Mnemonic::Movabs => {
                let v = self.read_operand(&ops[1], w, next);
                self.write_operand(&ops[0], v, next);
            }
            Mnemonic::Movzx => {
                let v = self.read_operand(&ops[1], w, next);
                self.write_operand(&ops[0], v, next);
            }
            Mnemonic::Movsx | Mnemonic::Movsxd => {
                let srcw = ops[1].width().unwrap_or(Width::B4);
                let v = self.read_operand(&ops[1], srcw, next);
                self.write_operand(&ops[0], w.trunc(srcw.sext(v)), next);
            }
            Mnemonic::Lea => {
                if let Operand::Mem(m) = &ops[1] {
                    let ea = self.effective_addr(m, next);
                    self.write_operand(&ops[0], w.trunc(ea), next);
                }
            }
            Mnemonic::Xchg => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                self.write_operand(&ops[0], b, next);
                self.write_operand(&ops[1], a, next);
            }
            Mnemonic::Cmovcc(c) => {
                let v = if self.eval_cond(c) {
                    self.read_operand(&ops[1], w, next)
                } else {
                    self.read_operand(&ops[0], w, next)
                };
                // cmov always writes (zero-extending at 32 bits).
                self.write_operand(&ops[0], v, next);
            }
            Mnemonic::Setcc(c) => {
                let v = self.eval_cond(c) as u64;
                self.write_operand(&ops[0], v, next);
            }
            Mnemonic::Push => {
                let v = self.read_operand(&ops[0], Width::B8, next);
                let v = if let Operand::Imm(i) = ops[0] { i as u64 } else { v };
                let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
                self.set_reg(RegRef::full(Reg::Rsp), rsp);
                self.mem.write(rsp, 8, v);
            }
            Mnemonic::Pop => {
                let rsp = self.reg(Reg::Rsp);
                let v = self.mem.read(rsp, 8);
                self.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8));
                self.write_operand(&ops[0], v, next);
            }
            Mnemonic::Add | Mnemonic::Adc => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                let cin = (instr.mnemonic == Mnemonic::Adc && self.flags.cf) as u64;
                let r = self.add_with_flags(w, a, b, cin);
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Sub | Mnemonic::Sbb => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                let bin = (instr.mnemonic == Mnemonic::Sbb && self.flags.cf) as u64;
                let r = self.sub_with_flags(w, a, b, bin);
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Cmp => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                let _ = self.sub_with_flags(w, a, b, 0);
            }
            Mnemonic::Inc | Mnemonic::Dec => {
                let a = self.read_operand(&ops[0], w, next);
                let cf = self.flags.cf;
                let r = if instr.mnemonic == Mnemonic::Inc {
                    self.add_with_flags(w, a, 1, 0)
                } else {
                    self.sub_with_flags(w, a, 1, 0)
                };
                self.flags.cf = cf; // inc/dec preserve CF
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Neg => {
                let a = w.trunc(self.read_operand(&ops[0], w, next));
                let r = self.sub_with_flags(w, 0, a, 0);
                self.flags.cf = a != 0;
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Not => {
                let a = self.read_operand(&ops[0], w, next);
                self.write_operand(&ops[0], w.trunc(!a), next);
            }
            Mnemonic::And | Mnemonic::Or | Mnemonic::Xor | Mnemonic::Test => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                let r = w.trunc(match instr.mnemonic {
                    Mnemonic::And | Mnemonic::Test => a & b,
                    Mnemonic::Or => a | b,
                    _ => a ^ b,
                });
                self.flags.cf = false;
                self.flags.of = false;
                self.flags.set_result(w, r);
                if instr.mnemonic != Mnemonic::Test {
                    self.write_operand(&ops[0], r, next);
                }
            }
            Mnemonic::Shl | Mnemonic::Shr | Mnemonic::Sar => {
                let a = w.trunc(self.read_operand(&ops[0], w, next));
                let count = self.read_operand(&ops[1], Width::B1, next)
                    & if w == Width::B8 { 63 } else { 31 };
                if count != 0 {
                    let bits = w.bits() as u64;
                    let r = match instr.mnemonic {
                        Mnemonic::Shl => {
                            self.flags.cf = count <= bits && (a >> (bits - count)) & 1 == 1;
                            w.trunc(a.checked_shl(count as u32).unwrap_or(0))
                        }
                        Mnemonic::Shr => {
                            self.flags.cf = (a >> (count - 1)) & 1 == 1;
                            a.checked_shr(count as u32).unwrap_or(0)
                        }
                        _ => {
                            let sa = w.sext(a) as i64;
                            self.flags.cf = (sa >> (count - 1).min(63)) & 1 == 1;
                            w.trunc((sa >> count.min(63)) as u64)
                        }
                    };
                    self.flags.of = match instr.mnemonic {
                        Mnemonic::Shl => w.sign_bit(r) != self.flags.cf,
                        Mnemonic::Shr => w.sign_bit(a),
                        _ => false,
                    };
                    self.flags.set_result(w, r);
                    self.write_operand(&ops[0], r, next);
                } else {
                    // Count 0: no flag updates, but the (unchanged)
                    // result is still written for 32-bit zero-extension.
                    self.write_operand(&ops[0], a, next);
                }
            }
            Mnemonic::Rol | Mnemonic::Ror | Mnemonic::Rcl | Mnemonic::Rcr => {
                let a = w.trunc(self.read_operand(&ops[0], w, next));
                let bits = w.bits() as u64;
                let raw = self.read_operand(&ops[1], Width::B1, next)
                    & if w == Width::B8 { 63 } else { 31 };
                let r = match instr.mnemonic {
                    Mnemonic::Rol => {
                        let c = raw % bits;
                        let r = if c == 0 { a } else { w.trunc(a << c | a >> (bits - c)) };
                        if raw != 0 {
                            self.flags.cf = r & 1 == 1;
                        }
                        r
                    }
                    Mnemonic::Ror => {
                        let c = raw % bits;
                        let r = if c == 0 { a } else { w.trunc(a >> c | a << (bits - c)) };
                        if raw != 0 {
                            self.flags.cf = w.sign_bit(r);
                        }
                        r
                    }
                    _ => {
                        // Rotate through carry: bits+1 wide rotation.
                        let c = raw % (bits + 1);
                        let wide = a | (self.flags.cf as u64) << bits; // bits+1 bits
                        let r = if c == 0 {
                            wide
                        } else if instr.mnemonic == Mnemonic::Rcl {
                            ((wide << c) | (wide >> (bits + 1 - c)))
                                & ((1u128 << (bits + 1)) - 1) as u64
                        } else {
                            ((wide >> c) | (wide << (bits + 1 - c)))
                                & ((1u128 << (bits + 1)) - 1) as u64
                        };
                        self.flags.cf = (r >> bits) & 1 == 1;
                        w.trunc(r)
                    }
                };
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Shld | Mnemonic::Shrd => {
                let a = w.trunc(self.read_operand(&ops[0], w, next));
                let b = w.trunc(self.read_operand(&ops[1], w, next));
                let bits = w.bits() as u64;
                let count = self.read_operand(&ops[2], Width::B1, next)
                    & if w == Width::B8 { 63 } else { 31 };
                if count != 0 && count < bits {
                    let r = if instr.mnemonic == Mnemonic::Shld {
                        self.flags.cf = (a >> (bits - count)) & 1 == 1;
                        w.trunc(a << count | b >> (bits - count))
                    } else {
                        self.flags.cf = (a >> (count - 1)) & 1 == 1;
                        w.trunc(a >> count | b << (bits - count))
                    };
                    self.flags.set_result(w, r);
                    self.write_operand(&ops[0], r, next);
                } else if count == 0 {
                    self.write_operand(&ops[0], a, next);
                } else {
                    // count >= bits: result undefined; write 0 deterministically.
                    self.write_operand(&ops[0], 0, next);
                }
            }
            Mnemonic::Bt | Mnemonic::Bts | Mnemonic::Btr | Mnemonic::Btc => {
                let idx = self.read_operand(&ops[1], w, next);
                match &ops[0] {
                    Operand::Mem(m) => {
                        let sidx = w.sext(idx) as i64;
                        let byte = self
                            .effective_addr(m, next)
                            .wrapping_add(sidx.div_euclid(8) as u64);
                        let bit = sidx.rem_euclid(8) as u32;
                        let old = self.mem.read_u8(byte);
                        self.flags.cf = (old >> bit) & 1 == 1;
                        let new = match instr.mnemonic {
                            Mnemonic::Bts => old | 1 << bit,
                            Mnemonic::Btr => old & !(1 << bit),
                            Mnemonic::Btc => old ^ 1 << bit,
                            _ => old,
                        };
                        if instr.mnemonic != Mnemonic::Bt {
                            self.mem.write_u8(byte, new);
                        }
                    }
                    _ => {
                        let bit = (idx % w.bits() as u64) as u32;
                        let a = self.read_operand(&ops[0], w, next);
                        self.flags.cf = (a >> bit) & 1 == 1;
                        let new = match instr.mnemonic {
                            Mnemonic::Bts => a | 1 << bit,
                            Mnemonic::Btr => a & !(1u64 << bit),
                            Mnemonic::Btc => a ^ 1 << bit,
                            _ => a,
                        };
                        if instr.mnemonic != Mnemonic::Bt {
                            self.write_operand(&ops[0], w.trunc(new), next);
                        }
                    }
                }
            }
            Mnemonic::Bsf | Mnemonic::Bsr | Mnemonic::Tzcnt | Mnemonic::Popcnt => {
                let a = w.trunc(self.read_operand(&ops[1], w, next));
                match instr.mnemonic {
                    Mnemonic::Popcnt => {
                        let r = a.count_ones() as u64;
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.flags.set_result(w, r);
                        self.write_operand(&ops[0], r, next);
                    }
                    Mnemonic::Tzcnt => {
                        let r = if a == 0 { w.bits() as u64 } else { a.trailing_zeros() as u64 };
                        self.flags.cf = a == 0;
                        self.flags.zf = r == 0;
                        self.write_operand(&ops[0], r, next);
                    }
                    _ => {
                        self.flags.zf = a == 0;
                        if a != 0 {
                            let r = if instr.mnemonic == Mnemonic::Bsf {
                                a.trailing_zeros() as u64
                            } else {
                                63 - a.leading_zeros() as u64
                            };
                            self.write_operand(&ops[0], r, next);
                        }
                        // a == 0: destination undefined; left unchanged.
                    }
                }
            }
            Mnemonic::Cbw | Mnemonic::Cwde | Mnemonic::Cdqe => {
                let (from, to) = match instr.mnemonic {
                    Mnemonic::Cbw => (Width::B1, Width::B2),
                    Mnemonic::Cwde => (Width::B2, Width::B4),
                    _ => (Width::B4, Width::B8),
                };
                let a = self.reg_ref(RegRef::new(Reg::Rax, from));
                self.set_reg(RegRef::new(Reg::Rax, to), to.trunc(from.sext(a)));
            }
            Mnemonic::Cwd | Mnemonic::Cdq | Mnemonic::Cqo => {
                let wd = match instr.mnemonic {
                    Mnemonic::Cwd => Width::B2,
                    Mnemonic::Cdq => Width::B4,
                    _ => Width::B8,
                };
                let a = self.reg_ref(RegRef::new(Reg::Rax, wd));
                let hi = if wd.sign_bit(a) { wd.mask() } else { 0 };
                self.set_reg(RegRef::new(Reg::Rdx, wd), hi);
            }
            Mnemonic::Mul => {
                let a = w.trunc(self.reg_ref(RegRef::new(Reg::Rax, w)));
                let b = w.trunc(self.read_operand(&ops[0], w, next));
                let prod = (a as u128) * (b as u128);
                let lo = w.trunc(prod as u64);
                let hi = w.trunc((prod >> w.bits()) as u64);
                self.write_mul_result(w, lo, hi);
                let over = hi != 0;
                self.flags.cf = over;
                self.flags.of = over;
            }
            Mnemonic::Imul => match ops.len() {
                1 => {
                    let a = w.sext(self.reg_ref(RegRef::new(Reg::Rax, w))) as i64 as i128;
                    let b = w.sext(w.trunc(self.read_operand(&ops[0], w, next))) as i64 as i128;
                    let prod = a * b;
                    let lo = w.trunc(prod as u64);
                    let hi = w.trunc((prod >> w.bits()) as u64);
                    self.write_mul_result(w, lo, hi);
                    let over = prod != w.sext(lo) as i64 as i128;
                    self.flags.cf = over;
                    self.flags.of = over;
                }
                n => {
                    let a = w.sext(w.trunc(self.read_operand(&ops[1], w, next))) as i64 as i128;
                    let b = if n == 3 {
                        w.sext(w.trunc(self.read_operand(&ops[2], w, next))) as i64 as i128
                    } else {
                        w.sext(w.trunc(self.read_operand(&ops[0], w, next))) as i64 as i128
                    };
                    let prod = a * b;
                    let r = w.trunc(prod as u64);
                    let over = prod != w.sext(r) as i64 as i128;
                    self.flags.cf = over;
                    self.flags.of = over;
                    self.write_operand(&ops[0], r, next);
                }
            },
            Mnemonic::Div => {
                let d = w.trunc(self.read_operand(&ops[0], w, next));
                if d == 0 {
                    return Err(EmuError::DivideError);
                }
                let lo = w.trunc(self.reg_ref(RegRef::new(Reg::Rax, w))) as u128;
                let hi = w.trunc(self.reg_ref(RegRef::new(Reg::Rdx, w))) as u128;
                let n = (hi << w.bits()) | lo;
                let q = n / d as u128;
                if q > w.mask() as u128 {
                    return Err(EmuError::DivideError);
                }
                let r = (n % d as u128) as u64;
                self.write_div_result(w, q as u64, r);
            }
            Mnemonic::Idiv => {
                let d = w.sext(w.trunc(self.read_operand(&ops[0], w, next))) as i64 as i128;
                if d == 0 {
                    return Err(EmuError::DivideError);
                }
                let lo = w.trunc(self.reg_ref(RegRef::new(Reg::Rax, w))) as u128;
                let hi = w.trunc(self.reg_ref(RegRef::new(Reg::Rdx, w))) as u128;
                let raw = (hi << w.bits()) | lo;
                // Sign-extend the 2w-bit value.
                let shift = 128 - 2 * w.bits();
                let n = ((raw << shift) as i128) >> shift;
                let q = n / d;
                let min = -((w.mask() as i128 + 1) / 2);
                let max = (w.mask() as i128) / 2;
                if q < min || q > max {
                    return Err(EmuError::DivideError);
                }
                let r = (n % d) as u64;
                self.write_div_result(w, q as u64, w.trunc(r));
            }
            Mnemonic::Jmp => {
                self.rip = self.branch_target(&ops[0], next);
            }
            Mnemonic::Bswap => {
                let v = w.trunc(self.read_operand(&ops[0], w, next));
                let r = match w {
                    Width::B8 => v.swap_bytes(),
                    _ => (v as u32).swap_bytes() as u64,
                };
                self.write_operand(&ops[0], r, next);
            }
            Mnemonic::Jrcxz => {
                if self.reg(Reg::Rcx) == 0 {
                    self.rip = self.branch_target(&ops[0], next);
                }
            }
            Mnemonic::Loop | Mnemonic::Loope | Mnemonic::Loopne => {
                let rcx = self.reg(Reg::Rcx).wrapping_sub(1);
                self.set_reg(RegRef::full(Reg::Rcx), rcx);
                let zf_ok = match instr.mnemonic {
                    Mnemonic::Loope => self.flags.zf,
                    Mnemonic::Loopne => !self.flags.zf,
                    _ => true,
                };
                if rcx != 0 && zf_ok {
                    self.rip = self.branch_target(&ops[0], next);
                }
            }
            Mnemonic::Jcc(c) => {
                if self.eval_cond(c) {
                    self.rip = self.branch_target(&ops[0], next);
                }
            }
            Mnemonic::Call => {
                let target = self.branch_target(&ops[0], next);
                let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
                self.set_reg(RegRef::full(Reg::Rsp), rsp);
                self.mem.write(rsp, 8, next);
                self.rip = target;
            }
            Mnemonic::Ret => {
                let rsp = self.reg(Reg::Rsp);
                let ra = self.mem.read(rsp, 8);
                let extra = if let Some(Operand::Imm(i)) = ops.first() { *i as u64 } else { 0 };
                self.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8).wrapping_add(extra));
                self.rip = ra;
            }
            Mnemonic::Leave => {
                let rbp = self.reg(Reg::Rbp);
                let v = self.mem.read(rbp, 8);
                self.set_reg(RegRef::full(Reg::Rsp), rbp.wrapping_add(8));
                self.set_reg(RegRef::full(Reg::Rbp), v);
            }
            Mnemonic::Movs | Mnemonic::Stos | Mnemonic::Lods | Mnemonic::Scas | Mnemonic::Cmps => {
                self.exec_string(instr)?;
            }
            Mnemonic::Stc => self.flags.cf = true,
            Mnemonic::Clc => self.flags.cf = false,
            Mnemonic::Cmc => self.flags.cf = !self.flags.cf,
            Mnemonic::Std => self.flags.df = true,
            Mnemonic::Cld => self.flags.df = false,
            Mnemonic::Nop | Mnemonic::Endbr64 => {}
            Mnemonic::Ud2 | Mnemonic::Int3 | Mnemonic::Hlt => return Ok(Event::Halt),
            Mnemonic::Syscall => {
                // ABI: rcx := next rip, r11 := rflags.
                self.set_reg(RegRef::full(Reg::Rcx), next);
                self.set_reg(RegRef::full(Reg::R11), 0x202);
                return Ok(Event::Syscall);
            }
            Mnemonic::Cpuid => {
                // Deterministic model values.
                self.set_reg(RegRef::new(Reg::Rax, Width::B4), 0);
                self.set_reg(RegRef::new(Reg::Rbx, Width::B4), 0x756e_6547);
                self.set_reg(RegRef::new(Reg::Rcx, Width::B4), 0x6c65_746e);
                self.set_reg(RegRef::new(Reg::Rdx, Width::B4), 0x4965_6e69);
            }
            Mnemonic::Rdtsc => {
                self.set_reg(RegRef::new(Reg::Rax, Width::B4), self.tsc & 0xffff_ffff);
                self.set_reg(RegRef::new(Reg::Rdx, Width::B4), self.tsc >> 32);
            }
            Mnemonic::Cmpxchg => {
                let dst = w.trunc(self.read_operand(&ops[0], w, next));
                let acc = w.trunc(self.reg_ref(RegRef::new(Reg::Rax, w)));
                let _ = self.sub_with_flags(w, acc, dst, 0);
                if acc == dst {
                    let src = self.read_operand(&ops[1], w, next);
                    self.write_operand(&ops[0], w.trunc(src), next);
                } else {
                    self.set_reg(RegRef::new(Reg::Rax, w), dst);
                }
            }
            Mnemonic::Xadd => {
                let a = self.read_operand(&ops[0], w, next);
                let b = self.read_operand(&ops[1], w, next);
                let r = self.add_with_flags(w, a, b, 0);
                self.write_operand(&ops[1], w.trunc(a), next);
                self.write_operand(&ops[0], r, next);
            }
        }
        Ok(Event::Normal)
    }

    fn branch_target(&mut self, op: &Operand, next: u64) -> u64 {
        match op {
            Operand::Imm(t) => *t as u64,
            other => self.read_operand(other, Width::B8, next),
        }
    }

    fn write_mul_result(&mut self, w: Width, lo: u64, hi: u64) {
        if w == Width::B1 {
            // ax = al * src
            self.set_reg(RegRef::new(Reg::Rax, Width::B2), lo | hi << 8);
        } else {
            self.set_reg(RegRef::new(Reg::Rax, w), lo);
            self.set_reg(RegRef::new(Reg::Rdx, w), hi);
        }
    }

    fn write_div_result(&mut self, w: Width, q: u64, r: u64) {
        if w == Width::B1 {
            self.set_reg(RegRef::new(Reg::Rax, Width::B2), (q & 0xff) | (r & 0xff) << 8);
        } else {
            self.set_reg(RegRef::new(Reg::Rax, w), q);
            self.set_reg(RegRef::new(Reg::Rdx, w), r);
        }
    }

    fn add_with_flags(&mut self, w: Width, a: u64, b: u64, cin: u64) -> u64 {
        let (a, b) = (w.trunc(a), w.trunc(b));
        let full = a as u128 + b as u128 + cin as u128;
        let r = w.trunc(full as u64);
        self.flags.cf = full > w.mask() as u128;
        let (sa, sb, sr) = (w.sign_bit(a), w.sign_bit(b), w.sign_bit(r));
        self.flags.of = sa == sb && sr != sa;
        self.flags.af = ((a ^ b ^ r) >> 4) & 1 == 1;
        self.flags.set_result(w, r);
        r
    }

    fn sub_with_flags(&mut self, w: Width, a: u64, b: u64, bin: u64) -> u64 {
        let (a, b) = (w.trunc(a), w.trunc(b));
        let r = w.trunc(a.wrapping_sub(b).wrapping_sub(bin));
        self.flags.cf = (a as u128) < b as u128 + bin as u128;
        let (sa, sb, sr) = (w.sign_bit(a), w.sign_bit(b), w.sign_bit(r));
        self.flags.of = sa != sb && sr != sa;
        self.flags.af = ((a ^ b ^ r) >> 4) & 1 == 1;
        self.flags.set_result(w, r);
        r
    }

    fn exec_string(&mut self, instr: &Instr) -> Result<Event, EmuError> {
        let w = instr.width;
        let sz = w.bytes() as u64;
        let step = |df: bool| if df { sz.wrapping_neg() } else { sz };
        let mut iterations = 0u64;
        loop {
            if instr.rep.is_some() && self.reg(Reg::Rcx) == 0 {
                break;
            }
            iterations += 1;
            if iterations > REP_CAP {
                return Err(EmuError::RepTooLong);
            }
            let d = step(self.flags.df);
            let (rsi, rdi) = (self.reg(Reg::Rsi), self.reg(Reg::Rdi));
            match instr.mnemonic {
                Mnemonic::Movs => {
                    let v = self.mem.read(rsi, w.bytes());
                    self.mem.write(rdi, w.bytes(), v);
                    self.set_reg(RegRef::full(Reg::Rsi), rsi.wrapping_add(d));
                    self.set_reg(RegRef::full(Reg::Rdi), rdi.wrapping_add(d));
                }
                Mnemonic::Stos => {
                    let v = self.reg_ref(RegRef::new(Reg::Rax, w));
                    self.mem.write(rdi, w.bytes(), v);
                    self.set_reg(RegRef::full(Reg::Rdi), rdi.wrapping_add(d));
                }
                Mnemonic::Lods => {
                    let v = self.mem.read(rsi, w.bytes());
                    self.set_reg(RegRef::new(Reg::Rax, w), v);
                    self.set_reg(RegRef::full(Reg::Rsi), rsi.wrapping_add(d));
                }
                Mnemonic::Scas => {
                    let a = self.reg_ref(RegRef::new(Reg::Rax, w));
                    let b = self.mem.read(rdi, w.bytes());
                    let _ = self.sub_with_flags(w, a, b, 0);
                    self.set_reg(RegRef::full(Reg::Rdi), rdi.wrapping_add(d));
                }
                Mnemonic::Cmps => {
                    let a = self.mem.read(rsi, w.bytes());
                    let b = self.mem.read(rdi, w.bytes());
                    let _ = self.sub_with_flags(w, a, b, 0);
                    self.set_reg(RegRef::full(Reg::Rsi), rsi.wrapping_add(d));
                    self.set_reg(RegRef::full(Reg::Rdi), rdi.wrapping_add(d));
                }
                _ => unreachable!("not a string op"),
            }
            match instr.rep {
                None => break,
                Some(rep) => {
                    let rcx = self.reg(Reg::Rcx).wrapping_sub(1);
                    self.set_reg(RegRef::full(Reg::Rcx), rcx);
                    let scan = matches!(instr.mnemonic, Mnemonic::Scas | Mnemonic::Cmps);
                    if scan {
                        match rep {
                            RepPrefix::Rep if !self.flags.zf => break,
                            RepPrefix::Repne if self.flags.zf => break,
                            _ => {}
                        }
                    }
                }
            }
        }
        Ok(Event::Normal)
    }

    /// Run until a halt/syscall event, an error, or `max_steps`.
    ///
    /// Returns the event and the number of executed instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`]; exceeding `max_steps` returns
    /// `Ok((Event::Normal, max_steps))`.
    pub fn run(&mut self, max_steps: u64) -> Result<(Event, u64), EmuError> {
        for n in 0..max_steps {
            match self.step()? {
                Event::Normal => {}
                ev => return Ok((ev, n + 1)),
            }
        }
        Ok((Event::Normal, max_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mem;

    fn machine_with(code: &[u8], at: u64) -> Machine {
        let mut m = Machine::new(Mem::default());
        m.mem.load(at, code);
        m.rip = at;
        m
    }

    #[test]
    fn add_sets_flags() {
        // add rax, rbx
        let mut m = machine_with(&[0x48, 0x01, 0xd8], 0x1000);
        m.set_reg(RegRef::full(Reg::Rax), u64::MAX);
        m.set_reg(RegRef::full(Reg::Rbx), 1);
        m.step().expect("steps");
        assert_eq!(m.reg(Reg::Rax), 0);
        assert!(m.flags.cf && m.flags.zf && !m.flags.of);
    }

    #[test]
    fn signed_overflow() {
        // add eax, ebx with INT_MAX + 1
        let mut m = machine_with(&[0x01, 0xd8], 0x1000);
        m.set_reg(RegRef::full(Reg::Rax), 0x7fff_ffff);
        m.set_reg(RegRef::full(Reg::Rbx), 1);
        m.step().expect("steps");
        assert_eq!(m.reg(Reg::Rax), 0x8000_0000);
        assert!(m.flags.of && m.flags.sf && !m.flags.cf);
    }

    #[test]
    fn cmp_ja_flow() {
        // cmp eax, 0xc3 ; ja +0x18  (the §2 prologue)
        let mut m = machine_with(&[0x3d, 0xc3, 0x00, 0x00, 0x00, 0x0f, 0x87, 0x18, 0x00, 0x00, 0x00], 0);
        m.set_reg(RegRef::full(Reg::Rax), 0x10);
        m.step().expect("cmp");
        m.step().expect("ja");
        assert_eq!(m.rip, 11, "not taken for 0x10 <= 0xc3");

        let mut m2 = machine_with(&[0x3d, 0xc3, 0x00, 0x00, 0x00, 0x0f, 0x87, 0x18, 0x00, 0x00, 0x00], 0);
        m2.set_reg(RegRef::full(Reg::Rax), 0x200);
        m2.step().expect("cmp");
        m2.step().expect("ja");
        assert_eq!(m2.rip, 11 + 0x18, "taken for 0x200 > 0xc3");
    }

    #[test]
    fn push_pop_call_ret() {
        // call +0 ; (fall into) pop rax
        let mut m = machine_with(&[0xe8, 0x00, 0x00, 0x00, 0x00, 0x58], 0x1000);
        m.set_reg(RegRef::full(Reg::Rsp), 0x8000);
        m.step().expect("call");
        assert_eq!(m.rip, 0x1005);
        assert_eq!(m.reg(Reg::Rsp), 0x7ff8);
        m.step().expect("pop");
        assert_eq!(m.reg(Reg::Rax), 0x1005);
        assert_eq!(m.reg(Reg::Rsp), 0x8000);
    }

    #[test]
    fn div_by_zero_faults() {
        // div rcx with rcx = 0
        let mut m = machine_with(&[0x48, 0xf7, 0xf1], 0);
        assert_eq!(m.step(), Err(EmuError::DivideError));
    }

    #[test]
    fn div_quotient() {
        let mut m = machine_with(&[0x48, 0xf7, 0xf1], 0);
        m.set_reg(RegRef::full(Reg::Rax), 100);
        m.set_reg(RegRef::full(Reg::Rdx), 0);
        m.set_reg(RegRef::full(Reg::Rcx), 7);
        m.step().expect("div");
        assert_eq!(m.reg(Reg::Rax), 14);
        assert_eq!(m.reg(Reg::Rdx), 2);
    }

    #[test]
    fn idiv_negative() {
        // idiv rcx: -100 / 7 = -14 rem -2
        let mut m = machine_with(&[0x48, 0xf7, 0xf9], 0);
        m.set_reg(RegRef::full(Reg::Rax), (-100i64) as u64);
        m.set_reg(RegRef::full(Reg::Rdx), u64::MAX);
        m.set_reg(RegRef::full(Reg::Rcx), 7);
        m.step().expect("idiv");
        assert_eq!(m.reg(Reg::Rax) as i64, -14);
        assert_eq!(m.reg(Reg::Rdx) as i64, -2);
    }

    #[test]
    fn rep_stosq_fills() {
        // rep stosq
        let mut m = machine_with(&[0xf3, 0x48, 0xab], 0);
        m.set_reg(RegRef::full(Reg::Rdi), 0x2000);
        m.set_reg(RegRef::full(Reg::Rcx), 4);
        m.set_reg(RegRef::full(Reg::Rax), 0xdead_beef);
        m.step().expect("rep stosq");
        assert_eq!(m.reg(Reg::Rcx), 0);
        assert_eq!(m.reg(Reg::Rdi), 0x2020);
        for i in 0..4 {
            assert_eq!(m.mem.read(0x2000 + 8 * i, 8), 0xdead_beef);
        }
    }

    #[test]
    fn repne_scasb_strlen() {
        // repne scasb over "abc\0"
        let mut m = machine_with(&[0xf2, 0xae], 0);
        m.mem.load(0x3000, b"abc\0");
        m.set_reg(RegRef::full(Reg::Rdi), 0x3000);
        m.set_reg(RegRef::full(Reg::Rcx), u64::MAX);
        m.set_reg(RegRef::full(Reg::Rax), 0);
        m.step().expect("repne scasb");
        // rdi stops one past the NUL.
        assert_eq!(m.reg(Reg::Rdi), 0x3004);
    }

    #[test]
    fn weird_edge_concrete_execution() {
        // The §2 example, 64-bit: when rdi == rsi the jmp lands on
        // address 1 (mid-instruction), executing 0xc3 = ret.
        // 0x0: cmp eax, 0xc3           3d c3 00 00 00
        // 0x5: ja  0x25                0f 87 1b 00 00 00  (wherever)
        // 0xb: mov rax, [rax*8+0x5000] 48 8b 04 c5 00 50 00 00
        // 0x13: mov [rdi], rax         48 89 07
        // 0x16: mov qword [rsi], 1     48 c7 06 01 00 00 00
        // 0x1d: jmp [rdi]              ff 27
        let code = [
            0x3d, 0xc3, 0x00, 0x00, 0x00, //
            0x0f, 0x87, 0x1b, 0x00, 0x00, 0x00, //
            0x48, 0x8b, 0x04, 0xc5, 0x00, 0x50, 0x00, 0x00, //
            0x48, 0x89, 0x07, //
            0x48, 0xc7, 0x06, 0x01, 0x00, 0x00, 0x00, //
            0xff, 0x27,
        ];
        let mut m = machine_with(&code, 0x0);
        m.mem.write(0x5000, 8, 0x100); // jump table entry 0 -> 0x100
        m.set_reg(RegRef::full(Reg::Rax), 0);
        m.set_reg(RegRef::full(Reg::Rdi), 0x9000);
        m.set_reg(RegRef::full(Reg::Rsi), 0x9000); // ALIAS!
        for _ in 0..5 {
            m.step().expect("step");
        }
        // jmp [rdi] reads 1, not 0x100: the weird edge.
        m.step().expect("jmp");
        assert_eq!(m.rip, 1);

        // Without aliasing the intended target is reached.
        let mut m2 = machine_with(&code, 0x0);
        m2.mem.write(0x5000, 8, 0x100);
        m2.set_reg(RegRef::full(Reg::Rax), 0);
        m2.set_reg(RegRef::full(Reg::Rdi), 0x9000);
        m2.set_reg(RegRef::full(Reg::Rsi), 0xa000);
        for _ in 0..6 {
            m2.step().expect("step");
        }
        assert_eq!(m2.rip, 0x100);
    }

    #[test]
    fn leave_unwinds_frame() {
        // push rbp; mov rbp, rsp; sub rsp, 0x20; leave; ret
        let code = [0x55, 0x48, 0x89, 0xe5, 0x48, 0x83, 0xec, 0x20, 0xc9, 0xc3];
        let mut m = machine_with(&code, 0x1000);
        m.set_reg(RegRef::full(Reg::Rsp), 0x8000);
        m.mem.write(0x8000, 8, 0xdead); // return address
        m.set_reg(RegRef::full(Reg::Rbp), 0x1234_5678);
        for _ in 0..4 {
            m.step().expect("step");
        }
        assert_eq!(m.reg(Reg::Rsp), 0x8000);
        assert_eq!(m.reg(Reg::Rbp), 0x1234_5678);
        m.step().expect("ret");
        assert_eq!(m.rip, 0xdead);
    }

    #[test]
    fn run_until_halt() {
        // inc rax ; hlt
        let mut m = machine_with(&[0x48, 0xff, 0xc0, 0xf4], 0);
        let (ev, steps) = m.run(100).expect("runs");
        assert_eq!(ev, Event::Halt);
        assert_eq!(steps, 2);
        assert_eq!(m.reg(Reg::Rax), 1);
    }

    #[test]
    fn setcc_cmovcc() {
        // cmp rax, rbx; sete cl; cmove rdx, rbx
        let code = [0x48, 0x39, 0xd8, 0x0f, 0x94, 0xc1, 0x48, 0x0f, 0x44, 0xd3];
        let mut m = machine_with(&code, 0);
        m.set_reg(RegRef::full(Reg::Rax), 5);
        m.set_reg(RegRef::full(Reg::Rbx), 5);
        m.set_reg(RegRef::full(Reg::Rdx), 99);
        for _ in 0..3 {
            m.step().expect("step");
        }
        assert_eq!(m.reg_ref(RegRef::new(Reg::Rcx, Width::B1)), 1);
        assert_eq!(m.reg(Reg::Rdx), 5);
    }
}

#[cfg(test)]
mod loop_tests {
    use super::*;
    use crate::Mem;

    #[test]
    fn bswap_swaps() {
        // bswap rax
        let mut m = Machine::new(Mem::default());
        m.mem.load(0, &[0x48, 0x0f, 0xc8]);
        m.set_reg(RegRef::full(Reg::Rax), 0x1122334455667788);
        m.step().expect("steps");
        assert_eq!(m.reg(Reg::Rax), 0x8877665544332211);
        // bswap eax zero-extends.
        let mut m2 = Machine::new(Mem::default());
        m2.mem.load(0, &[0x0f, 0xc8]);
        m2.set_reg(RegRef::full(Reg::Rax), 0xffff_ffff_1234_5678);
        m2.step().expect("steps");
        assert_eq!(m2.reg(Reg::Rax), 0x7856_3412);
    }

    #[test]
    fn loop_counts_down() {
        // mov ecx, 3 ; loop self  — loops twice then falls through.
        let code = [0xb9, 0x03, 0x00, 0x00, 0x00, 0xe2, 0xfe, 0x90];
        let mut m = Machine::new(Mem::default());
        m.mem.load(0, &code);
        m.step().expect("mov");
        let mut iterations = 0;
        while m.rip == 5 {
            m.step().expect("loop");
            iterations += 1;
            assert!(iterations < 10);
        }
        assert_eq!(m.reg(Reg::Rcx), 0);
        assert_eq!(m.rip, 7);
        assert_eq!(iterations, 3, "taken twice, fall-through once");
    }

    #[test]
    fn jrcxz_takes_on_zero() {
        let code = [0xe3, 0x10];
        let mut m = Machine::new(Mem::default());
        m.mem.load(0, &code);
        m.set_reg(RegRef::full(Reg::Rcx), 0);
        m.step().expect("jrcxz");
        assert_eq!(m.rip, 0x12);
        let mut m2 = Machine::new(Mem::default());
        m2.mem.load(0, &code);
        m2.set_reg(RegRef::full(Reg::Rcx), 5);
        m2.step().expect("jrcxz");
        assert_eq!(m2.rip, 2);
    }
}
