//! # hgl-emu: concrete x86-64 interpreter
//!
//! A byte-level, little-endian interpreter for the instruction subset
//! modelled by `hgl-x86`. It plays the role of the paper's *formal
//! instruction semantics* (§5.2: "a formal model of the semantics of
//! roughly 120 different x86-64 assembly instructions... register
//! aliasing and a byte-level little-endian memory model"):
//!
//! 1. it is the ground truth against which the lifter's symbolic
//!    transformer `τ` is differentially tested, and
//! 2. the Step-2 validator executes it on randomized concrete states to
//!    check each exported Hoare triple.
//!
//! The implementation is deliberately *independent* of `hgl-core`'s
//! symbolic semantics — the two were written against the ISA manual
//! separately, so agreement between them is evidence of correctness
//! rather than tautology.
//!
//! ```
//! use hgl_emu::Machine;
//! use hgl_x86::Reg;
//! use hgl_asm::Asm;
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.ins(hgl_x86::Instr::new(
//!     hgl_x86::Mnemonic::Mov,
//!     vec![hgl_x86::Operand::reg64(Reg::Rax), hgl_x86::Operand::Imm(41)],
//!     hgl_x86::Width::B8));
//! asm.ins(hgl_x86::Instr::new(
//!     hgl_x86::Mnemonic::Inc,
//!     vec![hgl_x86::Operand::reg64(Reg::Rax)],
//!     hgl_x86::Width::B8));
//! asm.ret();
//! let bin = asm.entry("main").assemble()?;
//!
//! let mut m = Machine::from_binary(&bin);
//! m.push_return_address(0xdead_beef);
//! m.step()?;
//! m.step()?;
//! assert_eq!(m.reg(Reg::Rax), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod machine;
mod mem;

pub use exec::{EmuError, Event};
pub use machine::{Flags, Machine};
pub use mem::{FillPolicy, Mem};
