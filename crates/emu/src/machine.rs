//! Machine state: registers, flags, memory.

use crate::mem::{FillPolicy, Mem};
use hgl_elf::Binary;
use hgl_x86::{Flag, MemOperand, Reg, RegRef, Width};

/// Concrete flag state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Flags {
    pub cf: bool,
    pub pf: bool,
    pub af: bool,
    pub zf: bool,
    pub sf: bool,
    pub of: bool,
    pub df: bool,
}

impl Flags {
    /// Read a flag by name.
    pub fn get(&self, f: Flag) -> bool {
        match f {
            Flag::Cf => self.cf,
            Flag::Pf => self.pf,
            Flag::Af => self.af,
            Flag::Zf => self.zf,
            Flag::Sf => self.sf,
            Flag::Of => self.of,
            Flag::Df => self.df,
        }
    }

    /// Set a flag by name.
    pub fn set(&mut self, f: Flag, v: bool) {
        match f {
            Flag::Cf => self.cf = v,
            Flag::Pf => self.pf = v,
            Flag::Af => self.af = v,
            Flag::Zf => self.zf = v,
            Flag::Sf => self.sf = v,
            Flag::Of => self.of = v,
            Flag::Df => self.df = v,
        }
    }

    /// Set ZF/SF/PF from a result at the given width (the common
    /// "result flags").
    pub fn set_result(&mut self, w: Width, result: u64) {
        let r = w.trunc(result);
        self.zf = r == 0;
        self.sf = w.sign_bit(r);
        self.pf = (r as u8).count_ones().is_multiple_of(2);
    }
}

/// A concrete x86-64 machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flag state.
    pub flags: Flags,
    /// Byte-level memory.
    pub mem: Mem,
    /// Deterministic time-stamp counter (for `rdtsc`).
    pub tsc: u64,
}

impl Machine {
    /// A machine with zeroed registers and the given memory.
    pub fn new(mem: Mem) -> Machine {
        Machine { regs: [0; 16], rip: 0, flags: Flags::default(), mem, tsc: 0 }
    }

    /// Load a binary's segments and set `rip` to its entry point.
    /// The stack pointer is initialised to a conventional location.
    pub fn from_binary(bin: &Binary) -> Machine {
        let mut mem = Mem::new(FillPolicy::Zero);
        for seg in &bin.segments {
            mem.load(seg.vaddr, &seg.bytes);
        }
        let mut m = Machine::new(mem);
        m.rip = bin.entry;
        m.set_reg(RegRef::full(Reg::Rsp), 0x7fff_ff00_0000);
        m
    }

    /// Push `addr` as the return address (simulating the `call` that
    /// entered the current function).
    pub fn push_return_address(&mut self, addr: u64) {
        let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
        self.set_reg(RegRef::full(Reg::Rsp), rsp);
        self.mem.write(rsp, 8, addr);
    }

    /// Read a full 64-bit register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Read a register view.
    pub fn reg_ref(&self, r: RegRef) -> u64 {
        let v = self.regs[r.reg.number() as usize];
        if r.high8 {
            (v >> 8) & 0xff
        } else {
            r.width.trunc(v)
        }
    }

    /// Write a register view with x86 aliasing semantics: 32-bit writes
    /// zero the upper half; 16/8-bit writes preserve other bits.
    pub fn set_reg(&mut self, r: RegRef, v: u64) {
        let slot = &mut self.regs[r.reg.number() as usize];
        match (r.width, r.high8) {
            (Width::B8, _) => *slot = v,
            (Width::B4, _) => *slot = v & 0xffff_ffff,
            (Width::B2, _) => *slot = (*slot & !0xffff) | (v & 0xffff),
            (Width::B1, false) => *slot = (*slot & !0xff) | (v & 0xff),
            (Width::B1, true) => *slot = (*slot & !0xff00) | ((v & 0xff) << 8),
        }
    }

    /// Effective address of a memory operand, given the address of the
    /// *next* instruction (for RIP-relative operands).
    pub fn effective_addr(&self, m: &MemOperand, next_rip: u64) -> u64 {
        if m.rip_relative {
            return next_rip.wrapping_add(m.disp as u64);
        }
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.reg(b));
        }
        if let Some(i) = m.index {
            a = a.wrapping_add(self.reg(i).wrapping_mul(m.scale as u64));
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_aliasing() {
        let mut m = Machine::new(Mem::default());
        m.set_reg(RegRef::full(Reg::Rax), 0x1122_3344_5566_7788);
        assert_eq!(m.reg_ref(RegRef::new(Reg::Rax, Width::B4)), 0x5566_7788);
        assert_eq!(m.reg_ref(RegRef::new(Reg::Rax, Width::B2)), 0x7788);
        assert_eq!(m.reg_ref(RegRef::new(Reg::Rax, Width::B1)), 0x88);
        assert_eq!(m.reg_ref(RegRef::high(Reg::Rax)), 0x77);

        // 32-bit write zeroes the top half.
        m.set_reg(RegRef::new(Reg::Rax, Width::B4), 0xffff_ffff_0000_0001);
        assert_eq!(m.reg(Reg::Rax), 1);

        // 16-bit and 8-bit writes preserve the rest.
        m.set_reg(RegRef::full(Reg::Rbx), 0xaaaa_bbbb_cccc_dddd);
        m.set_reg(RegRef::new(Reg::Rbx, Width::B2), 0x1234);
        assert_eq!(m.reg(Reg::Rbx), 0xaaaa_bbbb_cccc_1234);
        m.set_reg(RegRef::high(Reg::Rbx), 0x56);
        assert_eq!(m.reg(Reg::Rbx), 0xaaaa_bbbb_cccc_5634);
    }

    #[test]
    fn effective_addresses() {
        let mut m = Machine::new(Mem::default());
        m.set_reg(RegRef::full(Reg::Rax), 0x1000);
        m.set_reg(RegRef::full(Reg::Rcx), 3);
        let op = MemOperand::sib(Some(Reg::Rax), Reg::Rcx, 8, -8, Width::B8);
        assert_eq!(m.effective_addr(&op, 0), 0x1000 + 24 - 8);
        let rip = MemOperand::rip_rel(0x20, Width::B8);
        assert_eq!(m.effective_addr(&rip, 0x400000), 0x400020);
    }

    #[test]
    fn result_flags() {
        let mut f = Flags::default();
        f.set_result(Width::B1, 0);
        assert!(f.zf && !f.sf && f.pf);
        f.set_result(Width::B1, 0x80);
        assert!(!f.zf && f.sf);
        f.set_result(Width::B4, 0x3); // two bits set: even parity
        assert!(f.pf);
        f.set_result(Width::B4, 0x7); // three bits: odd parity
        assert!(!f.pf);
    }
}
