//! Sparse byte-addressed memory.

use std::collections::BTreeMap;

/// What a read of a never-written address yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillPolicy {
    /// Unmapped bytes read as zero.
    Zero,
    /// Unmapped bytes read as a deterministic pseudo-random function of
    /// their address (materialised on first read, so subsequent reads
    /// agree). Used by the validator to model arbitrary-but-fixed
    /// memory contents.
    Hash(u64),
}

/// A sparse, byte-granular, little-endian memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mem {
    bytes: BTreeMap<u64, u8>,
    fill: FillPolicy,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Default for Mem {
    fn default() -> Mem {
        Mem::new(FillPolicy::Zero)
    }
}

impl Mem {
    /// Empty memory with the given fill policy.
    pub fn new(fill: FillPolicy) -> Mem {
        Mem { bytes: BTreeMap::new(), fill }
    }

    /// Read one byte (materialising fill bytes).
    pub fn read_u8(&mut self, addr: u64) -> u8 {
        if let Some(b) = self.bytes.get(&addr) {
            return *b;
        }
        let v = match self.fill {
            FillPolicy::Zero => 0,
            FillPolicy::Hash(seed) => (splitmix64(addr ^ seed) & 0xff) as u8,
        };
        self.bytes.insert(addr, v);
        v
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.bytes.insert(addr, v);
    }

    /// Iterate every materialised byte in address order. Differential
    /// validators diff two memories modulo an instrumentation region by
    /// walking these entries rather than requiring whole-map equality.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.bytes.iter().map(|(a, b)| (*a, *b))
    }

    /// Read `size` bytes little-endian (size ≤ 8).
    pub fn read(&mut self, addr: u64, size: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i as u64)) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `size` bytes of `v` little-endian.
    pub fn write(&mut self, addr: u64, size: u8, v: u64) {
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i as u64), (v >> (8 * i)) as u8);
        }
    }

    /// Load a block of bytes at `addr`.
    pub fn load(&mut self, addr: u64, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.bytes.insert(addr + i as u64, *b);
        }
    }

    /// Number of materialised bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if no bytes are materialised.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Mem::default();
        m.write(0x1000, 8, 0x0102_0304_0506_0708);
        assert_eq!(m.read(0x1000, 8), 0x0102_0304_0506_0708);
        assert_eq!(m.read(0x1000, 4), 0x0506_0708);
        assert_eq!(m.read_u8(0x1007), 0x01);
    }

    #[test]
    fn hash_fill_is_consistent() {
        let mut m = Mem::new(FillPolicy::Hash(42));
        let a = m.read(0x5000, 8);
        let b = m.read(0x5000, 8);
        assert_eq!(a, b);
        let mut m2 = Mem::new(FillPolicy::Hash(42));
        assert_eq!(m2.read(0x5000, 8), a, "same seed, same contents");
        let mut m3 = Mem::new(FillPolicy::Hash(43));
        assert_ne!(m3.read(0x5000, 8), a, "different seed, different contents");
    }

    #[test]
    fn zero_fill() {
        let mut m = Mem::default();
        assert_eq!(m.read(0xffff_ffff_0000, 8), 0);
    }

    #[test]
    fn wrapping_addresses() {
        let mut m = Mem::default();
        m.write(u64::MAX, 2, 0xbeef);
        assert_eq!(m.read_u8(u64::MAX), 0xef);
        assert_eq!(m.read_u8(0), 0xbe);
    }
}
