//! Shared containment checker: the single definition of "a concrete
//! machine state is contained in a symbolic invariant".
//!
//! Both per-edge validation (`validate_lift`) and the whole-trace
//! oracle (`hgl-oracle`) use this module, so there is exactly one
//! notion of containment in the tree and the two checkers cannot
//! drift apart.
//!
//! The pieces:
//!
//! * [`Env`] — a partial assignment of symbols (`Sym`) to concrete
//!   64-bit values. Unbound symbols read back a poison value so
//!   accidental reliance on them shows up as mismatches.
//! * [`draw_env`] — randomized environment construction used by the
//!   sampling validator (well-separated pointer slots, bound-narrowed
//!   scalars, equality propagation).
//! * [`build_machine`] — concretize a symbolic state into an
//!   `hgl-emu` machine under an environment.
//! * [`post_holds`] — the containment check proper: every register,
//!   memory cell, clause, decided flag condition and the separation
//!   structure of the memory model must agree with the machine,
//!   binding `Sym::Fresh` existentials lazily from machine values.

use hgl_core::{FlagState, SymState};
use hgl_elf::Binary;
use hgl_emu::{FillPolicy, Machine, Mem};
use hgl_expr::{Expr, ExprKind, Rel, Sym};
use hgl_x86::{Cond, Reg, RegRef};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Value read back for symbols the environment does not bind.
pub const UNBOUND: u64 = 0xdead_0000_0000;

/// The symbol environment of one sample: a partial map `Sym → u64`.
#[derive(Debug, Clone, Default)]
pub struct Env {
    map: BTreeMap<Sym, u64>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Build from an explicit assignment.
    pub fn from_map(map: BTreeMap<Sym, u64>) -> Env {
        Env { map }
    }

    /// Bind `s` to `v` (overwrites).
    pub fn insert(&mut self, s: Sym, v: u64) {
        self.map.insert(s, v);
    }

    /// Look up `s`, yielding [`UNBOUND`] when absent.
    pub fn get(&self, s: Sym) -> u64 {
        *self.map.get(&s).unwrap_or(&UNBOUND)
    }

    /// Whether `s` is bound.
    pub fn contains(&self, s: Sym) -> bool {
        self.map.contains_key(&s)
    }

    /// The underlying assignment.
    pub fn map(&self) -> &BTreeMap<Sym, u64> {
        &self.map
    }
}

/// Try to pre-solve simple equality clauses (`lhs == rhs`) and bounds
/// so rejection sampling converges: repeatedly assign single-symbol
/// sides whose other side already evaluates.
pub fn propagate_equalities(state: &SymState, env: &mut BTreeMap<Sym, u64>) {
    for _ in 0..4 {
        for c in &state.pred.clauses {
            if c.rel != Rel::Eq {
                continue;
            }
            let nomem = |_: u64, _: u8| None;
            for (a, b) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
                if let ExprKind::Sym(s) = a.kind() {
                    let lookup = |sym: Sym| *env.get(&sym).unwrap_or(&0);
                    if let Some(v) = b.eval(&lookup, &nomem) {
                        if b.syms().iter().all(|sym| env.contains_key(sym)) {
                            env.insert(*s, v);
                        }
                    }
                }
            }
        }
    }
}

/// Every symbol mentioned anywhere in `state` (registers, memory
/// regions and their addresses, clauses, memory-model regions).
pub fn syms_of(state: &SymState) -> Vec<Sym> {
    let mut syms: Vec<Sym> = Vec::new();
    for v in state.pred.regs.values() {
        syms.extend(v.syms());
    }
    for (r, v) in &state.pred.mem {
        syms.extend(r.addr.syms());
        syms.extend(v.syms());
    }
    for c in &state.pred.clauses {
        syms.extend(c.lhs.syms());
        syms.extend(c.rhs.syms());
    }
    for r in state.model.all_regions() {
        syms.extend(r.addr.syms());
    }
    syms.sort();
    syms.dedup();
    syms
}

/// Draw a candidate symbol environment for `state`.
pub fn draw_env(state: &SymState, rng: &mut SmallRng, binary: &Binary) -> Env {
    let mut map: BTreeMap<Sym, u64> = BTreeMap::new();
    let syms = syms_of(state);

    // Distinct pointer-ish symbols get well-separated slots so the
    // model's separation constraints usually hold; scalars get small
    // random values so bounds clauses usually hold.
    let mut slot = 0x10_0000_0000u64 + (rng.gen_range(0..0x100u64) << 24);
    for s in &syms {
        let v = match s {
            Sym::Init(Reg::Rsp) => 0x7fff_0000_0000 + (rng.gen_range(0..0x1000u64) * 8),
            Sym::RetSym(_) | Sym::RetAddr => 0x7f00_dead_0000 + rng.gen_range(0..0x100u64) * 8,
            _ => {
                // Mix strategies: pointer-like slot, small scalar, or
                // wild value.
                match rng.gen_range(0..4u32) {
                    0 => {
                        slot += 0x100_0000;
                        slot
                    }
                    1 => rng.gen_range(0..8u64),
                    2 => rng.gen_range(0..0x1_0000u64),
                    _ => rng.gen::<u64>(),
                }
            }
        };
        map.insert(*s, v);
    }
    // Mined bounds narrow the draw (e.g. jump-table indices).
    let layout = hgl_solver::Layout { text: binary.text_ranges(), data: binary.data_ranges() };
    let ctx = hgl_solver::Ctx::from_clauses(state.pred.clauses.iter(), layout);
    for s in &syms {
        if let Some(iv) = ctx.bound_of(&hgl_expr::Atom::Sym(*s)) {
            if iv.count() < 1 << 32 {
                map.insert(*s, rng.gen_range(iv.lo..=iv.hi));
            }
        }
        // Bounds over truncations of a symbol constrain its low bits.
        let t32 = Expr::sym(*s).trunc(hgl_x86::Width::B4);
        if let ExprKind::Op { .. } = t32.kind() {
            if let Some(iv) = ctx.bound_of(&hgl_expr::Atom::Opaque(t32)) {
                if iv.hi < 1 << 32 {
                    let low = rng.gen_range(iv.lo..=iv.hi);
                    map.insert(*s, low);
                }
            }
        }
    }
    propagate_equalities(state, &mut map);
    Env { map }
}

/// Build the concrete machine for a drawn environment.
pub fn build_machine(
    state: &SymState,
    env: &Env,
    binary: &Binary,
    addr: u64,
    rng: &mut SmallRng,
) -> Option<Machine> {
    let mut mem = Mem::new(FillPolicy::Hash(rng.gen()));
    for seg in &binary.segments {
        mem.load(seg.vaddr, &seg.bytes);
    }
    let mut m = Machine::new(mem);
    m.rip = addr;
    let lookup = |s: Sym| env.get(s);
    // Registers.
    for r in Reg::ALL {
        let e = state.pred.regs.get(r);
        let v = if e.is_bottom() {
            rng.gen()
        } else {
            let nomem = |_: u64, _: u8| None;
            match e.eval(&lookup, &nomem) {
                Some(v) => v,
                None => rng.gen(),
            }
        };
        m.set_reg(RegRef::full(r), v);
    }
    // Memory contents.
    for (region, value) in &state.pred.mem {
        let nomem = |_: u64, _: u8| None;
        let a = region.addr.eval(&lookup, &nomem)?;
        if let Some(v) = value.eval(&lookup, &nomem) {
            if region.size <= 8 {
                m.mem.write(a, region.size as u8, v);
            }
        }
    }
    // Flags.
    match &state.pred.flags {
        FlagState::Unknown => {
            m.flags.cf = rng.gen();
            m.flags.pf = rng.gen();
            m.flags.zf = rng.gen();
            m.flags.sf = rng.gen();
            m.flags.of = rng.gen();
            m.flags.af = rng.gen();
        }
        fs => {
            // Determine each flag through the condition evaluator.
            let mem_snapshot = std::cell::RefCell::new(m.mem.clone());
            let mem_oracle = |a: u64, sz: u8| -> Option<u64> {
                Some(mem_snapshot.borrow_mut().read(a, sz))
            };
            m.flags.cf = fs.eval_cond(Cond::B, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.zf = fs.eval_cond(Cond::E, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.sf = fs.eval_cond(Cond::S, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.of = fs.eval_cond(Cond::O, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.pf = fs.eval_cond(Cond::P, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.af = rng.gen();
        }
    }
    m.flags.df = state.pred.df.unwrap_or(false);
    Some(m)
}

/// Extend `env` with bindings for the `Sym::Fresh` existentials of
/// `state`, witnessed by the values the machine actually holds: a
/// register (or ≤ 8-byte memory cell) whose invariant value is a bare
/// fresh symbol binds that symbol to the machine's value.
///
/// The trace oracle persists these bindings across steps — a fresh
/// symbol introduced by an external call keeps denoting the same
/// concrete value for the rest of the frame, even after the register
/// that witnessed it is overwritten.
pub fn bind_fresh(state: &SymState, env: &Env, machine: &Machine) -> Env {
    let mut env2 = env.map.clone();
    let mut mem_reader = machine.mem.clone();
    // Bind fresh symbols from register values…
    for (r, e) in state.pred.regs.iter() {
        if let ExprKind::Sym(s @ Sym::Fresh(_)) = e.kind() {
            env2.entry(*s).or_insert_with(|| machine.reg(r));
        }
    }
    // …and from memory entries.
    let lookup_partial = |m: &BTreeMap<Sym, u64>, s: Sym| m.get(&s).copied();
    for (region, value) in &state.pred.mem {
        if let ExprKind::Sym(s @ Sym::Fresh(_)) = value.kind() {
            if !env2.contains_key(s) && region.size <= 8 {
                let nomem = |_: u64, _: u8| None;
                let addr_val = {
                    let env2c = env2.clone();
                    region.addr.eval(&move |sym| lookup_partial(&env2c, sym).unwrap_or(0), &nomem)
                };
                if let Some(a) = addr_val {
                    env2.insert(*s, mem_reader.read(a, region.size as u8));
                }
            }
        }
    }
    Env { map: env2 }
}

/// Check that the machine satisfies the given invariant, extending the
/// environment with bindings for fresh symbols the lifter introduced
/// (see [`bind_fresh`]).
///
/// This is the containment relation of the paper's §3 soundness
/// statement, specialised to one drawn environment: `machine ⊨ state`
/// under `env`, with `Sym::Fresh` existentials witnessed by whatever
/// value the machine actually holds.
pub fn post_holds(state: &SymState, env: &Env, machine: &Machine) -> Result<(), String> {
    let env2 = bind_fresh(state, env, machine).map;
    let mut mem_reader = machine.mem.clone();
    let env2c = env2.clone();
    let lookup = move |s: Sym| *env2c.get(&s).unwrap_or(&UNBOUND);
    let mem_oracle = {
        let snap = std::cell::RefCell::new(mem_reader.clone());
        move |a: u64, sz: u8| -> Option<u64> { Some(snap.borrow_mut().read(a, sz)) }
    };

    // Registers.
    for (r, e) in state.pred.regs.iter() {
        if e.is_bottom() {
            continue;
        }
        if let Some(expected) = e.eval(&lookup, &mem_oracle) {
            let actual = machine.reg(r);
            if expected != actual {
                return Err(format!("{r}: expected {expected:#x}, machine has {actual:#x}"));
            }
        }
    }
    // Memory + clauses.
    match state.pred.clauses_hold(&lookup, &mem_oracle) {
        Some(true) => {}
        Some(false) => return Err("memory/clause mismatch".to_string()),
        None => {}
    }
    // Flags: every condition the abstraction decides must agree.
    for c in Cond::ALL {
        let nomem_machine = |a: u64, sz: u8| -> Option<u64> {
            Some(mem_reader.clone().read(a, sz))
        };
        if let Some(expected) = state.pred.flags.eval_cond(c, &lookup, &nomem_machine) {
            let f = &machine.flags;
            let actual = c.eval(f.cf, f.pf, f.zf, f.sf, f.of);
            if expected != actual {
                return Err(format!("flag condition {c}: abstraction says {expected}, machine {actual}"));
            }
        }
    }
    // Direction flag.
    if let Some(df) = state.pred.df {
        if machine.flags.df != df {
            return Err("df mismatch".to_string());
        }
    }
    // Memory model structure.
    let env3 = env2.clone();
    if state.model.holds_in(&move |s| *env3.get(&s).unwrap_or(&UNBOUND)) == Some(false) {
        return Err("memory model violated".to_string());
    }
    let _ = &mut mem_reader;
    Ok(())
}
