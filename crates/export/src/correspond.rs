//! Re-lift graph correspondence: the identity-recompilation soundness
//! check of `hgl-rewrite`.
//!
//! An identity rewrite must produce a binary whose *re-lift* extracts
//! the same Hoare Graphs as the original — same functions, same
//! vertices with equal invariants, same labelled edges, same return
//! verdicts. Lifting is deterministic for a fixed binary and config
//! (the artifact store's content-hash design depends on this), so the
//! comparison is exact structural equality, not an approximation.
//!
//! The checker reports every divergence it finds (capped) rather than
//! failing fast, so a broken rewriter produces an actionable list.

use hgl_core::graph::HoareGraph;
use hgl_core::{FnLift, LiftResult};
use std::collections::BTreeSet;

/// Cap on recorded mismatch strings; counting continues past it.
const MAX_DETAILS: usize = 32;

/// Outcome of a graph-correspondence check.
#[derive(Debug, Clone, Default)]
pub struct CorrespondReport {
    /// Functions compared (present on both sides).
    pub functions: usize,
    /// Total mismatches found.
    pub mismatches: usize,
    /// Human-readable details for the first [`MAX_DETAILS`] mismatches.
    pub details: Vec<String>,
}

impl CorrespondReport {
    /// True when the two lifts correspond exactly.
    pub fn ok(&self) -> bool {
        self.mismatches == 0
    }

    fn push(&mut self, detail: String) {
        self.mismatches += 1;
        if self.details.len() < MAX_DETAILS {
            self.details.push(detail);
        }
    }
}

fn edge_keys(g: &HoareGraph) -> Vec<String> {
    let mut keys: Vec<String> =
        g.edges.iter().map(|e| format!("{} --[{}]--> {}", e.from, e.instr, e.to)).collect();
    keys.sort();
    keys
}

fn compare_fn(entry: u64, a: &FnLift, b: &FnLift, rep: &mut CorrespondReport) {
    if a.returns != b.returns {
        rep.push(format!("{entry:#x}: returns {} vs {}", a.returns, b.returns));
    }
    let va: BTreeSet<_> = a.graph.vertices.keys().collect();
    let vb: BTreeSet<_> = b.graph.vertices.keys().collect();
    for id in va.difference(&vb) {
        rep.push(format!("{entry:#x}: vertex {id} only in original"));
    }
    for id in vb.difference(&va) {
        rep.push(format!("{entry:#x}: vertex {id} only in re-lift"));
    }
    for id in va.intersection(&vb) {
        let x = &a.graph.vertices[id];
        let y = &b.graph.vertices[id];
        if x.state != y.state {
            rep.push(format!("{entry:#x}: invariant at {id} differs"));
        }
        if x.reachable != y.reachable {
            rep.push(format!("{entry:#x}: reachability at {id} differs"));
        }
    }
    let ea = edge_keys(&a.graph);
    let eb = edge_keys(&b.graph);
    if ea != eb {
        let sa: BTreeSet<_> = ea.iter().collect();
        let sb: BTreeSet<_> = eb.iter().collect();
        for e in sa.symmetric_difference(&sb) {
            rep.push(format!("{entry:#x}: edge mismatch: {e}"));
        }
    }
}

/// Compare the per-function Hoare Graphs of two lifts for exact
/// structural equality.
pub fn graphs_correspond(original: &LiftResult, relift: &LiftResult) -> CorrespondReport {
    let mut rep = CorrespondReport::default();
    let ka: BTreeSet<u64> = original.functions.keys().copied().collect();
    let kb: BTreeSet<u64> = relift.functions.keys().copied().collect();
    for e in ka.difference(&kb) {
        rep.push(format!("function {e:#x} only in original lift"));
    }
    for e in kb.difference(&ka) {
        rep.push(format!("function {e:#x} only in re-lift"));
    }
    for e in ka.intersection(&kb) {
        rep.functions += 1;
        compare_fn(*e, &original.functions[e], &relift.functions[e], &mut rep);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_corpus::xen::gen_study_binary;
    use hgl_core::Lifter;

    #[test]
    fn lift_corresponds_with_itself() {
        let bin = gen_study_binary(0xc0de, false);
        let a = Lifter::new(&bin).lift_all();
        let b = Lifter::new(&bin).lift_all();
        let rep = graphs_correspond(&a.result, &b.result);
        assert!(rep.ok(), "self-correspondence failed: {:?}", rep.details);
        assert!(rep.functions > 0);
    }

    #[test]
    fn missing_function_is_reported() {
        let bin = gen_study_binary(0xc0de, false);
        let a = Lifter::new(&bin).lift_all();
        let mut b = a.result.clone();
        let first = *b.functions.keys().next().expect("functions");
        b.functions.remove(&first);
        let rep = graphs_correspond(&a.result, &b);
        assert!(!rep.ok());
        assert!(rep.details[0].contains("only in original"), "{:?}", rep.details);
    }

    #[test]
    fn perturbed_graph_is_reported() {
        let bin = gen_study_binary(0xc0de, false);
        let a = Lifter::new(&bin).lift_all();
        let mut b = a.result.clone();
        let f = b.functions.values_mut().next().expect("functions");
        f.returns = !f.returns;
        let rep = graphs_correspond(&a.result, &b);
        assert_eq!(rep.mismatches, 1);
        assert!(rep.details[0].contains("returns"), "{:?}", rep.details);
    }
}
