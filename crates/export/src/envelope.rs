//! The shared versioned envelope of every JSON surface this crate
//! emits.
//!
//! `hgl lift --json`, `hgl lint --json` and `hgl lift --metrics` all
//! open with the same two fields,
//!
//! ```json
//! {
//!   "schema": "hgl-lift-v1",
//!   "version": 1,
//! ```
//!
//! so a consumer can dispatch on `schema` and reject documents whose
//! `version` it does not understand without knowing anything else
//! about the payload. The schema name carries the major revision
//! (`-v1`); `version` is the minor, bumped when fields are *added*
//! compatibly. Structural (breaking) changes rename the schema.
//! The envelopes are golden-pinned in `tests/golden/`.

use std::fmt::Write;

/// Schema identifier of the lift-result document (`hgl lift --json`).
pub const LIFT_SCHEMA: &str = "hgl-lift-v1";

/// Schema identifier of the lint-report document (`hgl lint --json`).
pub const LINT_SCHEMA: &str = "hgl-lint-v1";

/// Schema identifier of the metrics document (`hgl lift --metrics`).
pub const METRICS_SCHEMA: &str = "hgl-metrics-v1";

/// Minor version shared by all current documents.
pub const ENVELOPE_VERSION: u64 = 1;

/// Opens a document: `{`, the `schema` field and the `version` field.
/// The caller appends its payload fields and the closing brace.
pub(crate) fn open(schema: &str) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    let _ = writeln!(o, "  \"schema\": \"{schema}\",");
    let _ = writeln!(o, "  \"version\": {ENVELOPE_VERSION},");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape() {
        let e = open(LIFT_SCHEMA);
        assert_eq!(e, "{\n  \"schema\": \"hgl-lift-v1\",\n  \"version\": 1,\n");
    }
}
