//! Isabelle/HOL theory generation.
//!
//! The emitted theory mirrors the structure described in §5.2: a state
//! record with registers, flags and byte-level memory; one definition
//! per Hoare-Graph vertex (the invariant); one lemma per edge, proved
//! by a tailored symbolic-execution method (`se_step`); and explicit
//! axioms for each assumption the lifter made (memory-space
//! separations, external-call contracts).

use hgl_core::lift::LiftResult;
use hgl_core::{SymState, VertexId};
use hgl_expr::{Expr, ExprKind, OpKind, Sym};
use hgl_x86::Reg;
use std::fmt::Write;

/// Render a symbol as an Isabelle variable name.
fn sym_name(s: Sym) -> String {
    match s {
        Sym::Init(r) => format!("{}\\<^sub>0", r.name64()),
        Sym::RetAddr => "a\\<^sub>r".to_string(),
        Sym::RetSym(a) => format!("S\\<^sub>{a:x}"),
        Sym::Fresh(id) => format!("u\\<^sub>{id}"),
        Sym::Global(a) => format!("g\\<^sub>{a:x}"),
    }
}

/// Render an expression as an Isabelle 64-word term.
pub fn isa_expr(e: &Expr) -> String {
    match e.kind() {
        ExprKind::Imm(v) => format!("({v:#x}::64 word)"),
        ExprKind::Sym(s) => sym_name(*s),
        ExprKind::Bottom => "undefined".to_string(),
        ExprKind::Deref { addr, size } => format!("(mem_read \\<sigma> {} {})", isa_expr(addr), size),
        ExprKind::Op { op, args } => {
            if args.len() == 1 {
                let a = isa_expr(&args[0]);
                match op {
                    OpKind::Not => format!("(NOT {a})"),
                    OpKind::Neg => format!("(- {a})"),
                    OpKind::Trunc(w) => format!("(ucast (ucast {a} :: {} word) :: 64 word)", w.bits()),
                    OpKind::SExt(w) => format!("(scast (ucast {a} :: {} word) :: 64 word)", w.bits()),
                    OpKind::Popcnt => format!("(of_nat (pop_count {a}))"),
                    OpKind::Tzcnt => format!("(of_nat (word_ctz {a}))"),
                    OpKind::Bsf => format!("(of_nat (word_ctz {a}))"),
                    OpKind::Bsr => format!("(of_nat (word_clz {a}))"),
                    _ => format!("(undefined_op {a})"),
                }
            } else {
                let a = isa_expr(&args[0]);
                let b = isa_expr(&args[1]);
                let infix = match op {
                    OpKind::Add => "+",
                    OpKind::Sub => "-",
                    OpKind::Mul => "*",
                    OpKind::UDiv => "div",
                    OpKind::URem => "mod",
                    OpKind::SDiv => "sdiv",
                    OpKind::SRem => "smod",
                    OpKind::And => "AND",
                    OpKind::Or => "OR",
                    OpKind::Xor => "XOR",
                    OpKind::Shl => "<<",
                    OpKind::Shr => ">>",
                    OpKind::Sar => ">>>",
                    _ => return format!("(undefined_op2 {a} {b})"),
                };
                format!("({a} {infix} {b})")
            }
        }
    }
}

fn vid_name(v: VertexId) -> String {
    match v {
        VertexId::At(a, 0) => format!("{a:x}"),
        VertexId::At(a, n) => format!("{a:x}_{n}"),
        VertexId::Exit => "exit".to_string(),
    }
}

fn invariant_def(name: &str, state: &SymState, out: &mut String) {
    let _ = writeln!(out, "definition P_{name} :: \"state \\<Rightarrow> bool\" where");
    let _ = write!(out, "  \"P_{name} \\<sigma> \\<equiv> True");
    for (r, v) in state.pred.regs.iter() {
        if v.is_bottom() {
            continue;
        }
        // Registers equal to their own initial symbols still pin the
        // frame discipline; emit them all for faithfulness.
        let _ = write!(out, "\n     \\<and> reg \\<sigma> ''{}'' = {}", r.name64(), isa_expr(&v));
    }
    for (region, v) in &state.pred.mem {
        if v.is_bottom() {
            continue;
        }
        let _ = write!(
            out,
            "\n     \\<and> mem_read \\<sigma> {} {} = {}",
            isa_expr(&region.addr),
            region.size,
            isa_expr(v)
        );
    }
    for c in &state.pred.clauses {
        let rel = match c.rel {
            hgl_expr::Rel::Eq => "=",
            hgl_expr::Rel::Ne => "\\<noteq>",
            hgl_expr::Rel::Lt => "<",
            hgl_expr::Rel::Ge => "\\<ge>",
            hgl_expr::Rel::SLt => "<s",
            hgl_expr::Rel::SGe => "\\<ge>s",
        };
        let _ = write!(out, "\n     \\<and> {} {} {}", isa_expr(&c.lhs), rel, isa_expr(&c.rhs));
    }
    // Memory-model separations (Definition 3.9) become conjuncts too.
    for (i, t0) in state.model.trees.iter().enumerate() {
        for t1 in state.model.trees.iter().skip(i + 1) {
            for r0 in t0.all_regions() {
                for r1 in t1.all_regions() {
                    let _ = write!(
                        out,
                        "\n     \\<and> separate {} {} {} {}",
                        isa_expr(&r0.addr),
                        r0.size,
                        isa_expr(&r1.addr),
                        r1.size
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "\"");
    let _ = writeln!(out);
}

/// Export a [`LiftResult`] as an Isabelle/HOL theory.
///
/// Every vertex invariant becomes a `definition`, every edge a `lemma`
/// of the form `{P_pre} instr {P_post₁ ∨ …}` discharged by the
/// `se_step` symbolic-execution method, and every generated assumption
/// an explicit named `axiomatization` — "each and any implicit
/// assumption made during HG generation is formalized" (§5.2).
pub fn export_theory(result: &LiftResult, theory_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "theory {theory_name}");
    let _ = writeln!(out, "  imports X86_Semantics.StateModel X86_Semantics.SymbolicExecution");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out);
    let _ = writeln!(out, "text \\<open>Generated by hoare-lift. One lemma per Hoare-Graph edge;");
    let _ = writeln!(out, "  each is mutually independent and proved by symbolic execution.\\<close>");
    let _ = writeln!(out);

    // Fixed symbols: initial register values plus every return symbol
    // and fresh unknown occurring anywhere in the export.
    let mut extra: Vec<Sym> = Vec::new();
    for f in result.functions.values() {
        for v in f.graph.vertices.values() {
            for e in v.state.pred.regs.values() {
                extra.extend(e.syms());
            }
            for (r, val) in &v.state.pred.mem {
                extra.extend(r.addr.syms());
                extra.extend(val.syms());
            }
            for c in &v.state.pred.clauses {
                extra.extend(c.lhs.syms());
                extra.extend(c.rhs.syms());
            }
            for r in v.state.model.all_regions() {
                extra.extend(r.addr.syms());
            }
        }
    }
    extra.retain(|s| !matches!(s, Sym::Init(_)));
    extra.sort();
    extra.dedup();
    let _ = writeln!(out, "context");
    let _ = write!(out, "  fixes");
    for r in Reg::ALL {
        let _ = write!(out, " {}\\<^sub>0", r.name64());
    }
    for s in &extra {
        let _ = write!(out, " {}", sym_name(*s));
    }
    let _ = writeln!(out, " :: \"64 word\"");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out);

    let mut lemma_count = 0usize;
    for (entry, f) in &result.functions {
        let _ = writeln!(out, "subsection \\<open>Function {entry:#x}\\<close>");
        let _ = writeln!(out);

        // Assumptions become named axioms.
        for (i, a) in f.assumptions.iter().enumerate() {
            let _ = writeln!(out, "axiomatization where assume_{entry:x}_{i}:");
            let _ = writeln!(
                out,
                "  \"separate {} {} {} {}\"  \\<comment> \\<open>{}\\<close>",
                isa_expr(&a.r0.addr),
                a.r0.size,
                isa_expr(&a.r1.addr),
                a.r1.size,
                a.kind
            );
        }
        for (i, ob) in f.obligations.iter().enumerate() {
            let _ = writeln!(out, "axiomatization where obligation_{entry:x}_{i}:");
            let _ = writeln!(out, "  \"external_call_preserves ''{}'' \\<sigma>\"", ob.callee);
            let _ = writeln!(out, "  \\<comment> \\<open>{ob}\\<close>");
        }
        let _ = writeln!(out);

        for (vid, v) in &f.graph.vertices {
            invariant_def(&format!("{entry:x}_{}", vid_name(*vid)), &v.state, &mut out);
        }

        for (i, e) in f.graph.edges.iter().enumerate() {
            // The postcondition is the disjunction of the invariants of
            // all destinations reachable from this source by this
            // instruction (§2: "vertex 14 is translated to a Hoare
            // triple … the disjunction of the invariants at 1a").
            let posts: Vec<String> = f
                .graph
                .edges
                .iter()
                .filter(|e2| e2.from == e.from && e2.instr == e.instr)
                .map(|e2| format!("P_{}_{} \\<sigma>'", format_args!("{entry:x}"), vid_name(e2.to)))
                .collect();
            let _ = writeln!(out, "lemma edge_{entry:x}_{i} [se_proofs]:");
            let _ = writeln!(
                out,
                "  assumes \"P_{}_{} \\<sigma>\"",
                format_args!("{entry:x}"),
                vid_name(e.from)
            );
            let _ = writeln!(
                out,
                "  and \"fetch \\<sigma> = instr_at {:#x} ''{}''\"",
                e.instr.addr, e.instr
            );
            let _ = writeln!(out, "  and \"\\<sigma>' = exec_instr (fetch \\<sigma>) \\<sigma>\"");
            let _ = writeln!(out, "  shows \"{}\"", posts.join(" \\<or> "));
            let _ = writeln!(out, "  using assms by se_step");
            let _ = writeln!(out);
            lemma_count += 1;
        }
    }

    let _ = writeln!(out, "end  \\<comment> \\<open>context\\<close>");
    let _ = writeln!(out);
    let _ = writeln!(out, "text \\<open>{lemma_count} Hoare-triple lemmas exported.\\<close>");
    let _ = writeln!(out, "end");
    out
}

/// Number of `lemma` lines in a generated theory (convenience for
/// reports and tests).
pub fn lemma_count(theory: &str) -> usize {
    theory.lines().filter(|l| l.starts_with("lemma ")).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_expr::Expr;

    #[test]
    fn expr_rendering() {
        let e = Expr::sym(Sym::Init(Reg::Rsp)).sub(Expr::imm(8));
        let s = isa_expr(&e);
        assert!(s.contains("rsp"), "{s}");
        assert!(s.contains('-') || s.contains("0xfffffffffffffff8"), "{s}");
        assert_eq!(isa_expr(&Expr::imm(16)), "(0x10::64 word)");
        assert_eq!(isa_expr(&Expr::bottom()), "undefined");
    }

    #[test]
    fn trunc_rendering() {
        let e = Expr::sym(Sym::Init(Reg::Rdi)).trunc(hgl_x86::Width::B4);
        let s = isa_expr(&e);
        assert!(s.contains("32 word"), "{s}");
    }
}
