//! Machine-readable export of lifted results.
//!
//! Emits a self-contained JSON document per lift: functions, vertices
//! with their invariants (registers, memory facts, clauses, memory
//! model), edges with disassembled instructions, annotations, proof
//! obligations and assumptions — the same information the Isabelle
//! export encodes, in a form downstream tools (decompilers, patchers,
//! CFG consumers; §7 of the paper) can ingest directly.
//!
//! The emitter is hand-rolled: the document structure is fixed and
//! tiny, so a serializer dependency would buy nothing.

use crate::envelope::{open, LIFT_SCHEMA};
use hgl_core::lift::LiftResult;
use hgl_core::VertexId;
use std::fmt::Write;

/// Escape a string for JSON.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn vid(v: VertexId) -> String {
    match v {
        VertexId::At(a, 0) => format!("\"{a:#x}\""),
        VertexId::At(a, n) => format!("\"{a:#x}.{n}\""),
        VertexId::Exit => "\"exit\"".to_string(),
    }
}

/// Serialise a [`LiftResult`] to the `hgl-lift-v1` document.
pub fn export_json(result: &LiftResult) -> String {
    let mut o = open(LIFT_SCHEMA);
    let _ = writeln!(o, "  \"instruction_count\": {},", result.instruction_count());
    let _ = writeln!(o, "  \"state_count\": {},", result.state_count());
    let (a, b, c) = result.indirection_counts();
    let _ = writeln!(
        o,
        "  \"indirections\": {{ \"resolved\": {a}, \"unresolved_jumps\": {b}, \"unresolved_calls\": {c} }},"
    );
    let _ = writeln!(
        o,
        "  \"lifted\": {},",
        if result.is_lifted() { "true" } else { "false" }
    );
    match result.reject_reason() {
        Some(r) => {
            let _ = writeln!(o, "  \"reject_reason\": \"{}\",", esc(&r.to_string()));
        }
        None => {
            let _ = writeln!(o, "  \"reject_reason\": null,");
        }
    }
    o.push_str("  \"functions\": [\n");
    for (fi, (entry, f)) in result.functions.iter().enumerate() {
        o.push_str("    {\n");
        let _ = writeln!(o, "      \"entry\": \"{entry:#x}\",");
        let _ = writeln!(o, "      \"returns\": {},", f.returns);
        // Vertices.
        o.push_str("      \"vertices\": [\n");
        for (vi, (id, v)) in f.graph.vertices.iter().enumerate() {
            o.push_str("        {");
            let _ = write!(o, " \"id\": {},", vid(*id));
            let _ = write!(o, " \"invariant\": \"{}\",", esc(&v.state.pred.to_string()));
            let _ = write!(o, " \"memory_model\": \"{}\"", esc(&v.state.model.to_string()));
            o.push_str(" }");
            if vi + 1 < f.graph.vertices.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("      ],\n");
        // Edges.
        o.push_str("      \"edges\": [\n");
        for (ei, e) in f.graph.edges.iter().enumerate() {
            o.push_str("        {");
            let _ = write!(
                o,
                " \"from\": {}, \"to\": {}, \"address\": \"{:#x}\", \"instruction\": \"{}\"",
                vid(e.from),
                vid(e.to),
                e.instr.addr,
                esc(&e.instr.to_string())
            );
            o.push_str(" }");
            if ei + 1 < f.graph.edges.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("      ],\n");
        // Diagnostics.
        let list = |items: Vec<String>| -> String {
            let mut s = String::from("[");
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", esc(it));
            }
            s.push(']');
            s
        };
        let _ = writeln!(
            o,
            "      \"annotations\": {},",
            list(f.annotations.iter().map(|x| x.to_string()).collect())
        );
        let _ = writeln!(
            o,
            "      \"obligations\": {},",
            list(f.obligations.iter().map(|x| x.to_string()).collect())
        );
        let _ = writeln!(
            o,
            "      \"assumptions\": {}",
            list(f.assumptions.iter().map(|x| x.to_string()).collect())
        );
        o.push_str("    }");
        if fi + 1 < result.functions.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("  ]\n}\n");
    o
}

/// Serialise one function's Hoare Graph to Graphviz DOT, for visual
/// inspection of the recovered control flow (weird edges included).
pub fn export_dot(result: &LiftResult, entry: u64) -> Option<String> {
    let f = result.functions.get(&entry)?;
    let mut o = String::new();
    let _ = writeln!(o, "digraph hg_{entry:x} {{");
    let _ = writeln!(o, "  node [shape=box, fontname=\"monospace\"];");
    for (id, v) in &f.graph.vertices {
        let label = match id {
            VertexId::At(a, _) => format!("{a:#x}\\n{}", esc(&truncate(&v.state.pred.to_string(), 60))),
            VertexId::Exit => "exit".to_string(),
        };
        let _ = writeln!(o, "  {} [label=\"{}\"];", node_name(*id), label);
    }
    for e in &f.graph.edges {
        let _ = writeln!(
            o,
            "  {} -> {} [label=\"{}\"];",
            node_name(e.from),
            node_name(e.to),
            esc(&e.instr.to_string())
        );
    }
    let _ = writeln!(o, "}}");
    Some(o)
}

fn node_name(v: VertexId) -> String {
    match v {
        VertexId::At(a, n) => format!("n{a:x}_{n}"),
        VertexId::Exit => "exit".to_string(),
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let mut out: String = s.chars().take(n).collect();
        out.push('…');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::Lifter;

    fn demo() -> (hgl_elf::Binary, LiftResult) {
        let mut asm = hgl_asm::Asm::new();
        asm.label("main");
        asm.push(hgl_x86::Reg::Rbp);
        asm.pop(hgl_x86::Reg::Rbp);
        asm.ret();
        let bin = asm.entry("main").assemble().expect("assembles");
        let result = Lifter::new(&bin).lift_entry(bin.entry);
        (bin, result)
    }

    #[test]
    fn json_structure() {
        let (_, result) = demo();
        let j = export_json(&result);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"lifted\": true"), "{j}");
        assert!(j.contains("\"entry\": \"0x401000\""), "{j}");
        assert!(j.contains("push rbp"), "{j}");
        assert!(j.contains("\"reject_reason\": null"), "{j}");
        // Every quote is escaped / balanced: crude sanity check that it
        // parses as JSON by brace counting.
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn dot_structure() {
        let (bin, result) = demo();
        let dot = export_dot(&result, bin.entry).expect("dot");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.contains("exit"));
        assert_eq!(export_dot(&result, 0xdead), None);
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
