//! # hgl-export: Step 2 — formal verification of the extracted Hoare Graph
//!
//! The paper's second step exports the Hoare Graph to Isabelle/HOL,
//! where every edge becomes an independently provable theorem: a Hoare
//! triple whose precondition is the source vertex's invariant and whose
//! postcondition is the disjunction of the destination invariants,
//! discharged by symbolically executing formal instruction semantics
//! (§5.2). This removes the Step-1 implementation from the trusted
//! base.
//!
//! Isabelle cannot run in this environment, so this crate provides the
//! two halves separately (see `DESIGN.md`, *Substitutions*):
//!
//! - [`isabelle`]: generation of the Isabelle/HOL theory text — state
//!   record, one definition per vertex invariant, one lemma per edge
//!   with a proof script invocation, and explicit statements of every
//!   assumption/proof obligation the lifter generated;
//! - [`validate`]: an *executable* check of the same triples — each
//!   edge is tested on randomized concrete states drawn to satisfy the
//!   source invariant, stepped with the independent `hgl-emu`
//!   semantics, and checked against the destination invariants. Call
//!   edges (whose effect is axiomatized by the System V assumption in
//!   the paper as well) are reported as *assumed* rather than checked.
//!
//! ```
//! use hgl_asm::Asm;
//! use hgl_core::Lifter;
//! use hgl_export::{export_theory, validate_lift, ValidateConfig};
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.push(hgl_x86::Reg::Rbp);
//! asm.pop(hgl_x86::Reg::Rbp);
//! asm.ret();
//! let bin = asm.entry("main").assemble()?;
//! let lifted = Lifter::new(&bin).lift_entry(bin.entry);
//!
//! let thy = export_theory(&lifted, "main_binary");
//! assert!(thy.contains("theory main_binary"));
//!
//! let report = validate_lift(&bin, &lifted, &ValidateConfig::default());
//! assert_eq!(report.failed.len(), 0);
//! assert!(report.checked > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod correspond;
pub mod envelope;
pub mod isabelle;
pub mod json;
pub mod lintjson;
pub mod metricsjson;
pub mod validate;

pub use checker::{bind_fresh, build_machine, draw_env, post_holds, Env};
pub use correspond::{graphs_correspond, CorrespondReport};
pub use envelope::{ENVELOPE_VERSION, LIFT_SCHEMA, LINT_SCHEMA, METRICS_SCHEMA};
pub use isabelle::export_theory;
pub use json::{export_dot, export_json};
pub use lintjson::export_lint_json;
pub use metricsjson::export_metrics_json;
pub use validate::{validate_lift, EdgeFailure, ValidateConfig, ValidationReport};
