//! JSON export of a static-analysis report (`hgl lint --json`).
//!
//! Like the lift export, the emitter is hand-rolled: the schema is
//! fixed and tiny. The document is fully deterministic — functions,
//! writes and diagnostics are emitted in their already-sorted order —
//! so it is golden-snapshot tested byte-for-byte.

use crate::envelope::{open, LINT_SCHEMA};
use crate::json::{esc, vid};
use hgl_analysis::{AnalysisReport, ClassifiedWrite};
use std::fmt::Write;

fn write_json(o: &mut String, w: &ClassifiedWrite) {
    let classes = w
        .classes
        .iter()
        .map(|c| format!("\"{}\"", esc(&c.to_string())))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(
        o,
        "{{ \"addr\": \"{:#x}\", \"size\": {}, \"family\": \"{}\", \"resolved\": {}, \
         \"classes\": [{classes}] }}",
        w.addr,
        w.size,
        w.family(),
        w.resolved(),
    );
}

/// Serialise an [`AnalysisReport`] to the `hgl-lint-v1` document.
pub fn export_lint_json(report: &AnalysisReport) -> String {
    let mut o = open(LINT_SCHEMA);
    let t = &report.totals;
    let _ = writeln!(
        o,
        "  \"write_totals\": {{ \"total\": {}, \"stack_local\": {}, \"global\": {}, \
         \"heap_symbol\": {}, \"unresolved\": {}, \"resolved_fraction\": {:.4} }},",
        t.total(),
        t.stack_local,
        t.global,
        t.heap_symbol,
        t.unresolved,
        t.resolved_fraction(),
    );

    o.push_str("  \"functions\": [\n");
    let mut first = true;
    for f in report.functions.values() {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        let _ = write!(
            o,
            "    {{ \"entry\": \"{:#x}\", \"states\": {}, \"reachable_states\": {}, \
             \"exit_reaching_states\": {}, \"max_stack_depth\": ",
            f.entry, f.states, f.reachable_states, f.exit_reaching_states,
        );
        match f.max_stack_depth {
            Some(d) => {
                let _ = write!(o, "{d}");
            }
            None => o.push_str("null"),
        }
        o.push_str(", \"writes\": [");
        for (i, w) in f.writes.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            write_json(&mut o, w);
        }
        o.push_str("] }");
    }
    o.push_str("\n  ],\n");

    o.push_str("  \"diags\": [\n");
    let mut first = true;
    for d in &report.diags {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        let node = d.node.map_or("null".to_string(), vid);
        let edge = d.edge.map_or("null".to_string(), |(a, b)| format!("[{}, {}]", vid(a), vid(b)));
        let _ = write!(
            o,
            "    {{ \"severity\": \"{}\", \"rule\": \"{}\", \"function\": \"{:#x}\", \
             \"node\": {node}, \"edge\": {edge}, \"detail\": \"{}\" }}",
            d.severity,
            d.rule,
            d.function,
            esc(&d.detail),
        );
    }
    o.push_str("\n  ]\n");
    o.push_str("}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_shape() {
        let json = export_lint_json(&AnalysisReport::default());
        assert!(json.contains("\"schema\": \"hgl-lint-v1\""));
        assert!(json.contains("\"resolved_fraction\": 1.0000"));
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
    }
}
