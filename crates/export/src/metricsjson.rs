//! JSON export of a frozen metrics snapshot (`hgl lift --metrics`).
//!
//! The `hgl-metrics-v1` document freezes one engine run: per-phase
//! wall time and invocation counts, binary-level gauges, the solver
//! cache's hit/miss/eviction counters, and the worker count. The bench
//! harness in `crates/bench` consumes it to build `BENCH_pr4.json`.
//!
//! Like the other JSON surfaces, the emitter is hand-rolled and fully
//! deterministic apart from the timing values themselves.

use crate::envelope::{open, METRICS_SCHEMA};
use hgl_core::MetricsSnapshot;
use std::fmt::Write;

/// Serialise a [`MetricsSnapshot`] to the `hgl-metrics-v1` document.
pub fn export_metrics_json(m: &MetricsSnapshot) -> String {
    let mut o = open(METRICS_SCHEMA);
    let _ = writeln!(o, "  \"workers\": {},", m.workers);
    let _ = writeln!(o, "  \"elapsed_ns\": {},", m.elapsed_nanos);
    let _ = writeln!(o, "  \"rounds\": {},", m.rounds);
    o.push_str("  \"phases\": [\n");
    for (i, p) in m.phases.iter().enumerate() {
        let _ = write!(
            o,
            "    {{ \"phase\": \"{}\", \"nanos\": {}, \"count\": {} }}",
            p.phase.name(),
            p.nanos,
            p.count
        );
        o.push_str(if i + 1 < m.phases.len() { ",\n" } else { "\n" });
    }
    o.push_str("  ],\n");
    let _ = writeln!(
        o,
        "  \"gauges\": {{ \"states\": {}, \"instructions\": {}, \"functions_lifted\": {}, \
         \"functions_rejected\": {} }},",
        m.states, m.instructions, m.functions_lifted, m.functions_rejected,
    );
    // Decode-failure telemetry: present only when a fetch actually
    // failed to decode, so reject-free documents keep the shape (and
    // bytes) the pre-telemetry goldens pin.
    if !m.decode_rejects.is_empty() {
        o.push_str("  \"decode_rejects\": {");
        for (i, (key, count)) in m.decode_rejects.iter().enumerate() {
            let _ = write!(o, "{}\"{}\": {}", if i == 0 { " " } else { ", " }, key, count);
        }
        o.push_str(" },\n");
    }
    let c = &m.cache;
    let _ = write!(
        o,
        "  \"solver_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}, \"hit_rate\": {:.4}, \"query_ns\": {} }}",
        c.hits,
        c.misses,
        c.evictions,
        c.entries,
        c.hit_rate(),
        c.query_nanos,
    );
    // The artifact-store block appears only when the run had a store
    // attached, so store-less documents are byte-identical to pre-store
    // emitters.
    if let Some(s) = &m.store {
        o.push_str(",\n");
        let _ = write!(
            o,
            "  \"store\": {{ \"hits\": {}, \"misses\": {}, \"invalidations\": {}, \
             \"evictions\": {}, \"inserts\": {}, \"tmp_swept\": {}, \"write_retries\": {}, \
             \"write_failures\": {}, \"hit_rate\": {:.4} }}",
            s.hits,
            s.misses,
            s.invalidations,
            s.evictions,
            s.inserts,
            s.tmp_swept,
            s.write_retries,
            s.write_failures,
            s.hit_rate(),
        );
    }
    // The rewrite block appears only for `hgl rewrite --metrics` runs,
    // so lift documents keep their pre-rewrite bytes.
    if let Some(r) = &m.rewrite {
        o.push_str(",\n");
        let _ = write!(
            o,
            "  \"rewrite\": {{ \"functions\": {}, \"instructions_reencoded\": {}, \
             \"bytes_delta\": {}, \"guards_inserted\": {}, \"verify_relift_ok\": {}, \
             \"verify_traces_ok\": {} }}",
            r.functions,
            r.instructions_reencoded,
            r.bytes_delta,
            r.guards_inserted,
            opt_bool(r.verify_relift_ok),
            opt_bool(r.verify_traces_ok),
        );
    }
    o.push('\n');
    o.push_str("}\n");
    o
}

fn opt_bool(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_core::Metrics;
    use std::time::Duration;

    #[test]
    fn document_shape() {
        let m = Metrics::new();
        m.record(hgl_core::Phase::Tau, Duration::from_nanos(40));
        let snap = m.snapshot(None, 4, Duration::from_nanos(1000));
        let j = export_metrics_json(&snap);
        assert!(j.contains("\"schema\": \"hgl-metrics-v1\""), "{j}");
        assert!(j.contains("\"version\": 1"), "{j}");
        assert!(j.contains("\"workers\": 4"), "{j}");
        assert!(j.contains("{ \"phase\": \"tau\", \"nanos\": 40, \"count\": 1 }"), "{j}");
        assert!(j.contains("\"hit_rate\": 0.0000"), "{j}");
        assert!(!j.contains("\"store\""), "store-less document has no store block: {j}");
        assert!(!j.contains("\"rewrite\""), "lift document has no rewrite block: {j}");
        assert!(
            !j.contains("\"decode_rejects\""),
            "reject-free document has no decode_rejects block: {j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    /// Golden-pinned shape of the decode-failure telemetry: buckets
    /// sorted by key, inline object, pinned byte-for-byte.
    #[test]
    fn decode_reject_histogram_shape() {
        let m = Metrics::new();
        m.count_decode_reject("opcode:0f05".to_string());
        m.count_decode_reject("opcode:0f05".to_string());
        m.count_decode_reject("prefix:67".to_string());
        m.count_decode_reject("ext:ff/7".to_string());
        let snap = m.snapshot(None, 1, Duration::from_nanos(10));
        let j = export_metrics_json(&snap);
        assert!(
            j.contains(
                "  \"decode_rejects\": { \"ext:ff/7\": 1, \"opcode:0f05\": 2, \"prefix:67\": 1 },\n"
            ),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn store_block_present_when_attached() {
        let m = Metrics::new();
        let mut snap = m.snapshot(None, 1, Duration::from_nanos(10));
        snap.store = Some(hgl_core::StoreStats {
            hits: 3,
            misses: 1,
            invalidations: 2,
            evictions: 0,
            inserts: 4,
            tmp_swept: 1,
            write_retries: 2,
            write_failures: 0,
        });
        let j = export_metrics_json(&snap);
        assert!(
            j.contains(
                "\"store\": { \"hits\": 3, \"misses\": 1, \"invalidations\": 2, \
                 \"evictions\": 0, \"inserts\": 4, \"tmp_swept\": 1, \"write_retries\": 2, \
                 \"write_failures\": 0, \"hit_rate\": 0.5000 }"
            ),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn rewrite_block_present_when_attached() {
        let m = Metrics::new();
        let mut snap = m.snapshot(None, 1, Duration::from_nanos(10));
        snap.rewrite = Some(hgl_core::RewriteStats {
            functions: 5,
            instructions_reencoded: 321,
            bytes_delta: -8,
            guards_inserted: 2,
            verify_relift_ok: Some(true),
            verify_traces_ok: None,
        });
        let j = export_metrics_json(&snap);
        assert!(
            j.contains(
                "\"rewrite\": { \"functions\": 5, \"instructions_reencoded\": 321, \
                 \"bytes_delta\": -8, \"guards_inserted\": 2, \"verify_relift_ok\": true, \
                 \"verify_traces_ok\": null }"
            ),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn store_and_rewrite_blocks_compose() {
        let m = Metrics::new();
        let mut snap = m.snapshot(None, 1, Duration::from_nanos(10));
        snap.store = Some(hgl_core::StoreStats::default());
        snap.rewrite = Some(hgl_core::RewriteStats::default());
        let j = export_metrics_json(&snap);
        assert!(j.contains("\"store\": {"), "{j}");
        assert!(j.contains("\"rewrite\": {"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
