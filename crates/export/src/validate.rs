//! Executable validation of lifted Hoare triples.
//!
//! For each edge `{P} instr {Q₁ ∨ …}` of the Hoare Graph, we repeatedly
//!
//! 1. draw a random symbol environment and concrete machine state
//!    satisfying `P` (registers, flags, memory contents, clauses and
//!    the memory model's separation structure),
//! 2. execute the instruction on the *independent* `hgl-emu`
//!    semantics, and
//! 3. check that the resulting machine satisfies some destination
//!    invariant `Qᵢ` — matching fresh symbols introduced by the lifter
//!    against the values the machine actually produced.
//!
//! Call edges are *assumed* rather than checked: their post-state
//! encodes the System V external-call contract, which the paper also
//! axiomatises rather than proves (§1). A sample failure is a genuine
//! soundness counterexample of the lifter.

use hgl_core::lift::LiftResult;
use hgl_core::{FlagState, SymState, VertexId};
use hgl_elf::Binary;
use hgl_emu::{FillPolicy, Machine, Mem};
use hgl_expr::{Expr, Rel, Sym};
use hgl_x86::{Cond, Instr, Mnemonic, Reg, RegRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Validator configuration.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Samples drawn per edge group.
    pub samples_per_edge: usize,
    /// Rejection-sampling attempts per sample.
    pub sample_attempts: usize,
    /// RNG seed (validation is deterministic given the seed).
    pub seed: u64,
}

impl Default for ValidateConfig {
    fn default() -> ValidateConfig {
        ValidateConfig { samples_per_edge: 16, sample_attempts: 64, seed: 0x5eed }
    }
}

/// A counterexample: a sample satisfying the precondition whose
/// post-state matched no destination invariant.
#[derive(Debug, Clone)]
pub struct EdgeFailure {
    /// Function entry.
    pub function: u64,
    /// Source vertex.
    pub from: VertexId,
    /// The instruction.
    pub instr: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregate validation outcome.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Edge groups in the graph (one per `(from, instr)` pair).
    pub total: usize,
    /// Groups validated by sampling.
    pub checked: usize,
    /// Call edges covered by the external-contract axiom.
    pub assumed: usize,
    /// Groups where no satisfying concrete state could be constructed
    /// (vacuous or over-constrained preconditions).
    pub vacuous: usize,
    /// Groups at instruction addresses carrying an unsoundness
    /// annotation — outside the paper's guarantee, so not checked.
    pub annotated: usize,
    /// Total samples that passed.
    pub samples_passed: usize,
    /// Counterexamples.
    pub failed: Vec<EdgeFailure>,
}

impl ValidationReport {
    /// True when no counterexamples were found.
    pub fn all_proven(&self) -> bool {
        self.failed.is_empty()
    }
}

/// The symbol environment of one sample.
struct Env {
    map: BTreeMap<Sym, u64>,
}

impl Env {
    fn get(&self, s: Sym) -> u64 {
        *self.map.get(&s).unwrap_or(&0xdead_0000_0000)
    }
}

/// Try to pre-solve simple equality clauses (`lhs == rhs`) and bounds
/// so rejection sampling converges: repeatedly assign single-symbol
/// sides whose other side already evaluates.
fn propagate_equalities(state: &SymState, env: &mut BTreeMap<Sym, u64>) {
    for _ in 0..4 {
        for c in &state.pred.clauses {
            if c.rel != Rel::Eq {
                continue;
            }
            let nomem = |_: u64, _: u8| None;
            for (a, b) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
                if let Expr::Sym(s) = a {
                    let lookup = |sym: Sym| *env.get(&sym).unwrap_or(&0);
                    if let Some(v) = b.eval(&lookup, &nomem) {
                        if b.syms().iter().all(|sym| env.contains_key(sym)) {
                            env.insert(*s, v);
                        }
                    }
                }
            }
        }
    }
}

/// Draw a candidate symbol environment for `state`.
fn draw_env(state: &SymState, rng: &mut SmallRng, binary: &Binary) -> Env {
    let mut map: BTreeMap<Sym, u64> = BTreeMap::new();
    let mut syms: Vec<Sym> = Vec::new();
    for v in state.pred.regs.values() {
        syms.extend(v.syms());
    }
    for (r, v) in &state.pred.mem {
        syms.extend(r.addr.syms());
        syms.extend(v.syms());
    }
    for c in &state.pred.clauses {
        syms.extend(c.lhs.syms());
        syms.extend(c.rhs.syms());
    }
    for r in state.model.all_regions() {
        syms.extend(r.addr.syms());
    }
    syms.sort();
    syms.dedup();

    // Distinct pointer-ish symbols get well-separated slots so the
    // model's separation constraints usually hold; scalars get small
    // random values so bounds clauses usually hold.
    let mut slot = 0x10_0000_0000u64 + (rng.gen_range(0..0x100u64) << 24);
    for s in &syms {
        let v = match s {
            Sym::Init(Reg::Rsp) => 0x7fff_0000_0000 + (rng.gen_range(0..0x1000u64) * 8),
            Sym::RetSym(_) | Sym::RetAddr => 0x7f00_dead_0000 + rng.gen_range(0..0x100u64) * 8,
            _ => {
                // Mix strategies: pointer-like slot, small scalar, or
                // wild value.
                match rng.gen_range(0..4u32) {
                    0 => {
                        slot += 0x100_0000;
                        slot
                    }
                    1 => rng.gen_range(0..8u64),
                    2 => rng.gen_range(0..0x1_0000u64),
                    _ => rng.gen::<u64>(),
                }
            }
        };
        map.insert(*s, v);
    }
    // Mined bounds narrow the draw (e.g. jump-table indices).
    let layout = hgl_solver::Layout { text: binary.text_ranges(), data: binary.data_ranges() };
    let ctx = hgl_solver::Ctx::from_clauses(state.pred.clauses.iter(), layout);
    for s in &syms {
        if let Some(iv) = ctx.bound_of(&hgl_expr::Atom::Sym(*s)) {
            if iv.count() < 1 << 32 {
                map.insert(*s, rng.gen_range(iv.lo..=iv.hi));
            }
        }
        // Bounds over truncations of a symbol constrain its low bits.
        let t32 = Expr::sym(*s).trunc(hgl_x86::Width::B4);
        if let hgl_expr::Expr::Op { .. } = &t32 {
            if let Some(iv) = ctx.bound_of(&hgl_expr::Atom::Opaque(Box::new(t32))) {
                if iv.hi < 1 << 32 {
                    let low = rng.gen_range(iv.lo..=iv.hi);
                    map.insert(*s, low);
                }
            }
        }
    }
    propagate_equalities(state, &mut map);
    Env { map }
}

/// Build the concrete machine for a drawn environment.
fn build_machine(
    state: &SymState,
    env: &Env,
    binary: &Binary,
    addr: u64,
    rng: &mut SmallRng,
) -> Option<Machine> {
    let mut mem = Mem::new(FillPolicy::Hash(rng.gen()));
    for seg in &binary.segments {
        mem.load(seg.vaddr, &seg.bytes);
    }
    let mut m = Machine::new(mem);
    m.rip = addr;
    let lookup = |s: Sym| env.get(s);
    // Registers.
    for r in Reg::ALL {
        let v = match state.pred.regs.get(&r) {
            Some(e) if !e.is_bottom() => {
                let nomem = |_: u64, _: u8| None;
                match e.eval(&lookup, &nomem) {
                    Some(v) => v,
                    None => rng.gen(),
                }
            }
            _ => rng.gen(),
        };
        m.set_reg(RegRef::full(r), v);
    }
    // Memory contents.
    for (region, value) in &state.pred.mem {
        let nomem = |_: u64, _: u8| None;
        let a = region.addr.eval(&lookup, &nomem)?;
        if let Some(v) = value.eval(&lookup, &nomem) {
            if region.size <= 8 {
                m.mem.write(a, region.size as u8, v);
            }
        }
    }
    // Flags.
    match &state.pred.flags {
        FlagState::Unknown => {
            m.flags.cf = rng.gen();
            m.flags.pf = rng.gen();
            m.flags.zf = rng.gen();
            m.flags.sf = rng.gen();
            m.flags.of = rng.gen();
            m.flags.af = rng.gen();
        }
        fs => {
            // Determine each flag through the condition evaluator.
            let mem_snapshot = std::cell::RefCell::new(m.mem.clone());
            let mem_oracle = |a: u64, sz: u8| -> Option<u64> {
                Some(mem_snapshot.borrow_mut().read(a, sz))
            };
            m.flags.cf = fs.eval_cond(Cond::B, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.zf = fs.eval_cond(Cond::E, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.sf = fs.eval_cond(Cond::S, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.of = fs.eval_cond(Cond::O, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.pf = fs.eval_cond(Cond::P, &lookup, &mem_oracle).unwrap_or(rng.gen());
            m.flags.af = rng.gen();
        }
    }
    m.flags.df = state.pred.df.unwrap_or(false);
    Some(m)
}

/// Check that the machine satisfies the given invariant, extending the
/// environment with bindings for fresh symbols the lifter introduced.
fn post_holds(state: &SymState, env: &Env, machine: &Machine) -> Result<(), String> {
    let mut env2 = env.map.clone();
    let mut mem_reader = machine.mem.clone();
    // Bind fresh symbols from register values…
    for (r, e) in &state.pred.regs {
        if let Expr::Sym(s @ Sym::Fresh(_)) = e {
            env2.entry(*s).or_insert_with(|| machine.reg(*r));
        }
    }
    // …and from memory entries.
    let lookup_partial = |m: &BTreeMap<Sym, u64>, s: Sym| m.get(&s).copied();
    for (region, value) in &state.pred.mem {
        if let Expr::Sym(s @ Sym::Fresh(_)) = value {
            if !env2.contains_key(s) && region.size <= 8 {
                let nomem = |_: u64, _: u8| None;
                let addr_val = {
                    let env2c = env2.clone();
                    region.addr.eval(&move |sym| lookup_partial(&env2c, sym).unwrap_or(0), &nomem)
                };
                if let Some(a) = addr_val {
                    env2.insert(*s, mem_reader.read(a, region.size as u8));
                }
            }
        }
    }
    let env2c = env2.clone();
    let lookup = move |s: Sym| *env2c.get(&s).unwrap_or(&0xdead_0000_0000);
    let mem_oracle = {
        let snap = std::cell::RefCell::new(mem_reader.clone());
        move |a: u64, sz: u8| -> Option<u64> { Some(snap.borrow_mut().read(a, sz)) }
    };

    // Registers.
    for (r, e) in &state.pred.regs {
        if e.is_bottom() {
            continue;
        }
        if let Some(expected) = e.eval(&lookup, &mem_oracle) {
            let actual = machine.reg(*r);
            if expected != actual {
                return Err(format!("{r}: expected {expected:#x}, machine has {actual:#x}"));
            }
        }
    }
    // Memory + clauses.
    match state.pred.clauses_hold(&lookup, &mem_oracle) {
        Some(true) => {}
        Some(false) => return Err("memory/clause mismatch".to_string()),
        None => {}
    }
    // Flags: every condition the abstraction decides must agree.
    for c in Cond::ALL {
        let nomem_machine = |a: u64, sz: u8| -> Option<u64> {
            Some(mem_reader.clone().read(a, sz))
        };
        if let Some(expected) = state.pred.flags.eval_cond(c, &lookup, &nomem_machine) {
            let f = &machine.flags;
            let actual = c.eval(f.cf, f.pf, f.zf, f.sf, f.of);
            if expected != actual {
                return Err(format!("flag condition {c}: abstraction says {expected}, machine {actual}"));
            }
        }
    }
    // Direction flag.
    if let Some(df) = state.pred.df {
        if machine.flags.df != df {
            return Err("df mismatch".to_string());
        }
    }
    // Memory model structure.
    let env3 = env2.clone();
    if state.model.holds_in(&move |s| *env3.get(&s).unwrap_or(&0xdead_0000_0000)) == Some(false) {
        return Err("memory model violated".to_string());
    }
    let _ = &mut mem_reader;
    Ok(())
}

/// Validate every edge of a lift result against the concrete emulator.
pub fn validate_lift(binary: &Binary, result: &LiftResult, config: &ValidateConfig) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    for (entry, f) in &result.functions {
        // Group edges by (from, instr).
        let mut groups: BTreeMap<(VertexId, u64), Vec<usize>> = BTreeMap::new();
        for (i, e) in f.graph.edges.iter().enumerate() {
            groups.entry((e.from, e.instr.addr)).or_default().push(i);
        }
        for ((from, _), edge_indices) in groups {
            report.total += 1;
            let instr: &Instr = &f.graph.edges[edge_indices[0]].instr;
            if matches!(instr.mnemonic, Mnemonic::Call | Mnemonic::Syscall | Mnemonic::Cpuid | Mnemonic::Rdtsc) {
                // External contract / nondeterministic instructions:
                // axiomatized, not sampled.
                report.assumed += 1;
                continue;
            }
            if f.annotations.iter().any(|a| a.addr() == instr.addr) {
                // The paper's guarantee covers *unannotated* output
                // only (§1); edges at annotated instructions document
                // partially explored behaviour.
                report.annotated += 1;
                continue;
            }
            let pre = &f.graph.vertices[&from].state;
            let addr = match from {
                VertexId::At(a, _) => a,
                VertexId::Exit => continue,
            };
            let mut produced = 0;
            let mut failure: Option<String> = None;
            'sampling: for _ in 0..config.samples_per_edge {
                // Rejection sampling of a satisfying pre-state.
                let mut found = None;
                for _ in 0..config.sample_attempts {
                    let env = draw_env(pre, &mut rng, binary);
                    let lookup = |s: Sym| env.get(s);
                    let Some(machine) = build_machine(pre, &env, binary, addr, &mut rng) else {
                        continue;
                    };
                    // Precondition must hold.
                    let mem_snapshot = machine.mem.clone();
                    let oracle = {
                        let snap = std::cell::RefCell::new(mem_snapshot.clone());
                        move |a: u64, sz: u8| -> Option<u64> { Some(snap.borrow_mut().read(a, sz)) }
                    };
                    if pre.pred.clauses_hold(&lookup, &oracle) != Some(true) {
                        continue;
                    }
                    if pre.model.holds_in(&lookup) == Some(false) {
                        continue;
                    }
                    found = Some((env, machine));
                    break;
                }
                let Some((env, mut machine)) = found else {
                    continue; // could not build a sample this round
                };
                // Step the independent semantics.
                match machine.exec(&instr.clone()) {
                    Ok(_) => {}
                    Err(hgl_emu::EmuError::DivideError) => continue, // faulting path: out of HG scope
                    Err(e) => {
                        failure = Some(format!("emulator fault: {e}"));
                        break 'sampling;
                    }
                }
                produced += 1;
                // Some destination must match.
                let mut errs = Vec::new();
                let mut matched = false;
                for &ei in &edge_indices {
                    let edge = &f.graph.edges[ei];
                    let dest = &f.graph.vertices[&edge.to].state;
                    let rip_ok = match edge.to {
                        VertexId::At(a, _) => machine.rip == a,
                        VertexId::Exit => machine.rip == env.get(Sym::RetSym(*entry)),
                    };
                    if !rip_ok {
                        errs.push(format!("{}: rip {:#x} differs", edge.to, machine.rip));
                        continue;
                    }
                    match post_holds(dest, &env, &machine) {
                        Ok(()) => {
                            matched = true;
                            break;
                        }
                        Err(e) => errs.push(format!("{}: {e}", edge.to)),
                    }
                }
                if !matched {
                    failure = Some(format!(
                        "no destination matched (rip {:#x}): {}",
                        machine.rip,
                        errs.join("; ")
                    ));
                    break 'sampling;
                }
                report.samples_passed += 1;
            }
            match failure {
                Some(detail) => report.failed.push(EdgeFailure {
                    function: *entry,
                    from,
                    instr: instr.to_string(),
                    detail,
                }),
                None if produced == 0 => report.vacuous += 1,
                None => report.checked += 1,
            }
        }
    }
    report
}
