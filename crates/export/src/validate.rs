//! Executable validation of lifted Hoare triples.
//!
//! For each edge `{P} instr {Q₁ ∨ …}` of the Hoare Graph, we repeatedly
//!
//! 1. draw a random symbol environment and concrete machine state
//!    satisfying `P` (registers, flags, memory contents, clauses and
//!    the memory model's separation structure),
//! 2. execute the instruction on the *independent* `hgl-emu`
//!    semantics, and
//! 3. check that the resulting machine satisfies some destination
//!    invariant `Qᵢ` — matching fresh symbols introduced by the lifter
//!    against the values the machine actually produced.
//!
//! The environment drawing and containment checking live in
//! [`crate::checker`], shared with the whole-trace oracle.
//!
//! Call edges are *assumed* rather than checked: their post-state
//! encodes the System V external-call contract, which the paper also
//! axiomatises rather than proves (§1). A sample failure is a genuine
//! soundness counterexample of the lifter.

use crate::checker::{build_machine, draw_env, post_holds};
use hgl_core::lift::LiftResult;
use hgl_core::VertexId;
use hgl_elf::Binary;
use hgl_expr::Sym;
use hgl_x86::{Instr, Mnemonic};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Validator configuration.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Samples drawn per edge group.
    pub samples_per_edge: usize,
    /// Rejection-sampling attempts per sample.
    pub sample_attempts: usize,
    /// RNG seed (validation is deterministic given the seed).
    pub seed: u64,
}

impl Default for ValidateConfig {
    fn default() -> ValidateConfig {
        ValidateConfig { samples_per_edge: 16, sample_attempts: 64, seed: 0x5eed }
    }
}

/// A counterexample: a sample satisfying the precondition whose
/// post-state matched no destination invariant.
#[derive(Debug, Clone)]
pub struct EdgeFailure {
    /// Function entry.
    pub function: u64,
    /// Source vertex.
    pub from: VertexId,
    /// The instruction.
    pub instr: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregate validation outcome.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Edge groups in the graph (one per `(from, instr)` pair).
    pub total: usize,
    /// Groups validated by sampling.
    pub checked: usize,
    /// Call edges covered by the external-contract axiom.
    pub assumed: usize,
    /// Groups where no satisfying concrete state could be constructed
    /// (vacuous or over-constrained preconditions).
    pub vacuous: usize,
    /// Groups at instruction addresses carrying an unsoundness
    /// annotation — outside the paper's guarantee, so not checked.
    pub annotated: usize,
    /// Total samples that passed.
    pub samples_passed: usize,
    /// Counterexamples.
    pub failed: Vec<EdgeFailure>,
}

impl ValidationReport {
    /// True when no counterexamples were found.
    pub fn all_proven(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Validate every edge of a lift result against the concrete emulator.
pub fn validate_lift(binary: &Binary, result: &LiftResult, config: &ValidateConfig) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    for (entry, f) in &result.functions {
        // Group edges by (from, instr).
        let mut groups: BTreeMap<(VertexId, u64), Vec<usize>> = BTreeMap::new();
        for (i, e) in f.graph.edges.iter().enumerate() {
            groups.entry((e.from, e.instr.addr)).or_default().push(i);
        }
        for ((from, _), edge_indices) in groups {
            report.total += 1;
            let instr: &Instr = &f.graph.edges[edge_indices[0]].instr;
            if matches!(instr.mnemonic, Mnemonic::Call | Mnemonic::Syscall | Mnemonic::Cpuid | Mnemonic::Rdtsc) {
                // External contract / nondeterministic instructions:
                // axiomatized, not sampled.
                report.assumed += 1;
                continue;
            }
            if f.annotations.iter().any(|a| a.addr() == instr.addr) {
                // The paper's guarantee covers *unannotated* output
                // only (§1); edges at annotated instructions document
                // partially explored behaviour.
                report.annotated += 1;
                continue;
            }
            let pre = &f.graph.vertices[&from].state;
            let addr = match from {
                VertexId::At(a, _) => a,
                VertexId::Exit => continue,
            };
            let mut produced = 0;
            let mut failure: Option<String> = None;
            'sampling: for _ in 0..config.samples_per_edge {
                // Rejection sampling of a satisfying pre-state.
                let mut found = None;
                for _ in 0..config.sample_attempts {
                    let env = draw_env(pre, &mut rng, binary);
                    let lookup = |s: Sym| env.get(s);
                    let Some(machine) = build_machine(pre, &env, binary, addr, &mut rng) else {
                        continue;
                    };
                    // Precondition must hold.
                    let mem_snapshot = machine.mem.clone();
                    let oracle = {
                        let snap = std::cell::RefCell::new(mem_snapshot.clone());
                        move |a: u64, sz: u8| -> Option<u64> { Some(snap.borrow_mut().read(a, sz)) }
                    };
                    if pre.pred.clauses_hold(&lookup, &oracle) != Some(true) {
                        continue;
                    }
                    if pre.model.holds_in(&lookup) == Some(false) {
                        continue;
                    }
                    found = Some((env, machine));
                    break;
                }
                let Some((env, mut machine)) = found else {
                    continue; // could not build a sample this round
                };
                // Step the independent semantics.
                match machine.exec(&instr.clone()) {
                    Ok(_) => {}
                    Err(hgl_emu::EmuError::DivideError) => continue, // faulting path: out of HG scope
                    Err(e) => {
                        failure = Some(format!("emulator fault: {e}"));
                        break 'sampling;
                    }
                }
                produced += 1;
                // Some destination must match.
                let mut errs = Vec::new();
                let mut matched = false;
                for &ei in &edge_indices {
                    let edge = &f.graph.edges[ei];
                    let dest = &f.graph.vertices[&edge.to].state;
                    let rip_ok = match edge.to {
                        VertexId::At(a, _) => machine.rip == a,
                        VertexId::Exit => machine.rip == env.get(Sym::RetSym(*entry)),
                    };
                    if !rip_ok {
                        errs.push(format!("{}: rip {:#x} differs", edge.to, machine.rip));
                        continue;
                    }
                    match post_holds(dest, &env, &machine) {
                        Ok(()) => {
                            matched = true;
                            break;
                        }
                        Err(e) => errs.push(format!("{}: {e}", edge.to)),
                    }
                }
                if !matched {
                    failure = Some(format!(
                        "no destination matched (rip {:#x}): {}",
                        machine.rip,
                        errs.join("; ")
                    ));
                    break 'sampling;
                }
                report.samples_passed += 1;
            }
            match failure {
                Some(detail) => report.failed.push(EdgeFailure {
                    function: *entry,
                    from,
                    instr: instr.to_string(),
                    detail,
                }),
                None if produced == 0 => report.vacuous += 1,
                None => report.checked += 1,
            }
        }
    }
    report
}
