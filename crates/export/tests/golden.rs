//! Golden-file snapshot tests for the Isabelle/HOL, JSON and DOT
//! exporters on one small fixed binary.
//!
//! The exporters' output formats are consumed downstream (Isabelle
//! proof replay, the JSON CLI surface), so format drift must be a
//! *conscious* act: these tests fail on any byte difference against
//! the checked-in snapshots under `tests/golden/`.
//!
//! To intentionally change a format, regenerate the snapshots with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p hgl-export --test golden
//! ```
//!
//! and commit the refreshed files together with the exporter change.

use hgl_analysis::{analyze, AnalysisConfig};
use hgl_asm::Asm;
use hgl_core::Lifter;
use hgl_export::{export_dot, export_json, export_lint_json, export_theory};
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};
use std::path::PathBuf;

/// The fixed snapshot subject: a two-function program with a
/// conditional diamond, an internal call and a leaf callee — one of
/// every exporter-visible construct (branch, call edge, exit vertex)
/// while staying small enough to review by eye.
fn fixed_binary() -> hgl_elf::Binary {
    let mut asm = Asm::new();

    asm.label("main");
    asm.push(Reg::Rbp);
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp)],
        Width::B8,
    ));
    asm.ins(Instr::new(
        Mnemonic::Cmp,
        vec![Operand::reg(Reg::Rdi, Width::B4), Operand::Imm(1)],
        Width::B4,
    ));
    asm.jcc(Cond::E, "main_else");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(7)],
        Width::B4,
    ));
    asm.jmp("main_join");
    asm.label("main_else");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(9)],
        Width::B4,
    ));
    asm.label("main_join");
    asm.call("leaf");
    asm.pop(Reg::Rbp);
    asm.ret();

    asm.label("leaf");
    asm.ins(Instr::new(
        Mnemonic::Add,
        vec![Operand::reg64(Reg::Rax), Operand::Imm(1)],
        Width::B8,
    ));
    asm.ret();

    asm.entry("main");
    asm.assemble().expect("fixed binary assembles")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the checked-in snapshot `name`, or rewrite
/// the snapshot when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p hgl-export --test golden",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first differing line to keep failures readable.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
        panic!(
            "exporter output drifted from {} (first difference at line {line}); \
             if intentional, regenerate with UPDATE_GOLDEN=1",
            path.display()
        );
    }
}

#[test]
fn isabelle_theory_matches_golden() {
    let bin = fixed_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(lifted.is_lifted(), "fixed binary must lift");
    assert_golden("fixed.thy", &export_theory(&lifted, "fixed"));
}

#[test]
fn json_export_matches_golden() {
    let bin = fixed_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    assert_golden("fixed.json", &export_json(&lifted));
}

/// The lint-snapshot subject: a function with a stack-local store, a
/// callee-saved clobber left live at `ret` (the `callee-saved-clobber`
/// error) — small enough that the full diagnostic set is reviewable.
fn lint_binary() -> hgl_elf::Binary {
    let mut asm = Asm::new();
    asm.label("clobber");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![
            Operand::Mem(MemOperand::base_disp(Reg::Rsp, -0x10, Width::B8)),
            Operand::Imm(5),
        ],
        Width::B8,
    ));
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rbx), Operand::Imm(1)],
        Width::B8,
    ));
    asm.ret();
    asm.entry("clobber").assemble().expect("lint binary assembles")
}

#[test]
fn lint_json_matches_golden() {
    // Clean binary: writes and per-function stats, no diagnostics.
    let bin = fixed_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    let report = analyze(&bin, &lifted, &AnalysisConfig::default());
    assert_golden("fixed_lint.json", &export_lint_json(&report));

    // Defective binary: the callee-saved-clobber error shows up in the
    // diags array.
    let bin = lint_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    let report = analyze(&bin, &lifted, &AnalysisConfig::default());
    assert!(!report.diags.is_empty(), "lint binary must produce diagnostics");
    assert_golden("lint.json", &export_lint_json(&report));

    // Unbounded indirect jump: the value-set recovery cannot bound a
    // target loaded from writable memory, so the
    // `vsa-unbounded-indirect` warning lands in the diags array.
    let bin = vsa_lint_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    let report = analyze(&bin, &lifted, &AnalysisConfig::default());
    assert!(
        report.diags.iter().any(|d| d.rule.name() == "vsa-unbounded-indirect"),
        "vsa fixture must fire the lint: {report}"
    );
    assert_golden("vsa_lint.json", &export_lint_json(&report));
}

/// The vsa-lint snapshot subject: an indirect jump through a function
/// pointer in a *writable* cell — unresolvable by any refinement.
fn vsa_lint_binary() -> hgl_elf::Binary {
    let mut asm = Asm::new();
    asm.label("wild");
    asm.data("jptr", vec![0u8; 8]);
    asm.movabs_label(Reg::Rax, "jptr");
    asm.ins(Instr::new(
        Mnemonic::Mov,
        vec![
            Operand::reg64(Reg::Rax),
            Operand::Mem(MemOperand::base_disp(Reg::Rax, 0, Width::B8)),
        ],
        Width::B8,
    ));
    asm.ins(Instr::new(Mnemonic::Jmp, vec![Operand::reg64(Reg::Rax)], Width::B8));
    asm.entry("wild").assemble().expect("vsa lint binary assembles")
}

#[test]
fn dot_export_matches_golden() {
    let bin = fixed_binary();
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    let dot = export_dot(&lifted, bin.entry).expect("entry function exists");
    assert_golden("fixed.dot", &dot);
}
