//! Step-2 validation over real lifted binaries: every Hoare triple the
//! lifter emits must survive randomized concrete testing against the
//! independent emulator semantics, and the Isabelle export must be
//! structurally complete (one lemma per edge group, one definition per
//! vertex).

use hgl_asm::Asm;
use hgl_core::Lifter;
use hgl_elf::Binary;
use hgl_export::{export_theory, validate_lift, ValidateConfig};
use hgl_x86::{Cond, Instr, MemOperand, Mnemonic, Operand, Reg, Width};

fn ins(m: Mnemonic, ops: Vec<Operand>, w: Width) -> Instr {
    Instr::new(m, ops, w)
}

fn mem(base: Reg, disp: i64, size: Width) -> Operand {
    Operand::Mem(MemOperand::base_disp(base, disp, size))
}

fn validate_clean(bin: &Binary, what: &str) -> hgl_export::ValidationReport {
    let lifted = Lifter::new(bin).lift_entry(bin.entry);
    assert!(lifted.is_lifted(), "{what}: lift rejected: {:?}", lifted.reject_reason());
    let report = validate_lift(bin, &lifted, &ValidateConfig::default());
    assert!(
        report.all_proven(),
        "{what}: counterexamples found:\n{}",
        report
            .failed
            .iter()
            .map(|f| format!("  {} @{}: {} — {}", f.function, f.from, f.instr, f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.checked > 0, "{what}: nothing was actually checked");
    report
}

#[test]
fn frame_function_validates() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.mov(Operand::reg64(Reg::Rbp), Operand::reg64(Reg::Rsp));
    asm.ins(ins(Mnemonic::Sub, vec![Operand::reg64(Reg::Rsp), Operand::Imm(0x20)], Width::B8));
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rbp, -8, Width::B8), Operand::Imm(7)], Width::B8));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg64(Reg::Rax), mem(Reg::Rbp, -8, Width::B8)], Width::B8));
    asm.ins(ins(Mnemonic::Leave, vec![], Width::B8));
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");
    let report = validate_clean(&bin, "frame function");
    assert_eq!(report.assumed, 0);
}

#[test]
fn arithmetic_and_flags_validate() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::Imm(5)], Width::B8));
    asm.ins(ins(Mnemonic::Shl, vec![Operand::reg64(Reg::Rax), Operand::Imm(3)], Width::B8));
    asm.ins(ins(Mnemonic::Xor, vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rdi)], Width::B8));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg64(Reg::Rax), Operand::Imm(100)], Width::B8));
    asm.jcc(Cond::B, "small");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.ret();
    asm.label("small");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(2)], Width::B4));
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");
    validate_clean(&bin, "arithmetic/flags");
}

#[test]
fn jump_table_validates() {
    let mut asm = Asm::new();
    asm.label("dispatch");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(2)], Width::B4));
    asm.jcc(Cond::A, "default");
    let jmp_tbl = ins(
        Mnemonic::Jmp,
        vec![Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(jmp_tbl, 0, "table");
    asm.label("case0");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(10)], Width::B4));
    asm.ret();
    asm.label("case1");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(11)], Width::B4));
    asm.ret();
    asm.label("case2");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(12)], Width::B4));
    asm.ret();
    asm.label("default");
    asm.ins(ins(Mnemonic::Xor, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rax, Width::B4)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["case0", "case1", "case2"]);
    let bin = asm.entry("dispatch").assemble().expect("assembles");
    validate_clean(&bin, "jump table");
}

/// The weird-edge binary from the §2 example: validation must confirm
/// both the intended and the weird control flow.
#[test]
fn weird_edge_validates() {
    let mut asm = Asm::new();
    asm.label("weird");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::reg(Reg::Rdi, Width::B4)], Width::B4));
    asm.ins(ins(Mnemonic::Cmp, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(1)], Width::B4));
    asm.jcc(Cond::A, "done");
    let load = ins(
        Mnemonic::Mov,
        vec![Operand::reg64(Reg::Rax), Operand::Mem(MemOperand::sib(None, Reg::Rax, 8, 0, Width::B8))],
        Width::B8,
    );
    asm.ins_mem_label(load, 1, "table");
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rsi, 0, Width::B8), Operand::reg64(Reg::Rax)], Width::B8));
    let poison = ins(Mnemonic::Mov, vec![mem(Reg::Rdx, 0, Width::B8), Operand::Imm(0)], Width::B8);
    asm.ins_imm_label_off(poison, 1, "carrier", 1);
    asm.ins(ins(Mnemonic::Jmp, vec![mem(Reg::Rsi, 0, Width::B8)], Width::B8));
    asm.label("t0");
    asm.ret();
    asm.label("t1");
    asm.ret();
    asm.label("done");
    asm.ret();
    asm.label("carrier");
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0xc3)], Width::B4));
    asm.ret();
    asm.jump_table("table", &["t0", "t1"]);
    let bin = asm.entry("weird").assemble().expect("assembles");
    validate_clean(&bin, "weird edge");
}

#[test]
fn external_call_edges_are_assumed() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.call_ext("puts");
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(lifted.is_lifted());
    let report = validate_lift(&bin, &lifted, &ValidateConfig::default());
    assert!(report.all_proven());
    assert_eq!(report.assumed, 1, "the call edge is axiomatized");
}

#[test]
fn theory_export_structure() {
    let mut asm = Asm::new();
    asm.label("main");
    asm.push(Reg::Rbp);
    asm.ins(ins(Mnemonic::Mov, vec![mem(Reg::Rdi, 0, Width::B8), Operand::Imm(3)], Width::B8));
    asm.pop(Reg::Rbp);
    asm.ret();
    let bin = asm.entry("main").assemble().expect("assembles");
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    assert!(lifted.is_lifted());
    let thy = export_theory(&lifted, "demo");

    assert!(thy.starts_with("theory demo"), "theory header");
    assert!(thy.trim_end().ends_with("end"), "theory footer");
    let f = lifted.functions.values().next().expect("one function");
    // One definition per vertex.
    let defs = thy.matches("definition P_").count();
    assert_eq!(defs, f.graph.vertices.len());
    // One lemma per edge.
    let lemmas = hgl_export::isabelle::lemma_count(&thy);
    assert_eq!(lemmas, f.graph.edges.len());
    // The caller-pointer assumption is exported as a named axiom.
    assert!(thy.contains("axiomatization where assume_"), "assumptions exported:\n{thy}");
    // Invariants mention the return-address slot.
    assert!(thy.contains("mem_read"), "memory facts exported");
}

#[test]
fn string_ops_validate() {
    let mut asm = Asm::new();
    asm.label("f");
    // Concrete-extent rep stosq through a caller pointer.
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rcx, Width::B4), Operand::Imm(4)], Width::B4));
    asm.ins(ins(Mnemonic::Mov, vec![Operand::reg(Reg::Rax, Width::B4), Operand::Imm(0)], Width::B4));
    let mut stos = ins(Mnemonic::Stos, vec![], Width::B8);
    stos.rep = Some(hgl_x86::RepPrefix::Rep);
    asm.ins(stos);
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");
    validate_clean(&bin, "rep stosq");
}

#[test]
fn validation_is_deterministic() {
    let mut asm = Asm::new();
    asm.label("f");
    asm.ins(ins(Mnemonic::Add, vec![Operand::reg64(Reg::Rax), Operand::reg64(Reg::Rdi)], Width::B8));
    asm.ret();
    let bin = asm.entry("f").assemble().expect("assembles");
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    let r1 = validate_lift(&bin, &lifted, &ValidateConfig::default());
    let r2 = validate_lift(&bin, &lifted, &ValidateConfig::default());
    assert_eq!(r1.samples_passed, r2.samples_passed);
    assert_eq!(r1.checked, r2.checked);
}
