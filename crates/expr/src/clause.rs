//! Predicate clauses `E □ C` (§3.1).

use crate::{Expr, Sym};
use std::fmt;

/// The six clause relations of §3.1; subscript-`s` relations are
/// signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<ₛ` (signed)
    SLt,
    /// `≥` (unsigned)
    Ge,
    /// `≥ₛ` (signed)
    SGe,
}

impl Rel {
    /// Evaluate the relation on concrete values.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Rel::Eq => lhs == rhs,
            Rel::Ne => lhs != rhs,
            Rel::Lt => lhs < rhs,
            Rel::SLt => (lhs as i64) < rhs as i64,
            Rel::Ge => lhs >= rhs,
            Rel::SGe => lhs as i64 >= rhs as i64,
        }
    }

    /// The relation that holds exactly when `self` does not.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::SLt => Rel::SGe,
            Rel::SGe => Rel::SLt,
        }
    }

    /// Notation used in clause display.
    pub const fn symbol(self) -> &'static str {
        match self {
            Rel::Eq => "==",
            Rel::Ne => "!=",
            Rel::Lt => "<",
            Rel::SLt => "<s",
            Rel::Ge => ">=",
            Rel::SGe => ">=s",
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A clause `lhs □ rhs` over constant expressions. `Copy` now that
/// expressions are interned handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    /// Left-hand side.
    pub lhs: Expr,
    /// Relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Clause {
    /// Construct a clause.
    pub fn new(lhs: Expr, rel: Rel, rhs: Expr) -> Clause {
        Clause { lhs, rel, rhs }
    }

    /// The clause that holds exactly when this one does not.
    pub fn negate(&self) -> Clause {
        Clause { lhs: self.lhs, rel: self.rel.negate(), rhs: self.rhs }
    }

    /// Evaluate concretely; `None` if either side contains ⊥ or an
    /// unresolvable read.
    pub fn eval<F, M>(&self, env: &F, mem: &M) -> Option<bool>
    where
        F: Fn(Sym) -> u64,
        M: Fn(u64, u8) -> Option<u64>,
    {
        Some(self.rel.eval(self.lhs.eval(env, mem)?, self.rhs.eval(env, mem)?))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::Reg;

    #[test]
    fn rel_eval_signed_vs_unsigned() {
        assert!(Rel::Lt.eval(1, u64::MAX));
        assert!(!Rel::SLt.eval(1, u64::MAX)); // -1 signed
        assert!(Rel::SGe.eval(1, u64::MAX));
    }

    #[test]
    fn negate_partitions() {
        for rel in [Rel::Eq, Rel::Ne, Rel::Lt, Rel::SLt, Rel::Ge, Rel::SGe] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 3), (5, 5)] {
                assert_ne!(rel.eval(a, b), rel.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn clause_eval() {
        let c = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(0xc3));
        let nomem = |_: u64, _: u8| None;
        assert_eq!(c.eval(&|_| 0x10, &nomem), Some(true));
        assert_eq!(c.eval(&|_| 0xc3, &nomem), Some(false));
        let b = Clause::new(Expr::bottom(), Rel::Eq, Expr::imm(0));
        assert_eq!(b.eval(&|_| 0, &nomem), None);
    }

    #[test]
    fn display() {
        let c = Clause::new(Expr::sym(Sym::Init(Reg::Rax)), Rel::Lt, Expr::imm(0xc3));
        assert_eq!(c.to_string(), "rax0 < 0xc3");
    }
}
