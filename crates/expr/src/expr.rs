//! The symbolic expression AST and its simplifying constructors.

use crate::{Linear, Sym};
use hgl_x86::Width;
use std::fmt;

/// Operator kinds. All operate on 64-bit values; narrower instruction
/// widths are expressed with explicit [`OpKind::Trunc`] /
/// [`OpKind::SExt`] nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Not,
    Neg,
    Shl,
    Shr,
    Sar,
    Rol(Width),
    Ror(Width),
    /// Zero-extend from the low bits of the given width (equivalently:
    /// truncate to the width, then view as a 64-bit value).
    Trunc(Width),
    /// Sign-extend from the given width to 64 bits.
    SExt(Width),
    Popcnt,
    Tzcnt,
    Bsf,
    Bsr,
}

/// A symbolic expression (the paper's `E`, §3.1).
///
/// Constructed through the simplifying methods ([`Expr::add`],
/// [`Expr::and`], …) which constant-fold and normalise linear pointer
/// arithmetic, so that equal addresses usually normalise to identical
/// terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A 64-bit immediate.
    Imm(u64),
    /// A symbol (unknown-but-fixed value).
    Sym(Sym),
    /// The value read from memory region `[addr, size]` — used when a
    /// read cannot be resolved against the memory model but the
    /// expression must still be reported (e.g. the non-standard stack
    /// pointer of §5.3).
    Deref {
        /// Address expression.
        addr: Box<Expr>,
        /// Region size in bytes.
        size: u8,
    },
    /// Operator application.
    Op {
        /// The operator.
        op: OpKind,
        /// Operands (1 or 2).
        args: Vec<Expr>,
    },
    /// The unknown constant expression ⊥ (any value).
    Bottom,
}

// The builder methods below intentionally take `self` by value and return
// a normalised `Expr`; they are constructors, not `std::ops` overloads.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// An immediate.
    pub fn imm(v: u64) -> Expr {
        Expr::Imm(v)
    }

    /// A symbol.
    pub fn sym(s: Sym) -> Expr {
        Expr::Sym(s)
    }

    /// The unknown expression ⊥.
    pub fn bottom() -> Expr {
        Expr::Bottom
    }

    /// A symbolic memory read `*[addr, size]`.
    pub fn read(addr: Expr, size: u8) -> Expr {
        if addr.is_bottom() {
            return Expr::Bottom;
        }
        Expr::Deref { addr: Box::new(addr), size }
    }

    /// True if this is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Expr::Bottom)
    }

    /// The immediate value, if this expression is a constant.
    pub fn as_imm(&self) -> Option<u64> {
        match self {
            Expr::Imm(v) => Some(*v),
            _ => None,
        }
    }

    fn binop(op: OpKind, a: Expr, b: Expr) -> Expr {
        Expr::Op { op, args: vec![a, b] }
    }

    fn unop(op: OpKind, a: Expr) -> Expr {
        Expr::Op { op, args: vec![a] }
    }

    /// Addition with linear normalisation.
    pub fn add(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => return Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => return Expr::Imm(a.wrapping_add(*b)),
            (_, Expr::Imm(0)) => return self,
            (Expr::Imm(0), _) => return rhs,
            _ => {}
        }
        Linear::of_expr(&Expr::binop(OpKind::Add, self, rhs)).to_expr()
    }

    /// Subtraction with linear normalisation.
    pub fn sub(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => return Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => return Expr::Imm(a.wrapping_sub(*b)),
            (_, Expr::Imm(0)) => return self,
            _ => {}
        }
        if self == rhs {
            return Expr::Imm(0);
        }
        Linear::of_expr(&Expr::binop(OpKind::Sub, self, rhs)).to_expr()
    }

    /// Multiplication with linear normalisation (constant scaling).
    pub fn mul(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => return Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => return Expr::Imm(a.wrapping_mul(*b)),
            (_, Expr::Imm(1)) => return self,
            (Expr::Imm(1), _) => return rhs,
            (_, Expr::Imm(0)) | (Expr::Imm(0), _) => return Expr::Imm(0),
            _ => {}
        }
        if self.as_imm().is_some() || rhs.as_imm().is_some() {
            Linear::of_expr(&Expr::binop(OpKind::Mul, self, rhs)).to_expr()
        } else {
            Expr::binop(OpKind::Mul, self, rhs)
        }
    }

    /// Two's-complement negation.
    pub fn neg(self) -> Expr {
        match &self {
            Expr::Bottom => Expr::Bottom,
            Expr::Imm(a) => Expr::Imm(a.wrapping_neg()),
            _ => Linear::of_expr(&Expr::unop(OpKind::Neg, self)).to_expr(),
        }
    }

    /// Bitwise and.
    pub fn and(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => Expr::Imm(a & b),
            (_, Expr::Imm(0)) | (Expr::Imm(0), _) => Expr::Imm(0),
            (_, Expr::Imm(u64::MAX)) => self,
            (Expr::Imm(u64::MAX), _) => rhs,
            _ if self == rhs => self,
            _ => Expr::binop(OpKind::And, self, rhs),
        }
    }

    /// Bitwise or.
    pub fn or(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => Expr::Imm(a | b),
            (_, Expr::Imm(0)) => self,
            (Expr::Imm(0), _) => rhs,
            _ if self == rhs => self,
            _ => Expr::binop(OpKind::Or, self, rhs),
        }
    }

    /// Bitwise exclusive or.
    pub fn xor(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) => Expr::Imm(a ^ b),
            (_, Expr::Imm(0)) => self,
            (Expr::Imm(0), _) => rhs,
            _ if self == rhs => Expr::Imm(0),
            _ => Expr::binop(OpKind::Xor, self, rhs),
        }
    }

    /// Bitwise not.
    pub fn not(self) -> Expr {
        match &self {
            Expr::Bottom => Expr::Bottom,
            Expr::Imm(a) => Expr::Imm(!a),
            _ => Expr::unop(OpKind::Not, self),
        }
    }

    /// Left shift. Constant shifts become multiplications so that
    /// scaled jump-table indexing (`shl rax, 3`) stays linear.
    pub fn shl(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (_, Expr::Imm(c)) if *c < 64 => self.mul(Expr::Imm(1u64 << c)),
            (_, Expr::Imm(_)) => Expr::Imm(0),
            _ => Expr::binop(OpKind::Shl, self, rhs),
        }
    }

    /// Logical right shift.
    pub fn shr(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(c)) if *c < 64 => Expr::Imm(a >> c),
            (_, Expr::Imm(c)) if *c >= 64 => Expr::Imm(0),
            (_, Expr::Imm(0)) => self,
            _ => Expr::binop(OpKind::Shr, self, rhs),
        }
    }

    /// Arithmetic right shift.
    pub fn sar(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(c)) if *c < 64 => Expr::Imm(((*a as i64) >> c) as u64),
            (_, Expr::Imm(0)) => self,
            _ => Expr::binop(OpKind::Sar, self, rhs),
        }
    }

    /// Unsigned division.
    pub fn udiv(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) if *b != 0 => Expr::Imm(a / b),
            (_, Expr::Imm(1)) => self,
            _ => Expr::binop(OpKind::UDiv, self, rhs),
        }
    }

    /// Unsigned remainder.
    pub fn urem(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) if *b != 0 => Expr::Imm(a % b),
            _ => Expr::binop(OpKind::URem, self, rhs),
        }
    }

    /// Signed division.
    pub fn sdiv(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) => {
                Expr::Imm((*a as i64).wrapping_div(*b as i64) as u64)
            }
            _ => Expr::binop(OpKind::SDiv, self, rhs),
        }
    }

    /// Signed remainder.
    pub fn srem(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Bottom, _) | (_, Expr::Bottom) => Expr::Bottom,
            (Expr::Imm(a), Expr::Imm(b)) if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) => {
                Expr::Imm((*a as i64).wrapping_rem(*b as i64) as u64)
            }
            _ => Expr::binop(OpKind::SRem, self, rhs),
        }
    }

    /// Zero-extend from `w` (truncate to `w` bits, view as 64-bit).
    pub fn trunc(self, w: Width) -> Expr {
        if w == Width::B8 {
            return self;
        }
        match &self {
            Expr::Bottom => Expr::Bottom,
            Expr::Imm(a) => Expr::Imm(w.trunc(*a)),
            Expr::Op { op: OpKind::Trunc(w2), args } if *w2 <= w => {
                Expr::unop(OpKind::Trunc(*w2), args[0].clone())
            }
            _ => Expr::unop(OpKind::Trunc(w), self),
        }
    }

    /// Sign-extend from `w` to 64 bits.
    pub fn sext(self, w: Width) -> Expr {
        if w == Width::B8 {
            return self;
        }
        match &self {
            Expr::Bottom => Expr::Bottom,
            Expr::Imm(a) => Expr::Imm(w.sext(*a)),
            _ => Expr::unop(OpKind::SExt(w), self),
        }
    }

    /// Apply a unary operator with constant folding.
    pub fn apply_un(op: OpKind, a: Expr) -> Expr {
        if a.is_bottom() {
            return Expr::Bottom;
        }
        match (op, a.as_imm()) {
            (OpKind::Popcnt, Some(v)) => Expr::Imm(v.count_ones() as u64),
            (OpKind::Tzcnt, Some(v)) => Expr::Imm(v.trailing_zeros() as u64),
            (OpKind::Not, _) => a.not(),
            (OpKind::Neg, _) => a.neg(),
            (OpKind::Trunc(w), _) => a.trunc(w),
            (OpKind::SExt(w), _) => a.sext(w),
            _ => Expr::unop(op, a),
        }
    }

    /// Number of AST nodes, used to bound expression growth.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Imm(_) | Expr::Sym(_) | Expr::Bottom => 1,
            Expr::Deref { addr, .. } => 1 + addr.node_count(),
            Expr::Op { args, .. } => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
        }
    }

    /// All symbols occurring in the expression.
    pub fn syms(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_syms(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_syms(&self, out: &mut Vec<Sym>) {
        match self {
            Expr::Sym(s) => out.push(*s),
            Expr::Deref { addr, .. } => addr.collect_syms(out),
            Expr::Op { args, .. } => {
                for a in args {
                    a.collect_syms(out);
                }
            }
            Expr::Imm(_) | Expr::Bottom => {}
        }
    }

    /// Concretely evaluate against a symbol environment and a memory
    /// oracle for [`Expr::Deref`] nodes.
    ///
    /// Returns `None` for ⊥ or when `mem` cannot resolve a read.
    pub fn eval<F, M>(&self, env: &F, mem: &M) -> Option<u64>
    where
        F: Fn(Sym) -> u64,
        M: Fn(u64, u8) -> Option<u64>,
    {
        match self {
            Expr::Imm(v) => Some(*v),
            Expr::Sym(s) => Some(env(*s)),
            Expr::Bottom => None,
            Expr::Deref { addr, size } => {
                let a = addr.eval(env, mem)?;
                mem(a, *size)
            }
            Expr::Op { op, args } => {
                let a = args[0].eval(env, mem)?;
                if args.len() == 1 {
                    return Some(match op {
                        OpKind::Not => !a,
                        OpKind::Neg => a.wrapping_neg(),
                        OpKind::Trunc(w) => w.trunc(a),
                        OpKind::SExt(w) => w.sext(w.trunc(a)),
                        OpKind::Popcnt => a.count_ones() as u64,
                        OpKind::Tzcnt => a.trailing_zeros() as u64,
                        OpKind::Bsf => {
                            if a == 0 {
                                return None; // undefined result
                            }
                            a.trailing_zeros() as u64
                        }
                        OpKind::Bsr => {
                            if a == 0 {
                                return None;
                            }
                            (63 - a.leading_zeros()) as u64
                        }
                        _ => return None,
                    });
                }
                let b = args[1].eval(env, mem)?;
                Some(match op {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::Mul => a.wrapping_mul(b),
                    OpKind::UDiv => a.checked_div(b)?,
                    OpKind::URem => a.checked_rem(b)?,
                    OpKind::SDiv => (a as i64).checked_div(b as i64)? as u64,
                    OpKind::SRem => (a as i64).checked_rem(b as i64)? as u64,
                    OpKind::And => a & b,
                    OpKind::Or => a | b,
                    OpKind::Xor => a ^ b,
                    OpKind::Shl => a.checked_shl(b as u32).unwrap_or(0),
                    OpKind::Shr => a.checked_shr(b as u32).unwrap_or(0),
                    OpKind::Sar => {
                        let sh = (b as u32).min(63);
                        ((a as i64) >> sh) as u64
                    }
                    OpKind::Rol(w) => {
                        let bits = w.bits();
                        let v = w.trunc(a);
                        let s = (b as u32) % bits;
                        w.trunc(v << s | v >> ((bits - s) % bits))
                    }
                    OpKind::Ror(w) => {
                        let bits = w.bits();
                        let v = w.trunc(a);
                        let s = (b as u32) % bits;
                        w.trunc(v >> s | v << ((bits - s) % bits))
                    }
                    _ => return None,
                })
            }
        }
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Expr {
        Expr::Imm(v)
    }
}

impl From<Sym> for Expr {
    fn from(s: Sym) -> Expr {
        Expr::Sym(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Imm(v) => {
                if *v < 10 {
                    write!(f, "{v}")
                } else if (*v as i64) < 0 && (*v as i64) > -0x1_0000_0000 {
                    write!(f, "-{:#x}", (*v as i64).unsigned_abs())
                } else {
                    write!(f, "{v:#x}")
                }
            }
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Bottom => write!(f, "⊥"),
            Expr::Deref { addr, size } => write!(f, "*[{addr}, {size}]"),
            Expr::Op { op, args } => {
                if args.len() == 1 {
                    let name = match op {
                        OpKind::Not => "~",
                        OpKind::Neg => "-",
                        OpKind::Trunc(w) => return write!(f, "trunc{}({})", w.bits(), args[0]),
                        OpKind::SExt(w) => return write!(f, "sext{}({})", w.bits(), args[0]),
                        OpKind::Popcnt => return write!(f, "popcnt({})", args[0]),
                        OpKind::Tzcnt => return write!(f, "tzcnt({})", args[0]),
                        OpKind::Bsf => return write!(f, "bsf({})", args[0]),
                        OpKind::Bsr => return write!(f, "bsr({})", args[0]),
                        _ => "?",
                    };
                    write!(f, "{name}({})", args[0])
                } else {
                    let name = match op {
                        OpKind::Add => "+",
                        OpKind::Sub => "-",
                        OpKind::Mul => "*",
                        OpKind::UDiv => "udiv",
                        OpKind::URem => "urem",
                        OpKind::SDiv => "sdiv",
                        OpKind::SRem => "srem",
                        OpKind::And => "&",
                        OpKind::Or => "|",
                        OpKind::Xor => "^",
                        OpKind::Shl => "<<",
                        OpKind::Shr => ">>",
                        OpKind::Sar => ">>s",
                        OpKind::Rol(_) => "rol",
                        OpKind::Ror(_) => "ror",
                        _ => "?",
                    };
                    if name.chars().next().is_some_and(|c| c.is_alphabetic()) {
                        write!(f, "{name}({}, {})", args[0], args[1])
                    } else {
                        write!(f, "({} {name} {})", args[0], args[1])
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::Reg;

    fn rdi0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rdi))
    }

    fn rsi0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rsi))
    }

    #[test]
    fn add_normalises() {
        let e = rdi0().add(Expr::imm(8)).add(Expr::imm(8));
        assert_eq!(e, rdi0().add(Expr::imm(16)));
        let e2 = Expr::imm(8).add(rdi0()).add(Expr::imm(8));
        assert_eq!(e, e2);
    }

    #[test]
    fn sub_cancels() {
        let e = rdi0().add(Expr::imm(8)).sub(rdi0());
        assert_eq!(e, Expr::imm(8));
        assert_eq!(rdi0().sub(rdi0()), Expr::imm(0));
    }

    #[test]
    fn mixed_linear() {
        // rdi0 + rsi0*4 - rsi0*4 == rdi0
        let e = rdi0().add(rsi0().mul(Expr::imm(4))).sub(rsi0().mul(Expr::imm(4)));
        assert_eq!(e, rdi0());
    }

    #[test]
    fn shl_becomes_mul() {
        let e = rdi0().shl(Expr::imm(3));
        assert_eq!(e, rdi0().mul(Expr::imm(8)));
    }

    #[test]
    fn bottom_propagates() {
        assert!(rdi0().add(Expr::bottom()).is_bottom());
        assert!(Expr::bottom().and(Expr::imm(1)).is_bottom());
        assert!(Expr::read(Expr::bottom(), 8).is_bottom());
    }

    #[test]
    fn xor_self_is_zero() {
        assert_eq!(rdi0().xor(rdi0()), Expr::imm(0));
    }

    #[test]
    fn trunc_sext_fold() {
        assert_eq!(Expr::imm(0x1ff).trunc(Width::B1), Expr::imm(0xff));
        assert_eq!(Expr::imm(0x80).sext(Width::B1), Expr::imm(0xffff_ffff_ffff_ff80));
        assert_eq!(rdi0().trunc(Width::B8), rdi0());
    }

    #[test]
    fn eval_linear() {
        let env = |s: Sym| match s {
            Sym::Init(Reg::Rdi) => 100,
            Sym::Init(Reg::Rsi) => 7,
            _ => 0,
        };
        let nomem = |_: u64, _: u8| None;
        let e = rdi0().add(rsi0().mul(Expr::imm(4))).add(Expr::imm(2));
        assert_eq!(e.eval(&env, &nomem), Some(130));
    }

    #[test]
    fn eval_matches_wrapping_semantics() {
        let env = |_: Sym| u64::MAX;
        let nomem = |_: u64, _: u8| None;
        let e = rdi0().add(Expr::imm(1));
        assert_eq!(e.eval(&env, &nomem), Some(0));
    }

    #[test]
    fn eval_deref() {
        let env = |_: Sym| 0x1000;
        let mem = |a: u64, sz: u8| (a == 0x1008 && sz == 8).then_some(42);
        let e = Expr::read(rdi0().add(Expr::imm(8)), 8);
        assert_eq!(e.eval(&env, &mem), Some(42));
    }

    #[test]
    fn display_forms() {
        assert_eq!(rdi0().add(Expr::imm(16)).to_string(), "(rdi0 + 0x10)");
        assert_eq!(Expr::read(rdi0(), 8).to_string(), "*[rdi0, 8]");
        assert_eq!(Expr::bottom().to_string(), "⊥");
    }

    #[test]
    fn node_count() {
        assert_eq!(rdi0().node_count(), 1);
        assert_eq!(rdi0().add(Expr::imm(1)).node_count(), 3);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::imm(4).udiv(Expr::imm(0));
        assert!(matches!(e, Expr::Op { .. }));
        let nomem = |_: u64, _: u8| None;
        assert_eq!(e.eval(&|_| 0, &nomem), None);
    }
}
