//! The symbolic expression AST, hash-consed into a process-wide arena,
//! and its simplifying constructors.
//!
//! Every distinct term is interned exactly once: [`Expr`] is a `Copy`
//! handle to an immutable, leaked node, so equality is a pointer
//! comparison, hashing reads a precomputed structural hash, and
//! "cloning" a predicate or memory model copies machine words instead
//! of whole trees. Structural identity and handle identity coincide by
//! construction (two structurally equal terms intern to the same
//! node), which is what makes the O(1) fast paths sound.
//!
//! Ordering is intentionally *structural* — identical to the `Ord`
//! that the previous boxed enum derived — because the canonical
//! `BTreeMap`/`BTreeSet` forms throughout the lifter (predicate
//! registers, memory regions, linear-form terms) feed serialized
//! artifacts whose bytes must not depend on interning order or
//! pointer values.

use crate::{Linear, Sym};
use hgl_x86::Width;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Operator kinds. All operate on 64-bit values; narrower instruction
/// widths are expressed with explicit [`OpKind::Trunc`] /
/// [`OpKind::SExt`] nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Not,
    Neg,
    Shl,
    Shr,
    Sar,
    Rol(Width),
    Ror(Width),
    /// Zero-extend from the low bits of the given width (equivalently:
    /// truncate to the width, then view as a 64-bit value).
    Trunc(Width),
    /// Sign-extend from the given width to 64 bits.
    SExt(Width),
    Popcnt,
    Tzcnt,
    Bsf,
    Bsr,
}

/// A symbolic expression (the paper's `E`, §3.1): a `Copy` handle into
/// the hash-cons arena.
///
/// Constructed through the simplifying methods ([`Expr::add`],
/// [`Expr::and`], …) which constant-fold and normalise linear pointer
/// arithmetic, so that equal addresses usually normalise to identical
/// terms — and, thanks to interning, to the *same* node.
#[derive(Clone, Copy)]
pub struct Expr(&'static Node);

/// One interned expression node. Lives for the whole process; the
/// arena only ever grows (by the set of *distinct* terms the lifter
/// builds, which is bounded by the expression-size budgets in the
/// step function).
struct Node {
    kind: ExprKind,
    /// Structural hash, computed once at interning time. Used for the
    /// intern table and for `Expr`'s O(1) `Hash` impl.
    shash: u64,
    /// AST node count (saturating), computed once at interning time.
    nodes: u32,
    /// True if the term contains any [`Sym::Fresh`] symbol — the
    /// existentially-quantified unknowns the join's unifier must
    /// rename consistently. Precomputed so joins can O(1)-skip
    /// unification for identical fresh-free terms.
    fresh: bool,
    /// The canonical linear form, computed lazily on first use and
    /// memoized for the node's (static) lifetime. Region-relation
    /// queries re-derive the same few addresses' forms constantly;
    /// interning makes the memoization exact.
    linear: OnceLock<Linear>,
}

/// The structure of an interned expression node.
///
/// Obtained from a handle with [`Expr::kind`]; the variants mirror the
/// pre-interning `Expr` enum exactly (including their `Ord`), so
/// consumers pattern-match on `e.kind()` where they used to match on
/// `e` directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExprKind {
    /// A 64-bit immediate.
    Imm(u64),
    /// A symbol (unknown-but-fixed value).
    Sym(Sym),
    /// The value read from memory region `[addr, size]` — used when a
    /// read cannot be resolved against the memory model but the
    /// expression must still be reported (e.g. the non-standard stack
    /// pointer of §5.3).
    Deref {
        /// Address expression.
        addr: Expr,
        /// Region size in bytes.
        size: u8,
    },
    /// Operator application.
    Op {
        /// The operator.
        op: OpKind,
        /// Operands (1 or 2).
        args: Vec<Expr>,
    },
    /// The unknown constant expression ⊥ (any value).
    Bottom,
}

const SHARDS: usize = 64;

/// Pass-through hasher for the shard maps: the key *is* the already
/// well-mixed structural hash, so re-hashing it (SipHash by default)
/// would only burn cycles on the hottest path in the crate.
#[derive(Clone, Copy, Default)]
struct ShashState(u64);

impl Hasher for ShashState {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys reach the shard maps; keep a sound fallback
        // anyway so the hasher cannot silently degenerate.
        for &b in bytes {
            self.0 = mix(self.0 ^ b as u64);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

#[derive(Clone, Copy, Default)]
struct ShashBuild;

impl std::hash::BuildHasher for ShashBuild {
    type Hasher = ShashState;
    fn build_hasher(&self) -> ShashState {
        ShashState(0)
    }
}

/// The process-wide intern table, sharded by structural hash. Buckets
/// are keyed by `shash` and disambiguated by structural comparison
/// (which is O(1) per child, children being already interned).
struct Interner {
    shards: Vec<Mutex<HashMap<u64, Vec<Expr>, ShashBuild>>>,
}

fn arena() -> &'static Interner {
    static ARENA: OnceLock<Interner> = OnceLock::new();
    ARENA.get_or_init(|| Interner {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
    })
}

const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer: cheap, and good enough that the shard maps
/// can use the result verbatim as the bucket key.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// Per-variant seeds keep e.g. `Imm(0)` and `Bottom` apart.
const SEED_IMM: u64 = 0x7c9a_1111;
const SEED_SYM: u64 = 0x7c9a_2222;
const SEED_DEREF: u64 = 0x7c9a_3333;
const SEED_OP: u64 = 0x7c9a_4444;
const SEED_BOTTOM: u64 = 0x7c9a_5555;

#[inline]
fn sym_code(s: Sym) -> u64 {
    let (tag, payload): (u64, u64) = match s {
        Sym::Init(r) => (1, r as u64),
        Sym::RetAddr => (2, 0),
        Sym::RetSym(a) => (3, a),
        Sym::Fresh(id) => (4, id),
        Sym::Global(a) => (5, a),
    };
    tag.wrapping_mul(PHI) ^ payload
}

#[inline]
fn op_code(op: OpKind) -> u64 {
    let (tag, w): (u64, u32) = match op {
        OpKind::Add => (0, 0),
        OpKind::Sub => (1, 0),
        OpKind::Mul => (2, 0),
        OpKind::UDiv => (3, 0),
        OpKind::URem => (4, 0),
        OpKind::SDiv => (5, 0),
        OpKind::SRem => (6, 0),
        OpKind::And => (7, 0),
        OpKind::Or => (8, 0),
        OpKind::Xor => (9, 0),
        OpKind::Not => (10, 0),
        OpKind::Neg => (11, 0),
        OpKind::Shl => (12, 0),
        OpKind::Shr => (13, 0),
        OpKind::Sar => (14, 0),
        OpKind::Rol(w) => (15, w.bits()),
        OpKind::Ror(w) => (16, w.bits()),
        OpKind::Trunc(w) => (17, w.bits()),
        OpKind::SExt(w) => (18, w.bits()),
        OpKind::Popcnt => (19, 0),
        OpKind::Tzcnt => (20, 0),
        OpKind::Bsf => (21, 0),
        OpKind::Bsr => (22, 0),
    };
    tag | ((w as u64) << 8)
}

// The shash of a node is computable both from an assembled `ExprKind`
// (`structural_hash`) and directly from constructor arguments (the
// `shash_*` functions below), so the probing fast paths need not
// allocate a candidate node just to hash it. Both routes MUST agree —
// `structural_hash` is therefore defined by dispatch onto the same
// `shash_*` helpers.

#[inline]
fn shash_imm(v: u64) -> u64 {
    mix(SEED_IMM ^ v.wrapping_mul(PHI))
}

#[inline]
fn shash_sym(s: Sym) -> u64 {
    mix(SEED_SYM ^ sym_code(s))
}

#[inline]
fn shash_deref(addr: Expr, size: u8) -> u64 {
    mix(SEED_DEREF ^ addr.0.shash.wrapping_mul(PHI) ^ (size as u64))
}

#[inline]
fn shash_op<I: IntoIterator<Item = u64>>(op: OpKind, children: I) -> u64 {
    let mut h = SEED_OP ^ op_code(op).wrapping_mul(PHI);
    let mut len = 0u64;
    for c in children {
        h = mix(h ^ c);
        len += 1;
    }
    mix(h ^ len)
}

/// Deterministic-within-process structural hash: children contribute
/// their precomputed `shash`, so equal structure always yields an
/// equal hash regardless of interning order.
fn structural_hash(kind: &ExprKind) -> u64 {
    match kind {
        ExprKind::Imm(v) => shash_imm(*v),
        ExprKind::Sym(s) => shash_sym(*s),
        ExprKind::Deref { addr, size } => shash_deref(*addr, *size),
        ExprKind::Op { op, args } => shash_op(*op, args.iter().map(|a| a.0.shash)),
        ExprKind::Bottom => mix(SEED_BOTTOM),
    }
}

/// Publish a freshly built node under `shash`. The caller holds the
/// shard lock and has already established the node is absent.
fn publish(bucket: &mut Vec<Expr>, kind: ExprKind, shash: u64) -> Expr {
    let (nodes, fresh) = match &kind {
        ExprKind::Imm(_) | ExprKind::Bottom => (1u32, false),
        ExprKind::Sym(s) => (1, matches!(s, Sym::Fresh(_))),
        ExprKind::Deref { addr, .. } => (addr.0.nodes.saturating_add(1), addr.0.fresh),
        ExprKind::Op { args, .. } => (
            args.iter().fold(1u32, |n, a| n.saturating_add(a.0.nodes)),
            args.iter().any(|a| a.0.fresh),
        ),
    };
    let e = Expr(Box::leak(Box::new(Node { kind, shash, nodes, fresh, linear: OnceLock::new() })));
    bucket.push(e);
    e
}

/// Lock the shard owning `shash` and return its bucket.
///
/// A panicking thread cannot leave the table inconsistent (nodes are
/// published only after being fully built), so a poisoned lock is
/// still a valid table — recover it rather than cascading the panic
/// into every other lifting session.
fn shard_bucket(shash: u64) -> impl std::ops::DerefMut<Target = HashMap<u64, Vec<Expr>, ShashBuild>>
{
    arena().shards[(shash as usize) & (SHARDS - 1)].lock().unwrap_or_else(PoisonError::into_inner)
}

fn intern(kind: ExprKind) -> Expr {
    let shash = structural_hash(&kind);
    let mut map = shard_bucket(shash);
    let bucket = map.entry(shash).or_default();
    if let Some(&e) = bucket.iter().find(|e| e.0.kind == kind) {
        return e;
    }
    publish(bucket, kind, shash)
}

/// Intern `*[addr, size]` without assembling a candidate kind first.
fn intern_deref(addr: Expr, size: u8) -> Expr {
    let shash = shash_deref(addr, size);
    let mut map = shard_bucket(shash);
    let bucket = map.entry(shash).or_default();
    if let Some(&e) = bucket.iter().find(|e| {
        matches!(&e.0.kind, ExprKind::Deref { addr: a, size: s } if *a == addr && *s == size)
    }) {
        return e;
    }
    publish(bucket, ExprKind::Deref { addr, size }, shash)
}

/// Intern a unary application; the args `Vec` is only allocated on an
/// arena miss.
fn intern_op1(op: OpKind, a: Expr) -> Expr {
    let shash = shash_op(op, [a.0.shash]);
    let mut map = shard_bucket(shash);
    let bucket = map.entry(shash).or_default();
    if let Some(&e) = bucket.iter().find(|e| {
        matches!(&e.0.kind, ExprKind::Op { op: o, args } if *o == op && args.len() == 1 && args[0] == a)
    }) {
        return e;
    }
    publish(bucket, ExprKind::Op { op, args: vec![a] }, shash)
}

/// Intern a binary application; the args `Vec` is only allocated on an
/// arena miss.
fn intern_op2(op: OpKind, a: Expr, b: Expr) -> Expr {
    let shash = shash_op(op, [a.0.shash, b.0.shash]);
    let mut map = shard_bucket(shash);
    let bucket = map.entry(shash).or_default();
    if let Some(&e) = bucket.iter().find(|e| {
        matches!(&e.0.kind, ExprKind::Op { op: o, args }
            if *o == op && args.len() == 2 && args[0] == a && args[1] == b)
    }) {
        return e;
    }
    publish(bucket, ExprKind::Op { op, args: vec![a, b] }, shash)
}

/// Number of distinct interned nodes, across all shards. Diagnostic
/// only (arena growth is the working-set of distinct terms).
pub fn interned_node_count() -> usize {
    arena()
        .shards
        .iter()
        .map(|s| {
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .values()
                .map(Vec::len)
                .sum::<usize>()
        })
        .sum()
}

impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        // Interning is canonical: structural equality ⇔ same node.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.shash);
    }
}

impl PartialOrd for Expr {
    fn partial_cmp(&self, other: &Expr) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expr {
    fn cmp(&self, other: &Expr) -> Ordering {
        if std::ptr::eq(self.0, other.0) {
            return Ordering::Equal;
        }
        // Structural, matching the old derived order (Imm < Sym <
        // Deref < Op < Bottom, lexicographic within a variant);
        // recursion through child `Expr`s re-enters this fast path.
        self.0.kind.cmp(&other.0.kind)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.kind.fmt(f)
    }
}

// The builder methods below intentionally take `self` by value and return
// a normalised `Expr`; they are constructors, not `std::ops` overloads.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// An immediate.
    pub fn imm(v: u64) -> Expr {
        intern(ExprKind::Imm(v))
    }

    /// A symbol.
    pub fn sym(s: Sym) -> Expr {
        intern(ExprKind::Sym(s))
    }

    /// The unknown expression ⊥.
    pub fn bottom() -> Expr {
        static BOTTOM: OnceLock<Expr> = OnceLock::new();
        *BOTTOM.get_or_init(|| intern(ExprKind::Bottom))
    }

    /// A symbolic memory read `*[addr, size]`.
    pub fn read(addr: Expr, size: u8) -> Expr {
        if addr.is_bottom() {
            return Expr::bottom();
        }
        intern_deref(addr, size)
    }

    /// Intern a deref node verbatim, with no ⊥ short-circuit. Replay
    /// path for the store codec, which must reconstruct persisted
    /// terms byte-exactly.
    pub fn deref_raw(addr: Expr, size: u8) -> Expr {
        intern_deref(addr, size)
    }

    /// Intern an operator application verbatim, with **no**
    /// simplification or constant folding. Used where the exact node
    /// shape is the contract: [`Linear::to_expr`]'s canonical sums and
    /// the store codec's replay of persisted terms.
    pub fn op_raw(op: OpKind, args: Vec<Expr>) -> Expr {
        match args.len() {
            1 => intern_op1(op, args[0]),
            2 => intern_op2(op, args[0], args[1]),
            _ => intern(ExprKind::Op { op, args }),
        }
    }

    /// Arity-1 [`Expr::op_raw`]: interns `op(a)` without allocating
    /// the argument vector unless the term is new to the arena.
    pub fn op1_raw(op: OpKind, a: Expr) -> Expr {
        intern_op1(op, a)
    }

    /// Arity-2 [`Expr::op_raw`]: interns `op(a, b)` without allocating
    /// the argument vector unless the term is new to the arena.
    pub fn op2_raw(op: OpKind, a: Expr, b: Expr) -> Expr {
        intern_op2(op, a, b)
    }

    /// The interned structure of this expression.
    pub fn kind(&self) -> &'static ExprKind {
        &self.0.kind
    }

    /// The canonical linear form of this expression, memoized per
    /// interned node ([`Linear::of_expr`] is pure, so the cache is
    /// exact). Region-relation queries and the solver memo key lean on
    /// this: the same few address expressions are re-queried constantly.
    pub fn linear_form(&self) -> &'static Linear {
        self.0.linear.get_or_init(|| Linear::of_expr(self))
    }

    /// True if this is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self.0.kind, ExprKind::Bottom)
    }

    /// The immediate value, if this expression is a constant.
    pub fn as_imm(&self) -> Option<u64> {
        match self.0.kind {
            ExprKind::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// Addition with linear normalisation.
    pub fn add(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => return Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => return Expr::imm(a.wrapping_add(*b)),
            (_, ExprKind::Imm(0)) => return self,
            (ExprKind::Imm(0), _) => return rhs,
            _ => {}
        }
        Linear::of_sum(self, 1, rhs, 1).to_expr()
    }

    /// Subtraction with linear normalisation.
    pub fn sub(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => return Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => return Expr::imm(a.wrapping_sub(*b)),
            (_, ExprKind::Imm(0)) => return self,
            _ => {}
        }
        if self == rhs {
            return Expr::imm(0);
        }
        Linear::of_sum(self, 1, rhs, -1).to_expr()
    }

    /// Multiplication with linear normalisation (constant scaling).
    pub fn mul(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => return Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => return Expr::imm(a.wrapping_mul(*b)),
            (_, ExprKind::Imm(1)) => return self,
            (ExprKind::Imm(1), _) => return rhs,
            (_, ExprKind::Imm(0)) | (ExprKind::Imm(0), _) => return Expr::imm(0),
            _ => {}
        }
        if let Some(c) = self.as_imm() {
            Linear::of_scaled(rhs, c as i64).to_expr()
        } else if let Some(c) = rhs.as_imm() {
            Linear::of_scaled(self, c as i64).to_expr()
        } else {
            intern_op2(OpKind::Mul, self, rhs)
        }
    }

    /// Two's-complement negation.
    pub fn neg(self) -> Expr {
        match self.kind() {
            ExprKind::Bottom => Expr::bottom(),
            ExprKind::Imm(a) => Expr::imm(a.wrapping_neg()),
            _ => Linear::of_scaled(self, -1).to_expr(),
        }
    }

    /// Bitwise and.
    pub fn and(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => Expr::imm(a & b),
            (_, ExprKind::Imm(0)) | (ExprKind::Imm(0), _) => Expr::imm(0),
            (_, ExprKind::Imm(u64::MAX)) => self,
            (ExprKind::Imm(u64::MAX), _) => rhs,
            _ if self == rhs => self,
            _ => intern_op2(OpKind::And, self, rhs),
        }
    }

    /// Bitwise or.
    pub fn or(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => Expr::imm(a | b),
            (_, ExprKind::Imm(0)) => self,
            (ExprKind::Imm(0), _) => rhs,
            _ if self == rhs => self,
            _ => intern_op2(OpKind::Or, self, rhs),
        }
    }

    /// Bitwise exclusive or.
    pub fn xor(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) => Expr::imm(a ^ b),
            (_, ExprKind::Imm(0)) => self,
            (ExprKind::Imm(0), _) => rhs,
            _ if self == rhs => Expr::imm(0),
            _ => intern_op2(OpKind::Xor, self, rhs),
        }
    }

    /// Bitwise not.
    pub fn not(self) -> Expr {
        match self.kind() {
            ExprKind::Bottom => Expr::bottom(),
            ExprKind::Imm(a) => Expr::imm(!a),
            _ => intern_op1(OpKind::Not, self),
        }
    }

    /// Left shift. Constant shifts become multiplications so that
    /// scaled jump-table indexing (`shl rax, 3`) stays linear.
    pub fn shl(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (_, ExprKind::Imm(c)) if *c < 64 => self.mul(Expr::imm(1u64 << c)),
            (_, ExprKind::Imm(_)) => Expr::imm(0),
            _ => intern_op2(OpKind::Shl, self, rhs),
        }
    }

    /// Logical right shift.
    pub fn shr(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(c)) if *c < 64 => Expr::imm(a >> c),
            (_, ExprKind::Imm(c)) if *c >= 64 => Expr::imm(0),
            (_, ExprKind::Imm(0)) => self,
            _ => intern_op2(OpKind::Shr, self, rhs),
        }
    }

    /// Arithmetic right shift.
    pub fn sar(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(c)) if *c < 64 => {
                Expr::imm(((*a as i64) >> c) as u64)
            }
            (_, ExprKind::Imm(0)) => self,
            _ => intern_op2(OpKind::Sar, self, rhs),
        }
    }

    /// Unsigned division.
    pub fn udiv(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) if *b != 0 => Expr::imm(a / b),
            (_, ExprKind::Imm(1)) => self,
            _ => intern_op2(OpKind::UDiv, self, rhs),
        }
    }

    /// Unsigned remainder.
    pub fn urem(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b)) if *b != 0 => Expr::imm(a % b),
            _ => intern_op2(OpKind::URem, self, rhs),
        }
    }

    /// Signed division.
    pub fn sdiv(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b))
                if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) =>
            {
                Expr::imm((*a as i64).wrapping_div(*b as i64) as u64)
            }
            _ => intern_op2(OpKind::SDiv, self, rhs),
        }
    }

    /// Signed remainder.
    pub fn srem(self, rhs: Expr) -> Expr {
        match (self.kind(), rhs.kind()) {
            (ExprKind::Bottom, _) | (_, ExprKind::Bottom) => Expr::bottom(),
            (ExprKind::Imm(a), ExprKind::Imm(b))
                if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) =>
            {
                Expr::imm((*a as i64).wrapping_rem(*b as i64) as u64)
            }
            _ => intern_op2(OpKind::SRem, self, rhs),
        }
    }

    /// Zero-extend from `w` (truncate to `w` bits, view as 64-bit).
    pub fn trunc(self, w: Width) -> Expr {
        if w == Width::B8 {
            return self;
        }
        match self.kind() {
            ExprKind::Bottom => Expr::bottom(),
            ExprKind::Imm(a) => Expr::imm(w.trunc(*a)),
            // trunc_w(trunc_w2(x)) with w2 ≤ w is trunc_w2(x), i.e.
            // exactly this node.
            ExprKind::Op { op: OpKind::Trunc(w2), .. } if *w2 <= w => self,
            _ => intern_op1(OpKind::Trunc(w), self),
        }
    }

    /// Sign-extend from `w` to 64 bits.
    pub fn sext(self, w: Width) -> Expr {
        if w == Width::B8 {
            return self;
        }
        match self.kind() {
            ExprKind::Bottom => Expr::bottom(),
            ExprKind::Imm(a) => Expr::imm(w.sext(*a)),
            _ => intern_op1(OpKind::SExt(w), self),
        }
    }

    /// Apply a unary operator with constant folding.
    pub fn apply_un(op: OpKind, a: Expr) -> Expr {
        if a.is_bottom() {
            return Expr::bottom();
        }
        match (op, a.as_imm()) {
            (OpKind::Popcnt, Some(v)) => Expr::imm(v.count_ones() as u64),
            (OpKind::Tzcnt, Some(v)) => Expr::imm(v.trailing_zeros() as u64),
            (OpKind::Not, _) => a.not(),
            (OpKind::Neg, _) => a.neg(),
            (OpKind::Trunc(w), _) => a.trunc(w),
            (OpKind::SExt(w), _) => a.sext(w),
            _ => intern_op1(op, a),
        }
    }

    /// Number of AST nodes, used to bound expression growth. O(1):
    /// precomputed when the node was interned.
    pub fn node_count(&self) -> usize {
        self.0.nodes as usize
    }

    /// True if the term contains any [`Sym::Fresh`] symbol. O(1):
    /// precomputed when the node was interned.
    pub fn has_fresh(&self) -> bool {
        self.0.fresh
    }

    /// All symbols occurring in the expression.
    pub fn syms(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_syms(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_syms(&self, out: &mut Vec<Sym>) {
        match self.kind() {
            ExprKind::Sym(s) => out.push(*s),
            ExprKind::Deref { addr, .. } => addr.collect_syms(out),
            ExprKind::Op { args, .. } => {
                for a in args {
                    a.collect_syms(out);
                }
            }
            ExprKind::Imm(_) | ExprKind::Bottom => {}
        }
    }

    /// Concretely evaluate against a symbol environment and a memory
    /// oracle for [`ExprKind::Deref`] nodes.
    ///
    /// Returns `None` for ⊥ or when `mem` cannot resolve a read.
    pub fn eval<F, M>(&self, env: &F, mem: &M) -> Option<u64>
    where
        F: Fn(Sym) -> u64,
        M: Fn(u64, u8) -> Option<u64>,
    {
        match self.kind() {
            ExprKind::Imm(v) => Some(*v),
            ExprKind::Sym(s) => Some(env(*s)),
            ExprKind::Bottom => None,
            ExprKind::Deref { addr, size } => {
                let a = addr.eval(env, mem)?;
                mem(a, *size)
            }
            ExprKind::Op { op, args } => {
                let a = args[0].eval(env, mem)?;
                if args.len() == 1 {
                    return Some(match op {
                        OpKind::Not => !a,
                        OpKind::Neg => a.wrapping_neg(),
                        OpKind::Trunc(w) => w.trunc(a),
                        OpKind::SExt(w) => w.sext(w.trunc(a)),
                        OpKind::Popcnt => a.count_ones() as u64,
                        OpKind::Tzcnt => a.trailing_zeros() as u64,
                        OpKind::Bsf => {
                            if a == 0 {
                                return None; // undefined result
                            }
                            a.trailing_zeros() as u64
                        }
                        OpKind::Bsr => {
                            if a == 0 {
                                return None;
                            }
                            (63 - a.leading_zeros()) as u64
                        }
                        _ => return None,
                    });
                }
                let b = args[1].eval(env, mem)?;
                Some(match op {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::Mul => a.wrapping_mul(b),
                    OpKind::UDiv => a.checked_div(b)?,
                    OpKind::URem => a.checked_rem(b)?,
                    OpKind::SDiv => (a as i64).checked_div(b as i64)? as u64,
                    OpKind::SRem => (a as i64).checked_rem(b as i64)? as u64,
                    OpKind::And => a & b,
                    OpKind::Or => a | b,
                    OpKind::Xor => a ^ b,
                    OpKind::Shl => a.checked_shl(b as u32).unwrap_or(0),
                    OpKind::Shr => a.checked_shr(b as u32).unwrap_or(0),
                    OpKind::Sar => {
                        let sh = (b as u32).min(63);
                        ((a as i64) >> sh) as u64
                    }
                    OpKind::Rol(w) => {
                        let bits = w.bits();
                        let v = w.trunc(a);
                        let s = (b as u32) % bits;
                        w.trunc(v << s | v >> ((bits - s) % bits))
                    }
                    OpKind::Ror(w) => {
                        let bits = w.bits();
                        let v = w.trunc(a);
                        let s = (b as u32) % bits;
                        w.trunc(v >> s | v << ((bits - s) % bits))
                    }
                    _ => return None,
                })
            }
        }
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Expr {
        Expr::imm(v)
    }
}

impl From<Sym> for Expr {
    fn from(s: Sym) -> Expr {
        Expr::sym(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Imm(v) => {
                if *v < 10 {
                    write!(f, "{v}")
                } else if (*v as i64) < 0 && (*v as i64) > -0x1_0000_0000 {
                    write!(f, "-{:#x}", (*v as i64).unsigned_abs())
                } else {
                    write!(f, "{v:#x}")
                }
            }
            ExprKind::Sym(s) => write!(f, "{s}"),
            ExprKind::Bottom => write!(f, "⊥"),
            ExprKind::Deref { addr, size } => write!(f, "*[{addr}, {size}]"),
            ExprKind::Op { op, args } => {
                if args.len() == 1 {
                    let name = match op {
                        OpKind::Not => "~",
                        OpKind::Neg => "-",
                        OpKind::Trunc(w) => return write!(f, "trunc{}({})", w.bits(), args[0]),
                        OpKind::SExt(w) => return write!(f, "sext{}({})", w.bits(), args[0]),
                        OpKind::Popcnt => return write!(f, "popcnt({})", args[0]),
                        OpKind::Tzcnt => return write!(f, "tzcnt({})", args[0]),
                        OpKind::Bsf => return write!(f, "bsf({})", args[0]),
                        OpKind::Bsr => return write!(f, "bsr({})", args[0]),
                        _ => "?",
                    };
                    write!(f, "{name}({})", args[0])
                } else {
                    let name = match op {
                        OpKind::Add => "+",
                        OpKind::Sub => "-",
                        OpKind::Mul => "*",
                        OpKind::UDiv => "udiv",
                        OpKind::URem => "urem",
                        OpKind::SDiv => "sdiv",
                        OpKind::SRem => "srem",
                        OpKind::And => "&",
                        OpKind::Or => "|",
                        OpKind::Xor => "^",
                        OpKind::Shl => "<<",
                        OpKind::Shr => ">>",
                        OpKind::Sar => ">>s",
                        OpKind::Rol(_) => "rol",
                        OpKind::Ror(_) => "ror",
                        _ => "?",
                    };
                    if name.chars().next().is_some_and(|c| c.is_alphabetic()) {
                        write!(f, "{name}({}, {})", args[0], args[1])
                    } else {
                        write!(f, "({} {name} {})", args[0], args[1])
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::Reg;

    fn rdi0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rdi))
    }

    fn rsi0() -> Expr {
        Expr::sym(Sym::Init(Reg::Rsi))
    }

    #[test]
    fn add_normalises() {
        let e = rdi0().add(Expr::imm(8)).add(Expr::imm(8));
        assert_eq!(e, rdi0().add(Expr::imm(16)));
        let e2 = Expr::imm(8).add(rdi0()).add(Expr::imm(8));
        assert_eq!(e, e2);
    }

    #[test]
    fn sub_cancels() {
        let e = rdi0().add(Expr::imm(8)).sub(rdi0());
        assert_eq!(e, Expr::imm(8));
        assert_eq!(rdi0().sub(rdi0()), Expr::imm(0));
    }

    #[test]
    fn mixed_linear() {
        // rdi0 + rsi0*4 - rsi0*4 == rdi0
        let e = rdi0().add(rsi0().mul(Expr::imm(4))).sub(rsi0().mul(Expr::imm(4)));
        assert_eq!(e, rdi0());
    }

    #[test]
    fn shl_becomes_mul() {
        let e = rdi0().shl(Expr::imm(3));
        assert_eq!(e, rdi0().mul(Expr::imm(8)));
    }

    #[test]
    fn bottom_propagates() {
        assert!(rdi0().add(Expr::bottom()).is_bottom());
        assert!(Expr::bottom().and(Expr::imm(1)).is_bottom());
        assert!(Expr::read(Expr::bottom(), 8).is_bottom());
    }

    #[test]
    fn xor_self_is_zero() {
        assert_eq!(rdi0().xor(rdi0()), Expr::imm(0));
    }

    #[test]
    fn trunc_sext_fold() {
        assert_eq!(Expr::imm(0x1ff).trunc(Width::B1), Expr::imm(0xff));
        assert_eq!(Expr::imm(0x80).sext(Width::B1), Expr::imm(0xffff_ffff_ffff_ff80));
        assert_eq!(rdi0().trunc(Width::B8), rdi0());
    }

    #[test]
    fn eval_linear() {
        let env = |s: Sym| match s {
            Sym::Init(Reg::Rdi) => 100,
            Sym::Init(Reg::Rsi) => 7,
            _ => 0,
        };
        let nomem = |_: u64, _: u8| None;
        let e = rdi0().add(rsi0().mul(Expr::imm(4))).add(Expr::imm(2));
        assert_eq!(e.eval(&env, &nomem), Some(130));
    }

    #[test]
    fn eval_matches_wrapping_semantics() {
        let env = |_: Sym| u64::MAX;
        let nomem = |_: u64, _: u8| None;
        let e = rdi0().add(Expr::imm(1));
        assert_eq!(e.eval(&env, &nomem), Some(0));
    }

    #[test]
    fn eval_deref() {
        let env = |_: Sym| 0x1000;
        let mem = |a: u64, sz: u8| (a == 0x1008 && sz == 8).then_some(42);
        let e = Expr::read(rdi0().add(Expr::imm(8)), 8);
        assert_eq!(e.eval(&env, &mem), Some(42));
    }

    #[test]
    fn display_forms() {
        assert_eq!(rdi0().add(Expr::imm(16)).to_string(), "(rdi0 + 0x10)");
        assert_eq!(Expr::read(rdi0(), 8).to_string(), "*[rdi0, 8]");
        assert_eq!(Expr::bottom().to_string(), "⊥");
    }

    #[test]
    fn node_count() {
        assert_eq!(rdi0().node_count(), 1);
        assert_eq!(rdi0().add(Expr::imm(1)).node_count(), 3);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::imm(4).udiv(Expr::imm(0));
        assert!(matches!(e.kind(), ExprKind::Op { .. }));
        let nomem = |_: u64, _: u8| None;
        assert_eq!(e.eval(&|_| 0, &nomem), None);
    }

    #[test]
    fn interning_is_canonical() {
        // Structurally equal terms intern to the same node: equality
        // is pointer identity, and building a term twice allocates
        // nothing new.
        let a = rdi0().add(Expr::imm(8)).mul(rsi0());
        let b = rdi0().add(Expr::imm(8)).mul(rsi0());
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.kind(), b.kind()));
    }

    #[test]
    fn ord_matches_variant_order() {
        // Imm < Sym < Deref < Op < Bottom, lexicographic within —
        // canonical BTreeMap orders (and thus serialized artifact
        // bytes) depend on this exact order.
        let imm = Expr::imm(3);
        let sym = rdi0();
        let deref = Expr::read(rdi0(), 8);
        let op = rdi0().mul(rsi0());
        let bot = Expr::bottom();
        let mut v = vec![bot, op, deref, sym, imm];
        v.sort();
        assert_eq!(v, vec![imm, sym, deref, op, bot]);
        assert!(Expr::imm(2) < Expr::imm(3));
        assert!(Expr::sym(Sym::Init(Reg::Rax)) < Expr::sym(Sym::RetAddr));
    }
}
