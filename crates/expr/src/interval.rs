//! Unsigned intervals for the paper's range abstraction (Def. 3.3).

use std::fmt;

/// A closed unsigned interval `[lo, hi]` over 64-bit values.
///
/// Used when joining predicates: two equality clauses `a = 3` and
/// `a = 4` merge into the range `[3, 4]` (Example 3.4), and bound
/// clauses (`eax < 0xc3`) are mined into intervals by the solver to
/// bound jump-table indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// The full 64-bit range (⊤).
    pub const TOP: Interval = Interval { lo: 0, hi: u64::MAX };

    /// A singleton interval.
    pub fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics if `lo > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// True if the interval is a single value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// True if this is the full range.
    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// Number of values in the interval, saturating at `u64::MAX`.
    pub fn count(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }

    /// Membership test.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Join: the smallest interval containing both (Def. 3.3's range
    /// abstraction — sound but lossy).
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Meet: intersection, or `None` if disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Add a constant; returns `None` (unbounded) on overflow of either
    /// end, which keeps interval arithmetic sound under wrapping.
    pub fn add_const(self, k: u64) -> Option<Interval> {
        Some(Interval { lo: self.lo.checked_add(k)?, hi: self.hi.checked_add(k)? })
    }

    /// Multiply by a constant; `None` on overflow.
    pub fn mul_const(self, k: u64) -> Option<Interval> {
        Some(Interval { lo: self.lo.checked_mul(k)?, hi: self.hi.checked_mul(k)? })
    }

    /// Iterate the values of a small interval (`None` if more than
    /// `cap`), used to enumerate bounded jump-table indices.
    pub fn enumerate(&self, cap: u64) -> Option<impl Iterator<Item = u64> + '_> {
        (self.count() <= cap).then_some(self.lo..=self.hi).map(|r| r.into_iter())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        let j = Interval::point(3).join(Interval::point(4));
        assert_eq!(j, Interval::new(3, 4));
        assert!(j.contains(3) && j.contains(4));
    }

    #[test]
    fn meet_disjoint_is_none() {
        assert_eq!(Interval::new(0, 5).meet(Interval::new(10, 20)), None);
        assert_eq!(Interval::new(0, 10).meet(Interval::new(5, 20)), Some(Interval::new(5, 10)));
    }

    #[test]
    fn arithmetic_overflow_is_top() {
        assert_eq!(Interval::new(1, u64::MAX).add_const(1), None);
        assert_eq!(Interval::new(0, 4).mul_const(8), Some(Interval::new(0, 32)));
        assert_eq!(Interval::new(0, u64::MAX / 2).mul_const(4), None);
    }

    #[test]
    fn enumerate_bounded() {
        let i = Interval::new(0, 0xc2);
        let v: Vec<u64> = i.enumerate(0x1000).expect("small").collect();
        assert_eq!(v.len(), 0xc3);
        assert!(Interval::new(0, 1 << 20).enumerate(1024).is_none());
    }

    #[test]
    fn count_saturates() {
        assert_eq!(Interval::TOP.count(), u64::MAX);
        assert_eq!(Interval::point(7).count(), 1);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn backwards_interval_panics() {
        let _ = Interval::new(2, 1);
    }
}
