//! # hgl-expr: symbolic expressions for the Hoare-Graph lifter
//!
//! Implements the expression language `E` of §3.1 of the paper and the
//! *constant expression* sublanguage `C`: terms built from immediates
//! and **symbols** (initial register values such as `rdi0`, symbolic
//! return addresses `S_f`, fresh unknowns) combined with bit-vector
//! operators. All values are 64-bit; narrower operations truncate or
//! extend explicitly.
//!
//! On top of the AST this crate provides:
//!
//! - smart constructors with aggressive local simplification
//!   ([`Expr::add`], [`Expr::sub`], …), so syntactically different but
//!   trivially equal pointer computations normalise to the same term;
//! - [`Linear`] normal forms (`Σ cᵢ·atomᵢ + k`), the workhorse of the
//!   separation/aliasing decision procedure in `hgl-solver`;
//! - unsigned [`Interval`]s used for the paper's range abstraction
//!   (Definition 3.3, citing Rugina & Rinard);
//! - [`Clause`]s `E □ C` with the paper's six relations
//!   `{=, ≠, <, <ₛ, ≥, ≥ₛ}`;
//! - concrete [evaluation](Expr::eval) against a symbol environment,
//!   used by the Step-2 validator to test Hoare triples on random
//!   concrete states.
//!
//! Expressions are **hash-consed**: every distinct term is interned
//! once in a process-wide arena and [`Expr`] is a `Copy` handle to the
//! interned node, so equality is a pointer comparison, hashing is
//! O(1), and copying predicates or memory models copies machine words
//! instead of trees. Pattern-match through [`Expr::kind`].
//!
//! ```
//! use hgl_expr::{Expr, Sym};
//! use hgl_x86::Reg;
//!
//! // (rdi0 + 8) + 8  simplifies to  rdi0 + 16 — and interns to the
//! // very same node, so equality is pointer identity.
//! let rdi0 = Expr::sym(Sym::Init(Reg::Rdi));
//! let e = rdi0.add(Expr::imm(8)).add(Expr::imm(8));
//! assert_eq!(e, rdi0.add(Expr::imm(16)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
mod expr;
mod interval;
mod linear;
mod sym;

/// The crate version, folded into configuration fingerprints: a change
/// to expression simplification must invalidate persisted artifacts.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

pub use clause::{Clause, Rel};
pub use expr::{interned_node_count, Expr, ExprKind, OpKind};
pub use interval::Interval;
pub use linear::{Atom, Linear};
pub use sym::Sym;
