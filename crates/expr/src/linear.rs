//! Linear normal forms `Σ cᵢ·atomᵢ + k` over 64-bit wrapping arithmetic.
//!
//! Pointer expressions produced by compilers are almost always linear
//! in the initial register values (`rsp0 - 0x28`, `a + rax0*4`), so the
//! separation/aliasing queries of Definition 3.6 reduce to comparing
//! linear forms. Non-linear subterms are swallowed whole as *opaque
//! atoms*, which keeps the translation total (and merely less precise,
//! never unsound).

use crate::{Expr, ExprKind, OpKind, Sym};
use std::collections::BTreeMap;
use std::fmt;

/// A term of a linear form: a symbol or an opaque non-linear
/// subexpression. `Copy` now that expressions are interned handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A symbol.
    Sym(Sym),
    /// An opaque (non-linear) subexpression treated as a unit.
    Opaque(Expr),
}

impl Atom {
    fn to_expr(self) -> Expr {
        match self {
            Atom::Sym(s) => Expr::sym(s),
            Atom::Opaque(e) => e,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Sym(s) => write!(f, "{s}"),
            Atom::Opaque(e) => write!(f, "{e}"),
        }
    }
}

/// A linear combination of atoms plus a constant, with wrapping 64-bit
/// coefficient arithmetic. Contains ⊥ if the source expression did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Linear {
    /// Coefficients per atom; zero coefficients are never stored.
    pub terms: BTreeMap<Atom, i64>,
    /// The constant offset.
    pub offset: i64,
    /// True if the expression contained ⊥ anywhere.
    pub has_bottom: bool,
}

impl Linear {
    /// The zero form.
    pub fn zero() -> Linear {
        Linear { terms: BTreeMap::new(), offset: 0, has_bottom: false }
    }

    /// A single constant.
    pub fn constant(k: i64) -> Linear {
        Linear { terms: BTreeMap::new(), offset: k, has_bottom: false }
    }

    fn add_term(&mut self, a: Atom, c: i64) {
        use std::collections::btree_map::Entry;
        match self.terms.entry(a) {
            Entry::Vacant(v) => {
                if c != 0 {
                    v.insert(c);
                }
            }
            Entry::Occupied(mut o) => {
                let n = o.get().wrapping_add(c);
                if n == 0 {
                    o.remove();
                } else {
                    *o.get_mut() = n;
                }
            }
        }
    }

    /// Translate an expression to its linear normal form. Total:
    /// non-linear parts become opaque atoms.
    pub fn of_expr(e: &Expr) -> Linear {
        let mut lin = Linear::zero();
        lin.accumulate(*e, 1);
        lin
    }

    /// The linear form of `ca·a + cb·b`, without materialising the
    /// intermediate sum node. This is the entry point the smart
    /// constructors use: interning a transient `a + b` term only to
    /// normalise it away would grow the arena for nothing.
    pub fn of_sum(a: Expr, ca: i64, b: Expr, cb: i64) -> Linear {
        let mut lin = Linear::zero();
        lin.accumulate(a, ca);
        lin.accumulate(b, cb);
        lin
    }

    /// The linear form of `c·e`, without materialising a product node.
    pub fn of_scaled(e: Expr, c: i64) -> Linear {
        let mut lin = Linear::zero();
        lin.accumulate(e, c);
        lin
    }

    fn accumulate(&mut self, e: Expr, scale: i64) {
        match e.kind() {
            ExprKind::Imm(v) => {
                self.offset = self.offset.wrapping_add((*v as i64).wrapping_mul(scale))
            }
            ExprKind::Sym(s) => self.add_term(Atom::Sym(*s), scale),
            ExprKind::Bottom => self.has_bottom = true,
            ExprKind::Op { op: OpKind::Add, args } if args.len() == 2 => {
                self.accumulate(args[0], scale);
                self.accumulate(args[1], scale);
            }
            ExprKind::Op { op: OpKind::Sub, args } if args.len() == 2 => {
                self.accumulate(args[0], scale);
                self.accumulate(args[1], scale.wrapping_neg());
            }
            ExprKind::Op { op: OpKind::Neg, args } if args.len() == 1 => {
                self.accumulate(args[0], scale.wrapping_neg());
            }
            ExprKind::Op { op: OpKind::Mul, args } if args.len() == 2 => {
                match (args[0].as_imm(), args[1].as_imm()) {
                    (Some(c), _) => self.accumulate(args[1], scale.wrapping_mul(c as i64)),
                    (_, Some(c)) => self.accumulate(args[0], scale.wrapping_mul(c as i64)),
                    _ => self.add_term(Atom::Opaque(e), scale),
                }
            }
            _ => self.add_term(Atom::Opaque(e), scale),
        }
    }

    /// Reconstruct a canonical expression: terms in atom order,
    /// constant last. Inverse of [`Linear::of_expr`] up to
    /// normalisation. Built through the raw interning constructors —
    /// the node shape here *is* the canonical form, so no further
    /// simplification may run.
    pub fn to_expr(&self) -> Expr {
        if self.has_bottom {
            return Expr::bottom();
        }
        let mut acc: Option<Expr> = None;
        for (atom, &coeff) in &self.terms {
            let base = atom.to_expr();
            let term = if coeff == 1 {
                base
            } else {
                Expr::op2_raw(OpKind::Mul, base, Expr::imm(coeff as u64))
            };
            acc = Some(match acc {
                None => term,
                Some(prev) => Expr::op2_raw(OpKind::Add, prev, term),
            });
        }
        match acc {
            None => Expr::imm(self.offset as u64),
            Some(e) if self.offset == 0 => e,
            Some(e) => Expr::op2_raw(OpKind::Add, e, Expr::imm(self.offset as u64)),
        }
    }

    /// The difference `self - other` as a linear form.
    pub fn diff(&self, other: &Linear) -> Linear {
        let mut out = self.clone();
        out.has_bottom |= other.has_bottom;
        out.offset = out.offset.wrapping_sub(other.offset);
        for (a, c) in &other.terms {
            out.add_term(*a, c.wrapping_neg());
        }
        out
    }

    /// If `self` is a plain constant, return it.
    pub fn as_constant(&self) -> Option<i64> {
        (!self.has_bottom && self.terms.is_empty()).then_some(self.offset)
    }

    /// True if the two forms have identical terms (and thus differ by a
    /// compile-time constant).
    pub fn same_base(&self, other: &Linear) -> bool {
        !self.has_bottom && !other.has_bottom && self.terms == other.terms
    }

    /// The single atom, if the form is exactly `1·atom + k`.
    pub fn single_atom(&self) -> Option<(&Atom, i64)> {
        if self.has_bottom || self.terms.len() != 1 {
            return None;
        }
        let (a, c) = self.terms.iter().next().expect("len checked");
        (*c == 1).then_some((a, self.offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgl_x86::Reg;

    fn sym(r: Reg) -> Expr {
        Expr::sym(Sym::Init(r))
    }

    #[test]
    fn of_expr_roundtrip_simple() {
        let e = sym(Reg::Rdi).add(Expr::imm(8));
        let lin = Linear::of_expr(&e);
        assert_eq!(lin.offset, 8);
        assert_eq!(lin.terms.len(), 1);
        assert_eq!(lin.to_expr(), e);
    }

    #[test]
    fn diff_of_same_base() {
        let a = Linear::of_expr(&sym(Reg::Rsp).sub(Expr::imm(0x28)));
        let b = Linear::of_expr(&sym(Reg::Rsp).sub(Expr::imm(0x10)));
        let d = a.diff(&b);
        assert_eq!(d.as_constant(), Some(-0x18));
        assert!(a.same_base(&b));
    }

    #[test]
    fn scaled_terms() {
        // rax0*4 + rax0*4 = rax0*8
        let e = sym(Reg::Rax).mul(Expr::imm(4)).add(sym(Reg::Rax).mul(Expr::imm(4)));
        let lin = Linear::of_expr(&e);
        assert_eq!(lin.terms.values().copied().collect::<Vec<_>>(), vec![8]);
    }

    #[test]
    fn cancellation_removes_term() {
        let e = sym(Reg::Rax).add(sym(Reg::Rbx)).sub(sym(Reg::Rax));
        let lin = Linear::of_expr(&e);
        assert_eq!(lin.terms.len(), 1);
        assert_eq!(lin.to_expr(), sym(Reg::Rbx));
    }

    #[test]
    fn opaque_atoms_for_nonlinear() {
        let e = sym(Reg::Rax).mul(sym(Reg::Rbx)).add(Expr::imm(4));
        let lin = Linear::of_expr(&e);
        assert_eq!(lin.offset, 4);
        assert_eq!(lin.terms.len(), 1);
        assert!(matches!(lin.terms.keys().next(), Some(Atom::Opaque(_))));
    }

    #[test]
    fn bottom_tracked() {
        let e = Expr::op_raw(OpKind::Add, vec![Expr::bottom(), Expr::imm(1)]);
        let lin = Linear::of_expr(&e);
        assert!(lin.has_bottom);
        assert!(lin.to_expr().is_bottom());
        assert_eq!(lin.as_constant(), None);
    }

    #[test]
    fn wrapping_coefficients() {
        // -1 * rax0 twice wraps but stays consistent.
        let e = sym(Reg::Rax).neg().add(sym(Reg::Rax).neg());
        let lin = Linear::of_expr(&e);
        assert_eq!(lin.terms.values().copied().collect::<Vec<_>>(), vec![-2]);
    }

    #[test]
    fn of_sum_matches_materialised_sum() {
        // of_sum is the smart constructors' transient-free path; it
        // must agree with accumulating an explicit sum node.
        let a = sym(Reg::Rdi).add(Expr::imm(8));
        let b = sym(Reg::Rsi).mul(Expr::imm(4));
        let direct = Linear::of_sum(a, 1, b, -1);
        let via_node = Linear::of_expr(&Expr::op_raw(OpKind::Sub, vec![a, b]));
        assert_eq!(direct, via_node);
        assert_eq!(Linear::of_scaled(a, -3), Linear::of_expr(&Expr::op_raw(
            OpKind::Mul,
            vec![a, Expr::imm((-3i64) as u64)],
        )));
    }
}
