//! Symbols: the leaves of constant expressions.

use hgl_x86::Reg;
use std::fmt;

/// A symbol denoting an unknown-but-fixed 64-bit value.
///
/// Symbols are the variables `V` of the paper's expression grammar
/// (§3.1): they stand for values fixed at function entry or introduced
/// by the analysis, never for mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// The initial value of a register at function entry (`rdi0`, …).
    Init(Reg),
    /// `a_r`: the value initially stored at the top of the stack frame
    /// (the return address slot `*[rsp0, 8]`).
    RetAddr,
    /// `S_f`: the symbolic return address pushed when the function at
    /// this entry address is called context-free (§4.2.2).
    RetSym(u64),
    /// A fresh unknown, e.g. the contents of a destroyed memory region
    /// or a register havocked by an external call. The payload is a
    /// unique id.
    Fresh(u64),
    /// The value of a cell in the global/data space at the given
    /// address, as of function entry.
    Global(u64),
}

impl Sym {
    /// True for symbols whose value is an *instruction* or *code*
    /// address by construction (`S_f` return symbols).
    pub fn is_return_symbol(self) -> bool {
        matches!(self, Sym::RetSym(_))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Init(r) => write!(f, "{r}0"),
            Sym::RetAddr => write!(f, "a_r"),
            Sym::RetSym(a) => write!(f, "S{a:#x}"),
            Sym::Fresh(id) => write!(f, "u{id}"),
            Sym::Global(a) => write!(f, "g{a:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Sym::Init(Reg::Rdi).to_string(), "rdi0");
        assert_eq!(Sym::RetAddr.to_string(), "a_r");
        assert_eq!(Sym::RetSym(0x400).to_string(), "S0x400");
        assert_eq!(Sym::Fresh(3).to_string(), "u3");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Sym::Fresh(1), Sym::Init(Reg::Rax), Sym::RetAddr, Sym::RetSym(4)];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 4);
    }
}
