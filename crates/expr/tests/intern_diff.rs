//! Differential proptest: the hash-consed arena [`Expr`] must be
//! observationally identical to the boxed tree representation it
//! replaced. The `boxed` module below is the pre-arena implementation
//! (smart constructors, linear normalisation, evaluator) ported
//! verbatim as a reference; random construction recipes are driven
//! through both and every observable — structure, evaluation, total
//! order, node counts, symbol sets — must agree. On top of that, the
//! arena's defining property is checked directly: structural equality
//! coincides with id (pointer) equality, and interning a term twice
//! yields the same id.

use hgl_expr::{Expr, ExprKind, OpKind, Sym};
use hgl_x86::{Reg, Width};
use proptest::prelude::*;
use std::hash::{Hash, Hasher};

/// The pre-arena expression representation, ported as an executable
/// reference: boxed trees with structural equality and the same
/// simplifying constructors, including the `Linear` normalisation the
/// real crate now performs arena-side.
mod boxed {
    use hgl_expr::{OpKind, Sym};
    use hgl_x86::Width;
    use std::collections::BTreeMap;

    /// The old `Expr`: an owned tree with `Box`/`Vec` children.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum BExpr {
        Imm(u64),
        Sym(Sym),
        Deref { addr: Box<BExpr>, size: u8 },
        Op { op: OpKind, args: Vec<BExpr> },
        Bottom,
    }

    impl BExpr {
        pub fn imm(v: u64) -> BExpr {
            BExpr::Imm(v)
        }

        pub fn sym(s: Sym) -> BExpr {
            BExpr::Sym(s)
        }

        pub fn bottom() -> BExpr {
            BExpr::Bottom
        }

        pub fn read(addr: BExpr, size: u8) -> BExpr {
            if addr.is_bottom() {
                return BExpr::Bottom;
            }
            BExpr::Deref { addr: Box::new(addr), size }
        }

        pub fn is_bottom(&self) -> bool {
            matches!(self, BExpr::Bottom)
        }

        pub fn as_imm(&self) -> Option<u64> {
            match self {
                BExpr::Imm(v) => Some(*v),
                _ => None,
            }
        }

        fn binop(op: OpKind, a: BExpr, b: BExpr) -> BExpr {
            BExpr::Op { op, args: vec![a, b] }
        }

        fn unop(op: OpKind, a: BExpr) -> BExpr {
            BExpr::Op { op, args: vec![a] }
        }

        pub fn add(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => return BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => return BExpr::Imm(a.wrapping_add(*b)),
                (_, BExpr::Imm(0)) => return self,
                (BExpr::Imm(0), _) => return rhs,
                _ => {}
            }
            BLinear::of_expr(&BExpr::binop(OpKind::Add, self, rhs)).to_expr()
        }

        pub fn sub(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => return BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => return BExpr::Imm(a.wrapping_sub(*b)),
                (_, BExpr::Imm(0)) => return self,
                _ => {}
            }
            if self == rhs {
                return BExpr::Imm(0);
            }
            BLinear::of_expr(&BExpr::binop(OpKind::Sub, self, rhs)).to_expr()
        }

        pub fn mul(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => return BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => return BExpr::Imm(a.wrapping_mul(*b)),
                (_, BExpr::Imm(1)) => return self,
                (BExpr::Imm(1), _) => return rhs,
                (_, BExpr::Imm(0)) | (BExpr::Imm(0), _) => return BExpr::Imm(0),
                _ => {}
            }
            if self.as_imm().is_some() || rhs.as_imm().is_some() {
                BLinear::of_expr(&BExpr::binop(OpKind::Mul, self, rhs)).to_expr()
            } else {
                BExpr::binop(OpKind::Mul, self, rhs)
            }
        }

        pub fn neg(self) -> BExpr {
            match &self {
                BExpr::Bottom => BExpr::Bottom,
                BExpr::Imm(a) => BExpr::Imm(a.wrapping_neg()),
                _ => BLinear::of_expr(&BExpr::unop(OpKind::Neg, self)).to_expr(),
            }
        }

        pub fn and(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => BExpr::Imm(a & b),
                (_, BExpr::Imm(0)) | (BExpr::Imm(0), _) => BExpr::Imm(0),
                (_, BExpr::Imm(u64::MAX)) => self,
                (BExpr::Imm(u64::MAX), _) => rhs,
                _ if self == rhs => self,
                _ => BExpr::binop(OpKind::And, self, rhs),
            }
        }

        pub fn or(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => BExpr::Imm(a | b),
                (_, BExpr::Imm(0)) => self,
                (BExpr::Imm(0), _) => rhs,
                _ if self == rhs => self,
                _ => BExpr::binop(OpKind::Or, self, rhs),
            }
        }

        pub fn xor(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) => BExpr::Imm(a ^ b),
                (_, BExpr::Imm(0)) => self,
                (BExpr::Imm(0), _) => rhs,
                _ if self == rhs => BExpr::Imm(0),
                _ => BExpr::binop(OpKind::Xor, self, rhs),
            }
        }

        pub fn not(self) -> BExpr {
            match &self {
                BExpr::Bottom => BExpr::Bottom,
                BExpr::Imm(a) => BExpr::Imm(!a),
                _ => BExpr::unop(OpKind::Not, self),
            }
        }

        pub fn shl(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (_, BExpr::Imm(c)) if *c < 64 => self.mul(BExpr::Imm(1u64 << c)),
                (_, BExpr::Imm(_)) => BExpr::Imm(0),
                _ => BExpr::binop(OpKind::Shl, self, rhs),
            }
        }

        pub fn shr(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(c)) if *c < 64 => BExpr::Imm(a >> c),
                (_, BExpr::Imm(c)) if *c >= 64 => BExpr::Imm(0),
                (_, BExpr::Imm(0)) => self,
                _ => BExpr::binop(OpKind::Shr, self, rhs),
            }
        }

        pub fn sar(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(c)) if *c < 64 => {
                    BExpr::Imm(((*a as i64) >> c) as u64)
                }
                (_, BExpr::Imm(0)) => self,
                _ => BExpr::binop(OpKind::Sar, self, rhs),
            }
        }

        pub fn udiv(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) if *b != 0 => BExpr::Imm(a / b),
                (_, BExpr::Imm(1)) => self,
                _ => BExpr::binop(OpKind::UDiv, self, rhs),
            }
        }

        pub fn urem(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b)) if *b != 0 => BExpr::Imm(a % b),
                _ => BExpr::binop(OpKind::URem, self, rhs),
            }
        }

        pub fn sdiv(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b))
                    if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) =>
                {
                    BExpr::Imm((*a as i64).wrapping_div(*b as i64) as u64)
                }
                _ => BExpr::binop(OpKind::SDiv, self, rhs),
            }
        }

        pub fn srem(self, rhs: BExpr) -> BExpr {
            match (&self, &rhs) {
                (BExpr::Bottom, _) | (_, BExpr::Bottom) => BExpr::Bottom,
                (BExpr::Imm(a), BExpr::Imm(b))
                    if *b != 0 && !(*a == i64::MIN as u64 && *b == u64::MAX) =>
                {
                    BExpr::Imm((*a as i64).wrapping_rem(*b as i64) as u64)
                }
                _ => BExpr::binop(OpKind::SRem, self, rhs),
            }
        }

        pub fn trunc(self, w: Width) -> BExpr {
            if w == Width::B8 {
                return self;
            }
            match &self {
                BExpr::Bottom => BExpr::Bottom,
                BExpr::Imm(a) => BExpr::Imm(w.trunc(*a)),
                BExpr::Op { op: OpKind::Trunc(w2), args } if *w2 <= w => {
                    BExpr::unop(OpKind::Trunc(*w2), args[0].clone())
                }
                _ => BExpr::unop(OpKind::Trunc(w), self),
            }
        }

        pub fn sext(self, w: Width) -> BExpr {
            if w == Width::B8 {
                return self;
            }
            match &self {
                BExpr::Bottom => BExpr::Bottom,
                BExpr::Imm(a) => BExpr::Imm(w.sext(*a)),
                _ => BExpr::unop(OpKind::SExt(w), self),
            }
        }

        pub fn apply_un(op: OpKind, a: BExpr) -> BExpr {
            if a.is_bottom() {
                return BExpr::Bottom;
            }
            match (op, a.as_imm()) {
                (OpKind::Popcnt, Some(v)) => BExpr::Imm(v.count_ones() as u64),
                (OpKind::Tzcnt, Some(v)) => BExpr::Imm(v.trailing_zeros() as u64),
                (OpKind::Not, _) => a.not(),
                (OpKind::Neg, _) => a.neg(),
                (OpKind::Trunc(w), _) => a.trunc(w),
                (OpKind::SExt(w), _) => a.sext(w),
                _ => BExpr::unop(op, a),
            }
        }

        pub fn node_count(&self) -> usize {
            match self {
                BExpr::Imm(_) | BExpr::Sym(_) | BExpr::Bottom => 1,
                BExpr::Deref { addr, .. } => 1 + addr.node_count(),
                BExpr::Op { args, .. } => 1 + args.iter().map(BExpr::node_count).sum::<usize>(),
            }
        }

        pub fn syms(&self) -> Vec<Sym> {
            let mut out = Vec::new();
            self.collect_syms(&mut out);
            out.sort();
            out.dedup();
            out
        }

        fn collect_syms(&self, out: &mut Vec<Sym>) {
            match self {
                BExpr::Sym(s) => out.push(*s),
                BExpr::Deref { addr, .. } => addr.collect_syms(out),
                BExpr::Op { args, .. } => {
                    for a in args {
                        a.collect_syms(out);
                    }
                }
                BExpr::Imm(_) | BExpr::Bottom => {}
            }
        }

        pub fn eval<F, M>(&self, env: &F, mem: &M) -> Option<u64>
        where
            F: Fn(Sym) -> u64,
            M: Fn(u64, u8) -> Option<u64>,
        {
            match self {
                BExpr::Imm(v) => Some(*v),
                BExpr::Sym(s) => Some(env(*s)),
                BExpr::Bottom => None,
                BExpr::Deref { addr, size } => {
                    let a = addr.eval(env, mem)?;
                    mem(a, *size)
                }
                BExpr::Op { op, args } => {
                    let a = args[0].eval(env, mem)?;
                    if args.len() == 1 {
                        return Some(match op {
                            OpKind::Not => !a,
                            OpKind::Neg => a.wrapping_neg(),
                            OpKind::Trunc(w) => w.trunc(a),
                            OpKind::SExt(w) => w.sext(w.trunc(a)),
                            OpKind::Popcnt => a.count_ones() as u64,
                            OpKind::Tzcnt => a.trailing_zeros() as u64,
                            OpKind::Bsf => {
                                if a == 0 {
                                    return None;
                                }
                                a.trailing_zeros() as u64
                            }
                            OpKind::Bsr => {
                                if a == 0 {
                                    return None;
                                }
                                (63 - a.leading_zeros()) as u64
                            }
                            _ => return None,
                        });
                    }
                    let b = args[1].eval(env, mem)?;
                    Some(match op {
                        OpKind::Add => a.wrapping_add(b),
                        OpKind::Sub => a.wrapping_sub(b),
                        OpKind::Mul => a.wrapping_mul(b),
                        OpKind::UDiv => a.checked_div(b)?,
                        OpKind::URem => a.checked_rem(b)?,
                        OpKind::SDiv => (a as i64).checked_div(b as i64)? as u64,
                        OpKind::SRem => (a as i64).checked_rem(b as i64)? as u64,
                        OpKind::And => a & b,
                        OpKind::Or => a | b,
                        OpKind::Xor => a ^ b,
                        OpKind::Shl => a.checked_shl(b as u32).unwrap_or(0),
                        OpKind::Shr => a.checked_shr(b as u32).unwrap_or(0),
                        OpKind::Sar => {
                            let sh = (b as u32).min(63);
                            ((a as i64) >> sh) as u64
                        }
                        OpKind::Rol(w) => {
                            let bits = w.bits();
                            let v = w.trunc(a);
                            let s = (b as u32) % bits;
                            w.trunc(v << s | v >> ((bits - s) % bits))
                        }
                        OpKind::Ror(w) => {
                            let bits = w.bits();
                            let v = w.trunc(a);
                            let s = (b as u32) % bits;
                            w.trunc(v >> s | v << ((bits - s) % bits))
                        }
                        _ => return None,
                    })
                }
            }
        }
    }

    /// The old `Linear`: Σ cᵢ·atomᵢ + k over boxed atoms, used by the
    /// reference constructors exactly as the old `Expr` used the real
    /// `Linear`.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum BAtom {
        Sym(Sym),
        Opaque(Box<BExpr>),
    }

    impl BAtom {
        fn to_expr(&self) -> BExpr {
            match self {
                BAtom::Sym(s) => BExpr::Sym(*s),
                BAtom::Opaque(e) => (**e).clone(),
            }
        }
    }

    pub struct BLinear {
        pub terms: BTreeMap<BAtom, i64>,
        pub offset: i64,
        pub has_bottom: bool,
    }

    impl BLinear {
        fn zero() -> BLinear {
            BLinear { terms: BTreeMap::new(), offset: 0, has_bottom: false }
        }

        fn add_term(&mut self, a: BAtom, c: i64) {
            use std::collections::btree_map::Entry;
            match self.terms.entry(a) {
                Entry::Vacant(v) => {
                    if c != 0 {
                        v.insert(c);
                    }
                }
                Entry::Occupied(mut o) => {
                    let n = o.get().wrapping_add(c);
                    if n == 0 {
                        o.remove();
                    } else {
                        *o.get_mut() = n;
                    }
                }
            }
        }

        pub fn of_expr(e: &BExpr) -> BLinear {
            let mut lin = BLinear::zero();
            lin.accumulate(e, 1);
            lin
        }

        fn accumulate(&mut self, e: &BExpr, scale: i64) {
            match e {
                BExpr::Imm(v) => {
                    self.offset = self.offset.wrapping_add((*v as i64).wrapping_mul(scale))
                }
                BExpr::Sym(s) => self.add_term(BAtom::Sym(*s), scale),
                BExpr::Bottom => self.has_bottom = true,
                BExpr::Op { op: OpKind::Add, args } if args.len() == 2 => {
                    self.accumulate(&args[0], scale);
                    self.accumulate(&args[1], scale);
                }
                BExpr::Op { op: OpKind::Sub, args } if args.len() == 2 => {
                    self.accumulate(&args[0], scale);
                    self.accumulate(&args[1], scale.wrapping_neg());
                }
                BExpr::Op { op: OpKind::Neg, args } if args.len() == 1 => {
                    self.accumulate(&args[0], scale.wrapping_neg());
                }
                BExpr::Op { op: OpKind::Mul, args } if args.len() == 2 => {
                    match (args[0].as_imm(), args[1].as_imm()) {
                        (Some(c), _) => self.accumulate(&args[1], scale.wrapping_mul(c as i64)),
                        (_, Some(c)) => self.accumulate(&args[0], scale.wrapping_mul(c as i64)),
                        _ => self.add_term(BAtom::Opaque(Box::new(e.clone())), scale),
                    }
                }
                other => self.add_term(BAtom::Opaque(Box::new(other.clone())), scale),
            }
        }

        pub fn to_expr(&self) -> BExpr {
            if self.has_bottom {
                return BExpr::Bottom;
            }
            let mut acc: Option<BExpr> = None;
            for (atom, &coeff) in &self.terms {
                let base = atom.to_expr();
                let term = if coeff == 1 {
                    base
                } else {
                    BExpr::Op { op: OpKind::Mul, args: vec![base, BExpr::Imm(coeff as u64)] }
                };
                acc = Some(match acc {
                    None => term,
                    Some(prev) => BExpr::Op { op: OpKind::Add, args: vec![prev, term] },
                });
            }
            match acc {
                None => BExpr::Imm(self.offset as u64),
                Some(e) if self.offset == 0 => e,
                Some(e) => {
                    BExpr::Op { op: OpKind::Add, args: vec![e, BExpr::Imm(self.offset as u64)] }
                }
            }
        }
    }
}

use boxed::BExpr;

/// Symbol pool: one of each `Sym` flavour plus a few registers, so
/// ordering across flavours and `Fresh` handling are both exercised.
const SYMS: &[Sym] = &[
    Sym::Init(Reg::Rax),
    Sym::Init(Reg::Rsp),
    Sym::Init(Reg::Rdi),
    Sym::Init(Reg::Rsi),
    Sym::RetAddr,
    Sym::RetSym(0x40_1000),
    Sym::Fresh(7),
    Sym::Global(0x60_1040),
];

/// A construction recipe: the same sequence of smart-constructor calls
/// replayed against both representations.
#[derive(Debug, Clone)]
enum Recipe {
    Imm(u64),
    Sym(usize),
    Bottom,
    Read(Box<Recipe>, u8),
    Un(UnOp, Box<Recipe>),
    Bin(BinOp, Box<Recipe>, Box<Recipe>),
}

#[derive(Debug, Clone, Copy)]
enum UnOp {
    Neg,
    Not,
    Trunc(Width),
    Sext(Width),
    Apply(OpKind),
}

#[derive(Debug, Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    UDiv,
    URem,
    SDiv,
    SRem,
}

fn build_arena(r: &Recipe) -> Expr {
    match r {
        Recipe::Imm(v) => Expr::imm(*v),
        Recipe::Sym(i) => Expr::sym(SYMS[*i]),
        Recipe::Bottom => Expr::bottom(),
        Recipe::Read(a, s) => Expr::read(build_arena(a), *s),
        Recipe::Un(op, a) => {
            let a = build_arena(a);
            match op {
                UnOp::Neg => a.neg(),
                UnOp::Not => a.not(),
                UnOp::Trunc(w) => a.trunc(*w),
                UnOp::Sext(w) => a.sext(*w),
                UnOp::Apply(k) => Expr::apply_un(*k, a),
            }
        }
        Recipe::Bin(op, a, b) => {
            let a = build_arena(a);
            let b = build_arena(b);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::And => a.and(b),
                BinOp::Or => a.or(b),
                BinOp::Xor => a.xor(b),
                BinOp::Shl => a.shl(b),
                BinOp::Shr => a.shr(b),
                BinOp::Sar => a.sar(b),
                BinOp::UDiv => a.udiv(b),
                BinOp::URem => a.urem(b),
                BinOp::SDiv => a.sdiv(b),
                BinOp::SRem => a.srem(b),
            }
        }
    }
}

fn build_boxed(r: &Recipe) -> BExpr {
    match r {
        Recipe::Imm(v) => BExpr::imm(*v),
        Recipe::Sym(i) => BExpr::sym(SYMS[*i]),
        Recipe::Bottom => BExpr::bottom(),
        Recipe::Read(a, s) => BExpr::read(build_boxed(a), *s),
        Recipe::Un(op, a) => {
            let a = build_boxed(a);
            match op {
                UnOp::Neg => a.neg(),
                UnOp::Not => a.not(),
                UnOp::Trunc(w) => a.trunc(*w),
                UnOp::Sext(w) => a.sext(*w),
                UnOp::Apply(k) => BExpr::apply_un(*k, a),
            }
        }
        Recipe::Bin(op, a, b) => {
            let a = build_boxed(a);
            let b = build_boxed(b);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::And => a.and(b),
                BinOp::Or => a.or(b),
                BinOp::Xor => a.xor(b),
                BinOp::Shl => a.shl(b),
                BinOp::Shr => a.shr(b),
                BinOp::Sar => a.sar(b),
                BinOp::UDiv => a.udiv(b),
                BinOp::URem => a.urem(b),
                BinOp::SDiv => a.sdiv(b),
                BinOp::SRem => a.srem(b),
            }
        }
    }
}

/// Unintern: expand an arena handle into the boxed tree it denotes.
fn to_boxed(e: Expr) -> BExpr {
    match e.kind() {
        ExprKind::Imm(v) => BExpr::Imm(*v),
        ExprKind::Sym(s) => BExpr::Sym(*s),
        ExprKind::Bottom => BExpr::Bottom,
        ExprKind::Deref { addr, size } => {
            BExpr::Deref { addr: Box::new(to_boxed(*addr)), size: *size }
        }
        ExprKind::Op { op, args } => {
            BExpr::Op { op: *op, args: args.iter().map(|a| to_boxed(*a)).collect() }
        }
    }
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4), Just(Width::B8)]
}

fn arb_un() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Not),
        arb_width().prop_map(UnOp::Trunc),
        arb_width().prop_map(UnOp::Sext),
        prop_oneof![
            Just(OpKind::Popcnt),
            Just(OpKind::Tzcnt),
            Just(OpKind::Bsf),
            Just(OpKind::Bsr),
        ]
        .prop_map(UnOp::Apply),
    ]
}

fn arb_bin() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Sar),
        Just(BinOp::UDiv),
        Just(BinOp::URem),
        Just(BinOp::SDiv),
        Just(BinOp::SRem),
    ]
}

/// Immediates biased towards the constants the simplifier special-cases
/// (identity/absorbing elements, shift bounds, sign boundaries).
fn arb_imm() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => any::<u64>(),
        1 => Just(0u64),
        1 => Just(1u64),
        1 => Just(3u64),
        1 => Just(8u64),
        1 => Just(0x28u64),
        1 => Just(63u64),
        1 => Just(64u64),
        1 => Just(u64::MAX),
        1 => Just(1u64 << 63),
    ]
}

fn arb_recipe() -> BoxedStrategy<Recipe> {
    let leaf = prop_oneof![
        4 => arb_imm().prop_map(Recipe::Imm),
        4 => (0usize..SYMS.len()).prop_map(Recipe::Sym),
        1 => Just(Recipe::Bottom),
    ];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            6 => (arb_bin(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Recipe::Bin(op, Box::new(a), Box::new(b))),
            3 => (arb_un(), inner.clone()).prop_map(|(op, a)| Recipe::Un(op, Box::new(a))),
            1 => (inner, prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])
                .prop_map(|(a, s)| Recipe::Read(Box::new(a), s)),
        ]
    })
}

/// Deterministic symbol environment derived from a proptest seed.
fn env_of(seed: u64) -> impl Fn(Sym) -> u64 {
    move |s: Sym| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        s.hash(&mut h);
        h.finish()
    }
}

/// Deterministic memory oracle; periodically unresolvable so the
/// `None` propagation paths are exercised too.
fn mem_of(seed: u64) -> impl Fn(u64, u8) -> Option<u64> {
    move |addr: u64, size: u8| {
        let v = addr
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed)
            .wrapping_add(size as u64);
        (!v.is_multiple_of(5)).then_some(v)
    }
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Replaying a recipe through the arena yields exactly the tree the
    /// boxed constructors built: interning changes representation, not
    /// normalisation.
    #[test]
    fn construction_agrees(r in arb_recipe()) {
        let arena = build_arena(&r);
        let reference = build_boxed(&r);
        prop_assert_eq!(to_boxed(arena), reference);
    }

    /// Concrete evaluation agrees under random environments and memory
    /// oracles, `None` results included.
    #[test]
    fn eval_agrees(r in arb_recipe(), seed: u64) {
        let arena = build_arena(&r);
        let reference = build_boxed(&r);
        let env = env_of(seed);
        let mem = mem_of(seed);
        prop_assert_eq!(arena.eval(&env, &mem), reference.eval(&env, &mem));
    }

    /// Derived observations (node counts, symbol sets, display) agree.
    #[test]
    fn observations_agree(r in arb_recipe()) {
        let arena = build_arena(&r);
        let reference = build_boxed(&r);
        prop_assert_eq!(arena.node_count(), reference.node_count());
        prop_assert_eq!(arena.syms(), reference.syms());
        prop_assert_eq!(arena.is_bottom(), reference.is_bottom());
        prop_assert_eq!(arena.as_imm(), reference.as_imm());
    }

    /// Structural equality ⇔ id equality, and the total order used for
    /// canonical BTree forms matches the old structural order.
    #[test]
    fn equality_is_identity(a in arb_recipe(), b in arb_recipe()) {
        let ea = build_arena(&a);
        let eb = build_arena(&b);
        let structural_eq = to_boxed(ea) == to_boxed(eb);
        prop_assert_eq!(ea == eb, structural_eq);
        prop_assert_eq!(std::ptr::eq(ea.kind(), eb.kind()), structural_eq);
        prop_assert_eq!(ea.cmp(&eb), to_boxed(ea).cmp(&to_boxed(eb)));
        if ea == eb {
            prop_assert_eq!(hash_of(&ea), hash_of(&eb));
        }
    }

    /// Interning the same term twice yields the same id: the handles
    /// point at the very same arena node.
    #[test]
    fn interning_is_idempotent(r in arb_recipe()) {
        let first = build_arena(&r);
        let second = build_arena(&r);
        prop_assert!(std::ptr::eq(first.kind(), second.kind()));
        prop_assert_eq!(first, second);
        prop_assert_eq!(hash_of(&first), hash_of(&second));
    }
}

/// Pinned smoke case: the doc-comment example interned twice is the
/// same node, and `==` on distinct terms is false.
#[test]
fn intern_twice_same_id_pinned() {
    let a = Expr::sym(Sym::Init(Reg::Rdi)).add(Expr::imm(8)).add(Expr::imm(8));
    let b = Expr::sym(Sym::Init(Reg::Rdi)).add(Expr::imm(16));
    assert!(std::ptr::eq(a.kind(), b.kind()), "equal terms intern to the same node");
    assert_eq!(a, b);
    let c = Expr::sym(Sym::Init(Reg::Rdi)).add(Expr::imm(24));
    assert_ne!(a, c);
    assert!(!std::ptr::eq(a.kind(), c.kind()));
}
