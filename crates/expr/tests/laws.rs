//! Algebraic property tests: the simplifying constructors and linear
//! normal forms must preserve concrete 64-bit wrapping semantics.

use hgl_expr::{Expr, Interval, Linear, Sym};
use hgl_x86::{Reg, Width};
use proptest::prelude::*;

fn arb_sym() -> impl Strategy<Value = Sym> {
    prop_oneof![
        (0u8..16).prop_map(|n| Sym::Init(Reg::from_number(n))),
        (0u64..8).prop_map(Sym::Fresh),
        Just(Sym::RetAddr),
    ]
}

/// A small random expression tree.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(Expr::imm),
        arb_sym().prop_map(Expr::sym),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), any::<u8>()).prop_map(|(a, c)| a.mul(Expr::imm(c as u64))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), 0u64..64).prop_map(|(a, c)| a.shl(Expr::imm(c))),
            (inner.clone(), 0u64..64).prop_map(|(a, c)| a.shr(Expr::imm(c))),
            inner.clone().prop_map(Expr::neg),
            inner.clone().prop_map(Expr::not),
            (inner.clone(), prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4)])
                .prop_map(|(a, w)| a.trunc(w)),
            (inner, prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4)])
                .prop_map(|(a, w)| a.sext(w)),
        ]
    })
}

fn env_from(vals: &[u64]) -> impl Fn(Sym) -> u64 + '_ {
    move |s: Sym| {
        let idx = match s {
            Sym::Init(r) => r.number() as usize,
            Sym::Fresh(n) => 16 + (n as usize % 8),
            _ => 24,
        };
        vals[idx % vals.len()]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Constructor simplifications never change concrete meaning:
    /// (a + b) evaluates to eval(a) + eval(b), etc.
    #[test]
    fn add_matches_wrapping_add(a in arb_expr(), b in arb_expr(), vals in proptest::collection::vec(any::<u64>(), 25)) {
        let env = env_from(&vals);
        let nomem = |_: u64, _: u8| None;
        if let (Some(va), Some(vb)) = (a.eval(&env, &nomem), b.eval(&env, &nomem)) {
            let sum = a.add(b);
            if let Some(vs) = sum.eval(&env, &nomem) {
                prop_assert_eq!(vs, va.wrapping_add(vb), "a={} b={} sum={}", a, b, sum);
            }
        }
    }

    #[test]
    fn sub_matches_wrapping_sub(a in arb_expr(), b in arb_expr(), vals in proptest::collection::vec(any::<u64>(), 25)) {
        let env = env_from(&vals);
        let nomem = |_: u64, _: u8| None;
        if let (Some(va), Some(vb)) = (a.eval(&env, &nomem), b.eval(&env, &nomem)) {
            let d = a.sub(b);
            if let Some(vd) = d.eval(&env, &nomem) {
                prop_assert_eq!(vd, va.wrapping_sub(vb));
            }
        }
    }

    /// Linear normalisation round-trips concrete evaluation.
    #[test]
    fn linear_roundtrip_preserves_eval(e in arb_expr(), vals in proptest::collection::vec(any::<u64>(), 25)) {
        let env = env_from(&vals);
        let nomem = |_: u64, _: u8| None;
        let lin = Linear::of_expr(&e);
        let back = lin.to_expr();
        // ⊥ / undefined stays undefined; only compare when both sides eval.
        if let (Some(v1), Some(v2)) = (e.eval(&env, &nomem), back.eval(&env, &nomem)) {
            prop_assert_eq!(v1, v2, "e={} normalised={}", e, back);
        }
    }

    /// `diff` is evaluation-compatible subtraction.
    #[test]
    fn linear_diff_matches_eval(a in arb_expr(), b in arb_expr(), vals in proptest::collection::vec(any::<u64>(), 25)) {
        let env = env_from(&vals);
        let nomem = |_: u64, _: u8| None;
        let la = Linear::of_expr(&a);
        let lb = Linear::of_expr(&b);
        let d = la.diff(&lb).to_expr();
        if let (Some(va), Some(vb), Some(vd)) =
            (a.eval(&env, &nomem), b.eval(&env, &nomem), d.eval(&env, &nomem))
        {
            prop_assert_eq!(vd, va.wrapping_sub(vb));
        }
    }

    /// trunc/sext agree with the machine definitions.
    #[test]
    fn trunc_sext_machine_semantics(v in any::<u64>(), w in prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4)]) {
        let nomem = |_: u64, _: u8| None;
        let e = Expr::imm(v);
        prop_assert_eq!(e.trunc(w).eval(&|_| 0, &nomem), Some(w.trunc(v)));
        prop_assert_eq!(e.sext(w).eval(&|_| 0, &nomem), Some(w.sext(w.trunc(v))));
    }

    /// Interval join is an upper bound; meet is exact intersection.
    #[test]
    fn interval_lattice_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(), probe in any::<u64>()) {
        let i1 = Interval::new(a.min(b), a.max(b));
        let i2 = Interval::new(c.min(d), c.max(d));
        let j = i1.join(i2);
        prop_assert!(j.contains(i1.lo) && j.contains(i1.hi));
        prop_assert!(j.contains(i2.lo) && j.contains(i2.hi));
        match i1.meet(i2) {
            Some(m) => {
                prop_assert_eq!(m.contains(probe), i1.contains(probe) && i2.contains(probe));
            }
            None => prop_assert!(!(i1.contains(probe) && i2.contains(probe))),
        }
    }

    /// Expression node counts never grow through linear normalisation
    /// of already-linear terms (no size blowup from the constructors).
    #[test]
    fn linear_terms_stay_compact(
        coeffs in proptest::collection::vec(1u64..16, 1..6),
        k in any::<u32>(),
    ) {
        let mut e = Expr::imm(k as u64);
        for (i, c) in coeffs.iter().enumerate() {
            let s = Expr::sym(Sym::Init(Reg::from_number((i % 16) as u8)));
            e = e.add(s.mul(Expr::imm(*c)));
        }
        // Re-adding zero and re-normalising is idempotent.
        let e2 = e.add(Expr::imm(0));
        prop_assert_eq!(&e, &e2);
        prop_assert!(e.node_count() <= 4 * coeffs.len() + 2);
    }
}
