//! Differential campaigns: synthesize programs, lift them, and replay
//! many seeded traces per program against the Hoare Graph.
//!
//! Everything is derived deterministically from one master seed, so a
//! failure is replayable from a single printed line: the master seed,
//! the program index and the entry-state index reconstruct the exact
//! program, lift and trace.

use crate::coverage::{Coverage, CoverageFloor};
use crate::shrink::{shrink, ShrinkResult};
use crate::trace::{EntryState, TraceOracle, Violation};
use hgl_asm::Asm;
use hgl_core::lift::{LiftConfig, RejectReason};
use hgl_core::Lifter;
use hgl_core::{Budget, BudgetMeter};
use hgl_corpus::{GenOptions, ProgramGen};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: every program and entry state derives from it.
    pub master_seed: u64,
    /// Number of programs to synthesize.
    pub programs: usize,
    /// Seeded entry states per program.
    pub entries_per_program: usize,
    /// Per-trace step budget.
    pub max_steps: usize,
    /// Wall-clock safety net for the whole campaign.
    pub budget: Budget,
    /// Test-only: lift with the jcc fall-through edge dropped, to
    /// prove the oracle catches an unsound lifter.
    pub inject_drop_jcc_fallthrough: bool,
    /// Cross-validate static write classifications against concrete
    /// writes on every trace.
    pub check_write_classes: bool,
    /// Run the analyze→re-lift indirect-jump refinement before
    /// tracing, and cross-validate every refinement claim: a concrete
    /// indirect jump at a claimed address must land inside the claimed
    /// target set.
    pub refine_indirect: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0x0e11_ab1e_5eed,
            programs: 50,
            entries_per_program: 4,
            max_steps: 20_000,
            budget: Budget::unlimited(),
            inject_drop_jcc_fallthrough: false,
            check_write_classes: true,
            refine_indirect: false,
        }
    }
}

/// A synthesized campaign program.
pub struct SynthProgram {
    /// The assembly program (shrinking rebuilds candidates from it).
    pub asm: Asm,
    /// Generator segment spans, for span-level shrinking.
    pub spans: Vec<(usize, usize)>,
    /// The options the entry function was generated with.
    pub opts: GenOptions,
}

/// splitmix64 — deterministic seed derivation without `rand`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generation profile for program `index` (rotates through four
/// shapes so every campaign exercises all edge kinds).
fn profile(index: usize) -> GenOptions {
    let base = GenOptions {
        segments: 3,
        callees: Vec::new(),
        externals: vec!["puts".into(), "malloc".into(), "free".into(), "memcpy".into()],
        p_jump_table: 0.1,
        p_masked_table: 0.0,
        p_callback: 0.0,
        p_wild_jump: 0.0,
        p_param_write: 0.1,
    };
    match index % 4 {
        // Plain straight-line/branchy code.
        0 => base,
        // Jump-table heavy, with masked (cmp-less) tables the inline
        // lift cannot resolve — the refinement campaign's raw material.
        1 => GenOptions { p_jump_table: 0.35, p_masked_table: 0.15, ..base },
        // Callback (annotated indirect call) heavy.
        2 => GenOptions { p_callback: 0.4, p_jump_table: 0.05, ..base },
        // Mixed, slightly larger.
        _ => GenOptions {
            segments: 4,
            p_jump_table: 0.15,
            p_callback: 0.05,
            p_wild_jump: 0.05,
            ..base
        },
    }
}

/// Deterministically synthesize campaign program `index`.
pub fn synth_program(master_seed: u64, index: usize) -> SynthProgram {
    let mut rng = SmallRng::seed_from_u64(mix(master_seed ^ (index as u64).wrapping_mul(0x51_7cc1_b727_2205)));
    let mut pg = ProgramGen::new();
    let helper_opts = profile(index);
    let helpers = 1 + index % 2;
    let mut callees = Vec::new();
    for h in 0..helpers {
        let name = format!("helper_{h}");
        pg.gen_function(&name, &mut rng, &helper_opts);
        callees.push(name);
    }
    let opts = GenOptions { callees, ..profile(index) };
    pg.gen_function("main", &mut rng, &opts);
    pg.asm.entry("main");
    SynthProgram { asm: pg.asm, spans: pg.segment_spans, opts }
}

/// Deterministically derive entry state `entry` of program `program`.
///
/// `rdi` doubles as the jump-table selector: the first three entries
/// use small indices (hitting table cases), later ones use large
/// values (hitting the bounds-checked default).
pub fn entry_state(master_seed: u64, program: usize, entry: usize) -> EntryState {
    let mut rng = SmallRng::seed_from_u64(mix(
        master_seed ^ mix(program as u64) ^ (entry as u64).wrapping_mul(0xd6e8_feb8_6659_fd93),
    ));
    let rdi = if entry < 3 { entry as u64 } else { 64 + rng.gen_range(0..0x1000u64) };
    let scratch = [
        rng.gen::<u64>() & 0xffff,
        rng.gen::<u64>() & 0xffff,
        rng.gen::<u64>() & 0xffff,
        rng.gen::<u64>(),
        rng.gen::<u64>() & 0xff,
        rng.gen::<u64>() & 0xff,
    ];
    EntryState { rdi, scratch }
}

/// The short head of a reject reason, for coverage accounting.
fn reject_head(r: &RejectReason) -> String {
    let s = format!("{r:?}");
    s.split(['(', ' ', '{'])
        .next()
        .unwrap_or("unknown")
        .to_string()
}

/// A campaign failure: everything needed to reproduce and report it.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The master seed the campaign ran with.
    pub master_seed: u64,
    /// Failing program index.
    pub program: usize,
    /// Failing entry-state index.
    pub entry: usize,
    /// The options the failing program was generated with.
    pub opts: GenOptions,
    /// The conformance violation.
    pub violation: Violation,
    /// The minimal reproducer, if shrinking succeeded.
    pub shrunk: Option<ShrinkResult>,
}

impl fmt::Display for CampaignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.violation)?;
        writeln!(
            f,
            "replay: master_seed={:#x} program={} entry={}",
            self.master_seed, self.program, self.entry
        )?;
        writeln!(f, "gen-options: {:?}", self.opts)?;
        match &self.shrunk {
            Some(s) => {
                writeln!(f, "shrunk to {} instructions:", s.instructions)?;
                write!(f, "{}", s.listing)
            }
            None => writeln!(f, "(not shrunk)"),
        }
    }
}

/// What a campaign did and found.
pub struct CampaignReport {
    /// Programs synthesized and traced.
    pub programs_run: usize,
    /// Programs skipped because the lifter rejected part of them.
    pub programs_skipped: usize,
    /// Traces replayed.
    pub traces_run: usize,
    /// Total steps checked across all traces.
    pub steps_total: usize,
    /// Concrete writes checked against static write-class claims.
    pub writes_checked: usize,
    /// Concrete indirect jumps checked against refinement claims.
    pub indirect_checked: usize,
    /// Indirect jumps the refinement resolved across all lifted
    /// programs (the Table-1 column A contribution of refinement).
    pub indirections_resolved: usize,
    /// What the campaign exercised.
    pub coverage: Coverage,
    /// The first failure, shrunk — `None` means full conformance.
    pub failure: Option<CampaignFailure>,
    /// Floor entries the campaign missed (empty = floor holds).
    pub floor_missing: Vec<String>,
    /// The campaign hit its wall-clock budget and stopped early.
    pub budget_exhausted: bool,
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} programs ({} skipped), {} traces, {} steps, {} writes checked, \
             {} indirect jumps checked ({} resolved statically){}",
            self.programs_run,
            self.programs_skipped,
            self.traces_run,
            self.steps_total,
            self.writes_checked,
            self.indirect_checked,
            self.indirections_resolved,
            if self.budget_exhausted { " [budget exhausted]" } else { "" }
        )?;
        writeln!(f, "{}", self.coverage)?;
        for m in &self.floor_missing {
            writeln!(f, "coverage floor MISSED: {m}")?;
        }
        if let Some(fail) = &self.failure {
            writeln!(f, "FAILURE:\n{fail}")?;
        }
        Ok(())
    }
}

/// Run a full campaign. Stops at the first conformance violation
/// (which is then shrunk) or when the budget runs out.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut lift_cfg = LiftConfig::default();
    lift_cfg.limits.inject_drop_jcc_fallthrough = cfg.inject_drop_jcc_fallthrough;

    let meter = BudgetMeter::start(&cfg.budget);
    let mut coverage = Coverage::default();
    let mut report = CampaignReport {
        programs_run: 0,
        programs_skipped: 0,
        traces_run: 0,
        steps_total: 0,
        writes_checked: 0,
        indirect_checked: 0,
        indirections_resolved: 0,
        coverage: Coverage::default(),
        failure: None,
        floor_missing: Vec::new(),
        budget_exhausted: false,
    };

    'programs: for p in 0..cfg.programs {
        if meter.check_global().is_some() {
            report.budget_exhausted = true;
            break;
        }
        let prog = synth_program(cfg.master_seed, p);
        let bin = match prog.asm.assemble() {
            Ok(b) => b,
            Err(e) => {
                // Generator bug, not a lifter bug — count and move on.
                coverage.record_reject(format!("assemble:{e}"));
                report.programs_skipped += 1;
                continue;
            }
        };
        let mut lifter = Lifter::new(&bin).with_config(lift_cfg.clone());
        let (lifted, claims) = if cfg.refine_indirect {
            let refined =
                lifter.lift_entry_refined(bin.entry, &hgl_analysis::VsaResolver::default(), 8);
            (refined.result, refined.hints)
        } else {
            (lifter.lift_entry(bin.entry), Default::default())
        };
        if let Some(r) = &lifted.binary_reject {
            coverage.record_reject(reject_head(r));
            report.programs_skipped += 1;
            continue;
        }
        let mut any_reject = false;
        for f in lifted.functions.values() {
            if let Some(r) = &f.reject {
                coverage.record_reject(reject_head(r));
                any_reject = true;
            }
        }
        if any_reject {
            // A partially rejected program would produce spurious
            // bounded-control-flow reports when a trace calls into the
            // rejected function; the reject taxonomy is accounted, the
            // traces are not run.
            report.programs_skipped += 1;
            continue;
        }
        report.programs_run += 1;
        report.indirections_resolved += lifted.indirection_counts().0;

        let mut oracle = TraceOracle::new(&bin, &lifted);
        if cfg.check_write_classes {
            oracle = oracle.with_write_classes();
        }
        if cfg.refine_indirect {
            oracle = oracle.with_indirect_claims(claims);
        }
        oracle.max_steps = cfg.max_steps;
        for k in 0..cfg.entries_per_program {
            if meter.check_global().is_some() {
                report.budget_exhausted = true;
                break 'programs;
            }
            let es = entry_state(cfg.master_seed, p, k);
            let outcome = oracle.check_trace(&es, &mut coverage);
            report.traces_run += 1;
            report.steps_total += outcome.steps;
            report.writes_checked += outcome.writes_checked;
            report.indirect_checked += outcome.indirect_checked;
            if let Some(v) = outcome.violation {
                let shrunk = shrink(
                    &prog.asm,
                    &prog.spans,
                    &lift_cfg,
                    &es,
                    cfg.max_steps,
                    &v.kind,
                );
                report.failure = Some(CampaignFailure {
                    master_seed: cfg.master_seed,
                    program: p,
                    entry: k,
                    opts: prog.opts.clone(),
                    violation: v,
                    shrunk: Some(shrunk),
                });
                break 'programs;
            }
        }
    }

    report.floor_missing = coverage.missing(&CoverageFloor::default());
    report.coverage = coverage;
    report
}
