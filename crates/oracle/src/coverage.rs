//! Campaign coverage accounting: which mnemonics, edge kinds and
//! reject reasons a campaign exercised, checked against a floor so
//! generator rot (or campaign profiles that stop reaching a shape)
//! fails the run instead of silently shrinking the oracle's power.

use hgl_corpus::gen::emittable_mnemonics;
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a concrete control-flow transition, as replayed against
/// the Hoare Graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Sequential execution (including a `jcc` that was not taken).
    FallThrough,
    /// A taken conditional branch.
    Jcc,
    /// A call (internal or external).
    Call,
    /// A return.
    Ret,
    /// A taken indirect jump through a bounded jump table.
    JumpTable,
    /// Reaching an indirect call the lifter annotated as unresolvable
    /// (a callback through a function-pointer global).
    Callback,
}

impl EdgeKind {
    /// All kinds, for floor construction.
    pub const ALL: [EdgeKind; 6] = [
        EdgeKind::FallThrough,
        EdgeKind::Jcc,
        EdgeKind::Call,
        EdgeKind::Ret,
        EdgeKind::JumpTable,
        EdgeKind::Callback,
    ];
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::FallThrough => "fall-through",
            EdgeKind::Jcc => "jcc",
            EdgeKind::Call => "call",
            EdgeKind::Ret => "ret",
            EdgeKind::JumpTable => "jump-table",
            EdgeKind::Callback => "callback",
        };
        f.write_str(s)
    }
}

/// What one campaign exercised.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Executed-instruction counts by mnemonic stem
    /// (see [`hgl_corpus::gen::mnemonic_stem`]).
    pub mnemonics: BTreeMap<String, usize>,
    /// Replayed transition counts by kind.
    pub edge_kinds: BTreeMap<EdgeKind, usize>,
    /// Lifter reject counts by reason (stringified head of the
    /// `RejectReason` taxonomy).
    pub rejects: BTreeMap<String, usize>,
    /// Trace stop counts by reason (`returned`, `annotated`, …).
    pub stops: BTreeMap<String, usize>,
}

impl Coverage {
    /// Count one executed instruction.
    pub fn record_mnemonic(&mut self, stem: String) {
        *self.mnemonics.entry(stem).or_insert(0) += 1;
    }

    /// Count one replayed transition.
    pub fn record_edge(&mut self, kind: EdgeKind) {
        *self.edge_kinds.entry(kind).or_insert(0) += 1;
    }

    /// Count one lifter reject.
    pub fn record_reject(&mut self, reason: String) {
        *self.rejects.entry(reason).or_insert(0) += 1;
    }

    /// Count one trace stop.
    pub fn record_stop(&mut self, reason: &str) {
        *self.stops.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Floor entries this campaign did NOT exercise; empty means the
    /// floor holds.
    pub fn missing(&self, floor: &CoverageFloor) -> Vec<String> {
        let mut out = Vec::new();
        for m in &floor.mnemonics {
            if self.mnemonics.get(*m).copied().unwrap_or(0) == 0 {
                out.push(format!("mnemonic `{m}` never executed"));
            }
        }
        for k in &floor.edge_kinds {
            if self.edge_kinds.get(k).copied().unwrap_or(0) == 0 {
                out.push(format!("edge kind `{k}` never replayed"));
            }
        }
        out
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mnemonics:")?;
        for (m, n) in &self.mnemonics {
            write!(f, " {m}={n}")?;
        }
        write!(f, "\nedges:")?;
        for (k, n) in &self.edge_kinds {
            write!(f, " {k}={n}")?;
        }
        write!(f, "\nstops:")?;
        for (s, n) in &self.stops {
            write!(f, " {s}={n}")?;
        }
        if !self.rejects.is_empty() {
            write!(f, "\nrejects:")?;
            for (r, n) in &self.rejects {
                write!(f, " {r}={n}")?;
            }
        }
        Ok(())
    }
}

/// The checked-in coverage floor: everything a healthy campaign must
/// exercise at least once.
#[derive(Debug, Clone)]
pub struct CoverageFloor {
    /// Mnemonic stems that must execute (defaults to every stem the
    /// generator can emit).
    pub mnemonics: Vec<&'static str>,
    /// Transition kinds that must replay.
    pub edge_kinds: Vec<EdgeKind>,
}

impl Default for CoverageFloor {
    fn default() -> CoverageFloor {
        CoverageFloor {
            mnemonics: emittable_mnemonics().to_vec(),
            edge_kinds: EdgeKind::ALL.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coverage_misses_whole_floor() {
        let floor = CoverageFloor::default();
        let cov = Coverage::default();
        let missing = cov.missing(&floor);
        assert_eq!(missing.len(), floor.mnemonics.len() + floor.edge_kinds.len());
    }

    #[test]
    fn floor_holds_when_everything_seen() {
        let floor = CoverageFloor::default();
        let mut cov = Coverage::default();
        for m in &floor.mnemonics {
            cov.record_mnemonic(m.to_string());
        }
        for k in EdgeKind::ALL {
            cov.record_edge(k);
        }
        assert!(cov.missing(&floor).is_empty());
    }
}
