//! Differential trace oracle: original vs rewritten binaries.
//!
//! The rewriter (`hgl-rewrite`) claims its output is behaviorally
//! equivalent to its input — exactly for identity recompilation, and
//! modulo the documented guard ABI (extra guard-frame steps, `r10`/
//! `r11`/flags clobbers, shadow-section writes) for shadow-stack
//! instrumentation. This module tests that claim the same way the
//! conformance oracle tests the lifter: concretely, at scale, from
//! seeded campaigns, with automatic shrinking of any divergence.
//!
//! Both binaries run under the same raw emulator harness from
//! identical seeded entry states. The rewritten run's trace is
//! *normalised* through the [`RewriteOutput`] address maps — guard-only
//! steps are dropped, replayed stub instructions map back to their
//! original addresses — and the two runs must then agree on:
//!
//! * the full normalised `rip` sequence,
//! * the stop cause (return to sentinel, terminating external, step
//!   budget),
//! * every final register (minus `r10`/`r11` under the guard ABI),
//! * the arithmetic flags (identity mode only — guards clobber them),
//! * the final memory write-delta against the loaded image (minus the
//!   shadow section under the guard ABI).
//!
//! A benign trace that traps in a guard is a divergence: guards must
//! fire only on actual return-address corruption, never on the
//! campaign's well-behaved programs.

use crate::campaign::{entry_state, synth_program, SynthProgram};
use crate::trace::{EntryState, SENTINEL};
use hgl_asm::Asm;
use hgl_core::tau::TERMINATING_EXTERNALS;
use hgl_core::Lifter;
use hgl_elf::Binary;
use hgl_emu::{Event, Machine};
use hgl_rewrite::{rewrite, RewriteOutput, RewritePass, ShadowStackPass};
use hgl_x86::{decode, Mnemonic, Reg, RegRef};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// All sixteen GPRs, for final-state comparison.
const GPRS: [Reg; 16] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rbx,
    Reg::Rsp,
    Reg::Rbp,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

/// How a raw differential run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffStop {
    /// Returned to the sentinel return address.
    Returned,
    /// Called a terminating external (`exit`, `abort`, …).
    Terminated,
    /// The normalised step budget ran out.
    StepLimit,
    /// Halted inside the rewritten binary's guard section: a
    /// shadow-stack guard fired.
    GuardTrap(u64),
    /// Anything else the harness cannot continue from (undecodable
    /// `rip`, emulator fault, stray `hlt`).
    Fault(String),
}

impl fmt::Display for DiffStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffStop::Returned => f.write_str("returned"),
            DiffStop::Terminated => f.write_str("terminated"),
            DiffStop::StepLimit => f.write_str("step-limit"),
            DiffStop::GuardTrap(a) => write!(f, "guard-trap@{a:#x}"),
            DiffStop::Fault(s) => write!(f, "fault: {s}"),
        }
    }
}

/// The observable outcome of one raw run, already normalised.
pub struct RunSummary {
    /// Normalised executed-instruction addresses.
    pub rips: Vec<u64>,
    /// Stop cause.
    pub stop: DiffStop,
    /// Final GPR values, in [`GPRS`] order.
    pub regs: [u64; 16],
    /// Final flags, packed.
    pub flags: (bool, bool, bool, bool, bool, bool),
    /// Final memory delta against the pre-run state (address →
    /// value), shadow section excluded.
    pub writes: BTreeMap<u64, u8>,
    /// Raw (pre-normalisation) step count.
    pub raw_steps: usize,
}

/// Run `bin` from its ELF entry with entry state `es`. When `out` is
/// given, the run is a rewritten-binary run: its `rip`s are normalised
/// through the output's address maps, halts inside the guard section
/// become [`DiffStop::GuardTrap`], and shadow-section writes are
/// excluded from the memory delta. Steps are budgeted on *normalised*
/// steps so both sides of a differential pair get the same budget.
pub fn run_raw(bin: &Binary, es: &EntryState, out: Option<&RewriteOutput>, max_steps: usize) -> RunSummary {
    let mut m = Machine::from_binary(bin);
    m.rip = bin.entry;
    m.push_return_address(SENTINEL);
    m.set_reg(RegRef::full(Reg::Rdi), es.rdi);
    for (r, v) in [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::R8, Reg::R9].into_iter().zip(es.scratch) {
        m.set_reg(RegRef::full(r), v);
    }
    let baseline: BTreeMap<u64, u8> = m.mem.entries().collect();

    let mut rips = Vec::new();
    let mut raw_steps = 0usize;
    let stop = 'run: loop {
        if rips.len() >= max_steps {
            break DiffStop::StepLimit;
        }
        if m.rip == SENTINEL {
            break DiffStop::Returned;
        }
        let Some(window) = bin.fetch_window(m.rip) else {
            break DiffStop::Fault(format!("undecodable rip {:#x}", m.rip));
        };
        let instr = match decode(window, m.rip) {
            Ok(i) => i,
            Err(e) => break DiffStop::Fault(format!("decode at {:#x}: {e}", m.rip)),
        };
        raw_steps += 1;
        match out {
            Some(o) => {
                if let Some(orig) = o.normalize_rip(instr.addr) {
                    rips.push(orig);
                }
            }
            None => rips.push(instr.addr),
        }
        match m.exec(&instr) {
            Ok(Event::Halt) => {
                if let Some(o) = out {
                    if o.shadow.map(|s| s.in_guard(instr.addr)).unwrap_or(false) {
                        break DiffStop::GuardTrap(instr.addr);
                    }
                }
                break DiffStop::Fault(format!("halt at {:#x}", instr.addr));
            }
            Ok(_) => {}
            Err(e) => break DiffStop::Fault(format!("emulator at {:#x}: {e:?}", instr.addr)),
        }
        // External call: the emulator landed on a PLT stub; replay the
        // benign System V contract exactly as the conformance oracle
        // does (terminating externals end the trace).
        if instr.mnemonic == Mnemonic::Call {
            if let Some(name) = bin.external_at(m.rip) {
                if TERMINATING_EXTERNALS.contains(&name) {
                    break 'run DiffStop::Terminated;
                }
                let rsp = m.reg(Reg::Rsp);
                let ra = m.mem.read(rsp, 8);
                m.set_reg(RegRef::full(Reg::Rsp), rsp.wrapping_add(8));
                m.set_reg(RegRef::full(Reg::Rax), 0);
                m.rip = ra;
            }
        }
    };

    let mut writes: BTreeMap<u64, u8> = BTreeMap::new();
    for (a, v) in m.mem.entries() {
        if let Some(o) = out {
            if o.shadow.map(|s| s.in_shadow(a)).unwrap_or(false) {
                continue;
            }
        }
        if baseline.get(&a) != Some(&v) {
            writes.insert(a, v);
        }
    }
    let mut regs = [0u64; 16];
    for (slot, r) in regs.iter_mut().zip(GPRS) {
        *slot = m.reg(r);
    }
    let f = &m.flags;
    RunSummary {
        rips,
        stop,
        regs,
        flags: (f.cf, f.pf, f.zf, f.sf, f.of, f.df),
        writes,
        raw_steps,
    }
}

/// Compare an original run against a normalised rewritten run. `None`
/// means equivalent; `Some(detail)` describes the first divergence.
/// `guarded` relaxes exactly the documented guard ABI: `r10`, `r11`
/// and the flags are not compared.
pub fn compare_runs(orig: &RunSummary, rw: &RunSummary, guarded: bool) -> Option<String> {
    if orig.stop != rw.stop {
        return Some(format!("stop causes differ: original {}, rewritten {}", orig.stop, rw.stop));
    }
    if orig.rips != rw.rips {
        let i = orig.rips.iter().zip(&rw.rips).position(|(a, b)| a != b).unwrap_or_else(|| orig.rips.len().min(rw.rips.len()));
        return Some(format!(
            "trace diverges at normalised step {i}: original {:?} vs rewritten {:?} (lengths {} vs {})",
            orig.rips.get(i),
            rw.rips.get(i),
            orig.rips.len(),
            rw.rips.len()
        ));
    }
    for (k, r) in GPRS.iter().enumerate() {
        if guarded && matches!(r, Reg::R10 | Reg::R11) {
            continue;
        }
        if orig.regs[k] != rw.regs[k] {
            return Some(format!(
                "final {r:?} differs: {:#x} vs {:#x}",
                orig.regs[k], rw.regs[k]
            ));
        }
    }
    if !guarded && orig.flags != rw.flags {
        return Some(format!("final flags differ: {:?} vs {:?}", orig.flags, rw.flags));
    }
    if orig.writes != rw.writes {
        let diff: Vec<String> = orig
            .writes
            .iter()
            .filter(|(a, v)| rw.writes.get(a) != Some(v))
            .chain(rw.writes.iter().filter(|(a, v)| orig.writes.get(a) != Some(v)))
            .take(8)
            .map(|(a, v)| format!("{a:#x}={v:#04x}"))
            .collect();
        return Some(format!("memory write-deltas differ at: {}", diff.join(", ")));
    }
    None
}

/// Differential campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Master seed; programs and entry states derive from it exactly
    /// as in the conformance campaign.
    pub master_seed: u64,
    /// Programs to synthesize.
    pub programs: usize,
    /// Entry states per program.
    pub entries_per_program: usize,
    /// Normalised per-trace step budget.
    pub max_steps: usize,
    /// Apply the shadow-stack pass (guard-ABI-relaxed comparison)
    /// instead of identity rewriting (exact comparison).
    pub guarded: bool,
    /// Additionally re-lift each identity-rewritten ELF and require
    /// Hoare-Graph correspondence with the original lift.
    pub relift_each: bool,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            master_seed: 0x0e11_ab1e_5eed,
            programs: 60,
            entries_per_program: 4,
            max_steps: 20_000,
            guarded: false,
            relift_each: false,
        }
    }
}

/// A differential divergence: the rewritten binary observably differs
/// from the original, with a replay recipe and a shrunk reproducer.
#[derive(Debug, Clone)]
pub struct DiffDivergence {
    /// Campaign master seed.
    pub master_seed: u64,
    /// Program index.
    pub program: usize,
    /// Entry-state index.
    pub entry: usize,
    /// What differed.
    pub detail: String,
    /// Minimal reproducing program listing, if shrinking succeeded.
    pub shrunk_listing: Option<String>,
    /// Instructions in the shrunk reproducer.
    pub shrunk_instructions: usize,
}

impl fmt::Display for DiffDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.detail)?;
        writeln!(
            f,
            "replay: master_seed={:#x} program={} entry={}",
            self.master_seed, self.program, self.entry
        )?;
        match &self.shrunk_listing {
            Some(l) => {
                writeln!(f, "shrunk to {} instructions:", self.shrunk_instructions)?;
                write!(f, "{l}")
            }
            None => writeln!(f, "(not shrunk)"),
        }
    }
}

/// What a differential campaign did and found.
pub struct DiffReport {
    /// Programs rewritten and traced.
    pub programs_run: usize,
    /// Programs skipped (assembly failure, lifter reject).
    pub programs_skipped: usize,
    /// Programs where the rewriter *refused* (unsafe steal site). A
    /// refusal is not a divergence — the rewriter's contract is
    /// refuse-or-be-equivalent — but it is counted for visibility.
    pub rewrite_refused: usize,
    /// Differential trace pairs run.
    pub traces_run: usize,
    /// Total raw steps across both sides of all pairs.
    pub steps_total: usize,
    /// Shadow-stack guards inserted across all rewritten programs.
    pub guards_inserted: u64,
    /// Identity re-lift correspondence checks that passed (when
    /// [`DiffConfig::relift_each`] is on).
    pub relifts_ok: usize,
    /// The first divergence, shrunk — `None` means full equivalence.
    pub divergence: Option<DiffDivergence>,
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential campaign: {} programs ({} skipped, {} refused), {} trace pairs, \
             {} steps, {} guards, {} re-lifts ok",
            self.programs_run,
            self.programs_skipped,
            self.rewrite_refused,
            self.traces_run,
            self.steps_total,
            self.guards_inserted,
            self.relifts_ok
        )?;
        if let Some(d) = &self.divergence {
            writeln!(f, "DIVERGENCE:\n{d}")?;
        }
        Ok(())
    }
}

/// Lift, rewrite and differentially run one program; `None` means all
/// its entry states are equivalent. Used by both the campaign and the
/// shrinker's reproduction predicate.
fn diverges(
    asm: &Asm,
    removed: &BTreeSet<usize>,
    es: &EntryState,
    max_steps: usize,
    guarded: bool,
) -> Option<String> {
    let candidate = asm.without_text_items(removed);
    let bin = candidate.assemble().ok()?;
    let lifted = Lifter::new(&bin).lift_entry(bin.entry);
    if lifted.binary_reject.is_some() || lifted.functions.values().any(|f| f.reject.is_some()) {
        return None;
    }
    let shadow = ShadowStackPass;
    let passes: Vec<&dyn RewritePass> = if guarded { vec![&shadow] } else { Vec::new() };
    let out = rewrite(&bin, &lifted, &passes).ok()?;
    let orig = run_raw(&bin, es, None, max_steps);
    let rw = run_raw(&out.binary, es, Some(&out), max_steps);
    compare_runs(&orig, &rw, guarded)
}

/// Shrink a diverging program: drop generator segment spans, then
/// individual instructions, keeping a removal only while *some*
/// divergence still reproduces on the same entry state.
fn shrink_divergence(
    prog: &SynthProgram,
    es: &EntryState,
    max_steps: usize,
    guarded: bool,
) -> (Option<String>, usize) {
    let asm = &prog.asm;
    let mut removed: BTreeSet<usize> = BTreeSet::new();
    let mut ordered = prog.spans.clone();
    ordered.sort_by_key(|(s, e)| std::cmp::Reverse(e - s));
    for (s, e) in ordered {
        let trial: BTreeSet<usize> = removed.iter().copied().chain(s..e).collect();
        if trial.len() > removed.len() && diverges(asm, &trial, es, max_steps, guarded).is_some() {
            removed = trial;
        }
    }
    loop {
        let mut progressed = false;
        for idx in 0..asm.text_len() {
            if removed.contains(&idx) || !asm.is_instruction(idx) {
                continue;
            }
            let mut trial = removed.clone();
            trial.insert(idx);
            if diverges(asm, &trial, es, max_steps, guarded).is_some() {
                removed = trial;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let shrunk = asm.without_text_items(&removed);
    let instructions = (0..shrunk.text_len()).filter(|&i| shrunk.is_instruction(i)).count();
    (Some(shrunk.listing()), instructions)
}

/// Run a full differential campaign: synthesize programs, lift,
/// rewrite (identity or shadow-stack), and replay every seeded entry
/// state on both binaries. Stops at the first divergence, which is
/// shrunk to a minimal reproducer.
pub fn run_differential(cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport {
        programs_run: 0,
        programs_skipped: 0,
        rewrite_refused: 0,
        traces_run: 0,
        steps_total: 0,
        guards_inserted: 0,
        relifts_ok: 0,
        divergence: None,
    };
    let shadow = ShadowStackPass;
    'programs: for p in 0..cfg.programs {
        let prog = synth_program(cfg.master_seed, p);
        let Ok(bin) = prog.asm.assemble() else {
            report.programs_skipped += 1;
            continue;
        };
        let lifted = Lifter::new(&bin).lift_entry(bin.entry);
        if lifted.binary_reject.is_some() || lifted.functions.values().any(|f| f.reject.is_some())
        {
            report.programs_skipped += 1;
            continue;
        }
        let passes: Vec<&dyn RewritePass> = if cfg.guarded { vec![&shadow] } else { Vec::new() };
        let out = match rewrite(&bin, &lifted, &passes) {
            Ok(o) => o,
            Err(hgl_rewrite::RewriteError::UnsafeStealSite { .. }) => {
                report.rewrite_refused += 1;
                continue;
            }
            Err(e) => {
                // Any other rewrite error on a cleanly lifted program
                // is itself a defect worth surfacing as a divergence.
                report.divergence = Some(DiffDivergence {
                    master_seed: cfg.master_seed,
                    program: p,
                    entry: 0,
                    detail: format!("rewrite failed on a lifted program: {e}"),
                    shrunk_listing: None,
                    shrunk_instructions: 0,
                });
                break 'programs;
            }
        };
        report.programs_run += 1;
        report.guards_inserted += out.stats.guards_inserted;
        if cfg.relift_each && !cfg.guarded {
            let image = hgl_rewrite::elf_image(&out.binary);
            let reparsed = match Binary::parse(&image) {
                Ok(b) => b,
                Err(e) => {
                    report.divergence = Some(DiffDivergence {
                        master_seed: cfg.master_seed,
                        program: p,
                        entry: 0,
                        detail: format!("re-emitted ELF does not parse: {e:?}"),
                        shrunk_listing: None,
                        shrunk_instructions: 0,
                    });
                    break 'programs;
                }
            };
            let verdict = hgl_rewrite::verify_relift_entry(&lifted, &reparsed);
            if !verdict.ok() {
                report.divergence = Some(DiffDivergence {
                    master_seed: cfg.master_seed,
                    program: p,
                    entry: 0,
                    detail: format!(
                        "re-lift graph mismatch: {:?}",
                        verdict.report.details
                    ),
                    shrunk_listing: None,
                    shrunk_instructions: 0,
                });
                break 'programs;
            }
            report.relifts_ok += 1;
        }
        for k in 0..cfg.entries_per_program {
            let es = entry_state(cfg.master_seed, p, k);
            let orig = run_raw(&bin, &es, None, cfg.max_steps);
            let rw = run_raw(&out.binary, &es, Some(&out), cfg.max_steps);
            report.traces_run += 1;
            report.steps_total += orig.raw_steps + rw.raw_steps;
            if let Some(detail) = compare_runs(&orig, &rw, cfg.guarded) {
                let (listing, instructions) =
                    shrink_divergence(&prog, &es, cfg.max_steps, cfg.guarded);
                report.divergence = Some(DiffDivergence {
                    master_seed: cfg.master_seed,
                    program: p,
                    entry: k,
                    detail,
                    shrunk_listing: listing,
                    shrunk_instructions: instructions,
                });
                break 'programs;
            }
        }
    }
    report
}
