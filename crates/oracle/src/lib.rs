//! # hgl-oracle: trace-level conformance oracle
//!
//! Closes the loop between the three independently-built artifacts in
//! this reproduction — the program generator (`hgl-corpus`), the
//! lifter (`hgl-core`) and the concrete emulator (`hgl-emu`):
//!
//! 1. synthesize whole multi-function programs,
//! 2. lift them to Hoare Graphs,
//! 3. run the emulator from many seeded entry states, and
//! 4. replay every concrete step against the graph, asserting
//!    per-step invariant containment, edge correspondence, and the
//!    paper's three sanity theorems (return-address integrity,
//!    bounded control flow, calling-convention adherence) trace-wide.
//!
//! The edge-local validator (`hgl-export::validate`) checks each Hoare
//! triple on states *drawn from the precondition*; this oracle checks
//! whole *reachable* executions, catching bugs edge-local validation
//! cannot: missing edges (an unsound graph validates edge-locally —
//! the absent triple is never checked), wrong join results propagated
//! across paths, and cross-function contract mismatches.
//!
//! Failing campaigns auto-shrink to a minimal reproducer and print a
//! single replay line (master seed + program and entry index + the
//! generator options). Coverage is accounted per campaign and checked
//! against a floor, so the oracle's own power cannot silently rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod coverage;
pub mod differential;
pub mod shrink;
pub mod trace;

pub use campaign::{
    entry_state, run_campaign, synth_program, CampaignConfig, CampaignFailure, CampaignReport,
    SynthProgram,
};
pub use coverage::{Coverage, CoverageFloor, EdgeKind};
pub use differential::{
    compare_runs, run_differential, run_raw, DiffConfig, DiffDivergence, DiffReport, DiffStop,
    RunSummary,
};
pub use shrink::{shrink, ShrinkResult};
pub use trace::{EntryState, TraceOracle, TraceOutcome, TraceStop, Violation, ViolationKind};
