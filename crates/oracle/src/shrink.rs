//! Shrinking of failing campaigns to a minimal reproducer.
//!
//! Two passes over the *original* assembly program, each keeping a
//! cumulative set of removed text-item indices (indices are stable
//! relative to the original program; every candidate is rebuilt from
//! the original with [`hgl_asm::Asm::without_text_items`]):
//!
//! 1. drop whole generator segment spans,
//! 2. drop individual instructions, to a fixpoint.
//!
//! A removal is kept only if the candidate still assembles, lifts and
//! reproduces a violation of the same kind on the same seeded entry
//! state. Labels are never removed, so branch fixups stay resolvable
//! and a removal can only change semantics, not well-formedness.

use crate::coverage::Coverage;
use crate::trace::{EntryState, TraceOracle, ViolationKind};
use hgl_asm::Asm;
use hgl_core::{LiftConfig, Lifter};
use std::collections::BTreeSet;

/// A minimal reproducer for a campaign failure.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// Text-item indices (into the original program) removed.
    pub removed: BTreeSet<usize>,
    /// Instructions remaining in the shrunk program.
    pub instructions: usize,
    /// Listing of the shrunk program.
    pub listing: String,
}

/// Does the candidate program (original minus `removed`) still exhibit
/// a violation of `kind` on entry state `es`?
fn reproduces(
    asm: &Asm,
    removed: &BTreeSet<usize>,
    cfg: &LiftConfig,
    es: &EntryState,
    max_steps: usize,
    kind: &ViolationKind,
) -> bool {
    let candidate = asm.without_text_items(removed);
    let Ok(bin) = candidate.assemble() else { return false };
    let lifted = Lifter::new(&bin).with_config(cfg.clone()).lift_entry(bin.entry);
    if lifted.binary_reject.is_some() {
        return false;
    }
    let mut oracle = TraceOracle::new(&bin, &lifted);
    oracle.max_steps = max_steps;
    let mut cov = Coverage::default();
    let outcome = oracle.check_trace(es, &mut cov);
    outcome.violation.map(|v| v.kind == *kind).unwrap_or(false)
}

/// Shrink a failing program to a minimal reproducer.
///
/// `spans` are the generator's segment spans (half-open text-item
/// ranges); `kind` is the violation kind that must keep reproducing.
pub fn shrink(
    asm: &Asm,
    spans: &[(usize, usize)],
    cfg: &LiftConfig,
    es: &EntryState,
    max_steps: usize,
    kind: &ViolationKind,
) -> ShrinkResult {
    let mut removed: BTreeSet<usize> = BTreeSet::new();

    // Pass 1: whole segment spans, largest first.
    let mut ordered: Vec<(usize, usize)> = spans.to_vec();
    ordered.sort_by_key(|(s, e)| std::cmp::Reverse(e - s));
    for (s, e) in ordered {
        let trial: BTreeSet<usize> = removed.iter().copied().chain(s..e).collect();
        if trial.len() > removed.len() && reproduces(asm, &trial, cfg, es, max_steps, kind) {
            removed = trial;
        }
    }

    // Pass 2: individual instructions, to a fixpoint.
    loop {
        let mut progressed = false;
        for idx in 0..asm.text_len() {
            if removed.contains(&idx) || !asm.is_instruction(idx) {
                continue;
            }
            let mut trial = removed.clone();
            trial.insert(idx);
            if reproduces(asm, &trial, cfg, es, max_steps, kind) {
                removed = trial;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let shrunk = asm.without_text_items(&removed);
    let instructions = (0..shrunk.text_len()).filter(|&i| shrunk.is_instruction(i)).count();
    ShrinkResult { removed, instructions, listing: shrunk.listing() }
}
